#!/usr/bin/env python
"""Trace the coverage/exposure Pareto frontier for an operator.

The paper's Tables I/II sample a handful of ``alpha:beta`` ratios.  An
operator deciding how to run a real deployment wants the whole frontier:
every achievable (coverage deviation, exposure time) pair, so they can
pick the knee — or justify the cost of moving past it.

This example sweeps beta over six decades on paper Topology 1, marks the
Pareto-efficient points, and summarizes each schedule's character via the
mean travel distance and the chain's relaxation time (slow-mixing
schedules need proportionally long deployments before their long-run
guarantees bind — the operational caveat behind the paper's Table IV
beta=0 row).

Run:  python examples/pareto_frontier.py
"""

from __future__ import annotations

import numpy as np

from repro import paper_topology
from repro.analysis.mixing import relaxation_time
from repro.analysis.pareto import pareto_filter, tradeoff_curve


def main() -> None:
    topology = paper_topology(1)
    print(f"Topology: {topology.name}, target Phi = "
          f"{topology.target_shares}\n")

    betas = np.geomspace(1.0, 1e-6, 7)
    points = tradeoff_curve(
        topology, betas=betas, iterations=300, seed=0
    )
    efficient = pareto_filter(points)

    header = (f"{'beta':>10}  {'dC':>11}  {'E-bar':>9}  "
              f"{'travel m/step':>13}  {'t_relax':>9}  pareto")
    print(header)
    print("-" * len(header))
    for point in points:
        t_rel = relaxation_time(point.matrix)
        marker = "*" if point in efficient else ""
        print(f"{point.beta:>10.3g}  {point.delta_c:>11.5g}  "
              f"{point.e_bar:>9.4g}  {point.mean_travel:>13.1f}  "
              f"{t_rel:>9.3g}  {marker:>6}")

    knee = min(
        efficient,
        key=lambda p: p.delta_c / max(efficient[0].delta_c, 1e-12)
        + p.e_bar / max(efficient[-1].e_bar, 1e-12),
    )
    print(f"\nSuggested knee: beta = {knee.beta:g} "
          f"(dC = {knee.delta_c:.4g}, E-bar = {knee.e_bar:.4g})")
    print(
        "\nReading the table: moving down the frontier buys coverage"
        "\naccuracy with exposure time; the relaxation-time column warns"
        "\nthat the extreme low-beta schedules also mix orders of"
        "\nmagnitude more slowly."
    )


if __name__ == "__main__":
    main()
