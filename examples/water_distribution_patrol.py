#!/usr/bin/env python
"""Water-distribution-system patrol: the paper's motivating scenario.

Section I motivates the problem with a mobile node collecting data from
underwater chemical sensors in a water distribution system (WDS): some
monitoring points matter more than others (periphery = fast contaminant
detection, center = high detection probability), and the operator must
balance how *much* attention each point gets (coverage time) against how
*long* any point goes unwatched (exposure time).

This example models a small WDS as a 3x3 service grid with one central
reservoir and heavier weights on the two inflow points, then sweeps the
exposure weight ``beta`` to show the tradeoff curve an operator would
choose from — more patrol movement (low exposure, fuel spent) versus
precise attention allocation (accurate coverage, slow rounds).

Run:  python examples/water_distribution_patrol.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    CostWeights,
    CoverageCost,
    PerturbedOptions,
    Topology,
    optimize_multistart,
)
from repro.core.terms import EnergyTerm
from repro.core.state import ChainState

#: Monitoring points of the WDS, meters.  Two inflow points (west), a
#: central reservoir, and service nodes.
STATIONS = [
    (0.0, 0.0),        # inflow A (periphery)
    (0.0, 400.0),      # inflow B (periphery)
    (300.0, 200.0),    # central reservoir
    (600.0, 0.0),      # service node SE
    (600.0, 400.0),    # service node NE
    (900.0, 200.0),    # outflow monitoring point
]

#: Attention allocation: inflows dominate (early contaminant warning),
#: the reservoir matters, service nodes get the remainder.
TARGET = [0.25, 0.25, 0.20, 0.10, 0.10, 0.10]


def build_topology() -> Topology:
    return Topology(
        positions=STATIONS,
        target_shares=TARGET,
        sensing_radius=60.0,     # acoustic modem range near a station
        speed=2.0,               # AUV cruise speed, m/s
        pause_times=120.0,       # data-mule dwell time per station, s
        name="wds-patrol",
    )


def main() -> None:
    np.set_printoptions(precision=3, suppress=True)
    topology = build_topology()
    print(f"WDS patrol topology: {topology.size} stations")
    print(f"Target attention shares: {np.asarray(TARGET)}\n")

    energy_probe = EnergyTerm(topology.distances, weight=1.0)
    header = (f"{'beta':>8}  {'dC':>10}  {'E-bar':>10}  "
              f"{'travel m/step':>13}  coverage shares")
    print(header)
    print("-" * len(header))

    sweep = [1.0, 1e-2, 1e-4, 1e-6]
    previous = None
    for beta in sweep:
        cost = CoverageCost(
            topology, CostWeights(alpha=1.0, beta=beta)
        )
        result = optimize_multistart(
            cost,
            random_starts=1,
            seed=7,
            options=PerturbedOptions(max_iterations=250,
                                     trisection_rounds=18),
        )
        best = result.best.best_matrix
        if previous is not None:
            # Warm-start helps track the optimum down the sweep; keep
            # whichever is better.
            from repro import optimize_perturbed

            warm = optimize_perturbed(
                cost, initial=previous, seed=8,
                options=PerturbedOptions(max_iterations=250,
                                         trisection_rounds=18),
            )
            if warm.best_u_eps < result.best.best_u_eps:
                best = warm.best_matrix
        previous = best

        metrics = CoverageCost(topology, CostWeights())
        state = ChainState.from_matrix(best)
        travel = energy_probe.mean_travel(state)
        print(f"{beta:>8g}  {metrics.delta_c(state):>10.4g}  "
              f"{metrics.e_bar(state):>10.4g}  {travel:>13.1f}  "
              f"{metrics.coverage_shares(state)}")

    print(
        "\nReading the table: lowering beta tightens the attention"
        "\nallocation toward the target (dC falls) while rounds get"
        "\nslower (E-bar rises) and the AUV travels less per decision"
        "\n(energy saved) — the paper's Section VI-B tradeoff."
    )


if __name__ == "__main__":
    main()
