#!/usr/bin/env python
"""Scale out with a sensor team instead of a faster sensor.

The paper schedules one mobile sensor.  When one sensor cannot meet an
exposure requirement, operators add sensors.  This example shows the
team extension (`repro.multisensor`) answering the two questions that
come up in practice:

1. How do coverage and exposure improve as the team grows, and how well
   do the independence approximations predict it without simulating?
2. How many sensors does a target demand (the `1 - (1-c)^K` sizing
   rule)?

All sensors run the same optimized single-sensor schedule and stay
completely uncoordinated — each remains the paper's constant-time coin
toss, so the scaling costs no scheduling complexity at all.

Team runs use the vectorized engine (the default; see
docs/simulation.md) and fan independent replications out over the
`repro.exec` execution layer, so each table row is a mean over several
simulated missions rather than a single noisy run.

Run:  python examples/sensor_team.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    CostWeights,
    CoverageCost,
    PerturbedOptions,
    optimize_perturbed,
    paper_topology,
)
from repro.multisensor import (
    sensors_needed_for_coverage,
    simulate_team,
    simulate_team_repeatedly,
    team_coverage_approximation,
    team_exposure_approximation,
)


def main() -> None:
    np.set_printoptions(precision=3, suppress=True)
    topology = paper_topology(2)

    # One schedule, optimized for the balanced objective.
    cost = CoverageCost(topology, CostWeights(alpha=1.0, beta=1.0))
    matrix = optimize_perturbed(
        cost, seed=0,
        options=PerturbedOptions(max_iterations=250,
                                 trisection_rounds=18),
    ).best_matrix

    horizon = 150_000.0
    solo = simulate_team(
        topology, [matrix], horizon=horizon, seed=1,
        engine="vectorized",   # the default, spelled out for the demo
    )
    print(f"Single sensor (simulated {horizon / 3600:.0f} h):")
    print(f"  coverage shares: {solo.coverage_shares}")
    print(f"  mean exposure gaps (s): {solo.exposure_mean}\n")

    replications = 4
    header = (f"{'K':>3}  {'total coverage':>14}  {'predicted':>10}  "
              f"{'mean gap (s)':>12}  {'predicted':>10}")
    print(f"(each row: mean of {replications} replications, fanned out "
          "over worker threads)")
    print(header)
    print("-" * len(header))
    for team_size in (1, 2, 3, 5):
        # Independent missions fan out over the execution layer; each
        # replication draws from its own pre-spawned stream, so results
        # are identical on any backend ("serial"/"thread"/"process").
        runs = simulate_team_repeatedly(
            topology, [matrix] * team_size, horizon=horizon,
            repetitions=replications, seed=2, executor="thread",
        )
        coverage = float(np.mean(
            [run.coverage_shares.mean() for run in runs]
        ))
        mean_gap = float(np.mean(
            [np.nanmean(run.exposure_mean) for run in runs]
        ))
        predicted_cov = team_coverage_approximation(
            np.tile(solo.coverage_shares, (team_size, 1))
        )
        predicted_gap = team_exposure_approximation(
            np.tile(solo.exposure_mean, (team_size, 1))
        )
        print(f"{team_size:>3}  {coverage:>14.3f}  "
              f"{predicted_cov.mean():>10.3f}  "
              f"{mean_gap:>12.1f}  "
              f"{np.nanmean(predicted_gap):>10.1f}")

    single_mean = float(solo.coverage_shares.mean())
    for target in (0.5, 0.9, 0.99):
        needed = sensors_needed_for_coverage(single_mean, target)
        print(f"\n{target:.0%} mean coverage needs K = {needed} sensors "
              f"(single sensor covers {single_mean:.1%})", end="")
    print(
        "\n\nReading the table: coverage composes as 1-(1-c)^K and gaps"
        "\nshrink roughly harmonically — both predicted without"
        "\nsimulation by the independence approximations."
    )


if __name__ == "__main__":
    main()
