#!/usr/bin/env python
"""Adversary-resistant patrols: the entropy objective of Section VII.

A security robot patrols checkpoints.  A smart adversary observes the
robot and strikes wherever it can predict an absence.  Two defenses are
in tension:

* short exposure times (return quickly everywhere), and
* an *unpredictable* schedule — maximize the Markov chain's entropy rate
  so the adversary cannot anticipate the next move.

This example compares three schedules on the same checkpoint layout:

1. a distance-biased nearest-neighbor walk — the classic patrol; short
   hops keep exposure times low but make the next move easy to guess,
2. the exposure-only stochastic schedule (alpha=0, beta=1),
3. the entropy-regularized schedule (``U - w H``, Section VII).

For each we report the entropy rate, the exposure time, and a simple
adversary model: the probability that an observer who knows the current
PoI guesses the next PoI correctly (the max row probability, averaged
under the stationary distribution).

Run:  python examples/unpredictable_patrol.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    CostWeights,
    CoverageCost,
    PerturbedOptions,
    grid_topology,
    optimize_perturbed,
)
from repro.baselines.heuristics import nearest_neighbor_matrix
from repro.core.state import ChainState
from repro.markov.entropy import entropy_rate, max_entropy_rate


def adversary_guess_rate(matrix: np.ndarray) -> float:
    """P(adversary guesses the next PoI | knows the current one)."""
    state = ChainState.from_matrix(matrix)
    return float(state.pi @ matrix.max(axis=1))


def main() -> None:
    np.set_printoptions(precision=3, suppress=True)
    topology = grid_topology(
        2, 3, target_shares=[1 / 6] * 6, name="checkpoints"
    )
    metrics = CoverageCost(topology, CostWeights())
    print(f"Checkpoint grid: {topology.size} PoIs, "
          f"max entropy = ln M = {max_entropy_rate(topology.size):.3f} "
          f"nats\n")

    candidates = {}

    # 1. Naive deployment: strongly distance-biased walk.
    candidates["nearest-neighbor tour"] = nearest_neighbor_matrix(
        topology, temperature=0.05
    )

    # 2. Exposure-optimal schedule, no entropy consideration.
    exposure_cost = CoverageCost(
        topology, CostWeights(alpha=0.0, beta=1.0)
    )
    candidates["exposure-optimal"] = optimize_perturbed(
        exposure_cost, seed=0,
        options=PerturbedOptions(max_iterations=300,
                                 trisection_rounds=18),
    ).best_matrix

    # 3. Entropy-regularized: U - w H with a moderate weight.
    entropy_cost = CoverageCost(
        topology,
        CostWeights(alpha=0.0, beta=1.0, entropy_weight=30.0),
    )
    candidates["entropy-regularized"] = optimize_perturbed(
        entropy_cost, seed=0,
        options=PerturbedOptions(max_iterations=300,
                                 trisection_rounds=18),
    ).best_matrix

    header = (f"{'schedule':>22}  {'H (nats)':>9}  {'E-bar':>8}  "
              f"{'guess rate':>10}")
    print(header)
    print("-" * len(header))
    for label, matrix in candidates.items():
        print(f"{label:>22}  {entropy_rate(matrix):>9.3f}  "
              f"{metrics.e_bar(matrix):>8.3f}  "
              f"{adversary_guess_rate(matrix):>10.1%}")

    print(
        "\nReading the table: the distance-biased tour and the plain"
        "\nexposure-only schedule both leave the adversary guessing"
        "\nright about 2 times in 5; the entropy-regularized schedule"
        "\npushes H toward the ln M bound and nearly halves the guess"
        "\nrate — and here the extra randomness even helped the search"
        "\nescape a local optimum, improving E-bar as well."
    )


if __name__ == "__main__":
    main()
