#!/usr/bin/env python
"""Energy-budgeted data mule: the energy objective of Section VII.

A battery-powered data mule services sensor clusters.  Movement costs
energy proportional to distance traveled, so the operator prescribes a
mean travel budget ``gamma`` (meters per scheduling decision) and asks
for the best coverage/exposure tradeoff *at that budget* — the
``(D - gamma)^2`` term of Section VII.

The example sweeps the budget and reports the achieved mean travel
distance, showing that the optimizer respects the budget while spending
it where it buys the most exposure reduction.  It finishes with a
simulation of the chosen schedule to measure realized travel.

Run:  python examples/energy_budgeted_mule.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    CostWeights,
    CoverageCost,
    PerturbedOptions,
    SimulationOptions,
    optimize_perturbed,
    random_topology,
    simulate_schedule,
)
from repro.core.state import ChainState
from repro.core.terms import EnergyTerm


def realized_travel_per_step(topology, sim) -> float:
    """Mean meters traveled per transition in a simulation."""
    path = sim.path
    distances = topology.distances
    total = sum(
        distances[path[n], path[n + 1]] for n in range(len(path) - 1)
    )
    return total / (len(path) - 1)


def main() -> None:
    np.set_printoptions(precision=3, suppress=True)
    topology = random_topology(
        6, area_side=800.0, sensing_radius=40.0, seed=11,
        name="mule-clusters",
    )
    print(f"Random cluster topology: {topology.size} PoIs in "
          f"an 800 m square")
    print(f"Target shares: {topology.target_shares}\n")

    probe = EnergyTerm(topology.distances, weight=1.0)
    header = (f"{'gamma (m)':>10}  {'achieved D':>10}  {'dC':>10}  "
              f"{'E-bar':>8}")
    print(header)
    print("-" * len(header))

    chosen = None
    for gamma in (50.0, 150.0, 300.0):
        cost = CoverageCost(
            topology,
            CostWeights(
                alpha=1.0, beta=1e-3,
                energy_weight=0.005, energy_target=gamma,
            ),
        )
        result = optimize_perturbed(
            cost, seed=3,
            options=PerturbedOptions(max_iterations=300,
                                     trisection_rounds=18),
        )
        state = ChainState.from_matrix(result.best_matrix)
        achieved = probe.mean_travel(state)
        metrics = CoverageCost(topology, CostWeights())
        print(f"{gamma:>10.0f}  {achieved:>10.1f}  "
              f"{metrics.delta_c(state):>10.4g}  "
              f"{metrics.e_bar(state):>8.3f}")
        if gamma == 150.0:
            chosen = result.best_matrix

    # Validate the mid-budget schedule in simulation.
    sim = simulate_schedule(
        topology, chosen, transitions=50_000, seed=5,
        options=SimulationOptions(warmup=1_000, record_path=True),
    )
    realized = realized_travel_per_step(topology, sim)
    print(f"\nSimulated mean travel at gamma=150: {realized:.1f} m/step "
          f"over {sim.transitions} transitions "
          f"({sim.total_time / 3600:.1f} h of patrol)")
    print(
        "\nReading the table: the achieved mean travel D tracks the"
        "\nprescribed budget gamma, and a bigger movement budget buys"
        "\nshorter exposure times — the Section VII energy knob."
    )


if __name__ == "__main__":
    main()
