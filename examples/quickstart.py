#!/usr/bin/env python
"""Quickstart: optimize a mobile sensor's schedule and verify it.

The smallest end-to-end use of the library:

1. build one of the paper's evaluation topologies,
2. optimize the Markov transition matrix for a balanced tradeoff between
   coverage accuracy and exposure time (the paper's perturbed steepest
   descent, Section V),
3. drive the physical sensor simulation with the optimized matrix and
   check that the measured metrics match the analytic predictions
   (Section VI-D).

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    CostWeights,
    CoverageCost,
    PerturbedOptions,
    SimulationOptions,
    optimize_perturbed,
    paper_topology,
    simulate_schedule,
)


def main() -> None:
    np.set_printoptions(precision=4, suppress=True)

    # -- 1. The physical problem ---------------------------------------- #
    topology = paper_topology(1)
    print(f"Topology: {topology.name} with {topology.size} PoIs")
    print(f"Target coverage allocation Phi: {topology.target_shares}")
    print(f"Sensing radius: {topology.sensing_radius} m, "
          f"speed: {topology.speed} m/s\n")

    # -- 2. Optimize the schedule ---------------------------------------- #
    # alpha weighs coverage-time accuracy, beta weighs exposure time.
    weights = CostWeights(alpha=1.0, beta=1.0)
    cost = CoverageCost(topology, weights)
    result = optimize_perturbed(
        cost,
        seed=0,
        options=PerturbedOptions(max_iterations=400,
                                 trisection_rounds=20),
    )
    print("Optimization:", result.summary())
    print("Optimized transition matrix P:")
    print(result.best_matrix)
    print("Analytic coverage shares C-bar:",
          cost.coverage_shares(result.best_matrix))
    print("Analytic exposure times E-bar_i:",
          cost.exposure_times(result.best_matrix))
    print()

    # -- 3. Verify by simulation ------------------------------------------ #
    sim = simulate_schedule(
        topology,
        result.best_matrix,
        transitions=100_000,
        seed=1,
        options=SimulationOptions(warmup=2_000),
    )
    print("Simulation:", sim.summary())
    print("Simulated coverage shares:   ", sim.coverage_shares)
    print("Simulated exposure (trans.): ", sim.exposure_transitions)
    print()
    print(f"analytic dC = {result.delta_c:.4g}  "
          f"simulated dC = {sim.delta_c:.4g}")
    print(f"analytic E  = {result.e_bar:.4g}  "
          f"simulated E  = {sim.e_bar_transitions:.4g}")


if __name__ == "__main__":
    main()
