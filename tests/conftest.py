"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro import CostWeights, CoverageCost, paper_topology
from repro.core.initializers import dirichlet_matrix


@pytest.fixture
def rng():
    """A deterministic generator for tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def topology1():
    """Paper Topology 1 (2x2 grid)."""
    return paper_topology(1)


@pytest.fixture
def topology3():
    """Paper Topology 3 (line of 4)."""
    return paper_topology(3)


@pytest.fixture
def cost_both(topology1):
    """Combined cost (alpha=1, beta=1) on Topology 1."""
    return CoverageCost(topology1, CostWeights(alpha=1.0, beta=1.0))


@pytest.fixture
def random_ergodic_matrix(rng):
    """A strictly positive (hence ergodic) random transition matrix."""
    return dirichlet_matrix(5, floor=0.01, seed=rng)


def random_zero_rowsum_direction(rng, size):
    """A random direction in the tangent space of stochastic matrices."""
    direction = rng.normal(size=(size, size))
    return direction - direction.mean(axis=1, keepdims=True)
