"""Tests for the experiment harness (tiny parameters, shape checks only).

These verify that every table/figure entry point runs end to end and
exhibits the paper's qualitative shape; the benchmarks run them at full
size.
"""

import numpy as np
import pytest

import repro.experiments as ex
from repro import paper_topology


pytestmark = pytest.mark.filterwarnings("ignore::RuntimeWarning")

#: Tiny budgets so the whole module runs in about a minute.
TINY = dict(iterations=60)


class TestRunner:
    def test_run_many_counts(self):
        from repro.core.cost import CostWeights, CoverageCost
        from repro.experiments.runner import run_many

        cost = CoverageCost(
            paper_topology(1), CostWeights(alpha=0.0, beta=1.0)
        )
        results = run_many(cost, "adaptive", runs=3, iterations=20,
                           seed=0)
        assert len(results) == 3

    def test_run_many_rejects_unknown(self):
        from repro.core.cost import CostWeights, CoverageCost
        from repro.experiments.runner import run_many

        cost = CoverageCost(
            paper_topology(1), CostWeights()
        )
        with pytest.raises(ValueError, match="algorithm"):
            run_many(cost, "nope", 1, 1)

    def test_metric_band(self):
        from repro.experiments.runner import metric_band

        band = metric_band([1.0, 2.0, 3.0, 4.0])
        assert band.mean == pytest.approx(2.5)
        assert band.p25 <= band.mean <= band.p75

    def test_simulate_repeatedly_independent(self):
        from repro.core.initializers import uniform_matrix
        from repro.experiments.runner import simulate_repeatedly

        sims = simulate_repeatedly(
            paper_topology(1), uniform_matrix(4),
            transitions=500, repetitions=3, seed=0,
        )
        totals = {s.total_time for s in sims}
        assert len(totals) == 3


class TestTables:
    def test_sweep_and_tables12(self):
        sweep = ex.run_weight_sweep(
            ratios=((1.0, 1.0), (1.0, 1e-4), (1.0, 0.0)),
            iterations=60, random_starts=1, seed=0,
        )
        table_1 = ex.table1(sweep=sweep)
        table_2 = ex.table2(sweep=sweep)
        assert len(table_1.rows) == 4  # 3 ratios + target row
        assert len(table_2.rows) == 3
        # Qualitative shape: smaller beta -> coverage closer to target.
        topology = paper_topology(3)
        phi = topology.target_shares
        error_first = np.abs(
            np.array(table_1.rows[0][1:]) - phi
        ).max()
        error_last = np.abs(
            np.array(table_1.rows[2][1:]) - phi
        ).max()
        assert error_last < error_first
        # Exposure grows as beta shrinks.
        assert max(table_2.rows[2][1:]) > max(table_2.rows[0][1:])
        table_1.render()

    def test_table3_shape(self):
        result = ex.table3(runs=4, iterations=60, seed=1)
        assert [row[0] for row in result.rows] \
            == ["adaptive", "perturbed"]
        adaptive_row, perturbed_row = result.rows
        # min <= average <= max for both algorithms.
        for row in result.rows:
            assert row[1] <= row[3] <= row[2]
        # Perturbed is at least as good on average.
        assert perturbed_row[3] <= adaptive_row[3] + 1e-9
        result.render()

    def test_table4_shape(self):
        result = ex.table4(
            ratios=((1.0, 1.0), (1.0, 0.0)),
            iterations=60, transitions=4000, repetitions=2, seed=0,
        )
        assert len(result.rows) == 2
        both_row, coverage_row = result.rows
        # Fast-moving schedules (beta=1) simulate accurately even at a
        # short horizon.
        assert both_row[2] == pytest.approx(both_row[1], rel=0.5,
                                            abs=0.5)
        assert both_row[4] == pytest.approx(both_row[3], rel=0.3)
        # The beta=0 optimum moves rarely: computed dC is the smallest
        # and computed E-bar the largest of the sweep (its simulated
        # values need paper-scale horizons to converge).
        assert coverage_row[1] < both_row[1]
        assert coverage_row[3] > both_row[3]
        result.render()


class TestFigures:
    def test_figure2_cdf_monotone(self):
        figure = ex.figure2a(runs=4, iterations=50, seed=0)
        for series in figure.series:
            assert np.all(np.diff(series.y) >= 0)
            assert series.y[-1] == pytest.approx(1.0)
        assert 0.0 <= figure.raw["adaptive_trapped_fraction"] <= 1.0
        figure.render()

    def test_figure2b_runs(self):
        figure = ex.figure2b(runs=3, iterations=40, seed=0)
        assert {s.label for s in figure.series} \
            == {"adaptive", "perturbed"}

    def test_figure3_series_count(self):
        figure = ex.figure3(iterations=150, step=1e-5)
        assert len(figure.series) == 3
        for series in figure.series:
            assert series.y.size == 150

    def test_figure4_decreases(self):
        figure = ex.figure4(iterations=300, step=1e-5)
        trace = figure.series[0].y
        assert trace[-1] < trace[0]

    def test_figure5a_decreases(self):
        figure = ex.figure5a(iterations=300, step=1e-5)
        trace = figure.series[0].y
        assert trace[-1] < trace[0]

    def test_figure5b_converges_across_seeds(self):
        figure = ex.figure5b(seeds=2, iterations=80, seed=0)
        finals = figure.raw["finals"]
        assert len(finals) == 2
        # Envelopes are non-increasing.
        for series in figure.series:
            assert np.all(np.diff(series.y) <= 1e-12)

    def test_figure6_sim_tracks_computed(self):
        figure = ex.figure6(
            iterations=200, step=1e-5, transitions=4000,
            repetitions=2, checkpoints=3, seed=0,
        )
        by_label = {s.label: s for s in figure.series}
        computed = by_label["dC computed"].y
        simulated = by_label["dC simulated"].y
        np.testing.assert_allclose(simulated, computed, rtol=0.3)

    def test_figure8_includes_cost_series(self):
        figure = ex.figure8(
            iterations=200, step=1e-5, transitions=4000,
            repetitions=2, checkpoints=3, seed=0,
        )
        labels = {s.label for s in figure.series}
        assert "U computed" in labels and "U simulated" in labels


class TestAblationsAndExtensions:
    def test_ablation_step_size(self):
        result = ex.ablation_step_size(
            step_sizes=(1e-5, 1e-4), iterations=60, seed=0
        )
        assert len(result.rows) == 3
        adaptive_cost = result.rows[-1][1]
        assert adaptive_cost <= min(row[1] for row in result.rows[:-1])

    def test_ablation_noise(self):
        result = ex.ablation_noise(
            sigmas=(0.0, 0.5), cooling_ks=(10_000.0,), runs=2,
            iterations=40, seed=0,
        )
        assert len(result.rows) == 2

    def test_ablation_epsilon(self):
        result = ex.ablation_epsilon(
            epsilons=(1e-2, 1e-4), iterations=60, seed=0
        )
        # Smaller epsilon admits smaller minimum entries.
        assert result.rows[1][3] <= result.rows[0][3] + 1e-9

    def test_extension_energy(self):
        result = ex.extension_energy(
            gammas=(20.0,), iterations=50, seed=0
        )
        assert len(result.rows) == 2

    def test_extension_entropy_monotone(self):
        result = ex.extension_entropy(
            weights=(0.0, 1.0), iterations=50, seed=0
        )
        h_without, h_with = result.rows[0][1], result.rows[1][1]
        assert h_with >= h_without - 1e-6


class TestBaselineComparison:
    def test_ours_wins_on_u(self):
        result = ex.baseline_comparison(iterations=80, seed=0)
        by_label = {row[0]: row for row in result.rows}
        ours = by_label["steepest descent (ours)"]
        for label, row in by_label.items():
            if label != "steepest descent (ours)":
                assert ours[3] <= row[3] + 1e-9


class TestAblationLinesearch:
    def test_runs_and_reports_both_depths(self):
        result = ex.ablation_linesearch(
            decades=(0, 12), runs=2, iterations=40, seed=0
        )
        assert len(result.rows) == 2
        # Averages agree within a factor of two: the pre-sweep must not
        # hurt (and is typically a wash; see the ablation notes).
        assert result.rows[1][3] <= 2.0 * result.rows[0][3]


class TestExtensionTeam:
    def test_coverage_grows_and_prediction_tracks(self):
        result = ex.extension_team(
            team_sizes=(1, 3), horizon=20_000.0, iterations=40, seed=0
        )
        assert len(result.rows) == 2
        assert result.rows[1][1] > result.rows[0][1]
        for row in result.rows:
            assert row[2] == pytest.approx(row[1], rel=0.2)


class TestExtensionCapture:
    def test_capture_falls_with_beta(self):
        result = ex.extension_capture(
            betas=(1.0, 1e-6), lifetime=60.0, horizon=100_000.0,
            iterations=60, seed=0,
        )
        assert len(result.rows) == 2
        assert result.rows[1][1] < result.rows[0][1]
        # Prediction within a loose band of the measurement.
        for row in result.rows:
            assert row[2] == pytest.approx(row[1], abs=0.25)


class TestAblationOptimizer:
    def test_all_rows_present(self):
        result = ex.ablation_optimizer(
            betas=(1.0,), iterations=40, seed=0
        )
        labels = [row[1] for row in result.rows]
        assert labels == [
            "basic (V1)", "adaptive (V3)", "perturbed (V4)",
            "mirror (ext.)",
        ]


class TestValidation:
    def test_validate_reproduction_passes(self):
        result = ex.validate_reproduction(iterations=80, runs=3, seed=0)
        statuses = [row[1] for row in result.rows]
        assert len(statuses) == 8
        # Every acceptance criterion holds even at the tiny budget.
        assert all(status == "PASS" for status in statuses)

    def test_custom_check_appended(self):
        from repro.experiments.validation import Criterion

        def extra():
            return [Criterion(name="custom", passed=False, detail="x")]

        result = ex.validate_reproduction(
            iterations=40, runs=2, seed=0, checks=[extra]
        )
        assert result.rows[-1][0] == "custom"
        assert result.rows[-1][1] == "FAIL"
