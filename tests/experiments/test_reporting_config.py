"""Tests for repro.experiments.reporting and .config."""

import numpy as np
import pytest

from repro.experiments.config import (
    CI_SCALE,
    PAPER_SCALE,
    PAPER_SCALE_ENV,
    current_scale,
    paper_scale_requested,
)
from repro.experiments.reporting import (
    FigureResult,
    Series,
    TableResult,
    _downsample_indices,
    empirical_cdf,
    format_table,
    format_value,
)


class TestFormatting:
    def test_format_value_float(self):
        assert format_value(0.123456) == "0.1235"

    def test_format_value_nan(self):
        assert format_value(float("nan")) == "nan"

    def test_format_value_string(self):
        assert format_value("abc") == "abc"

    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [[1, 2.5], [10, 0.25]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].strip().startswith("a")

    def test_format_table_empty(self):
        text = format_table(["x"], [])
        assert "x" in text


class TestTableResult:
    def test_render_contains_everything(self):
        table = TableResult(
            experiment_id="Table X",
            title="demo",
            columns=["k", "v"],
            rows=[["a", 1.0]],
            notes="a note",
        )
        text = table.render()
        assert "Table X" in text
        assert "demo" in text
        assert "a note" in text
        assert "a" in text


class TestSeries:
    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="matching"):
            Series("s", np.arange(3), np.arange(4))

    def test_coerces_to_float(self):
        series = Series("s", [1, 2], [3, 4])
        assert series.x.dtype == float


class TestFigureResult:
    def test_render_lists_series(self):
        figure = FigureResult(
            experiment_id="Figure X",
            title="demo",
            x_label="iter",
            y_label="U",
            series=[Series("curve", np.arange(5.0), np.arange(5.0))],
        )
        text = figure.render()
        assert "Figure X" in text
        assert "curve" in text

    def test_render_downsamples(self):
        figure = FigureResult(
            experiment_id="F", title="t", x_label="x", y_label="y",
            series=[
                Series("long", np.arange(1000.0), np.arange(1000.0))
            ],
        )
        line = [
            l for l in figure.render(max_points=5).splitlines()
            if "long" in l
        ][0]
        assert line.count("(") <= 6


class TestDownsample:
    def test_small_passthrough(self):
        np.testing.assert_array_equal(
            _downsample_indices(5, 10), np.arange(5)
        )

    def test_bounds(self):
        indices = _downsample_indices(1000, 10)
        assert indices[0] == 0
        assert indices[-1] == 999
        assert len(indices) <= 10

    def test_empty(self):
        assert _downsample_indices(0, 5).size == 0


class TestEmpiricalCdf:
    def test_sorted_output(self):
        x, y = empirical_cdf([3.0, 1.0, 2.0])
        np.testing.assert_array_equal(x, [1.0, 2.0, 3.0])
        np.testing.assert_allclose(y, [1 / 3, 2 / 3, 1.0])

    def test_empty(self):
        x, y = empirical_cdf([])
        assert x.size == 0 and y.size == 0


class TestScaleConfig:
    def test_ci_scale_smaller_than_paper(self):
        assert CI_SCALE.table3_runs < PAPER_SCALE.table3_runs
        assert CI_SCALE.sim_transitions < PAPER_SCALE.sim_transitions

    def test_env_toggle(self, monkeypatch):
        monkeypatch.delenv(PAPER_SCALE_ENV, raising=False)
        assert not paper_scale_requested()
        assert current_scale() is CI_SCALE
        monkeypatch.setenv(PAPER_SCALE_ENV, "1")
        assert paper_scale_requested()
        assert current_scale() is PAPER_SCALE

    def test_env_false_values(self, monkeypatch):
        for value in ("0", "false", "no", ""):
            monkeypatch.setenv(PAPER_SCALE_ENV, value)
            assert not paper_scale_requested()
