"""Sparse chain solvers vs the dense reference, and incremental updates.

The sparse path's contract (``repro.markov.sparse`` /
``repro.markov.incremental``) is *tolerance* equivalence with the dense
solvers: stationary distributions, core solves ``Z @ v`` / ``v^T Z``,
fundamental matrices, and first-passage times must agree to tight
relative tolerances on every ergodic chain, while the dense path stays
the bit-exact paper-scale reference.  These tests pin that contract and
the drift-monitor / rank-cap behavior of the incremental tracker.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import scalable_topology
from repro.core.initializers import paper_random_matrix, uniform_matrix
from repro.markov.fundamental import (
    factor_core,
    fundamental_and_stationary,
)
from repro.markov.incremental import (
    IncrementalCoreTracker,
    WoodburyCoreSolver,
)
from repro.markov.passage import first_passage_times
from repro.markov.sparse import (
    HAVE_SPARSE,
    SparseCoreSolver,
    SparseStationaryTemplate,
    changed_rows,
    sparse_fundamental_and_stationary,
    sparse_stationary,
)
from repro.markov.stationary import stationary_via_linear_solve

pytestmark = pytest.mark.skipif(
    not HAVE_SPARSE, reason="scipy.sparse unavailable"
)


def support_matrix(size=36, seed=11):
    """A support-masked ergodic matrix plus its adjacency mask."""
    topology = scalable_topology("city-grid", size, seed=seed)
    matrix = paper_random_matrix(
        size, seed=seed + 1, support=topology.adjacency
    )
    return matrix, topology.adjacency


class TestSparseStationary:
    def test_matches_dense_on_full_support(self):
        matrix = paper_random_matrix(12, seed=3)
        dense = stationary_via_linear_solve(matrix)
        sparse = sparse_stationary(matrix)
        np.testing.assert_allclose(sparse, dense, rtol=0, atol=1e-12)

    def test_matches_dense_on_masked_support(self):
        matrix, _ = support_matrix()
        dense = stationary_via_linear_solve(matrix)
        sparse = sparse_stationary(matrix)
        np.testing.assert_allclose(sparse, dense, rtol=0, atol=1e-12)
        assert sparse.sum() == pytest.approx(1.0, abs=1e-15)

    def test_uniform_chain_recovers_uniform_pi(self):
        size = 8
        sparse = sparse_stationary(uniform_matrix(size))
        np.testing.assert_allclose(
            sparse, np.full(size, 1.0 / size), atol=1e-14
        )


class TestSparseStationaryTemplate:
    def test_template_matches_scratch_assembly(self):
        matrix, support = support_matrix()
        template = SparseStationaryTemplate(support)
        np.testing.assert_allclose(
            template.solve(matrix),
            sparse_stationary(matrix),
            rtol=0,
            atol=1e-13,
        )

    def test_template_reusable_across_matrices(self):
        _, support = support_matrix()
        template = SparseStationaryTemplate(support)
        for seed in (20, 21, 22):
            matrix = paper_random_matrix(
                support.shape[0], seed=seed, support=support
            )
            np.testing.assert_allclose(
                template.solve(matrix),
                stationary_via_linear_solve(matrix),
                rtol=0,
                atol=1e-12,
            )

    def test_solve_batch_matches_single_solves(self):
        matrix, support = support_matrix()
        other = paper_random_matrix(
            support.shape[0], seed=77, support=support
        )
        # A ray of nearby probes plus one distant matrix: both the
        # iterative-refinement fast path and the refactor fallback.
        stack = np.stack([
            matrix,
            0.9 * matrix + 0.1 * other,
            0.8 * matrix + 0.2 * other,
            other,
        ])
        template = SparseStationaryTemplate(support)
        solved = template.solve_batch(stack, range(len(stack)))
        assert sorted(solved) == [0, 1, 2, 3]
        for index, pi in solved.items():
            np.testing.assert_allclose(
                pi,
                stationary_via_linear_solve(stack[index]),
                rtol=0,
                atol=1e-11,
            )

    def test_size_mismatch_rejected(self):
        _, support = support_matrix()
        template = SparseStationaryTemplate(support)
        with pytest.raises(ValueError, match="template size"):
            template.solve(uniform_matrix(4))

    def test_non_square_support_rejected(self):
        with pytest.raises(ValueError, match="square"):
            SparseStationaryTemplate(np.ones((3, 4), dtype=bool))


class TestSparseCoreSolver:
    def test_solve_matches_dense_core(self):
        matrix, _ = support_matrix()
        z, pi = fundamental_and_stationary(matrix)
        solver = SparseCoreSolver(matrix, pi)
        rng = np.random.default_rng(5)
        rhs = rng.normal(size=matrix.shape[0])
        dense = factor_core(matrix, pi)
        np.testing.assert_allclose(
            solver.solve(rhs), dense.solve(rhs), rtol=1e-10
        )
        np.testing.assert_allclose(
            solver.solve_transpose(rhs),
            dense.solve_transpose(rhs),
            rtol=1e-10,
        )

    def test_full_inverse_is_fundamental_matrix(self):
        matrix, _ = support_matrix()
        z, pi = fundamental_and_stationary(matrix)
        solver = SparseCoreSolver(matrix, pi)
        np.testing.assert_allclose(
            solver.full_inverse(), z, rtol=0, atol=1e-10
        )

    def test_stacked_solves_match_column_loop(self):
        matrix, _ = support_matrix()
        _, pi = sparse_fundamental_and_stationary(matrix)
        solver = SparseCoreSolver(matrix, pi)
        rng = np.random.default_rng(9)
        rhs = rng.normal(size=(matrix.shape[0], 3))
        stacked = solver.solve(rhs)
        for column in range(3):
            np.testing.assert_allclose(
                stacked[:, column],
                solver.solve(rhs[:, column]),
                rtol=0,
                atol=1e-13,
            )

    def test_first_passage_times_via_sparse_inverse(self):
        matrix, _ = support_matrix(seed=31)
        solver, pi = sparse_fundamental_and_stationary(matrix)
        sparse_r = first_passage_times(
            matrix, z=solver.full_inverse(), pi=pi
        )
        dense_r = first_passage_times(matrix)
        np.testing.assert_allclose(sparse_r, dense_r, rtol=1e-9)
        # Kac's formula survives the sparse route.
        np.testing.assert_allclose(
            np.diag(sparse_r), 1.0 / pi, rtol=1e-9
        )


class TestChangedRows:
    def test_finds_perturbed_rows(self):
        matrix, support = support_matrix()
        other = matrix.copy()
        other[3, support[3]] = matrix[3, support[3]][::-1]
        assert changed_rows(matrix, other).tolist() == [3]

    def test_tolerance_neglects_tiny_rows(self):
        matrix, support = support_matrix()
        other = matrix + 1e-15
        assert changed_rows(matrix, other).size == matrix.shape[0]
        assert changed_rows(matrix, other, atol=1e-12).size == 0

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="shape"):
            changed_rows(np.eye(3), np.eye(4))


def perturb_rows(matrix, support, rows, scale, seed=0):
    """Row-stochastic perturbation of ``rows`` restricted to support."""
    rng = np.random.default_rng(seed)
    result = matrix.copy()
    for row in rows:
        entries = np.nonzero(support[row])[0]
        nudge = rng.normal(size=entries.size)
        nudge -= nudge.mean()
        step = scale * result[row, entries].min() / np.abs(nudge).max()
        result[row, entries] += step * nudge
    return result


class TestIncrementalCoreTracker:
    def test_first_acquire_refactorizes(self):
        matrix, _ = support_matrix()
        tracker = IncrementalCoreTracker()
        pi, solver = tracker.acquire(matrix)
        assert tracker.refactorizations == 1
        assert tracker.incremental_updates == 0
        np.testing.assert_allclose(
            pi, stationary_via_linear_solve(matrix), atol=1e-12
        )

    def test_identical_matrix_reuses_base(self):
        matrix, _ = support_matrix()
        tracker = IncrementalCoreTracker()
        _, first = tracker.acquire(matrix)
        _, second = tracker.acquire(matrix.copy())
        assert second is first
        assert tracker.refactorizations == 1

    def test_low_rank_step_takes_incremental_path(self):
        matrix, support = support_matrix()
        tracker = IncrementalCoreTracker()
        tracker.acquire(matrix)
        stepped = perturb_rows(matrix, support, [2, 7, 11], 1e-3)
        pi, solver = tracker.acquire(stepped)
        assert tracker.incremental_updates == 1
        assert isinstance(solver, WoodburyCoreSolver)
        np.testing.assert_allclose(
            pi, stationary_via_linear_solve(stepped), atol=1e-10
        )
        # The corrected solver answers for the *new* core.
        reference = factor_core(stepped, pi)
        rhs = np.linspace(-1.0, 1.0, matrix.shape[0])
        np.testing.assert_allclose(
            solver.solve(rhs), reference.solve(rhs), rtol=1e-8
        )

    def test_full_rank_step_forces_refactorization(self):
        matrix, support = support_matrix()
        tracker = IncrementalCoreTracker(rank_cap=4)
        tracker.acquire(matrix)
        stepped = perturb_rows(
            matrix, support, range(matrix.shape[0]), 1e-2
        )
        tracker.acquire(stepped)
        assert tracker.incremental_updates == 0
        assert tracker.refactorizations == 2

    def test_drift_monitor_forces_refactorization(self):
        # An impossibly tight drift tolerance makes every verified
        # update fail its residual check, so the tracker must fall back
        # to a fresh factorization — and still return correct answers.
        matrix, support = support_matrix()
        tracker = IncrementalCoreTracker(drift_tol=1e-300)
        tracker.acquire(matrix)
        stepped = perturb_rows(matrix, support, [5], 1e-3)
        pi, _ = tracker.acquire(stepped)
        assert tracker.drift_refactorizations == 1
        assert tracker.incremental_updates == 0
        assert tracker.refactorizations == 2
        np.testing.assert_allclose(
            pi, stationary_via_linear_solve(stepped), atol=1e-12
        )

    def test_staleness_cap_forces_rebase(self):
        matrix, support = support_matrix()
        tracker = IncrementalCoreTracker(max_updates=1)
        tracker.acquire(matrix)
        first = perturb_rows(matrix, support, [1], 1e-4, seed=1)
        second = perturb_rows(first, support, [2], 1e-4, seed=2)
        tracker.acquire(first)
        assert tracker.incremental_updates == 1
        tracker.acquire(second)
        assert tracker.refactorizations == 2

    def test_near_converged_step_stays_incremental(self):
        # Every row moves by float noise but only two move materially:
        # tolerance-aware row selection must still count this as
        # low-rank.
        matrix, support = support_matrix()
        tracker = IncrementalCoreTracker()
        tracker.acquire(matrix)
        stepped = perturb_rows(matrix, support, [4, 9], 1e-4)
        stepped[support] += 1e-16
        pi, _ = tracker.acquire(stepped)
        assert tracker.incremental_updates == 1
        np.testing.assert_allclose(
            pi, stationary_via_linear_solve(stepped), atol=1e-10
        )

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError, match="rank_cap"):
            IncrementalCoreTracker(rank_cap=0)
        with pytest.raises(ValueError, match="drift_tol"):
            IncrementalCoreTracker(drift_tol=0.0)
        with pytest.raises(ValueError, match="max_updates"):
            IncrementalCoreTracker(max_updates=0)

    def test_supplied_pi_is_trusted(self):
        matrix, _ = support_matrix()
        tracker = IncrementalCoreTracker()
        reference = sparse_stationary(matrix)
        pi, _ = tracker.acquire(matrix, reference)
        np.testing.assert_array_equal(pi, reference)
