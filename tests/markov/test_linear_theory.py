"""Tests for the Markov linear theory: stationary distributions, group
inverse, fundamental matrix, and first-passage times.

These are the closed-form objects of paper Section III-B; the tests
cross-validate every quantity through at least two independent routes.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.markov.fundamental import (
    fundamental_and_stationary,
    fundamental_from_group_inverse,
    fundamental_matrix,
)
from repro.markov.group_inverse import (
    group_inverse,
    stationary_projector,
    verify_group_inverse_axioms,
)
from repro.markov.passage import (
    first_passage_times,
    first_passage_times_by_solve,
)
from repro.markov.stationary import (
    stationary_distribution,
    stationary_via_eigen,
    stationary_via_group_inverse,
    stationary_via_linear_solve,
)


def random_chain(seed, size=5, floor=0.02):
    rng = np.random.default_rng(seed)
    rows = rng.dirichlet(np.ones(size), size=size)
    return floor + (1 - size * floor) * rows


@pytest.fixture
def chain():
    return random_chain(7)


class TestStationary:
    def test_is_distribution(self, chain):
        pi = stationary_via_linear_solve(chain)
        assert pi.sum() == pytest.approx(1.0)
        assert np.all(pi > 0)

    def test_invariance(self, chain):
        pi = stationary_via_linear_solve(chain)
        np.testing.assert_allclose(pi @ chain, pi, atol=1e-12)

    def test_methods_agree(self, chain):
        reference = stationary_via_linear_solve(chain)
        np.testing.assert_allclose(
            stationary_via_eigen(chain), reference, atol=1e-9
        )
        np.testing.assert_allclose(
            stationary_via_group_inverse(chain), reference, atol=1e-9
        )

    def test_dispatch(self, chain):
        for method in ("solve", "eigen", "group-inverse"):
            pi = stationary_distribution(chain, method)
            assert pi.sum() == pytest.approx(1.0)

    def test_unknown_method(self, chain):
        with pytest.raises(ValueError, match="unknown method"):
            stationary_distribution(chain, "nope")

    def test_uniform_chain(self):
        pi = stationary_via_linear_solve(np.full((4, 4), 0.25))
        np.testing.assert_allclose(pi, 0.25)

    def test_known_two_state(self):
        """pi of [[1-a, a], [b, 1-b]] is (b, a)/(a+b)."""
        a, b = 0.3, 0.2
        matrix = np.array([[1 - a, a], [b, 1 - b]])
        pi = stationary_via_linear_solve(matrix)
        np.testing.assert_allclose(pi, [b / (a + b), a / (a + b)])

    def test_eigen_rejects_non_stochastic(self):
        with pytest.raises(ValueError, match="eigenvalue"):
            stationary_via_eigen(np.zeros((3, 3)))

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_property_invariance(self, seed):
        chain = random_chain(seed, size=4)
        pi = stationary_via_linear_solve(chain)
        assert np.allclose(pi @ chain, pi, atol=1e-10)
        assert np.all(pi > 0)


class TestGroupInverse:
    def test_axioms(self, chain):
        a = np.eye(5) - chain
        a_sharp = group_inverse(chain)
        assert verify_group_inverse_axioms(a, a_sharp)

    def test_projector_rows_are_pi(self, chain):
        """Eq. (5): W = I - A A# has every row equal to pi."""
        w = stationary_projector(chain)
        pi = stationary_via_linear_solve(chain)
        for row in w:
            np.testing.assert_allclose(row, pi, atol=1e-10)

    def test_axioms_checker_rejects_wrong(self, chain):
        a = np.eye(5) - chain
        assert not verify_group_inverse_axioms(a, np.eye(5))

    def test_axioms_checker_shape_mismatch(self):
        with pytest.raises(ValueError, match="mismatch"):
            verify_group_inverse_axioms(np.eye(3), np.eye(4))

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_property_axioms(self, seed):
        chain = random_chain(seed, size=4)
        a = np.eye(4) - chain
        a_sharp = group_inverse(chain)
        assert verify_group_inverse_axioms(a, a_sharp)


class TestFundamental:
    def test_definition(self, chain):
        """Z (I - P + W) = I."""
        z, pi = fundamental_and_stationary(chain)
        w = np.tile(pi, (5, 1))
        np.testing.assert_allclose(
            z @ (np.eye(5) - chain + w), np.eye(5), atol=1e-10
        )

    def test_eq7_relation(self, chain):
        """Eq. (7): Z = I + P A#."""
        z = fundamental_matrix(chain)
        a_sharp = group_inverse(chain)
        np.testing.assert_allclose(
            z, fundamental_from_group_inverse(chain, a_sharp), atol=1e-10
        )

    def test_rows_sum_to_one(self, chain):
        """Z 1 = 1 (since (I - P + W) 1 = 1)."""
        z = fundamental_matrix(chain)
        np.testing.assert_allclose(z.sum(axis=1), 1.0, atol=1e-10)

    def test_pi_z_is_pi(self, chain):
        z, pi = fundamental_and_stationary(chain)
        np.testing.assert_allclose(pi @ z, pi, atol=1e-10)

    def test_rejects_bad_pi_shape(self, chain):
        with pytest.raises(ValueError, match="pi"):
            fundamental_matrix(chain, pi=np.ones(3))


class TestFirstPassage:
    def test_matches_first_step_analysis(self, chain):
        via_z = first_passage_times(chain)
        via_solve = first_passage_times_by_solve(chain)
        np.testing.assert_allclose(via_z, via_solve, atol=1e-8)

    def test_kac_formula(self, chain):
        """R_ii = 1 / pi_i."""
        r = first_passage_times(chain)
        pi = stationary_via_linear_solve(chain)
        np.testing.assert_allclose(np.diag(r), 1.0 / pi, atol=1e-8)

    def test_positive(self, chain):
        assert np.all(first_passage_times(chain) > 0)

    def test_first_step_equation(self, chain):
        """R_ij = 1 + sum_{k != j} p_ik R_kj for i != j."""
        r = first_passage_times(chain)
        for i in range(5):
            for j in range(5):
                if i == j:
                    continue
                expected = 1.0 + sum(
                    chain[i, k] * r[k, j] for k in range(5) if k != j
                )
                assert r[i, j] == pytest.approx(expected, abs=1e-8)

    def test_two_state_closed_form(self):
        """R_01 = 1/a for [[1-a, a], [b, 1-b]]."""
        a, b = 0.25, 0.4
        matrix = np.array([[1 - a, a], [b, 1 - b]])
        r = first_passage_times(matrix)
        assert r[0, 1] == pytest.approx(1.0 / a)
        assert r[1, 0] == pytest.approx(1.0 / b)

    def test_partial_cache_args_rejected(self, chain):
        with pytest.raises(ValueError, match="both"):
            first_passage_times(chain, z=np.eye(5))

    def test_solve_rejects_reducible(self):
        reducible = np.array([
            [0.5, 0.5, 0.0],
            [0.5, 0.5, 0.0],
            [0.0, 0.0, 1.0],
        ])
        with pytest.raises(ValueError, match="singular|irreducible"):
            first_passage_times_by_solve(reducible)

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_property_consistency(self, seed):
        chain = random_chain(seed, size=4)
        via_z = first_passage_times(chain)
        via_solve = first_passage_times_by_solve(chain)
        assert np.allclose(via_z, via_solve, atol=1e-7)
