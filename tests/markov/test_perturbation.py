"""Tests for repro.markov.perturbation (Schweitzer derivative formulas).

The directional derivatives are validated against central finite
differences; the adjoint operators are validated against the directional
forms via the defining inner-product identities.
"""

import numpy as np
import pytest

from repro.markov.fundamental import fundamental_matrix
from repro.markov.perturbation import (
    adjoint_fundamental_term,
    adjoint_stationary_term,
    fundamental_derivative,
    stationary_derivative,
)
from repro.markov.stationary import stationary_via_linear_solve
from tests.conftest import random_zero_rowsum_direction


@pytest.fixture
def setup(rng):
    matrix = 0.02 + 0.9 * rng.dirichlet(np.ones(5), size=5)
    matrix /= matrix.sum(axis=1, keepdims=True)
    pi = stationary_via_linear_solve(matrix)
    z = fundamental_matrix(matrix, pi)
    return matrix, pi, z


class TestDirectionalDerivatives:
    def test_stationary_matches_finite_difference(self, setup, rng):
        matrix, pi, z = setup
        h = 1e-7
        for _ in range(3):
            dp = random_zero_rowsum_direction(rng, 5)
            numeric = (
                stationary_via_linear_solve(matrix + h * dp)
                - stationary_via_linear_solve(matrix - h * dp)
            ) / (2 * h)
            analytic = stationary_derivative(pi, z, dp)
            np.testing.assert_allclose(numeric, analytic, atol=1e-5)

    def test_fundamental_matches_finite_difference(self, setup, rng):
        matrix, pi, z = setup
        h = 1e-7
        for _ in range(3):
            dp = random_zero_rowsum_direction(rng, 5)
            numeric = (
                fundamental_matrix(matrix + h * dp)
                - fundamental_matrix(matrix - h * dp)
            ) / (2 * h)
            analytic = fundamental_derivative(pi, z, dp)
            np.testing.assert_allclose(numeric, analytic, atol=1e-4)

    def test_stationary_derivative_sums_to_zero(self, setup, rng):
        """d(sum pi)/dt = 0 along any stochastic path."""
        matrix, pi, z = setup
        dp = random_zero_rowsum_direction(rng, 5)
        assert stationary_derivative(pi, z, dp).sum() \
            == pytest.approx(0.0, abs=1e-10)

    def test_zero_direction_gives_zero(self, setup):
        matrix, pi, z = setup
        np.testing.assert_array_equal(
            stationary_derivative(pi, z, np.zeros((5, 5))), np.zeros(5)
        )
        np.testing.assert_array_equal(
            fundamental_derivative(pi, z, np.zeros((5, 5))),
            np.zeros((5, 5)),
        )

    def test_linearity(self, setup, rng):
        matrix, pi, z = setup
        d1 = random_zero_rowsum_direction(rng, 5)
        d2 = random_zero_rowsum_direction(rng, 5)
        combined = stationary_derivative(pi, z, 2.0 * d1 + 3.0 * d2)
        split = (
            2.0 * stationary_derivative(pi, z, d1)
            + 3.0 * stationary_derivative(pi, z, d2)
        )
        np.testing.assert_allclose(combined, split, atol=1e-12)


class TestAdjoints:
    def test_stationary_adjoint_identity(self, setup, rng):
        """<grad_pi, dpi(dP)> == <G, dP> for all dP."""
        matrix, pi, z = setup
        grad_pi = rng.normal(size=5)
        adjoint = adjoint_stationary_term(pi, z, grad_pi)
        for _ in range(4):
            dp = rng.normal(size=(5, 5))
            lhs = float(grad_pi @ stationary_derivative(pi, z, dp))
            rhs = float(np.sum(adjoint * dp))
            assert lhs == pytest.approx(rhs, rel=1e-9, abs=1e-12)

    def test_fundamental_adjoint_identity(self, setup, rng):
        """<grad_z, dZ(dP)> == <G, dP> for all dP."""
        matrix, pi, z = setup
        grad_z = rng.normal(size=(5, 5))
        adjoint = adjoint_fundamental_term(pi, z, grad_z)
        for _ in range(4):
            dp = rng.normal(size=(5, 5))
            lhs = float(np.sum(grad_z * fundamental_derivative(pi, z, dp)))
            rhs = float(np.sum(adjoint * dp))
            assert lhs == pytest.approx(rhs, rel=1e-9, abs=1e-12)

    def test_adjoint_matches_paper_eq10_brackets(self, setup):
        """Spot-check Eq. (10)'s first bracket: pi_k (Z grad)_l."""
        matrix, pi, z = setup
        grad_pi = np.arange(1.0, 6.0)
        adjoint = adjoint_stationary_term(pi, z, grad_pi)
        for k in range(5):
            for l in range(5):
                expected = pi[k] * sum(
                    z[l, i] * grad_pi[i] for i in range(5)
                )
                assert adjoint[k, l] == pytest.approx(expected)
