"""Tests for repro.markov.ergodicity."""

import numpy as np
import pytest

from repro.markov.ergodicity import (
    is_aperiodic,
    is_ergodic,
    is_irreducible,
    period_of_state,
    require_ergodic,
    transition_graph,
)


@pytest.fixture
def two_block():
    """Reducible: two disconnected 2-state blocks."""
    return np.array([
        [0.5, 0.5, 0.0, 0.0],
        [0.5, 0.5, 0.0, 0.0],
        [0.0, 0.0, 0.5, 0.5],
        [0.0, 0.0, 0.5, 0.5],
    ])


@pytest.fixture
def cycle():
    """Periodic: deterministic 3-cycle."""
    return np.array([
        [0.0, 1.0, 0.0],
        [0.0, 0.0, 1.0],
        [1.0, 0.0, 0.0],
    ])


class TestTransitionGraph:
    def test_edges(self):
        graph = transition_graph(np.array([[0.5, 0.5], [1.0, 0.0]]))
        assert graph == [[0, 1], [0]]

    def test_tolerance(self):
        graph = transition_graph(
            np.array([[1.0 - 1e-20, 1e-20], [0.5, 0.5]])
        )
        assert graph[0] == [0]


class TestIrreducibility:
    def test_uniform_is_irreducible(self):
        assert is_irreducible(np.full((3, 3), 1 / 3))

    def test_blocks_are_reducible(self, two_block):
        assert not is_irreducible(two_block)

    def test_one_way_chain_is_reducible(self):
        """State 1 is absorbing: 0 -> 1 but never back."""
        matrix = np.array([[0.5, 0.5], [0.0, 1.0]])
        assert not is_irreducible(matrix)

    def test_cycle_is_irreducible(self, cycle):
        assert is_irreducible(cycle)


class TestPeriodicity:
    def test_cycle_period(self, cycle):
        assert period_of_state(cycle, 0) == 3

    def test_self_loop_aperiodic(self):
        matrix = np.array([[0.1, 0.9], [1.0, 0.0]])
        assert is_aperiodic(matrix)

    def test_bipartite_period_two(self):
        matrix = np.array([[0.0, 1.0], [1.0, 0.0]])
        assert period_of_state(matrix, 0) == 2
        assert not is_aperiodic(matrix)

    def test_bad_state_rejected(self, cycle):
        with pytest.raises(ValueError, match="state"):
            period_of_state(cycle, 5)


class TestErgodicity:
    def test_uniform_is_ergodic(self):
        assert is_ergodic(np.full((4, 4), 0.25))

    def test_cycle_not_ergodic(self, cycle):
        assert not is_ergodic(cycle)

    def test_blocks_not_ergodic(self, two_block):
        assert not is_ergodic(two_block)

    def test_random_positive_matrix_ergodic(self, rng):
        matrix = rng.dirichlet(np.ones(5), size=5)
        assert is_ergodic(matrix)


class TestRequireErgodic:
    def test_passes_for_ergodic(self):
        require_ergodic(np.full((3, 3), 1 / 3))

    def test_message_for_reducible(self, two_block):
        with pytest.raises(ValueError, match="reducible"):
            require_ergodic(two_block)

    def test_message_for_periodic(self, cycle):
        with pytest.raises(ValueError, match="periodic"):
            require_ergodic(cycle)

    def test_message_for_non_stochastic(self):
        with pytest.raises(ValueError, match="row-stochastic"):
            require_ergodic(np.ones((3, 3)))
