"""Property-based Markov theory tests on random chains of varying size.

Each property is a known identity of ergodic finite chains, checked on
randomly generated transition matrices of sizes 3-7.  Failures here
would indicate numerical or formula errors in the closed-form machinery
the whole optimizer rests on.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.markov.entropy import entropy_rate
from repro.markov.fundamental import fundamental_and_stationary
from repro.markov.passage import first_passage_times
from repro.markov.sampling import sample_path
from repro.markov.stationary import stationary_via_linear_solve

SETTINGS = settings(max_examples=25, deadline=None)

chain_params = st.tuples(
    st.integers(0, 100_000), st.integers(3, 7)
)


def random_chain(seed, size, floor=0.02):
    rng = np.random.default_rng(seed)
    rows = rng.dirichlet(np.ones(size), size=size)
    return floor + (1 - size * floor) * rows


@SETTINGS
@given(params=chain_params)
def test_kemeny_constant_is_start_independent(params):
    """sum_j pi_j R_ij (j != i) is the same for every start i."""
    seed, size = params
    chain = random_chain(seed, size)
    pi = stationary_via_linear_solve(chain)
    r = first_passage_times(chain)
    totals = [
        sum(pi[j] * r[i, j] for j in range(size) if j != i)
        for i in range(size)
    ]
    assert max(totals) - min(totals) < 1e-7


@SETTINGS
@given(params=chain_params)
def test_passage_times_satisfy_triangle_like_bound(params):
    """R_ij <= R_ik + R_kj (first-passage 'triangle inequality')."""
    seed, size = params
    chain = random_chain(seed, size)
    r = first_passage_times(chain)
    for i in range(size):
        for j in range(size):
            if i == j:
                continue
            for k in range(size):
                if k in (i, j):
                    continue
                assert r[i, j] <= r[i, k] + r[k, j] + 1e-7


@SETTINGS
@given(params=chain_params)
def test_fundamental_matrix_row_sums(params):
    """Z 1 = 1 and pi Z = pi for every ergodic chain."""
    seed, size = params
    chain = random_chain(seed, size)
    z, pi = fundamental_and_stationary(chain)
    assert np.allclose(z.sum(axis=1), 1.0, atol=1e-9)
    assert np.allclose(pi @ z, pi, atol=1e-9)


@SETTINGS
@given(params=chain_params)
def test_entropy_rate_below_stationary_entropy_of_rows(params):
    """H(chain) <= max_i H(row_i) (it is a pi-average of row entropies)."""
    seed, size = params
    chain = random_chain(seed, size)
    with np.errstate(divide="ignore", invalid="ignore"):
        row_h = -np.where(chain > 0, chain * np.log(chain), 0).sum(axis=1)
    h = entropy_rate(chain)
    assert h <= row_h.max() + 1e-12
    assert h >= row_h.min() - 1e-12


@SETTINGS
@given(params=chain_params)
def test_time_reversal_shares_stationary_distribution(params):
    """The reversed chain P*_ij = pi_j p_ji / pi_i has the same pi."""
    seed, size = params
    chain = random_chain(seed, size)
    pi = stationary_via_linear_solve(chain)
    reversed_chain = (pi[None, :] * chain.T) / pi[:, None]
    assert np.allclose(reversed_chain.sum(axis=1), 1.0, atol=1e-9)
    pi_reversed = stationary_via_linear_solve(reversed_chain)
    assert np.allclose(pi_reversed, pi, atol=1e-8)


@SETTINGS
@given(seed=st.integers(0, 100_000))
def test_sampled_return_times_match_kac(seed):
    """Empirical mean return time to a state approaches 1/pi_i."""
    chain = random_chain(seed, 3, floor=0.1)
    pi = stationary_via_linear_solve(chain)
    path = sample_path(chain, 60_000, start=0, seed=seed)
    visits = np.nonzero(path == 0)[0]
    if visits.size < 100:
        return  # extremely unlikely with floor=0.1; skip if degenerate
    mean_return = float(np.diff(visits).mean())
    assert mean_return == pytest.approx(1.0 / pi[0], rel=0.1)
