"""Tests for repro.markov.entropy, sampling, and the MarkovChain facade."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.markov.chain import MarkovChain
from repro.markov.entropy import entropy_rate, max_entropy_rate, row_entropies
from repro.markov.sampling import (
    empirical_transition_matrix,
    occupation_frequencies,
    sample_path,
)


class TestEntropy:
    def test_uniform_chain_attains_log_m(self):
        matrix = np.full((4, 4), 0.25)
        assert entropy_rate(matrix) == pytest.approx(np.log(4))

    def test_deterministic_cycle_zero_entropy(self):
        matrix = np.array([
            [0.0, 1.0, 0.0],
            [0.0, 0.0, 1.0],
            [1.0, 0.0, 0.0],
        ])
        # Periodic but stationary-solvable; entropy of deterministic
        # transitions is zero.
        assert entropy_rate(matrix) == pytest.approx(0.0)

    def test_row_entropies_handle_zeros(self):
        rows = row_entropies(np.array([[1.0, 0.0], [0.5, 0.5]]))
        assert rows[0] == pytest.approx(0.0)
        assert rows[1] == pytest.approx(np.log(2))

    def test_bounds(self, rng):
        for _ in range(10):
            matrix = rng.dirichlet(np.ones(5), size=5)
            h = entropy_rate(matrix)
            assert -1e-12 <= h <= max_entropy_rate(5) + 1e-12

    def test_max_entropy_rate_validates(self):
        with pytest.raises(ValueError, match="size"):
            max_entropy_rate(0)

    def test_pi_shape_validated(self):
        with pytest.raises(ValueError, match="pi"):
            entropy_rate(np.full((3, 3), 1 / 3), pi=np.ones(4))

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_property_bounds(self, seed):
        rng = np.random.default_rng(seed)
        matrix = rng.dirichlet(np.ones(4), size=4)
        assert -1e-12 <= entropy_rate(matrix) <= np.log(4) + 1e-12


class TestSampling:
    def test_path_length(self, rng):
        matrix = np.full((3, 3), 1 / 3)
        path = sample_path(matrix, 100, seed=rng)
        assert path.shape == (101,)

    def test_start_state_respected(self):
        matrix = np.full((3, 3), 1 / 3)
        path = sample_path(matrix, 10, start=2, seed=0)
        assert path[0] == 2

    def test_deterministic_with_seed(self):
        matrix = np.full((4, 4), 0.25)
        a = sample_path(matrix, 50, start=0, seed=9)
        b = sample_path(matrix, 50, start=0, seed=9)
        np.testing.assert_array_equal(a, b)

    def test_deterministic_chain_path(self):
        matrix = np.array([[0.0, 1.0], [1.0, 0.0]])
        path = sample_path(matrix, 5, start=0, seed=0)
        np.testing.assert_array_equal(path, [0, 1, 0, 1, 0, 1])

    def test_rejects_non_stochastic(self):
        with pytest.raises(ValueError, match="stochastic"):
            sample_path(np.ones((2, 2)), 5)

    def test_rejects_negative_steps(self):
        with pytest.raises(ValueError, match="steps"):
            sample_path(np.full((2, 2), 0.5), -1)

    def test_rejects_bad_start(self):
        with pytest.raises(ValueError, match="start"):
            sample_path(np.full((2, 2), 0.5), 5, start=7)

    def test_occupation_converges_to_stationary(self):
        matrix = np.array([[0.9, 0.1], [0.3, 0.7]])
        path = sample_path(matrix, 200_000, seed=4)
        freq = occupation_frequencies(path, 2)
        np.testing.assert_allclose(freq, [0.75, 0.25], atol=0.01)

    def test_empirical_matrix_recovers_transitions(self):
        matrix = np.array([[0.8, 0.2], [0.4, 0.6]])
        path = sample_path(matrix, 200_000, seed=5)
        estimate = empirical_transition_matrix(path, 2)
        np.testing.assert_allclose(estimate, matrix, atol=0.01)

    def test_empirical_matrix_validates(self):
        with pytest.raises(ValueError, match="path"):
            empirical_transition_matrix(np.array([1]), 2)
        with pytest.raises(ValueError, match="outside"):
            empirical_transition_matrix(np.array([0, 5]), 2)

    def test_occupation_validates(self):
        with pytest.raises(ValueError, match="non-empty"):
            occupation_frequencies(np.array([]), 2)


class TestMarkovChainFacade:
    def test_validates_on_construction(self):
        reducible = np.array([[1.0, 0.0], [0.0, 1.0]])
        with pytest.raises(ValueError):
            MarkovChain(reducible)

    def test_skip_validation(self):
        chain = MarkovChain(np.full((3, 3), 1 / 3), validate=False)
        assert chain.size == 3

    def test_matrix_read_only(self, random_ergodic_matrix):
        chain = MarkovChain(random_ergodic_matrix)
        with pytest.raises(ValueError):
            chain.matrix[0, 0] = 0.5

    def test_cached_quantities_consistent(self, random_ergodic_matrix):
        chain = MarkovChain(random_ergodic_matrix)
        np.testing.assert_allclose(
            chain.stationary @ chain.matrix, chain.stationary, atol=1e-10
        )
        np.testing.assert_allclose(
            np.diag(chain.first_passage), 1.0 / chain.stationary,
            atol=1e-8,
        )
        # Eq. (7) through the facade's own caches.
        np.testing.assert_allclose(
            chain.fundamental,
            np.eye(chain.size) + chain.matrix @ chain.group_inverse,
            atol=1e-9,
        )

    def test_entropy_property(self, random_ergodic_matrix):
        chain = MarkovChain(random_ergodic_matrix)
        assert 0.0 <= chain.entropy_rate <= np.log(chain.size)

    def test_with_matrix_returns_new(self, random_ergodic_matrix):
        chain = MarkovChain(random_ergodic_matrix)
        other = chain.with_matrix(np.full((5, 5), 0.2))
        assert other is not chain
        assert other.size == 5

    def test_sample_delegates(self, random_ergodic_matrix):
        chain = MarkovChain(random_ergodic_matrix)
        path = chain.sample(10, start=0, seed=1)
        assert path.shape == (11,)
        assert path[0] == 0
