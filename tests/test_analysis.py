"""Tests for repro.analysis (pareto, mixing, convergence)."""

import numpy as np
import pytest

from repro import paper_topology, uniform_matrix
from repro.analysis.convergence import (
    detect_plateau,
    iterations_to_tolerance,
    summarize_trace,
)
from repro.analysis.mixing import (
    kemeny_constant,
    mixing_time_bound,
    relaxation_time,
)
from repro.analysis.pareto import (
    TradeoffPoint,
    pareto_filter,
    tradeoff_curve,
)
from repro.core.state import ChainState


def point(dc, e, beta=1.0):
    return TradeoffPoint(
        beta=beta, delta_c=dc, e_bar=e, mean_travel=0.0,
        matrix=np.eye(2),
    )


class TestTradeoffPoint:
    def test_dominates_strictly_better(self):
        assert point(1.0, 1.0).dominates(point(2.0, 2.0))

    def test_no_domination_on_tradeoff(self):
        a, b = point(1.0, 3.0), point(3.0, 1.0)
        assert not a.dominates(b)
        assert not b.dominates(a)

    def test_equal_points_do_not_dominate(self):
        a, b = point(1.0, 1.0), point(1.0, 1.0)
        assert not a.dominates(b)


class TestParetoFilter:
    def test_removes_dominated(self):
        points = [point(1.0, 3.0), point(3.0, 1.0), point(4.0, 4.0)]
        efficient = pareto_filter(points)
        assert len(efficient) == 2
        assert all(p.delta_c < 4.0 for p in efficient)

    def test_sorted_by_delta_c(self):
        points = [point(3.0, 1.0), point(1.0, 3.0)]
        efficient = pareto_filter(points)
        assert efficient[0].delta_c == 1.0

    def test_all_efficient_when_tradeoff(self):
        points = [point(1.0, 4.0), point(2.0, 3.0), point(3.0, 2.0)]
        assert len(pareto_filter(points)) == 3


class TestTradeoffCurve:
    def test_sweep_shape(self):
        topology = paper_topology(1)
        points = tradeoff_curve(
            topology, betas=[1.0, 1e-4], iterations=60, seed=0
        )
        assert len(points) == 2
        # Smaller beta gives (weakly) smaller dC and larger E-bar.
        assert points[1].delta_c < points[0].delta_c
        assert points[1].e_bar > points[0].e_bar
        assert points[1].mean_travel < points[0].mean_travel

    def test_rejects_negative_beta(self):
        with pytest.raises(ValueError, match="non-negative"):
            tradeoff_curve(
                paper_topology(1), betas=[-1.0], iterations=10
            )


class TestMixing:
    def test_uniform_chain_relaxes_instantly(self):
        assert relaxation_time(uniform_matrix(4)) == pytest.approx(1.0)

    def test_lazy_chain_relaxes_slowly(self):
        lazy = 0.999 * np.eye(3) + 0.001 * uniform_matrix(3)
        assert relaxation_time(lazy) > 100.0

    def test_periodic_chain_never_relaxes(self):
        flip = np.array([[0.0, 1.0], [1.0, 0.0]])
        assert relaxation_time(flip) == np.inf
        assert mixing_time_bound(flip) == np.inf

    def test_mixing_bound_scales_with_accuracy(self):
        matrix = np.array([[0.9, 0.1], [0.2, 0.8]])
        loose = mixing_time_bound(matrix, accuracy=0.25)
        tight = mixing_time_bound(matrix, accuracy=0.01)
        assert tight > loose

    def test_mixing_bound_validates_accuracy(self):
        with pytest.raises(ValueError, match="accuracy"):
            mixing_time_bound(uniform_matrix(3), accuracy=1.5)

    def test_kemeny_is_trace_identity(self, rng):
        matrix = rng.dirichlet(np.ones(5), size=5)
        k = kemeny_constant(matrix)
        # K = sum_{j != i} pi_j R_ij, the same for every start i.
        state = ChainState.from_matrix(matrix)
        r = state.r
        for i in range(5):
            total = sum(
                state.pi[j] * r[i, j] for j in range(5) if j != i
            )
            assert total == pytest.approx(k, rel=1e-8)

    def test_kemeny_uniform_chain(self):
        # For the uniform chain, Z = I so K = trace(I) - 1 = M - 1.
        assert kemeny_constant(uniform_matrix(4)) == pytest.approx(3.0)


class TestConvergence:
    def test_iterations_to_tolerance(self):
        trace = np.array([10.0, 6.0, 3.0, 1.0, 0.5, 0.0])
        assert iterations_to_tolerance(trace, 0.5) == 2
        # remaining fractions are [1, .6, .3, .1, .05, 0]: 0.1 first
        # reached at index 3 (boundary counts).
        assert iterations_to_tolerance(trace, 0.1) == 3

    def test_flat_trace_returns_none(self):
        assert iterations_to_tolerance(np.ones(10), 0.5) is None

    def test_tolerance_validated(self):
        with pytest.raises(ValueError, match="fraction"):
            iterations_to_tolerance(np.arange(5.0)[::-1], 2.0)

    def test_detect_plateau(self):
        trace = np.concatenate(
            [np.linspace(10, 1, 50), np.full(100, 1.0)]
        )
        plateau = detect_plateau(trace, window=20, rtol=1e-9)
        assert plateau is not None
        assert 30 <= plateau <= 60

    def test_no_plateau_in_steady_descent(self):
        trace = np.linspace(10, 0, 100)
        assert detect_plateau(trace, window=10, rtol=1e-9) is None

    def test_plateau_window_validated(self):
        with pytest.raises(ValueError, match="window"):
            detect_plateau(np.ones(5), window=0)

    def test_summary_fields(self):
        trace = np.array([8.0, 4.0, 2.0, 1.0, 1.0, 1.0])
        summary = summarize_trace(trace, plateau_window=2, rtol=1e-9) \
            if False else summarize_trace(trace, plateau_window=2)
        assert summary.initial == 8.0
        assert summary.best == 1.0
        assert summary.total_improvement == 7.0
        assert summary.iterations == 6
        assert summary.iterations_to_half == 1

    def test_summary_rejects_empty(self):
        with pytest.raises(ValueError, match="non-empty"):
            summarize_trace(np.array([]))


class TestWeightSensitivity:
    def test_envelope_matches_finite_difference(self):
        from repro import (CostWeights, CoverageCost, PerturbedOptions,
                           optimize_perturbed, paper_topology)
        from repro.analysis.sensitivity import verify_envelope

        topology = paper_topology(1)
        cost = CoverageCost(topology, CostWeights(alpha=1.0, beta=0.5))
        result = optimize_perturbed(
            cost, seed=0,
            options=PerturbedOptions(max_iterations=60,
                                     trisection_rounds=15),
        )
        report = verify_envelope(
            topology, 1.0, 0.5, result.best_matrix
        )
        assert report["numeric_alpha"] == pytest.approx(
            report["analytic_alpha"], rel=1e-6
        )
        assert report["numeric_beta"] == pytest.approx(
            report["analytic_beta"], rel=1e-6
        )

    def test_values_are_half_metrics(self):
        from repro import CostWeights, CoverageCost, paper_topology, \
            uniform_matrix
        from repro.analysis.sensitivity import weight_sensitivity

        cost = CoverageCost(paper_topology(1), CostWeights())
        matrix = uniform_matrix(4)
        s = weight_sensitivity(cost, matrix)
        assert s.d_alpha == pytest.approx(0.5 * cost.delta_c(matrix))
        assert s.d_beta == pytest.approx(0.5 * cost.e_bar(matrix) ** 2)
        assert s.exchange_rate == pytest.approx(s.d_alpha / s.d_beta)

    def test_rejects_per_poi_weights(self):
        from repro import CostWeights, CoverageCost, paper_topology, \
            uniform_matrix
        from repro.analysis.sensitivity import weight_sensitivity

        cost = CoverageCost(
            paper_topology(1),
            CostWeights(alpha=[1.0, 1.0, 1.0, 1.0]),
        )
        with pytest.raises(ValueError, match="scalar"):
            weight_sensitivity(cost, uniform_matrix(4))

    def test_zero_exposure_weight_exchange_rate(self):
        from repro.analysis.sensitivity import WeightSensitivity

        s = WeightSensitivity(d_alpha=1.0, d_beta=0.0)
        assert s.exchange_rate == float("inf")
