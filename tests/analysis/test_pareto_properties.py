"""Property-based tests (hypothesis) for the generic Pareto-front
arithmetic in :mod:`repro.analysis.pareto` — the invariants the sweep
aggregator leans on."""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.pareto import (
    dominates_point,
    merge_pareto_fronts,
    pareto_front_indices,
    pareto_front_mask,
)

SETTINGS = settings(
    max_examples=50,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

points_strategy = st.integers(0, 10_000).flatmap(
    lambda seed: st.tuples(
        st.just(seed), st.integers(1, 40), st.integers(1, 4)
    )
)
tol_strategy = st.sampled_from([0.0, 1e-9, 1e-3, 0.1])


def _points(seed, count, dims):
    rng = np.random.default_rng(seed)
    # half-integer grid coordinates make exact ties common, which is
    # where dominance logic usually goes wrong
    return rng.integers(0, 6, size=(count, dims)) / 2.0


@SETTINGS
@given(spec=points_strategy, tol=tol_strategy)
def test_front_is_mutually_non_dominating(spec, tol):
    points = _points(*spec)
    front = points[pareto_front_mask(points, tol)]
    for i in range(len(front)):
        for j in range(len(front)):
            if i != j:
                assert not dominates_point(front[i], front[j], tol)


@SETTINGS
@given(spec=points_strategy, tol=tol_strategy)
def test_dominance_is_antisymmetric(spec, tol):
    points = _points(*spec)
    for a in points:
        for b in points:
            assert not (
                dominates_point(a, b, tol) and dominates_point(b, a, tol)
            )


@SETTINGS
@given(spec=points_strategy, tol=tol_strategy)
def test_every_dropped_point_is_dominated(spec, tol):
    points = _points(*spec)
    mask = pareto_front_mask(points, tol)
    for i in np.nonzero(~mask)[0]:
        assert any(
            dominates_point(points[j], points[i], tol)
            for j in range(len(points))
        )


@SETTINGS
@given(spec=points_strategy, shards=st.integers(1, 5))
def test_merged_shard_fronts_equal_front_of_union(spec, shards):
    """The associativity the sweep aggregator relies on (tol = 0):
    filtering per shard first and merging loses nothing."""
    points = _points(*spec)
    union_front = points[pareto_front_indices(points)]
    chunks = np.array_split(points, shards)
    shard_fronts = [
        chunk[pareto_front_mask(chunk)] for chunk in chunks if len(chunk)
    ]
    merged = merge_pareto_fronts(shard_fronts)
    assert merged.shape == union_front.shape
    assert np.array_equal(merged, union_front)


@SETTINGS
@given(spec=points_strategy)
def test_front_indices_deterministic_and_sorted(spec):
    points = _points(*spec)
    first = pareto_front_indices(points)
    second = pareto_front_indices(points)
    assert np.array_equal(first, second)
    coords = points[first]
    keys = [tuple(row) + (int(index),)
            for row, index in zip(coords, first)]
    assert keys == sorted(keys)


def test_merge_of_nothing_is_empty():
    assert merge_pareto_fronts([]).shape == (0, 2)
    assert merge_pareto_fronts([np.zeros((0, 3))]).shape == (0, 2)


def test_single_point_survives():
    points = np.array([[1.0, 2.0]])
    assert pareto_front_mask(points).tolist() == [True]
