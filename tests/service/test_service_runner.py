"""The coverage service: fan-in exactly-once, cache bit-identity,
kill-and-resume checkpointing, spool serving, failure accounting."""

import asyncio
import json

import pytest

import repro
from repro.core.api import OPTIMIZER_REGISTRY
from repro.core.options import coerce_options
from repro.core.perturbed import PerturbedWalk, advance_walk
from repro.persist import verify_service_record
from repro.service import (
    CoverageService,
    JobCheckpoint,
    execute_request,
    optimize_request,
    request_digest,
    request_to_dict,
    serve_spool,
    simulation_request,
)
from repro.service.requests import build_cost
from repro.utils.rng import as_generator

OPTIONS = {"max_iterations": 12, "trisection_rounds": 6}


@pytest.fixture(scope="module")
def topology():
    return repro.paper_topology(1)


@pytest.fixture()
def service(tmp_path):
    return CoverageService(tmp_path / "store")


class TestCachePath:
    def test_cache_hit_is_bit_identical_to_recompute(
        self, topology, service
    ):
        request = optimize_request(topology, seed=5, options=OPTIONS)
        computed = service.run(request)
        cached = service.run(request)
        assert cached == computed
        assert cached == execute_request(request)
        assert service.stats.computed == 1
        assert service.stats.cache_hits == 1

    def test_distinct_requests_do_not_collide(self, topology, service):
        a = service.run(optimize_request(topology, seed=0,
                                         options=OPTIONS))
        b = service.run(optimize_request(topology, seed=1,
                                         options=OPTIONS))
        assert a != b
        assert service.stats.computed == 2

    def test_store_record_verifies(self, topology, service):
        request = optimize_request(topology, seed=5, options=OPTIONS)
        payload = service.run(request)
        digest = request_digest(request)
        record = json.loads(
            service.store.path_for(digest).read_text()
        )
        assert verify_service_record(record, digest) == payload
        assert record["kind"] == "optimize"


class TestFanIn:
    def test_concurrent_duplicates_compute_once(
        self, topology, service
    ):
        request = optimize_request(topology, seed=8, options=OPTIONS)
        payloads = service.run([request, request, request, request])
        assert all(p == payloads[0] for p in payloads)
        assert service.stats.submitted == 4
        assert service.stats.computed == 1
        assert service.stats.fan_in_joins == 3
        assert service.stats.cache_hits == 0

    def test_mixed_batch_accounting(self, topology, service):
        a = optimize_request(topology, seed=0, options=OPTIONS)
        b = optimize_request(topology, seed=1, options=OPTIONS)
        service.run([a, a, b])
        assert service.stats.computed == 2
        assert service.stats.fan_in_joins == 1

    def test_joiner_after_completion_hits_cache(
        self, topology, service
    ):
        request = optimize_request(topology, seed=8, options=OPTIONS)
        service.run(request)
        service.run(request)
        assert service.stats.fan_in_joins == 0
        assert service.stats.cache_hits == 1

    def test_failure_reaches_every_waiter_then_resets(
        self, topology, service
    ):
        request = optimize_request(topology, seed=8, options=OPTIONS)

        class Boom(RuntimeError):
            pass

        class FailingExecutor:
            def run_one(self, fn, item):
                raise Boom("compute pool down")

        good_executor = service.executor
        service.executor = FailingExecutor()

        async def both():
            results = await asyncio.gather(
                service.submit(request), service.submit(request),
                return_exceptions=True,
            )
            return results

        results = asyncio.run(both())
        assert all(isinstance(r, Boom) for r in results)
        assert service.stats.failures == 1
        assert service.stats.fan_in_joins == 1
        # the digest is retired: a later submission computes fresh
        service.executor = good_executor
        payload = service.run(request)
        assert payload == execute_request(request)
        assert service.stats.computed == 1


class TestCheckpointResume:
    def test_killed_run_resumes_bit_identically(
        self, topology, service
    ):
        """Drive a walk partway with checkpoints (the 'killed runner'),
        then submit through the service: it must resume from the
        snapshot and deliver the uninterrupted run's exact payload."""
        request = optimize_request(
            topology, seed=11,
            options={"max_iterations": 25, "trisection_rounds": 8},
        )
        reference = execute_request(request)

        checkpoint = service.checkpoint_for(request)
        cost = build_cost(request)
        options = coerce_options(
            OPTIMIZER_REGISTRY["perturbed"].options_class,
            request.params["options"], method="perturbed",
        )
        walk = PerturbedWalk(cost, None, as_generator(11), options)
        accepted = 0
        while advance_walk(cost, walk, options):
            if walk.accepted_steps > accepted:
                accepted = walk.accepted_steps
                checkpoint.save(walk.snapshot())
                if accepted >= 2:
                    break  # the "kill"
        assert checkpoint.exists()
        assert not walk.finished

        payload = service.run(request)
        assert payload == reference
        assert not checkpoint.exists(), "checkpoint must clear on finish"

    def test_checkpoint_files_are_atomic_and_recoverable(self, tmp_path):
        checkpoint = JobCheckpoint(tmp_path / "job.json")
        assert checkpoint.load() is None
        checkpoint.save({"iteration": 3})
        assert checkpoint.load() == {"iteration": 3}
        checkpoint.save({"iteration": 4})
        assert checkpoint.load() == {"iteration": 4}
        # a torn file degrades to a fresh start, never an error
        checkpoint.path.write_text('{"iteration": 5')
        assert checkpoint.load() is None
        checkpoint.clear()
        assert not checkpoint.exists()

    def test_checkpointing_can_be_disabled(self, topology, tmp_path):
        service = CoverageService(tmp_path / "store", checkpoint=False)
        request = optimize_request(topology, seed=5, options=OPTIONS)
        payload = service.run(request)
        assert payload == execute_request(request)


class TestExecutorBackends:
    @pytest.mark.parametrize("backend", ["serial", "thread"])
    def test_payloads_identical_across_backends(
        self, topology, tmp_path, backend
    ):
        service = CoverageService(
            tmp_path / backend, executor=backend, jobs=2
        )
        request = optimize_request(topology, seed=5, options=OPTIONS)
        assert service.run(request) == execute_request(request)


class TestSpool:
    def test_serve_spool_answers_requests(
        self, topology, service, tmp_path
    ):
        spool = tmp_path / "spool"
        spool.mkdir()
        matrix = repro.metropolis_hastings_matrix(
            topology.target_shares
        )
        requests = {
            "opt": optimize_request(topology, seed=5, options=OPTIONS),
            "sim": simulation_request(topology, matrix,
                                      transitions=150, seed=2),
        }
        for name, request in requests.items():
            (spool / f"{name}.json").write_text(
                json.dumps(request_to_dict(request))
            )
        written = serve_spool(service, spool)
        assert sorted(p.name for p in written) == [
            "opt.result.json", "sim.result.json",
        ]
        for name, request in requests.items():
            record = json.loads(
                (spool / f"{name}.result.json").read_text()
            )
            payload = verify_service_record(
                record, request_digest(request)
            )
            assert payload == execute_request(request)

    def test_serve_spool_is_idempotent(self, topology, service,
                                       tmp_path):
        spool = tmp_path / "spool"
        spool.mkdir()
        request = optimize_request(topology, seed=5, options=OPTIONS)
        (spool / "job.json").write_text(
            json.dumps(request_to_dict(request))
        )
        first = serve_spool(service, spool)
        second = serve_spool(service, spool)
        assert len(first) == 1
        assert second == []
        assert service.stats.computed == 1

    def test_empty_spool_is_a_no_op(self, service, tmp_path):
        spool = tmp_path / "spool"
        spool.mkdir()
        assert serve_spool(service, spool) == []
