"""Content-addressed store: integrity, atomicity, LRU, pin protection."""

import json
import os

import pytest

import repro
from repro.persist import json_digest, pack_service_record
from repro.service import (
    CoverageService,
    ResultStore,
    optimize_request,
    request_digest,
    request_from_cell,
)


def _digest_of(payload):
    """A syntactically valid store key for a synthetic payload."""
    return json_digest(payload)


@pytest.fixture()
def store(tmp_path):
    return ResultStore(tmp_path / "store")


class TestRoundTrip:
    def test_put_get(self, store):
        payload = {"result": {"u": 1.5}, "matrix": [[1.0]]}
        digest = _digest_of(payload)
        store.put(digest, "optimize", payload)
        assert digest in store
        assert store.get(digest) == payload

    def test_miss_returns_none(self, store):
        assert store.get("0" * 64) is None
        assert "0" * 64 not in store

    def test_put_is_idempotent(self, store):
        payload = {"result": {"u": 2.0}}
        digest = _digest_of(payload)
        first = store.put(digest, "optimize", payload)
        second = store.put(digest, "optimize", payload)
        assert first == second
        assert store.get(digest) == payload

    def test_sharded_layout(self, store):
        payload = {"result": {}}
        digest = _digest_of(payload)
        path = store.put(digest, "optimize", payload)
        assert path.parent.name == digest[:2]
        assert path.name == f"{digest}.json"

    def test_digests_enumerates(self, store):
        digests = set()
        for value in range(3):
            payload = {"result": {"u": float(value)}}
            digest = _digest_of(payload)
            store.put(digest, "optimize", payload)
            digests.add(digest)
        assert set(store.digests()) == digests

    def test_delete(self, store):
        payload = {"result": {}}
        digest = _digest_of(payload)
        store.put(digest, "optimize", payload)
        assert store.delete(digest)
        assert not store.delete(digest)
        assert store.get(digest) is None


class TestIntegrity:
    def test_corrupted_payload_is_a_miss_and_removed(self, store):
        payload = {"result": {"u": 3.0}}
        digest = _digest_of(payload)
        path = store.put(digest, "optimize", payload)
        record = json.loads(path.read_text())
        record["payload"]["result"]["u"] = 999.0  # flip a value
        path.write_text(json.dumps(record))
        assert store.get(digest) is None
        assert not path.exists(), "corrupt entry must be removed"

    def test_truncated_file_is_a_miss_and_removed(self, store):
        payload = {"result": {"u": 4.0}}
        digest = _digest_of(payload)
        path = store.put(digest, "optimize", payload)
        text = path.read_text()
        path.write_text(text[: len(text) // 2])
        assert store.get(digest) is None
        assert not path.exists()

    def test_misfiled_record_is_a_miss(self, store):
        """A record stored under a digest it wasn't packed for."""
        payload = {"result": {"u": 5.0}}
        right = _digest_of(payload)
        wrong = "f" * 64
        record = pack_service_record(right, "optimize", payload)
        path = store.path_for(wrong)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(record))
        assert store.get(wrong) is None
        assert store.get(right) is None  # never stored there

    def test_wrong_schema_is_a_miss(self, store):
        digest = "a" * 64
        path = store.path_for(digest)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps({"schema": "repro/matrix/v1"}))
        assert store.get(digest) is None

    def test_corrupt_entry_triggers_recompute(self, tmp_path):
        """End to end: a corrupted cache entry is recomputed, and the
        recomputed payload is bit-identical to the original."""
        topology = repro.paper_topology(1)
        request = optimize_request(
            topology, seed=2,
            options={"max_iterations": 8, "trisection_rounds": 6},
        )
        service = CoverageService(tmp_path / "store")
        original = service.run(request)
        digest = request_digest(request)
        path = service.store.path_for(digest)
        path.write_text(path.read_text()[:40])  # truncate
        recomputed = service.run(request)
        assert recomputed == original
        assert service.stats.computed == 2
        assert service.stats.cache_hits == 0
        # and the healed entry verifies again
        assert service.store.get(digest) == original


class TestEviction:
    def _fill(self, store, count, size=2000):
        digests = []
        for value in range(count):
            payload = {"result": {"v": value, "pad": "x" * size}}
            digest = _digest_of(payload)
            store.put(digest, "optimize", payload)
            digests.append(digest)
        return digests

    def test_unbounded_store_never_evicts(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        digests = self._fill(store, 10)
        assert all(d in store for d in digests)

    def test_lru_evicts_oldest_first(self, tmp_path):
        store = ResultStore(tmp_path / "store", max_bytes=9000)
        digests = self._fill(store, 4)
        # ~2kB each with a 9kB bound: the earliest entries are gone,
        # the most recent survive.
        assert digests[-1] in store
        assert store.total_bytes() <= 9000
        assert digests[0] not in store

    def test_hit_refreshes_lru_position(self, tmp_path):
        store = ResultStore(tmp_path / "store", max_bytes=7000)
        digests = self._fill(store, 3)
        # Touch the oldest so it becomes the newest...
        now = os.stat(store.path_for(digests[-1])).st_mtime
        os.utime(store.path_for(digests[0]), (now + 1, now + 1))
        # ...then overflow: the untouched middle entry goes first.
        extra = self._fill(store, 1, size=2500)
        assert digests[0] in store
        assert digests[1] not in store
        assert extra[0] in store

    def test_pinned_entry_never_evicted(self, tmp_path):
        store = ResultStore(tmp_path / "store", max_bytes=5000)
        payload = {"result": {"keep": True, "pad": "x" * 2000}}
        keep = _digest_of(payload)
        store.put(keep, "optimize", payload)
        with store.pinned(keep):
            self._fill(store, 5)
            assert keep in store, "pinned entry evicted under pressure"
            assert store.get(keep) == payload
        # after release it competes like any other entry
        assert store.pin_count(keep) == 0

    def test_pin_counts_nest(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        store.pin("a" * 64)
        store.pin("a" * 64)
        assert store.pin_count("a" * 64) == 2
        store.unpin("a" * 64)
        assert store.pin_count("a" * 64) == 1
        store.unpin("a" * 64)
        assert store.pin_count("a" * 64) == 0

    def test_bad_max_bytes_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="max_bytes"):
            ResultStore(tmp_path / "store", max_bytes=0)


class TestSweepImport:
    @pytest.fixture(scope="class")
    def sweep_dir(self, tmp_path_factory):
        from repro.sweep import SweepGrid, run_sweep

        out = tmp_path_factory.mktemp("sweep") / "out"
        grid = SweepGrid(
            topologies=({"family": "paper", "sizes": [1]},),
            weights=({"alpha": 1.0, "beta": 1.0},),
            methods=("perturbed",), seeds=(0, 1), iterations=6,
            include_matrix=True,
        )
        run_sweep(grid, out)
        return grid, out

    def test_import_warms_cache_under_live_digests(
        self, sweep_dir, tmp_path
    ):
        grid, out = sweep_dir
        service = CoverageService(tmp_path / "store")
        imported, skipped = service.import_sweep(out)
        assert (imported, skipped) == (2, 0)
        assert service.stats.imported == 2
        # every cell's live submission is now a cache hit
        for cell in grid.expand():
            service.run(request_from_cell(cell))
        assert service.stats.computed == 0
        assert service.stats.cache_hits == len(grid.expand())

    def test_records_without_matrix_are_skipped(
        self, tmp_path
    ):
        from repro.sweep import SweepGrid, run_sweep

        out = tmp_path / "bare"
        grid = SweepGrid(
            topologies=({"family": "paper", "sizes": [1]},),
            weights=({"alpha": 1.0, "beta": 1.0},),
            methods=("adaptive",), seeds=(0,), iterations=4,
            include_matrix=False,
        )
        run_sweep(grid, out)
        store = ResultStore(tmp_path / "store")
        imported, skipped = store.import_sweep(out)
        assert (imported, skipped) == (0, 1)
