"""Canonical request identity: digests, round trips, sweep consistency."""

import numpy as np
import pytest

import repro
from repro.service import (
    execute_request,
    optimize_request,
    request_digest,
    request_from_cell,
    request_from_dict,
    request_identity,
    request_to_dict,
    simulation_request,
    team_request,
)
from repro.service.requests import JobRequest


@pytest.fixture(scope="module")
def topology():
    return repro.paper_topology(1)


@pytest.fixture(scope="module")
def matrix(topology):
    return repro.metropolis_hastings_matrix(topology.target_shares)


class TestCanonicalization:
    def test_dict_and_dataclass_options_share_digest(self, topology):
        from_dict = optimize_request(
            topology, method="perturbed", seed=3,
            options={"max_iterations": 15, "trisection_rounds": 6},
        )
        from_dataclass = optimize_request(
            topology, method="perturbed", seed=3,
            options=repro.PerturbedOptions(
                max_iterations=15, trisection_rounds=6
            ),
        )
        assert request_digest(from_dict) == request_digest(from_dataclass)

    def test_default_options_share_digest_with_explicit_defaults(
        self, topology
    ):
        implicit = optimize_request(topology, method="adaptive")
        explicit = optimize_request(
            topology, method="adaptive", options=repro.AdaptiveOptions()
        )
        assert request_digest(implicit) == request_digest(explicit)

    def test_different_seed_different_digest(self, topology):
        a = optimize_request(topology, seed=0)
        b = optimize_request(topology, seed=1)
        assert request_digest(a) != request_digest(b)

    def test_terms_enter_identity(self, topology):
        plain = optimize_request(topology)
        composed = optimize_request(
            topology, terms={"minimax": 0.5}
        )
        assert request_digest(plain) != request_digest(composed)
        # empty terms are omitted, matching the no-terms spelling
        empty = optimize_request(topology, terms=())
        assert request_digest(plain) == request_digest(empty)

    def test_matrix_enters_identity_by_digest(self, topology, matrix):
        a = simulation_request(topology, matrix, transitions=100)
        other = repro.uniform_policy_matrix(topology.size)
        b = simulation_request(topology, other, transitions=100)
        assert request_digest(a) != request_digest(b)
        identity = request_identity(a)
        # identity carries digests, not floats
        assert all(
            isinstance(d, str) and len(d) == 64
            for d in identity["matrices"]
        )

    def test_starts_only_identifies_multistart(self, topology):
        a = optimize_request(topology, method="perturbed", starts=1)
        b = optimize_request(topology, method="perturbed", starts=5)
        assert request_digest(a) == request_digest(b)
        c = optimize_request(topology, method="multistart", starts=2)
        d = optimize_request(topology, method="multistart", starts=3)
        assert request_digest(c) != request_digest(d)


class TestRoundTrip:
    def test_optimize_round_trip(self, topology):
        request = optimize_request(
            topology, alpha=1.0, beta=0.5, method="perturbed", seed=7,
            options={"max_iterations": 12}, terms={"kcoverage": 0.2},
        )
        rebuilt = request_from_dict(request_to_dict(request))
        assert request_digest(rebuilt) == request_digest(request)

    def test_simulate_round_trip(self, topology, matrix):
        request = simulation_request(
            topology, matrix, transitions=250, seed=2,
            options={"engine": "loop", "warmup": 5},
        )
        rebuilt = request_from_dict(request_to_dict(request))
        assert request_digest(rebuilt) == request_digest(request)
        assert np.array_equal(rebuilt.matrices[0], matrix)

    def test_team_round_trip(self, topology, matrix):
        request = team_request(
            topology, [matrix, matrix], horizon=400.0, seed=5,
            options={"starts": (0, 2)},
        )
        rebuilt = request_from_dict(request_to_dict(request))
        assert request_digest(rebuilt) == request_digest(request)
        assert len(rebuilt.matrices) == 2


class TestValidation:
    def test_unknown_kind_rejected(self, topology):
        with pytest.raises(ValueError, match="kind"):
            JobRequest(kind="transmogrify", topology=topology, params={})

    def test_unknown_method_rejected(self, topology):
        with pytest.raises(ValueError, match="available methods"):
            optimize_request(topology, method="gradient-ascent")

    def test_unknown_option_key_named(self, topology):
        with pytest.raises(ValueError, match="bogus"):
            optimize_request(topology, options={"bogus": 1})

    def test_bad_schema_rejected(self, topology):
        data = request_to_dict(optimize_request(topology))
        data["schema"] = "repro/other/v1"
        with pytest.raises(ValueError, match="schema"):
            request_from_dict(data)

    def test_unknown_params_rejected(self, topology):
        data = request_to_dict(optimize_request(topology))
        data["params"]["surprise"] = 1
        with pytest.raises(ValueError, match="surprise"):
            request_from_dict(data)

    def test_team_needs_matrices(self, topology):
        with pytest.raises(ValueError, match="matrix"):
            team_request(topology, [], horizon=100.0)


class TestSweepConsistency:
    def test_cell_request_executes_like_run_cell(self, topology):
        """A cell-derived request's payload equals the sweep record."""
        from repro.sweep.grid import SweepCell, run_cell

        cell = SweepCell(
            family="paper", size=1, phi="paper", phi_alpha=0.0,
            phi_seed=0, alpha=1.0, beta=1.0, epsilon=1e-4,
            method="perturbed", seed=3, iterations=8, starts=1,
            trisection_rounds=20, linalg="auto",
        )
        record, matrix = run_cell(cell)
        payload = execute_request(request_from_cell(cell))
        assert payload["result"] == record["result"]
        assert payload["matrix"] == matrix.tolist()


class TestExecutePayloads:
    def test_simulate_payload_matches_facade(self, topology, matrix):
        request = simulation_request(topology, matrix, transitions=200,
                                     seed=4)
        payload = execute_request(request)
        direct = repro.simulate(topology, matrix, transitions=200,
                                seed=4)
        result = payload["result"]
        assert result["coverage_shares"] == \
            direct.coverage_shares.tolist()
        assert result["delta_c"] == direct.delta_c
        assert result["e_bar_transitions"] == direct.e_bar_transitions

    def test_team_payload_matches_facade(self, topology, matrix):
        request = team_request(topology, [matrix, matrix],
                               horizon=300.0, seed=4)
        payload = execute_request(request)
        direct = repro.simulate(topology, matrix, kind="team",
                                sensors=2, horizon=300.0, seed=4)
        result = payload["result"]
        assert result["coverage_shares"] == \
            direct.coverage_shares.tolist()
        assert result["sensors"] == 2
