"""Sweep driver: dedup, sharding, kill-and-resume bit-identity,
standalone-cell bit-identity, and process-backend shm reuse."""

import json

import numpy as np
import pytest

from repro.core.api import optimize
from repro.core.cost import CostWeights, CoverageCost
from repro.sweep import (
    SweepGrid,
    build_topology,
    cell_digest,
    dedup_cells,
    iter_sweep_records,
    merge_shards,
    plan_shards,
    run_cell,
    run_sweep,
    topology_key,
)

ITERATIONS = 4


def _grid(**overrides):
    base = dict(
        topologies=({"family": "paper", "sizes": [1, 2]},),
        weights=({"alpha": 1.0, "beta": 0.01},
                 {"alpha": 1.0, "beta": 0.5}),
        methods=("adaptive",),
        seeds=(0, 1),
        iterations=ITERATIONS,
    )
    base.update(overrides)
    return SweepGrid(**base)


def _merged_bytes(out_dir, target):
    merge_shards(out_dir, target)
    return target.read_bytes()


class TestDedupAndPlanning:
    def test_dedup_collapses_identical_cells(self):
        grid = _grid(topologies=(
            {"family": "paper", "sizes": [1]},
            {"family": "paper", "sizes": [1]},
        ))
        unique, dropped = dedup_cells(grid.expand())
        assert dropped == len(unique)
        assert len({d for d, _ in unique}) == len(unique)

    def test_plan_keeps_topology_groups_intact(self):
        unique, _ = dedup_cells(_grid().expand())
        queues = plan_shards(unique, 2)
        for queue in queues:
            keys = [topology_key(c) for _, c in queue]
            # consecutive runs of equal keys: each key appears in one
            # contiguous block on one queue
            seen = set()
            previous = None
            for key in keys:
                if key != previous:
                    assert key not in seen
                    seen.add(key)
                previous = key
        assert sum(len(q) for q in queues) == len(unique)

    def test_plan_is_deterministic_and_balanced(self):
        unique, _ = dedup_cells(_grid().expand())
        first = plan_shards(unique, 2)
        second = plan_shards(unique, 2)
        assert first == second
        sizes = sorted(len(q) for q in first)
        assert sizes == [4, 4]

    def test_more_shards_than_groups_leaves_empties(self):
        unique, _ = dedup_cells(_grid().expand())
        queues = plan_shards(unique, 8)
        assert sum(len(q) for q in queues) == len(unique)
        assert sum(1 for q in queues if q) == 2  # one per topology


class TestSerialSweep:
    def test_full_sweep_writes_every_cell(self, tmp_path):
        report = run_sweep(_grid(), tmp_path / "out", shards=2)
        assert report.ran_cells == report.unique_cells == 8
        assert not report.interrupted
        digests = [r["digest"] for r in
                   iter_sweep_records(tmp_path / "out")]
        assert sorted(digests) == sorted(
            d for d, _ in dedup_cells(_grid().expand())[0]
        )

    def test_fresh_dir_without_resume_flag_is_fine(self, tmp_path):
        report = run_sweep(_grid(), tmp_path / "new", shards=1)
        assert report.records == 8

    def test_existing_dir_requires_resume(self, tmp_path):
        run_sweep(_grid(), tmp_path / "out")
        with pytest.raises(ValueError, match="resume=True"):
            run_sweep(_grid(), tmp_path / "out")

    def test_resume_of_complete_sweep_is_noop(self, tmp_path):
        run_sweep(_grid(), tmp_path / "out")
        before = _merged_bytes(tmp_path / "out", tmp_path / "m1.jsonl")
        report = run_sweep(_grid(), tmp_path / "out", resume=True)
        assert report.ran_cells == 0
        assert report.skipped_cells == 8
        after = _merged_bytes(tmp_path / "out", tmp_path / "m2.jsonl")
        assert before == after

    def test_kill_and_resume_matches_uninterrupted_bit_for_bit(
        self, tmp_path
    ):
        grid = _grid()
        run_sweep(grid, tmp_path / "full", shards=2)
        partial = run_sweep(
            grid, tmp_path / "killed", shards=2, max_cells=3
        )
        assert partial.interrupted and partial.ran_cells == 3
        resumed = run_sweep(
            grid, tmp_path / "killed", shards=2, resume=True
        )
        assert resumed.skipped_cells == 3
        assert resumed.ran_cells == 5
        assert not resumed.interrupted
        assert (
            _merged_bytes(tmp_path / "full", tmp_path / "a.jsonl")
            == _merged_bytes(tmp_path / "killed", tmp_path / "b.jsonl")
        )

    def test_resume_tolerates_partial_trailing_write(self, tmp_path):
        grid = _grid()
        run_sweep(grid, tmp_path / "full")
        run_sweep(grid, tmp_path / "killed", max_cells=3)
        shard = tmp_path / "killed" / "shard-000.jsonl"
        with open(shard, "ab") as handle:
            handle.write(b'{"digest": "torn-mid-record')
        run_sweep(grid, tmp_path / "killed", resume=True)
        assert (
            _merged_bytes(tmp_path / "full", tmp_path / "a.jsonl")
            == _merged_bytes(tmp_path / "killed", tmp_path / "b.jsonl")
        )

    def test_no_duplicate_digests_after_resume(self, tmp_path):
        grid = _grid()
        run_sweep(grid, tmp_path / "out", shards=2, max_cells=5)
        run_sweep(grid, tmp_path / "out", shards=2, resume=True)
        digests = [r["digest"] for r in
                   iter_sweep_records(tmp_path / "out")]
        assert len(digests) == len(set(digests)) == 8

    def test_reshard_on_resume_still_bit_identical(self, tmp_path):
        grid = _grid()
        run_sweep(grid, tmp_path / "full", shards=1)
        run_sweep(grid, tmp_path / "killed", shards=1, max_cells=4)
        run_sweep(grid, tmp_path / "killed", shards=3, resume=True)
        assert (
            _merged_bytes(tmp_path / "full", tmp_path / "a.jsonl")
            == _merged_bytes(tmp_path / "killed", tmp_path / "b.jsonl")
        )

    def test_duplicate_cells_run_once(self, tmp_path):
        grid = _grid(topologies=(
            {"family": "paper", "sizes": [1]},
            {"family": "paper", "sizes": [1]},
        ))
        report = run_sweep(grid, tmp_path / "out")
        assert report.duplicate_cells == 4
        assert report.ran_cells == report.unique_cells == 4

    def test_fronts_are_mutually_non_dominating(self, tmp_path):
        report = run_sweep(_grid(), tmp_path / "out")
        for front in report.fronts.values():
            for mine in front:
                for other in front:
                    if mine is other:
                        continue
                    dominates = (
                        other["delta_c"] <= mine["delta_c"]
                        and other["e_bar"] <= mine["e_bar"]
                        and (other["delta_c"] < mine["delta_c"]
                             or other["e_bar"] < mine["e_bar"])
                    )
                    assert not dominates

    def test_include_matrix_embeds_rows(self, tmp_path):
        grid = _grid(seeds=(0,), weights=({"alpha": 1.0, "beta": 0.1},),
                     topologies=({"family": "paper", "sizes": [1]},),
                     include_matrix=True)
        run_sweep(grid, tmp_path / "out")
        record = next(iter_sweep_records(tmp_path / "out"))
        matrix = np.asarray(record["matrix"])
        assert matrix.shape == (4, 4)
        assert np.allclose(matrix.sum(axis=1), 1.0)


class TestStandaloneBitIdentity:
    def test_sweep_record_matches_direct_optimize(self, tmp_path):
        grid = _grid(seeds=(3,), methods=("perturbed",),
                     weights=({"alpha": 1.0, "beta": 0.25},),
                     topologies=({"family": "paper", "sizes": [2]},))
        run_sweep(grid, tmp_path / "out")
        record = next(iter_sweep_records(tmp_path / "out"))
        cell = grid.expand()[0]

        cost = CoverageCost(
            build_topology(cell),
            CostWeights(alpha=cell.alpha, beta=cell.beta,
                        epsilon=cell.epsilon),
            linalg=cell.linalg,
        )
        direct = optimize(
            cost, method="perturbed", seed=cell.seed,
            options={
                "max_iterations": cell.iterations,
                "trisection_rounds": cell.trisection_rounds,
                "stall_limit": cell.iterations + 1,
                "record_history": False,
            },
        )
        assert record["result"]["u_eps"] == direct.u_eps
        assert record["result"]["best_u_eps"] == direct.best_u_eps
        assert record["result"]["delta_c"] == direct.delta_c
        assert record["result"]["e_bar"] == direct.e_bar

    def test_run_cell_reuses_or_builds_topology_identically(self):
        cell = _grid().expand()[0]
        fresh_record, fresh_matrix = run_cell(cell)
        shared_record, shared_matrix = run_cell(
            cell, topology=build_topology(cell)
        )
        assert json.dumps(fresh_record) == json.dumps(shared_record)
        assert fresh_matrix.tobytes() == shared_matrix.tobytes()


class TestProcessBackendSweep:
    def test_process_shm_matches_serial_and_reuses_store(self, tmp_path):
        grid = _grid(
            topologies=({"family": "city-grid", "sizes": [64]},),
            weights=({"alpha": 1.0, "beta": 0.01},),
            seeds=(0, 1, 2),
            iterations=2,
        )
        serial = run_sweep(grid, tmp_path / "serial")
        report = run_sweep(
            grid, tmp_path / "proc", shards=2, backend="process",
            jobs=2, transport="shm",
        )
        assert (
            _merged_bytes(tmp_path / "serial", tmp_path / "a.jsonl")
            == _merged_bytes(tmp_path / "proc", tmp_path / "b.jsonl")
        )
        assert report.broadcast_requests > 0
        assert report.broadcast_hits > 0
        assert report.result_bytes > 0
        assert report.dispatch_bytes > 0
        assert serial.dispatch_bytes == 0

    def test_max_cells_validation(self, tmp_path):
        with pytest.raises(ValueError, match="max_cells"):
            run_sweep(_grid(), tmp_path / "out", max_cells=-1)

    def test_shards_validation(self, tmp_path):
        with pytest.raises(ValueError, match="shards"):
            run_sweep(_grid(), tmp_path / "out", shards=0)
