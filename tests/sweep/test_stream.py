"""Shard durability: fsynced appends, tail repair, canonical merges."""

import json

import pytest

from repro.sweep import (
    ShardWriter,
    completed_digests,
    iter_sweep_records,
    list_shards,
    merge_shards,
    read_records,
    shard_path,
)


def _record(digest, value=0.0):
    return {"schema": "repro/sweep-cell/v1", "digest": digest,
            "cell": {}, "result": {"u_eps": value}}


class TestShardWriter:
    def test_round_trip(self, tmp_path):
        path = shard_path(tmp_path, 0)
        with ShardWriter(path) as writer:
            writer.write_record(_record("a" * 64, 1.0))
            writer.write_record(_record("b" * 64, 2.0))
            assert writer.records_written == 2
        records = list(read_records(path))
        assert [r["digest"] for r in records] == ["a" * 64, "b" * 64]

    def test_append_across_reopens(self, tmp_path):
        path = shard_path(tmp_path, 0)
        with ShardWriter(path) as writer:
            writer.write_record(_record("a" * 64))
        with ShardWriter(path) as writer:
            writer.write_record(_record("b" * 64))
        assert len(list(read_records(path))) == 2

    def test_partial_tail_ignored_by_reader(self, tmp_path):
        path = shard_path(tmp_path, 0)
        with ShardWriter(path) as writer:
            writer.write_record(_record("a" * 64))
        with open(path, "ab") as handle:
            handle.write(b'{"digest": "killed-mid-wri')  # no newline
        records = list(read_records(path))
        assert [r["digest"] for r in records] == ["a" * 64]

    def test_partial_tail_truncated_on_reopen(self, tmp_path):
        path = shard_path(tmp_path, 0)
        with ShardWriter(path) as writer:
            writer.write_record(_record("a" * 64))
        with open(path, "ab") as handle:
            handle.write(b'{"digest": "killed')
        with ShardWriter(path) as writer:
            writer.write_record(_record("b" * 64))
        records = list(read_records(path))
        assert [r["digest"] for r in records] == ["a" * 64, "b" * 64]

    def test_tail_only_file_truncates_to_empty(self, tmp_path):
        path = shard_path(tmp_path, 0)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(b"{nonsense")
        with ShardWriter(path) as writer:
            writer.write_record(_record("a" * 64))
        assert [r["digest"] for r in read_records(path)] == ["a" * 64]

    def test_mid_file_corruption_raises(self, tmp_path):
        path = shard_path(tmp_path, 0)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(b"not json\n" + json.dumps(_record("a" * 64)).encode() + b"\n")
        with pytest.raises(ValueError, match="corrupt record"):
            list(read_records(path))


class TestSweepDirectory:
    def test_list_shards_sorted_and_filtered(self, tmp_path):
        for shard in (2, 0, 1):
            with ShardWriter(shard_path(tmp_path, shard)) as writer:
                writer.write_record(_record(str(shard) * 64))
        (tmp_path / "notes.txt").write_text("ignore me")
        names = [p.name for p in list_shards(tmp_path)]
        assert names == ["shard-000.jsonl", "shard-001.jsonl",
                         "shard-002.jsonl"]

    def test_missing_directory_is_empty(self, tmp_path):
        assert list_shards(tmp_path / "nope") == []
        assert completed_digests(tmp_path / "nope") == set()

    def test_completed_digests_spans_shards(self, tmp_path):
        with ShardWriter(shard_path(tmp_path, 0)) as writer:
            writer.write_record(_record("a" * 64))
        with ShardWriter(shard_path(tmp_path, 1)) as writer:
            writer.write_record(_record("b" * 64))
        assert completed_digests(tmp_path) == {"a" * 64, "b" * 64}

    def test_merge_sorted_by_digest_and_atomic(self, tmp_path):
        with ShardWriter(shard_path(tmp_path, 0)) as writer:
            writer.write_record(_record("b" * 64, 2.0))
        with ShardWriter(shard_path(tmp_path, 1)) as writer:
            writer.write_record(_record("a" * 64, 1.0))
        target = tmp_path / "merged.jsonl"
        assert merge_shards(tmp_path, target) == 2
        digests = [json.loads(line)["digest"]
                   for line in target.read_bytes().splitlines()]
        assert digests == ["a" * 64, "b" * 64]
        assert not (tmp_path / "merged.jsonl.tmp").exists()

    def test_merge_rejects_duplicate_digests(self, tmp_path):
        for shard in (0, 1):
            with ShardWriter(shard_path(tmp_path, shard)) as writer:
                writer.write_record(_record("a" * 64))
        with pytest.raises(ValueError, match="duplicate cell digest"):
            merge_shards(tmp_path, tmp_path / "merged.jsonl")

    def test_shard_layout_independent_merge(self, tmp_path):
        one = tmp_path / "one"
        two = tmp_path / "two"
        records = [_record("a" * 64, 1.0), _record("b" * 64, 2.0),
                   _record("c" * 64, 3.0)]
        with ShardWriter(shard_path(one, 0)) as writer:
            for record in records:
                writer.write_record(record)
        for shard, record in enumerate(reversed(records)):
            with ShardWriter(shard_path(two, shard)) as writer:
                writer.write_record(record)
        merge_shards(one, tmp_path / "one.jsonl")
        merge_shards(two, tmp_path / "two.jsonl")
        assert (
            (tmp_path / "one.jsonl").read_bytes()
            == (tmp_path / "two.jsonl").read_bytes()
        )

    def test_iter_sweep_records_in_shard_order(self, tmp_path):
        with ShardWriter(shard_path(tmp_path, 1)) as writer:
            writer.write_record(_record("b" * 64))
        with ShardWriter(shard_path(tmp_path, 0)) as writer:
            writer.write_record(_record("a" * 64))
        digests = [r["digest"] for r in iter_sweep_records(tmp_path)]
        assert digests == ["a" * 64, "b" * 64]
