"""Grid expansion, cell digests, validation, and run_cell round trips."""

import json

import pytest

from repro.sweep import (
    GRID_SCHEMA,
    SweepGrid,
    cell_digest,
    cell_from_dict,
    cell_to_dict,
    grid_from_dict,
    load_grid,
    save_grid,
    topology_key,
    topology_label,
)


def _grid(**overrides):
    base = dict(
        topologies=(
            {"family": "paper", "sizes": [1, 2]},
            {"family": "city-grid", "sizes": [16],
             "phi": [{"kind": "uniform"},
                     {"kind": "dirichlet", "alpha": 2.0, "seed": 7}]},
        ),
        weights=({"alpha": 1.0, "beta": 0.01},),
        methods=("adaptive",),
        seeds=(0, 1),
        iterations=4,
    )
    base.update(overrides)
    return SweepGrid(**base)


class TestExpansion:
    def test_cell_count_is_product_of_axes(self):
        cells = _grid().expand()
        # (2 paper sizes * 1 profile + 1 size * 2 profiles) * 1 weight
        # * 1 method * 2 seeds
        assert len(cells) == (2 + 2) * 1 * 1 * 2

    def test_expansion_order_is_deterministic(self):
        first = [cell_digest(c) for c in _grid().expand()]
        second = [cell_digest(c) for c in _grid().expand()]
        assert first == second

    def test_digests_unique_across_distinct_cells(self):
        digests = [cell_digest(c) for c in _grid().expand()]
        assert len(set(digests)) == len(digests)

    def test_overlapping_axes_produce_identical_digests(self):
        doubled = _grid(
            topologies=(
                {"family": "paper", "sizes": [1]},
                {"family": "paper", "sizes": [1]},
            ),
            seeds=(0,),
        ).expand()
        assert len(doubled) == 2
        assert cell_digest(doubled[0]) == cell_digest(doubled[1])

    def test_paper_profile_is_implicit(self):
        cells = _grid(
            topologies=({"family": "paper", "sizes": [3]},), seeds=(0,)
        ).expand()
        assert cells[0].phi == "paper"

    def test_scalable_defaults_to_uniform_phi(self):
        cells = _grid(
            topologies=({"family": "city-grid", "sizes": [16]},),
            seeds=(0,),
        ).expand()
        assert cells[0].phi == "uniform"

    def test_digest_changes_with_linalg(self):
        auto = _grid().expand()[0]
        dense = _grid().with_linalg("dense").expand()[0]
        assert cell_digest(auto) != cell_digest(dense)


class TestTermComposition:
    """Digests must change iff the objective composition changes."""

    def test_digest_changes_with_terms(self):
        plain = _grid().expand()[0]
        composed = _grid().with_terms(
            [("minimax", 0.5, {"tau": 4.0})]
        ).expand()[0]
        assert cell_digest(plain) != cell_digest(composed)

    def test_empty_terms_keep_historical_digests(self):
        # An empty composition must serialize exactly like the pre-terms
        # schema, so old manifests keep resuming against new code.
        cell = _grid().expand()[0]
        assert "terms" not in cell_to_dict(cell)
        grid_dict = _grid().to_dict()
        assert "terms" not in grid_dict
        legacy = cell_to_dict(cell)
        assert cell_from_dict(legacy) == cell
        assert cell_digest(cell_from_dict(legacy)) == cell_digest(cell)

    def test_equal_compositions_share_digests(self):
        a = _grid().with_terms(
            [("kcoverage", 1.0, {"team": 3, "k": 2})]
        ).expand()[0]
        b = _grid().with_terms(
            [("kcoverage", 1.0, {"k": 2, "team": 3})]
        ).expand()[0]
        assert cell_digest(a) == cell_digest(b)

    def test_cell_round_trip_with_terms(self):
        cell = _grid().with_terms({"periodicity": 0.4}).expand()[0]
        data = cell_to_dict(cell)
        assert data["terms"] == [["periodicity", 0.4, {}]]
        assert cell_from_dict(data) == cell

    def test_grid_json_round_trip_with_terms(self, tmp_path):
        grid = _grid().with_terms([("minimax", 0.5, {"tau": 2.0})])
        path = tmp_path / "grid.json"
        save_grid(grid, path)
        loaded = load_grid(path)
        assert loaded.terms == grid.terms
        assert (
            [cell_digest(c) for c in loaded.expand()]
            == [cell_digest(c) for c in grid.expand()]
        )

    def test_unknown_term_rejected_at_grid_construction(self):
        with pytest.raises(ValueError, match="unknown cost term"):
            _grid(terms=[("curvature", 1.0)])

    def test_unknown_term_rejected_at_grid_load(self):
        data = _grid().to_dict()
        data["terms"] = [["curvature", 1.0, {}]]
        with pytest.raises(ValueError, match="unknown cost term"):
            grid_from_dict(data)


class TestTopologyGrouping:
    def test_key_ignores_weights_methods_seeds(self):
        cells = _grid().expand()
        keys = {topology_key(c) for c in cells}
        # 2 paper ids + 2 city-grid profiles
        assert len(keys) == 4

    def test_labels_are_human_readable(self):
        labels = {topology_label(c) for c in _grid().expand()}
        assert "paper-1" in labels
        assert "city-grid-16/uniform" in labels
        assert any(lab.startswith("city-grid-16/dirichlet")
                   for lab in labels)


class TestValidation:
    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError, match="unknown method"):
            _grid(methods=("gradient-descent",))

    def test_unknown_family_rejected(self):
        with pytest.raises(ValueError, match="unknown family"):
            _grid(topologies=({"family": "torus", "sizes": [4]},))

    def test_paper_sizes_must_be_topology_ids(self):
        with pytest.raises(ValueError, match="topology ids"):
            _grid(topologies=({"family": "paper", "sizes": [99]},))

    def test_paper_rejects_phi_profiles(self):
        with pytest.raises(ValueError, match="fixed target shares"):
            _grid(topologies=(
                {"family": "paper", "sizes": [1],
                 "phi": [{"kind": "uniform"}]},
            ))

    def test_dirichlet_needs_alpha(self):
        with pytest.raises(ValueError, match="need alpha"):
            _grid(topologies=(
                {"family": "city-grid", "sizes": [16],
                 "phi": [{"kind": "dirichlet"}]},
            ))

    def test_unknown_weights_keys_rejected(self):
        with pytest.raises(ValueError, match="unknown weights keys"):
            _grid(weights=({"alpha": 1.0, "beta": 0.1, "gamma": 2.0},))

    def test_bad_linalg_rejected(self):
        with pytest.raises(ValueError, match="linalg"):
            _grid(linalg="gpu")

    def test_empty_axes_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            _grid(seeds=())

    def test_cell_dict_round_trip(self):
        cell = _grid().expand()[0]
        assert cell_from_dict(cell_to_dict(cell)) == cell

    def test_cell_from_dict_rejects_unknown_fields(self):
        data = cell_to_dict(_grid().expand()[0])
        data["surprise"] = 1
        with pytest.raises(ValueError, match="unknown cell fields"):
            cell_from_dict(data)


class TestGridSerialization:
    def test_json_round_trip_preserves_digests(self, tmp_path):
        grid = _grid()
        path = tmp_path / "grid.json"
        save_grid(grid, path)
        loaded = load_grid(path)
        assert (
            [cell_digest(c) for c in loaded.expand()]
            == [cell_digest(c) for c in grid.expand()]
        )

    def test_schema_tag_required(self):
        data = _grid().to_dict()
        data["schema"] = "repro/sweep-grid/v0"
        with pytest.raises(ValueError, match=GRID_SCHEMA.replace("/", ".")):
            grid_from_dict(data)

    def test_unknown_grid_keys_rejected(self):
        data = _grid().to_dict()
        data["parallelism"] = 8
        with pytest.raises(ValueError, match="unknown grid keys"):
            grid_from_dict(data)

    def test_to_dict_is_json_plain(self):
        json.dumps(_grid().to_dict())
