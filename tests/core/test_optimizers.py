"""Tests for the descent variants V1-V4 and the multi-start driver.

Budget-conscious: all runs use small iteration counts; correctness
criteria are monotonicity, invariant preservation, and relative
comparisons rather than absolute optima.
"""

import numpy as np
import pytest

from repro import (
    AdaptiveOptions,
    BasicDescentOptions,
    CostWeights,
    CoverageCost,
    PerturbedOptions,
    optimize_adaptive,
    optimize_basic,
    optimize_multistart,
    optimize_perturbed,
    paper_topology,
    uniform_matrix,
)
from repro.core.multistart import default_start_portfolio
from repro.core.perturbed import acceptance_probability
from repro.utils.linalg import is_row_stochastic


@pytest.fixture(scope="module")
def cost():
    return CoverageCost(
        paper_topology(1), CostWeights(alpha=1.0, beta=1.0)
    )


class TestBasic:
    def test_cost_decreases(self, cost):
        result = optimize_basic(
            cost,
            options=BasicDescentOptions(
                step_size=1e-6, max_iterations=50
            ),
        )
        trace = result.cost_trace()
        assert trace[-1] < trace[0]
        assert np.all(np.diff(trace) <= 1e-9)

    def test_final_matrix_stochastic(self, cost):
        result = optimize_basic(
            cost,
            options=BasicDescentOptions(
                step_size=1e-6, max_iterations=30
            ),
        )
        assert is_row_stochastic(result.matrix)

    def test_defaults_to_uniform_start(self, cost):
        result = optimize_basic(
            cost,
            options=BasicDescentOptions(
                step_size=1e-9, max_iterations=1
            ),
        )
        # One tiny step from uniform stays near uniform.
        np.testing.assert_allclose(result.matrix, 0.25, atol=1e-5)

    def test_respects_initial(self, cost):
        initial = np.array([
            [0.7, 0.1, 0.1, 0.1],
            [0.1, 0.7, 0.1, 0.1],
            [0.1, 0.1, 0.7, 0.1],
            [0.1, 0.1, 0.1, 0.7],
        ])
        result = optimize_basic(
            cost, initial=initial,
            options=BasicDescentOptions(
                step_size=1e-9, max_iterations=1
            ),
        )
        np.testing.assert_allclose(result.matrix, initial, atol=1e-5)

    def test_gradient_tol_stops(self, cost):
        result = optimize_basic(
            cost,
            options=BasicDescentOptions(
                step_size=1e-6, max_iterations=100, gradient_tol=1e9
            ),
        )
        assert result.stop_reason == "gradient_tol"
        assert result.iterations == 0

    def test_history_off(self, cost):
        result = optimize_basic(
            cost,
            options=BasicDescentOptions(
                step_size=1e-6, max_iterations=10, record_history=False
            ),
        )
        assert result.history == []

    @pytest.mark.parametrize("field,value", [
        ("step_size", 0.0),
        ("max_iterations", 0),
        ("patience", 0),
        ("checkpoint_every", -1),
    ])
    def test_option_validation(self, field, value):
        with pytest.raises(ValueError):
            BasicDescentOptions(**{field: value})


class TestAdaptive:
    def test_monotone_decrease(self, cost):
        result = optimize_adaptive(
            cost, seed=0, options=AdaptiveOptions(max_iterations=30,
                                                  trisection_rounds=15)
        )
        trace = result.cost_trace()
        assert np.all(np.diff(trace) <= 1e-9)

    def test_beats_basic_for_same_budget(self, cost):
        iterations = 40
        basic = optimize_basic(
            cost,
            options=BasicDescentOptions(
                step_size=1e-6, max_iterations=iterations
            ),
        )
        adaptive = optimize_adaptive(
            cost, initial=uniform_matrix(4),
            options=AdaptiveOptions(max_iterations=iterations,
                                    trisection_rounds=15),
        )
        assert adaptive.u_eps < basic.u_eps

    def test_local_optimum_stop_reason(self, cost):
        """With enough iterations the line search eventually finds no
        improving step."""
        result = optimize_adaptive(
            cost, seed=1,
            options=AdaptiveOptions(max_iterations=4000,
                                    trisection_rounds=10,
                                    rtol=1e-6),
        )
        assert result.stop_reason in ("local_optimum", "max_iterations")
        if result.stop_reason == "local_optimum":
            assert result.converged

    def test_stochastic_final_matrix(self, cost):
        result = optimize_adaptive(
            cost, seed=2, options=AdaptiveOptions(max_iterations=20,
                                                  trisection_rounds=15)
        )
        assert is_row_stochastic(result.matrix)

    def test_reproducible_given_seed(self, cost):
        kwargs = dict(
            options=AdaptiveOptions(max_iterations=15,
                                    trisection_rounds=12)
        )
        a = optimize_adaptive(cost, seed=7, **kwargs)
        b = optimize_adaptive(cost, seed=7, **kwargs)
        np.testing.assert_allclose(a.matrix, b.matrix)

    def test_option_validation(self):
        with pytest.raises(ValueError):
            AdaptiveOptions(max_iterations=0)
        with pytest.raises(ValueError):
            AdaptiveOptions(trisection_rounds=0)


class TestPerturbed:
    def test_best_never_worse_than_start(self, cost):
        initial = uniform_matrix(4)
        start_value = cost.value(initial)
        result = optimize_perturbed(
            cost, initial=initial, seed=0,
            options=PerturbedOptions(max_iterations=40,
                                     trisection_rounds=12),
        )
        assert result.best_u_eps <= start_value + 1e-12

    def test_best_matrix_matches_best_cost(self, cost):
        result = optimize_perturbed(
            cost, seed=3,
            options=PerturbedOptions(max_iterations=40,
                                     trisection_rounds=12),
        )
        assert cost.value(result.best_matrix) \
            == pytest.approx(result.best_u_eps, rel=1e-9)

    def test_best_is_min_of_history(self, cost):
        result = optimize_perturbed(
            cost, seed=4,
            options=PerturbedOptions(max_iterations=60,
                                     trisection_rounds=12),
        )
        trace = result.cost_trace()
        assert result.best_u_eps <= trace.min() + 1e-12

    def test_reproducible_given_seed(self, cost):
        kwargs = dict(
            options=PerturbedOptions(max_iterations=25,
                                     trisection_rounds=12)
        )
        a = optimize_perturbed(cost, seed=11, **kwargs)
        b = optimize_perturbed(cost, seed=11, **kwargs)
        np.testing.assert_allclose(a.best_matrix, b.best_matrix)
        assert a.best_u_eps == b.best_u_eps

    def test_stall_limit_stops(self, cost):
        result = optimize_perturbed(
            cost, seed=5,
            options=PerturbedOptions(
                max_iterations=5000, trisection_rounds=10, stall_limit=5,
            ),
        )
        assert result.iterations < 5000
        assert result.stop_reason == "stalled"

    def test_zero_sigma_allowed(self, cost):
        result = optimize_perturbed(
            cost, seed=6,
            options=PerturbedOptions(max_iterations=20, sigma=0.0,
                                     trisection_rounds=12),
        )
        assert np.isfinite(result.best_u_eps)

    def test_absolute_noise_mode(self, cost):
        result = optimize_perturbed(
            cost, seed=7,
            options=PerturbedOptions(
                max_iterations=20, sigma=0.1, relative_noise=False,
                trisection_rounds=12,
            ),
        )
        assert np.isfinite(result.best_u_eps)

    @pytest.mark.parametrize("field,value", [
        ("max_iterations", 0),
        ("sigma", -1.0),
        ("cooling_k", 0.0),
        ("stall_limit", 0),
    ])
    def test_option_validation(self, field, value):
        with pytest.raises(ValueError):
            PerturbedOptions(**{field: value})


class TestAcceptanceProbability:
    def test_improvements_always_accepted(self):
        assert acceptance_probability(-0.5, 1.0, 10, 100.0) == 1.0
        assert acceptance_probability(0.0, 1.0, 10, 100.0) == 1.0

    def test_decreases_with_iteration_count(self):
        early = acceptance_probability(0.5, 1.0, 2, 10.0)
        late = acceptance_probability(0.5, 1.0, 10_000, 10.0)
        assert late < early

    def test_decreases_with_worsening(self):
        small = acceptance_probability(0.1, 1.0, 100, 10.0)
        large = acceptance_probability(10.0, 1.0, 100, 10.0)
        assert large < small

    def test_normalization_by_best_cost(self):
        """The same relative worsening gives the same probability."""
        a = acceptance_probability(0.5, 1.0, 50, 10.0)
        b = acceptance_probability(50.0, 100.0, 50, 10.0)
        assert a == pytest.approx(b)

    def test_in_unit_interval(self):
        for worsening in (0.01, 1.0, 100.0):
            p = acceptance_probability(worsening, 1.0, 3, 1.0)
            assert 0.0 <= p <= 1.0


class TestMultiStart:
    def test_best_is_min_over_runs(self, cost):
        result = optimize_multistart(
            cost, random_starts=1, seed=0,
            options=PerturbedOptions(max_iterations=15,
                                     trisection_rounds=10),
        )
        best = min(run.best_u_eps for run in result.runs)
        assert result.best.best_u_eps == best

    def test_labels_match_runs(self, cost):
        result = optimize_multistart(
            cost, random_starts=2, seed=0,
            options=PerturbedOptions(max_iterations=10,
                                     trisection_rounds=10),
        )
        assert len(result.start_labels) == len(result.runs)
        assert result.best_label in result.start_labels

    def test_portfolio_contains_expected_starts(self, cost):
        starts = default_start_portfolio(cost, random_starts=2, seed=0)
        labels = [label for label, _ in starts]
        assert labels[0] == "uniform"
        assert "random-0" in labels and "random-1" in labels
        assert any(label.startswith("damped-") for label in labels)

    def test_damped_starts_respect_barrier(self, cost):
        starts = default_start_portfolio(cost, random_starts=0, seed=0)
        epsilon = cost.weights.epsilon
        for label, matrix in starts:
            if label.startswith("damped-"):
                assert matrix.min() > epsilon

    def test_custom_optimizer(self, cost):
        calls = []

        def fake_optimizer(cost_arg, initial=None, seed=None,
                           options=None):
            calls.append(initial)
            return optimize_perturbed(
                cost_arg, initial=initial, seed=seed,
                options=PerturbedOptions(max_iterations=3,
                                         trisection_rounds=8),
            )

        result = optimize_multistart(
            cost, optimizer=fake_optimizer, random_starts=1, seed=0
        )
        assert len(calls) == len(result.runs)
