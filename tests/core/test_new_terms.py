"""The three plugin terms: minimax exposure, k-coverage, periodicity.

Each term gets (a) an analytic-vs-finite-difference gradient check
through the full Schweitzer-adjoint assembly, (b) batch-vs-scalar and
lockstep equivalence on the line-search paths, (c) dense-vs-sparse
agreement, and (d) an optimizer integration run showing the term
actually steers the descent.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    CostWeights,
    CoverageCost,
    KCoverageShortfallTerm,
    PeriodicityTerm,
    WorstExposureTerm,
    optimize,
    scalable_topology,
)
from repro.core.cost import MultiRayBatch, RayBatch
from repro.core.initializers import paper_random_matrix
from repro.markov.sparse import HAVE_SPARSE
from tests.conftest import random_zero_rowsum_direction

#: (name, weight, params) triples chosen so every hinge is active on a
#: near-uniform 4-PoI stationary distribution — an inactive hinge would
#: make the finite-difference check trivially 0 == 0.
TERM_CASES = [
    ("minimax", 0.8, {"tau": 4.0}),
    ("kcoverage", 1.5, {"team": 4, "k": 2, "threshold": 0.5}),
    ("periodicity", 0.6, {"slack": 0.5}),
]


@pytest.fixture
def interior_matrix(rng):
    matrix = 0.05 + 0.8 * rng.dirichlet(np.ones(4), size=4)
    return matrix / matrix.sum(axis=1, keepdims=True)


def extra_cost(topology, case, beta=0.5):
    name, weight, params = case
    return CoverageCost(
        topology,
        CostWeights(alpha=1.0, beta=beta, epsilon=1e-3),
        extra_terms=[(name, weight, params)],
    )


class TestGradientFiniteDifference:
    @pytest.mark.parametrize("case", TERM_CASES,
                             ids=[c[0] for c in TERM_CASES])
    def test_dense_total_derivative(
        self, topology1, interior_matrix, rng, case
    ):
        cost = extra_cost(topology1, case)
        direction = random_zero_rowsum_direction(rng, 4)
        analytic = float(
            np.sum(cost.gradient(interior_matrix) * direction)
        )
        h = 1e-6
        numeric = (
            cost.value(interior_matrix + h * direction)
            - cost.value(interior_matrix - h * direction)
        ) / (2 * h)
        assert analytic != 0.0
        assert numeric == pytest.approx(analytic, rel=1e-5)

    @pytest.mark.parametrize("case", TERM_CASES,
                             ids=[c[0] for c in TERM_CASES])
    def test_term_alone_changes_the_gradient(
        self, topology1, interior_matrix, case
    ):
        with_term = extra_cost(topology1, case)
        without = CoverageCost(
            topology1, CostWeights(alpha=1.0, beta=0.5, epsilon=1e-3)
        )
        assert not np.array_equal(
            with_term.gradient(interior_matrix),
            without.gradient(interior_matrix),
        )

    @pytest.mark.skipif(not HAVE_SPARSE,
                        reason="scipy.sparse unavailable")
    @pytest.mark.parametrize("case", TERM_CASES,
                             ids=[c[0] for c in TERM_CASES])
    def test_sparse_projected_derivative(self, rng, case):
        topology = scalable_topology("city-grid", 64, seed=5)
        name, weight, params = case
        cost = CoverageCost(
            topology, CostWeights(alpha=1.0, beta=1e-3),
            linalg="sparse",
            extra_terms=[(name, weight, params)],
        )
        matrix = paper_random_matrix(64, seed=9, support=cost.support)
        direction = cost.project(rng.normal(size=(64, 64)))
        analytic = float(
            np.sum(cost.projected_gradient(matrix) * direction)
        )
        h = 1e-7
        numeric = (
            cost.value(matrix + h * direction)
            - cost.value(matrix - h * direction)
        ) / (2 * h)
        assert numeric == pytest.approx(analytic, rel=1e-4)


class TestBatchedPaths:
    @pytest.mark.parametrize("case", TERM_CASES,
                             ids=[c[0] for c in TERM_CASES])
    def test_batch_matches_scalar(self, topology1, rng, case):
        cost = extra_cost(topology1, case)
        stack = 0.05 + 0.8 * rng.dirichlet(np.ones(4), size=(5, 4))
        stack = stack / stack.sum(axis=2, keepdims=True)
        batched = cost.batch_values(stack)
        scalar = np.array([cost.value(m) for m in stack])
        np.testing.assert_allclose(batched, scalar, rtol=1e-10)

    def test_all_three_compose_in_batch(self, topology1, rng):
        cost = CoverageCost(
            topology1, CostWeights(alpha=1.0, beta=0.5, epsilon=1e-3),
            extra_terms=[
                (name, weight, params)
                for name, weight, params in TERM_CASES
            ],
        )
        stack = 0.05 + 0.8 * rng.dirichlet(np.ones(4), size=(4, 4))
        stack = stack / stack.sum(axis=2, keepdims=True)
        np.testing.assert_allclose(
            cost.batch_values(stack),
            [cost.value(m) for m in stack],
            rtol=1e-10,
        )

    def test_infeasible_probes_stay_inf(self, topology1):
        cost = extra_cost(topology1, TERM_CASES[0])
        bad = np.zeros((1, 4, 4))  # rank-deficient, not stochastic
        values, _, _, ok = cost.batch_evaluate(bad)
        assert not ok[0]
        assert values[0] == np.inf

    def test_lockstep_fusion_matches_single_rays(
        self, topology1, interior_matrix, rng
    ):
        cost = CoverageCost(
            topology1, CostWeights(alpha=1.0, beta=0.5, epsilon=1e-3),
            extra_terms=[
                (name, weight, params)
                for name, weight, params in TERM_CASES
            ],
        )
        directions = [
            random_zero_rowsum_direction(rng, 4) for _ in range(2)
        ]
        steps = np.array([0.0, 1e-4, 2e-4])
        fused = MultiRayBatch.from_directions(
            cost, [(interior_matrix, d) for d in directions]
        )
        fused_values = fused.evaluate([steps, steps])
        for direction, values in zip(directions, fused_values):
            single = RayBatch(cost, interior_matrix, direction)(steps)
            np.testing.assert_array_equal(values, single)

    @pytest.mark.skipif(not HAVE_SPARSE,
                        reason="scipy.sparse unavailable")
    @pytest.mark.parametrize("case", TERM_CASES,
                             ids=[c[0] for c in TERM_CASES])
    def test_sparse_agrees_with_dense(self, case):
        topology = scalable_topology("city-grid", 64, seed=5)
        name, weight, params = case
        weights = CostWeights(alpha=1.0, beta=1e-3)
        dense = CoverageCost(
            topology, weights, linalg="dense",
            extra_terms=[(name, weight, params)],
        )
        sparse = dense.with_linalg("sparse")
        matrix = paper_random_matrix(64, seed=9, support=dense.support)
        assert sparse.value(matrix) == pytest.approx(
            dense.value(matrix), rel=1e-10
        )
        stack = np.stack([matrix, matrix])
        np.testing.assert_allclose(
            sparse.batch_values(stack), dense.batch_values(stack),
            rtol=1e-10,
        )


class TestTermSemantics:
    def test_minimax_bounds_the_true_max(self, topology1,
                                         interior_matrix):
        cost = CoverageCost(
            topology1, CostWeights(),
            extra_terms=[("minimax", 1.0, {"tau": 8.0})],
        )
        state = cost.build_state(interior_matrix)
        exposures = cost.exposure_times(state)
        ((_, value),) = cost.evaluate(state).extra_values
        worst = float(exposures.max())
        assert worst <= value <= worst + np.log(4) / 8.0

    def test_kcoverage_tail_is_a_probability(self):
        term = KCoverageShortfallTerm(weight=1.0, team=4, k=2)
        pi = np.linspace(0.01, 0.99, 25)
        tail = term.tail(pi)
        assert np.all((tail >= 0.0) & (tail <= 1.0))
        assert np.all(np.diff(tail) > 0)  # more presence, more coverage

    def test_kcoverage_vanishes_when_satisfied(self, topology1,
                                               interior_matrix):
        # k=1 with a tiny threshold: every PoI easily k-covered.
        cost = CoverageCost(
            topology1, CostWeights(),
            extra_terms=[("kcoverage", 1.0,
                          {"team": 4, "k": 1, "threshold": 0.1})],
        )
        ((_, value),) = cost.evaluate(interior_matrix).extra_values
        assert value == 0.0

    def test_periodicity_vanishes_with_loose_periods(
        self, topology1, interior_matrix
    ):
        cost = CoverageCost(
            topology1, CostWeights(),
            extra_terms=[("periodicity", 1.0, {"slack": 100.0})],
        )
        ((_, value),) = cost.evaluate(interior_matrix).extra_values
        assert value == 0.0

    def test_parameter_validation(self):
        with pytest.raises(ValueError, match="tau"):
            WorstExposureTerm(weight=1.0, tau=0.0)
        with pytest.raises(ValueError, match="k must lie"):
            KCoverageShortfallTerm(weight=1.0, team=2, k=3)
        with pytest.raises(ValueError, match="threshold"):
            KCoverageShortfallTerm(weight=1.0, threshold=1.5)
        with pytest.raises(ValueError, match="periods"):
            PeriodicityTerm(weight=1.0, periods=np.array([1.0, -2.0]))
        with pytest.raises(ValueError, match="periods"):
            PeriodicityTerm(weight=1.0, periods=np.ones((2, 2)))


class TestOptimizerIntegration:
    @pytest.mark.parametrize("case", TERM_CASES,
                             ids=[c[0] for c in TERM_CASES])
    def test_adaptive_descends_the_composed_objective(
        self, topology1, case
    ):
        cost = extra_cost(topology1, case, beta=0.1)
        baseline = CoverageCost(
            topology1, CostWeights(alpha=1.0, beta=0.1, epsilon=1e-3)
        )
        options = {"max_iterations": 10, "trisection_rounds": 8,
                   "record_history": True}
        result = optimize(
            cost, method="adaptive", seed=0, options=options
        )
        plain = optimize(
            baseline, method="adaptive", seed=0, options=options
        )
        assert np.isfinite(result.best_u_eps)
        # Monotone non-increasing best value along the run.
        best_values = [rec.u_eps for rec in result.history]
        assert result.best_u_eps <= best_values[0]
        # The term changes the objective, so it must steer the descent.
        assert not np.array_equal(result.best_matrix,
                                  plain.best_matrix)

    def test_facade_composes_terms_for_multistart(self, topology1):
        cost = CoverageCost(
            topology1, CostWeights(alpha=1.0, beta=0.1, epsilon=1e-3)
        )
        result = optimize(
            cost, method="multistart", seed=1, random_starts=2,
            options={"max_iterations": 6, "trisection_rounds": 6},
            terms={"periodicity": 0.4},
        )
        assert np.isfinite(result.best.best_u_eps)
