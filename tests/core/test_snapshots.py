"""Optimizer state-machine snapshots: kill/resume bit-identity.

The service's job checkpoints (:mod:`repro.service`) serialize a
:class:`~repro.core.perturbed.PerturbedWalk` at an iteration boundary
and later restore it — possibly in another process — so the contract
here is strict: a walk resumed from a JSON round-tripped snapshot must
finish with a trajectory *bit-identical* to the uninterrupted run.
"""

import json

import numpy as np
import pytest

from repro.core.cost import CostWeights, CoverageCost
from repro.core.linesearch import TrisectionState, trisection_search
from repro.core.perturbed import (
    WALK_SNAPSHOT_SCHEMA,
    PerturbedOptions,
    PerturbedWalk,
    advance_walk,
    optimize_perturbed,
)
from repro.topology.library import paper_topology
from repro.utils.rng import (
    as_generator,
    generator_from_state,
    generator_state,
)


@pytest.fixture(scope="module")
def cost():
    topology = paper_topology(1)
    return CoverageCost(topology, CostWeights(alpha=1.0, beta=1.0))


OPTIONS = PerturbedOptions(
    max_iterations=24, stall_limit=100, trisection_rounds=8,
    geometric_decades=6,
)


class TestGeneratorState:
    def test_round_trip_continues_stream(self):
        rng = as_generator(123)
        rng.normal(size=7)  # advance the stream
        resumed = generator_from_state(generator_state(rng))
        assert np.array_equal(rng.normal(size=16),
                              resumed.normal(size=16))

    def test_snapshot_is_json_plain(self):
        state = generator_state(as_generator(5))
        assert state == json.loads(json.dumps(state))

    def test_unknown_bit_generator_rejected(self):
        with pytest.raises(ValueError, match="bit generator"):
            generator_from_state({"bit_generator": "NoSuchBG"})


class TestWalkSnapshot:
    def _run_interrupted(self, cost, kill_after):
        """Run to ``kill_after`` iterations, snapshot, JSON round-trip,
        restore, finish."""
        walk = PerturbedWalk(cost, None, as_generator(7), OPTIONS)
        while walk.iteration < kill_after and advance_walk(
            cost, walk, OPTIONS
        ):
            pass
        snapshot = json.loads(json.dumps(walk.snapshot()))
        resumed = PerturbedWalk.restore(cost, snapshot, OPTIONS)
        while advance_walk(cost, resumed, OPTIONS):
            pass
        return resumed.result()

    @pytest.mark.parametrize("kill_after", [0, 1, 9])
    def test_resume_bit_identical(self, cost, kill_after):
        uninterrupted = optimize_perturbed(cost, seed=7, options=OPTIONS)
        resumed = self._run_interrupted(cost, kill_after)
        assert resumed.best_u_eps == uninterrupted.best_u_eps
        assert resumed.best_matrix.tobytes() == \
            uninterrupted.best_matrix.tobytes()
        assert resumed.iterations == uninterrupted.iterations
        assert resumed.stop_reason == uninterrupted.stop_reason
        assert resumed.history == uninterrupted.history

    def test_snapshot_schema_and_json_plain(self, cost):
        walk = PerturbedWalk(cost, None, as_generator(3), OPTIONS)
        advance_walk(cost, walk, OPTIONS)
        snapshot = walk.snapshot()
        assert snapshot["schema"] == WALK_SNAPSHOT_SCHEMA
        assert snapshot == json.loads(json.dumps(snapshot))
        assert snapshot["iteration"] == 1

    def test_restore_rejects_wrong_schema(self, cost):
        with pytest.raises(ValueError, match="schema"):
            PerturbedWalk.restore(cost, {"schema": "bogus"}, OPTIONS)

    def test_finished_walk_stays_finished(self, cost):
        walk = PerturbedWalk(
            cost, None, as_generator(1),
            PerturbedOptions(max_iterations=2, stall_limit=100,
                             trisection_rounds=4, geometric_decades=4),
        )
        options = walk.options
        while advance_walk(cost, walk, options):
            pass
        restored = PerturbedWalk.restore(cost, walk.snapshot(), options)
        assert restored.finished
        assert restored.begin_iteration() is None


class TestTrisectionSnapshot:
    def _objective(self):
        return lambda steps: (np.asarray(steps) - 0.3) ** 2 + 1.0

    def test_mid_search_resume_identical(self):
        objective = self._objective()
        plain = trisection_search(
            batch_objective=objective, upper=1.0, baseline=1.2,
            rounds=12,
        )

        search = TrisectionState(upper=1.0, baseline=1.2, rounds=12)
        search.observe_sweep(objective(search.sweep_steps()))
        for _ in range(4):  # part of the refinement, then "die"
            pair = search.round_steps()
            v1, v2 = objective(pair)
            search.observe_round(v1, v2)
        snapshot = json.loads(json.dumps(search.snapshot()))

        resumed = TrisectionState.restore(snapshot)
        while True:
            pair = resumed.round_steps()
            if pair is None:
                break
            v1, v2 = objective(pair)
            resumed.observe_round(v1, v2)
        outcome = resumed.result()
        assert outcome.step == plain.step
        assert outcome.value == plain.value

    def test_pre_sweep_snapshot_keeps_pending_probes(self):
        search = TrisectionState(upper=2.0, baseline=5.0, rounds=3)
        probes = search.sweep_steps()
        restored = TrisectionState.restore(
            json.loads(json.dumps(search.snapshot()))
        )
        assert np.array_equal(restored._probes, probes)
        objective = self._objective()
        restored.observe_sweep(objective(restored._probes))
        assert restored.best_step > 0.0

    def test_finished_search_round_trips(self):
        search = TrisectionState(upper=0.0, baseline=1.0)
        restored = TrisectionState.restore(search.snapshot())
        assert restored.finished
        assert restored.result() == search.result()
