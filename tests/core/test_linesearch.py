"""Tests for repro.core.linesearch."""

import numpy as np
import pytest

from repro.core.linesearch import (
    LineSearchResult,
    feasible_step_bound,
    trisection_search,
)


class TestFeasibleStepBound:
    def test_zero_direction(self):
        assert feasible_step_bound(
            np.full((2, 2), 0.5), np.zeros((2, 2))
        ) == 0.0

    def test_bound_keeps_feasible(self, rng):
        matrix = rng.dirichlet(np.ones(4), size=4)
        direction = rng.normal(size=(4, 4))
        direction -= direction.mean(axis=1, keepdims=True)
        bound = feasible_step_bound(matrix, direction)
        stepped = matrix + bound * direction
        assert stepped.min() >= -1e-12
        assert stepped.max() <= 1.0 + 1e-12

    def test_strictly_less_than_boundary_hit(self):
        matrix = np.array([[0.5, 0.5], [0.5, 0.5]])
        direction = np.array([[0.5, -0.5], [0.0, 0.0]])
        bound = feasible_step_bound(matrix, direction)
        assert bound < 1.0
        assert bound == pytest.approx(1.0, rel=1e-6)


class TestTrisectionSearch:
    def test_finds_quadratic_minimum(self):
        result = trisection_search(
            lambda d: (d - 0.3) ** 2, upper=1.0, rounds=50
        )
        assert result.step == pytest.approx(0.3, abs=1e-4)

    def test_reports_zero_when_increasing(self):
        result = trisection_search(lambda d: 1.0 + d, upper=1.0)
        assert result.step == 0.0

    def test_zero_upper_short_circuits(self):
        result = trisection_search(lambda d: d, upper=0.0, baseline=5.0)
        assert result.step == 0.0
        assert result.evaluations == 0

    def test_infinite_baseline_short_circuits(self):
        result = trisection_search(
            lambda d: d, upper=1.0, baseline=float("inf")
        )
        assert result.step == 0.0

    def test_geometric_probes_find_tiny_minimum(self):
        """A minimum many decades below the bound is still found."""
        def objective(d):
            return (np.log10(max(d, 1e-300)) + 8.0) ** 2 if d > 0 else 4.0

        result = trisection_search(
            objective, upper=1.0, baseline=4.0, geometric_decades=12
        )
        assert result.step == pytest.approx(1e-8, rel=0.5)

    def test_failures_map_to_inf(self):
        def objective(d):
            if d > 0.5:
                raise ValueError("boom")
            return 1.0 - d

        result = trisection_search(objective, upper=1.0, baseline=1.0)
        assert 0 < result.step <= 0.5

    def test_nan_treated_as_inf(self):
        result = trisection_search(
            lambda d: float("nan") if d > 0 else 1.0,
            upper=1.0, baseline=1.0,
        )
        assert result.step == 0.0

    def test_baseline_computed_when_missing(self):
        calls = []

        def objective(d):
            calls.append(d)
            return (d - 0.2) ** 2

        result = trisection_search(objective, upper=1.0)
        assert 0.0 in calls
        assert result.step == pytest.approx(0.2, abs=1e-3)

    def test_batch_objective_used(self):
        batch_calls = []

        def batch(steps):
            batch_calls.append(len(steps))
            return (np.asarray(steps) - 0.4) ** 2

        result = trisection_search(
            upper=1.0, baseline=0.16, batch_objective=batch
        )
        assert batch_calls, "batch objective was never called"
        assert result.step == pytest.approx(0.4, abs=1e-3)

    def test_requires_some_objective(self):
        with pytest.raises(ValueError, match="objective"):
            trisection_search(upper=1.0, baseline=1.0)

    def test_rejects_bad_rounds(self):
        with pytest.raises(ValueError, match="rounds"):
            trisection_search(lambda d: d, upper=1.0, rounds=0)

    def test_rejects_negative_decades(self):
        with pytest.raises(ValueError, match="geometric_decades"):
            trisection_search(
                lambda d: d, upper=1.0, geometric_decades=-1
            )

    def test_improvement_threshold(self):
        """Improvements below rtol are reported as no step."""
        result = trisection_search(
            lambda d: 1.0 - 1e-15 * d, upper=1.0, baseline=1.0,
            improvement_rtol=1e-9,
        )
        assert result.step == 0.0

    def test_result_dataclass_fields(self):
        result = trisection_search(
            lambda d: (d - 0.5) ** 2, upper=2.0
        )
        assert isinstance(result, LineSearchResult)
        assert result.step_bound == 2.0
        assert result.evaluations > 0
