"""Tests for repro.core.initializers."""

import numpy as np
import pytest

from repro.core.initializers import (
    damped_baseline_matrix,
    dirichlet_matrix,
    paper_random_matrix,
    uniform_matrix,
)
from repro.markov.ergodicity import is_ergodic
from repro.markov.stationary import stationary_via_linear_solve
from repro.utils.linalg import is_row_stochastic


class TestUniform:
    def test_entries(self):
        matrix = uniform_matrix(4)
        np.testing.assert_allclose(matrix, 0.25)

    def test_stochastic_and_ergodic(self):
        matrix = uniform_matrix(5)
        assert is_row_stochastic(matrix)
        assert is_ergodic(matrix)

    def test_rejects_small(self):
        with pytest.raises(ValueError, match="size"):
            uniform_matrix(1)


class TestPaperRandom:
    def test_stochastic(self):
        matrix = paper_random_matrix(5, seed=0)
        assert is_row_stochastic(matrix)

    def test_strictly_positive(self):
        for seed in range(10):
            assert paper_random_matrix(4, seed=seed).min() > 0

    def test_ergodic(self):
        assert is_ergodic(paper_random_matrix(6, seed=3))

    def test_deterministic(self):
        np.testing.assert_array_equal(
            paper_random_matrix(4, seed=1), paper_random_matrix(4, seed=1)
        )

    def test_last_column_gets_remainder(self):
        """The paper's recipe biases mass toward the last column."""
        matrices = [paper_random_matrix(4, seed=s) for s in range(50)]
        mean_last = np.mean([m[:, -1].mean() for m in matrices])
        mean_first = np.mean([m[:, 0].mean() for m in matrices])
        assert mean_last > mean_first

    def test_rejects_small(self):
        with pytest.raises(ValueError, match="size"):
            paper_random_matrix(1)


class TestDampedBaseline:
    def test_stationary_is_phi(self):
        phi = np.array([0.4, 0.1, 0.1, 0.4])
        for delta in (1.0, 0.3, 0.01):
            matrix = damped_baseline_matrix(phi, delta)
            pi = stationary_via_linear_solve(matrix)
            np.testing.assert_allclose(pi, phi, atol=1e-10)

    def test_delta_one_is_proportional(self):
        phi = np.array([0.25, 0.25, 0.25, 0.25])
        matrix = damped_baseline_matrix(phi, 1.0)
        np.testing.assert_allclose(matrix, 0.25)

    def test_stochastic(self):
        matrix = damped_baseline_matrix(
            np.array([0.5, 0.3, 0.2]), 0.1
        )
        assert is_row_stochastic(matrix)

    def test_rejects_zero_share(self):
        with pytest.raises(ValueError, match="positive"):
            damped_baseline_matrix(np.array([1.0, 0.0]), 0.5)

    @pytest.mark.parametrize("delta", [0.0, -0.5, 1.5])
    def test_rejects_bad_delta(self, delta):
        with pytest.raises(ValueError, match="delta"):
            damped_baseline_matrix(np.array([0.5, 0.5]), delta)

    def test_rejects_scalar_shares(self):
        with pytest.raises(ValueError, match="1-D"):
            damped_baseline_matrix(np.array(0.5), 0.5)


class TestDirichlet:
    def test_stochastic(self):
        assert is_row_stochastic(dirichlet_matrix(5, seed=0))

    def test_floor_respected(self):
        matrix = dirichlet_matrix(4, floor=0.02, seed=1)
        assert matrix.min() >= 0.02

    def test_exchangeable_columns(self):
        """Dirichlet rows have no last-column bias."""
        matrices = [dirichlet_matrix(4, seed=s) for s in range(60)]
        mean_last = np.mean([m[:, -1].mean() for m in matrices])
        assert mean_last == pytest.approx(0.25, abs=0.05)

    @pytest.mark.parametrize("kwargs", [
        {"size": 1},
        {"size": 4, "floor": 0.5},
        {"size": 4, "concentration": 0.0},
    ])
    def test_rejects_bad_args(self, kwargs):
        with pytest.raises(ValueError):
            dirichlet_matrix(**kwargs)
