"""The ``repro.optimize`` façade: routing, options coercion, snapshot.

The façade's contract is "routing only": for every registered method,
``optimize(cost, method=m, ...)`` must be *bit-identical* to calling the
method's function directly with the same arguments — same best value,
same matrix bytes, same history.  These tests pin that, plus the
options-dict coercion rules and the public-API surface the façade adds.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro import (
    OPTIMIZER_REGISTRY,
    AdaptiveOptions,
    BasicDescentOptions,
    MirrorOptions,
    OptimizerOptions,
    OptimizerSpec,
    PerturbedOptions,
    SearchOptions,
    coerce_options,
    optimize,
    optimize_adaptive,
    optimize_basic,
    optimize_mirror,
    optimize_multistart,
    optimize_perturbed,
)


def _same_result(a, b):
    assert a.u_eps == b.u_eps
    assert a.best_u_eps == b.best_u_eps
    assert a.best_matrix.tobytes() == b.best_matrix.tobytes()
    assert a.matrix.tobytes() == b.matrix.tobytes()
    assert a.iterations == b.iterations
    assert a.stop_reason == b.stop_reason
    assert a.history == b.history


class TestFacadeEquivalence:
    """optimize(method=...) is bit-identical to each direct call."""

    def test_basic(self, cost_both):
        direct = optimize_basic(
            cost_both, options=BasicDescentOptions(max_iterations=40)
        )
        routed = optimize(
            cost_both, method="basic", options={"max_iterations": 40}
        )
        _same_result(direct, routed)

    def test_adaptive(self, cost_both):
        direct = optimize_adaptive(
            cost_both, seed=7,
            options=AdaptiveOptions(max_iterations=10),
        )
        routed = optimize(
            cost_both, method="adaptive", seed=7,
            options={"max_iterations": 10},
        )
        _same_result(direct, routed)

    def test_mirror(self, cost_both):
        direct = optimize_mirror(
            cost_both, options=MirrorOptions(max_iterations=10)
        )
        routed = optimize(
            cost_both, method="mirror", options={"max_iterations": 10}
        )
        _same_result(direct, routed)

    def test_perturbed(self, cost_both):
        direct = optimize_perturbed(
            cost_both, seed=7,
            options=PerturbedOptions(max_iterations=12, stall_limit=100),
        )
        routed = optimize(
            cost_both, method="perturbed", seed=7,
            options={"max_iterations": 12, "stall_limit": 100},
        )
        _same_result(direct, routed)

    def test_perturbed_with_initial(self, cost_both):
        initial = repro.uniform_matrix(cost_both.size)
        direct = optimize_perturbed(
            cost_both, initial=initial, seed=3,
            options=PerturbedOptions(max_iterations=8, stall_limit=100),
        )
        routed = optimize(
            cost_both, method="perturbed", initial=initial, seed=3,
            options=PerturbedOptions(max_iterations=8, stall_limit=100),
        )
        _same_result(direct, routed)

    def test_multistart(self, cost_both):
        opts = PerturbedOptions(max_iterations=6, stall_limit=100)
        direct = optimize_multistart(
            cost_both, random_starts=2, seed=3, options=opts
        )
        routed = optimize(
            cost_both, method="multistart", seed=3, options=opts,
            random_starts=2,
        )
        assert direct.start_labels == routed.start_labels
        assert direct.best_label == routed.best_label
        for run_a, run_b in zip(direct.runs, routed.runs):
            _same_result(run_a, run_b)


class TestFacadeErrors:
    def test_unknown_method_lists_registry(self, cost_both):
        with pytest.raises(ValueError, match="multistart"):
            optimize(cost_both, method="newton")

    def test_seed_rejected_for_deterministic_method(self, cost_both):
        with pytest.raises(ValueError, match="seed"):
            optimize(cost_both, method="basic", seed=1)

    def test_initial_rejected_for_multistart(self, cost_both):
        with pytest.raises(ValueError, match="initial"):
            optimize(
                cost_both, method="multistart",
                initial=repro.uniform_matrix(cost_both.size),
            )

    def test_execution_rejected_outside_multistart(self, cost_both):
        with pytest.raises(ValueError, match="execution"):
            optimize(cost_both, method="perturbed", execution="lockstep")

    def test_unknown_keyword_named(self, cost_both):
        with pytest.raises(ValueError, match="frobnicate"):
            optimize(cost_both, method="perturbed", frobnicate=2)

    def test_unknown_option_key_named(self, cost_both):
        with pytest.raises(ValueError, match="bogus"):
            optimize(
                cost_both, method="perturbed", options={"bogus": 1}
            )

    def test_wrong_options_class_rejected(self, cost_both):
        with pytest.raises(TypeError, match="PerturbedOptions"):
            optimize(
                cost_both, method="perturbed",
                options=MirrorOptions(max_iterations=5),
            )


class TestCoerceOptions:
    def test_none_passes_through(self):
        assert coerce_options(PerturbedOptions, None) is None

    def test_instance_passes_through(self):
        opts = AdaptiveOptions(max_iterations=3)
        assert coerce_options(AdaptiveOptions, opts) is opts

    def test_mapping_builds_instance(self):
        opts = coerce_options(
            PerturbedOptions, {"max_iterations": 9, "sigma": 0.0}
        )
        assert isinstance(opts, PerturbedOptions)
        assert opts.max_iterations == 9
        assert opts.sigma == 0.0

    def test_unknown_keys_all_named(self):
        with pytest.raises(ValueError) as err:
            coerce_options(
                BasicDescentOptions,
                {"max_iterations": 5, "zig": 1, "zag": 2},
            )
        assert "zag" in str(err.value) and "zig" in str(err.value)
        assert "max_iterations" in str(err.value)  # valid set shown

    def test_non_mapping_rejected(self):
        with pytest.raises(TypeError):
            coerce_options(PerturbedOptions, 42)

    def test_shared_base_fields(self):
        """All optimizer options share the common base fields."""
        for spec in OPTIMIZER_REGISTRY.values():
            assert issubclass(spec.options_class, OptimizerOptions)
            opts = spec.options_class()
            for name in (
                "max_iterations", "rtol", "record_history",
                "checkpoint_every",
            ):
                assert hasattr(opts, name)
        assert issubclass(AdaptiveOptions, SearchOptions)
        assert issubclass(PerturbedOptions, SearchOptions)
        assert issubclass(MirrorOptions, SearchOptions)


class TestRegistry:
    def test_registry_snapshot(self):
        assert list(OPTIMIZER_REGISTRY) == [
            "basic", "adaptive", "mirror", "perturbed", "multistart"
        ]

    def test_specs_are_complete(self):
        for name, spec in OPTIMIZER_REGISTRY.items():
            assert isinstance(spec, OptimizerSpec)
            assert spec.name == name
            assert callable(spec.func)
            assert spec.summary

    def test_direct_entry_points_still_importable(self):
        from repro.core.adaptive import optimize_adaptive  # noqa: F401
        from repro.core.descent import optimize_basic  # noqa: F401
        from repro.core.mirror import optimize_mirror  # noqa: F401
        from repro.core.multistart import optimize_multistart  # noqa
        from repro.core.perturbed import optimize_perturbed  # noqa


class TestPublicApiSnapshot:
    """The façade's additions to the ``repro`` namespace, pinned."""

    def test_facade_names_exported(self):
        for name in (
            "optimize", "OPTIMIZER_REGISTRY", "OptimizerSpec",
            "OptimizerOptions", "SearchOptions", "coerce_options",
            "lockstep_multistart", "MultiRayBatch",
        ):
            assert name in repro.__all__
            assert hasattr(repro, name)

    def test_all_snapshot(self):
        """Full ``repro.__all__`` snapshot — additions must be
        deliberate."""
        assert sorted(repro.__all__) == sorted([
            "__version__",
            # core
            "ChainState", "CostBreakdown", "CostWeights", "CoverageCost",
            "IterationRecord", "OptimizationResult",
            "BasicDescentOptions", "AdaptiveOptions", "PerturbedOptions",
            "optimize_basic", "optimize_adaptive", "optimize_perturbed",
            "optimize_mirror", "MirrorOptions",
            "uniform_matrix", "paper_random_matrix", "dirichlet_matrix",
            "damped_baseline_matrix",
            "MultiStartResult", "optimize_multistart",
            "lockstep_multistart", "MultiRayBatch",
            # façade
            "optimize", "OptimizerSpec", "OPTIMIZER_REGISTRY",
            "OptimizerOptions", "SearchOptions", "coerce_options",
            # cost-term registry
            "CostTerm", "TermBatch", "TermSpec", "TERM_REGISTRY",
            "CostSum", "ScaledTerm", "build_term",
            "normalize_extra_terms", "WorstExposureTerm",
            "KCoverageShortfallTerm", "PeriodicityTerm",
            # exec
            "BACKENDS", "Executor", "SerialExecutor", "ThreadExecutor",
            "ProcessExecutor", "get_executor", "using_executor",
            # markov
            "MarkovChain",
            # topology
            "PoI", "Topology", "grid_topology", "line_topology",
            "paper_topology", "random_topology", "PAPER_TOPOLOGY_IDS",
            "city_grid_topology", "ring_of_grids_topology",
            "scalable_topology", "SCALABLE_FAMILIES",
            # simulation
            "SimulationOptions", "SimulationResult", "simulate_schedule",
            # simulation façade
            "simulate", "SimulatorSpec", "SIMULATOR_REGISTRY",
            "TeamOptions",
            # baselines
            "metropolis_hastings_matrix", "max_entropy_matrix",
            "uniform_policy_matrix", "proportional_matrix",
            "nearest_neighbor_matrix",
        ])
