"""Line-search state reuse, perf counters, and batched-state parity.

The hot-path contract: handing the line search's winning probe's
``(pi, Z)`` to the optimizer must not change trajectories at all — the
reuse-on and reuse-off paths produce **bit-identical** iterates — while
dropping the dense factorization count per accepted step from 3 to 1.
"""

import numpy as np
import pytest

from repro import CostWeights, CoverageCost, paper_topology
from repro.core.adaptive import AdaptiveOptions, optimize_adaptive
from repro.core.perturbed import PerturbedOptions, optimize_perturbed
from repro.core.state import ChainState


@pytest.fixture
def cost():
    return CoverageCost(
        paper_topology(1), CostWeights(alpha=1.0, beta=1.0)
    )


@pytest.fixture
def extended_cost():
    """Every term enabled — energy and entropy extensions included."""
    return CoverageCost(
        paper_topology(2),
        CostWeights(
            alpha=1.0, beta=1e-2, epsilon=1e-3,
            energy_weight=1e-4, energy_target=10.0,
            entropy_weight=1e-3,
        ),
    )


class TestReuseTrajectoryIdentity:
    def test_perturbed_bit_identical(self, cost):
        on = optimize_perturbed(
            cost, seed=7,
            options=PerturbedOptions(
                max_iterations=40, record_history=False, stall_limit=100
            ),
        )
        off = optimize_perturbed(
            cost, seed=7,
            options=PerturbedOptions(
                max_iterations=40, record_history=False, stall_limit=100,
                reuse_linesearch_state=False,
            ),
        )
        assert on.best_u_eps == off.best_u_eps
        assert np.array_equal(on.best_matrix, off.best_matrix)

    def test_adaptive_bit_identical(self, cost):
        on = optimize_adaptive(
            cost, seed=7, options=AdaptiveOptions(max_iterations=40)
        )
        off = optimize_adaptive(
            cost, seed=7,
            options=AdaptiveOptions(
                max_iterations=40, reuse_linesearch_state=False
            ),
        )
        assert on.u_eps == off.u_eps
        assert np.array_equal(on.matrix, off.matrix)
        for a, b in zip(on.history, off.history):
            assert a.u_eps == b.u_eps
            assert a.step == b.step

    def test_extended_terms_bit_identical(self, extended_cost):
        on = optimize_perturbed(
            extended_cost, seed=11,
            options=PerturbedOptions(
                max_iterations=25, record_history=False, stall_limit=100
            ),
        )
        off = optimize_perturbed(
            extended_cost, seed=11,
            options=PerturbedOptions(
                max_iterations=25, record_history=False, stall_limit=100,
                reuse_linesearch_state=False,
            ),
        )
        assert on.best_u_eps == off.best_u_eps


class TestPerfCounters:
    def test_reuse_drops_accept_factorizations_to_zero(self, cost):
        result = optimize_perturbed(
            cost, seed=3,
            options=PerturbedOptions(
                max_iterations=30, record_history=False, stall_limit=100
            ),
        )
        perf = result.perf
        assert perf is not None
        assert perf.accepted_steps > 0
        assert perf.accept_factorizations == 0
        assert perf.factorizations_per_accepted_step() == 1.0
        assert perf.states_reused >= perf.accepted_steps
        assert perf.batch_calls > 0
        assert perf.seconds > 0.0

    def test_no_reuse_costs_three_per_accept(self, cost):
        result = optimize_perturbed(
            cost, seed=3,
            options=PerturbedOptions(
                max_iterations=30, record_history=False, stall_limit=100,
                reuse_linesearch_state=False,
            ),
        )
        perf = result.perf
        assert perf.accepted_steps > 0
        assert perf.factorizations_per_accepted_step() >= 3.0

    def test_adaptive_counters(self, cost):
        result = optimize_adaptive(
            cost, seed=3,
            options=AdaptiveOptions(
                max_iterations=30, record_history=False
            ),
        )
        perf = result.perf
        assert perf is not None
        if perf.accepted_steps:
            assert perf.factorizations_per_accepted_step() == 1.0


class TestBatchFeasibilityMask:
    def test_entry_above_one_maps_to_inf(self, cost):
        # All entries non-negative and the diagonal below one, so neither
        # the >= 0 mask nor the diagonal mask fires: only the dedicated
        # <= 1 mask can reject this stack member.
        bad = np.full((4, 4), 0.25)
        bad[0, 1] = 1.2
        values = cost.batch_values(
            np.stack([bad, np.full((4, 4), 0.25)])
        )
        assert np.isinf(values[0])
        assert np.isfinite(values[1])

    def test_negative_entry_maps_to_inf(self, cost):
        bad = np.full((4, 4), 0.25)
        bad[0, 0] = 0.5
        bad[0, 1] = -0.25  # row still sums to one but leaves the box
        values = cost.batch_values(bad[None])
        assert np.isinf(values[0])

    def test_batch_evaluate_returns_usable_states(self, extended_cost):
        rng = np.random.default_rng(0)
        size = extended_cost.size
        stack = 0.05 + 0.8 * rng.dirichlet(
            np.ones(size), size=(6, size)
        )
        stack = stack / stack.sum(axis=2, keepdims=True)
        values, pis, zs, ok = extended_cost.batch_evaluate(stack)
        assert ok.all()
        for index in range(stack.shape[0]):
            scalar = ChainState.from_matrix(stack[index])
            assert pis[index] == pytest.approx(scalar.pi, rel=1e-12)
            assert zs[index] == pytest.approx(scalar.z, rel=1e-9)
            assert values[index] == pytest.approx(
                extended_cost.value(scalar), rel=1e-10
            )


class TestRayBatchStateHandback:
    def test_state_at_matches_scratch_build(self, cost, rng):
        matrix = 0.05 + 0.8 * rng.dirichlet(np.ones(4), size=4)
        matrix = matrix / matrix.sum(axis=1, keepdims=True)
        state = ChainState.from_matrix(matrix)
        direction = cost.descent_direction(state)
        ray = cost.ray_batch(state.p, direction)
        steps = np.array([1e-7, 1e-6, 1e-5])
        values = ray(steps)
        best = float(steps[int(np.argmin(values))])
        winner = ray.state_at(best)
        assert winner is not None
        scratch = ChainState.from_matrix(winner.p, check=False)
        assert np.array_equal(winner.pi, scratch.pi)
        assert np.array_equal(winner.z, scratch.z)

    def test_state_at_unknown_step_returns_none(self, cost, rng):
        matrix = 0.05 + 0.8 * rng.dirichlet(np.ones(4), size=4)
        matrix = matrix / matrix.sum(axis=1, keepdims=True)
        state = ChainState.from_matrix(matrix)
        direction = cost.descent_direction(state)
        ray = cost.ray_batch(state.p, direction)
        ray(np.array([1e-6]))
        assert ray.state_at(3.3e-6) is None

    def test_probe_state_matches_scalar(self, cost, rng):
        matrix = 0.05 + 0.8 * rng.dirichlet(np.ones(4), size=4)
        matrix = matrix / matrix.sum(axis=1, keepdims=True)
        state = ChainState.from_matrix(matrix)
        direction = cost.descent_direction(state)
        ray = cost.ray_batch(state.p, direction)
        value, probe = ray.probe_state(2e-6)
        assert probe is not None
        scratch = ChainState.from_matrix(
            matrix + 2e-6 * direction, check=False
        )
        assert np.array_equal(probe.pi, scratch.pi)
        assert np.array_equal(probe.z, scratch.z)
        assert value == pytest.approx(cost.value(scratch), rel=1e-12)
