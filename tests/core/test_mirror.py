"""Tests for repro.core.mirror (softmax mirror descent)."""

import numpy as np
import pytest

from repro import (
    CostWeights,
    CoverageCost,
    MirrorOptions,
    optimize_mirror,
    paper_topology,
    uniform_matrix,
)
from repro.core.mirror import gradient_in_logits, logits_of, softmax_rows
from repro.core.state import ChainState
from repro.utils.linalg import is_row_stochastic


@pytest.fixture(scope="module")
def cost():
    return CoverageCost(
        paper_topology(1), CostWeights(alpha=1.0, beta=1.0)
    )


class TestSoftmaxPieces:
    def test_softmax_is_stochastic(self, rng):
        logits = rng.normal(size=(5, 5)) * 10
        assert is_row_stochastic(softmax_rows(logits))

    def test_softmax_stable_for_large_logits(self):
        logits = np.array([[1000.0, 0.0], [0.0, -1000.0]])
        p = softmax_rows(logits)
        assert np.all(np.isfinite(p))
        assert is_row_stochastic(p)

    def test_logits_round_trip(self, rng):
        matrix = rng.dirichlet(np.ones(4), size=4)
        np.testing.assert_allclose(
            softmax_rows(logits_of(matrix)), matrix, atol=1e-10
        )

    def test_gradient_rows_sum_to_zero(self, rng):
        p = rng.dirichlet(np.ones(4), size=4)
        g = rng.normal(size=(4, 4))
        grad_q = gradient_in_logits(p, g)
        np.testing.assert_allclose(
            grad_q.sum(axis=1), 0.0, atol=1e-12
        )

    def test_gradient_matches_finite_difference(self, cost, rng):
        """d/dt U(softmax(Q + t D)) == <dU/dQ, D>."""
        logits = rng.normal(size=(4, 4))
        p = softmax_rows(logits)
        state = ChainState.from_matrix(p, check=False)
        grad_q = gradient_in_logits(p, cost.gradient(state))
        h = 1e-6
        for _ in range(3):
            direction = rng.normal(size=(4, 4))
            numeric = (
                cost.value(softmax_rows(logits + h * direction))
                - cost.value(softmax_rows(logits - h * direction))
            ) / (2 * h)
            analytic = float(np.sum(grad_q * direction))
            assert numeric == pytest.approx(analytic, rel=1e-4,
                                            abs=1e-7)


class TestOptimizeMirror:
    def test_monotone_decrease(self, cost):
        result = optimize_mirror(
            cost, options=MirrorOptions(max_iterations=40)
        )
        trace = result.cost_trace()
        assert np.all(np.diff(trace) <= 1e-9)

    def test_final_matrix_valid(self, cost):
        result = optimize_mirror(
            cost, options=MirrorOptions(max_iterations=30)
        )
        assert is_row_stochastic(result.matrix)
        assert result.matrix.min() > 0.0

    def test_improves_on_uniform(self, cost):
        start = cost.value(uniform_matrix(4))
        result = optimize_mirror(
            cost, options=MirrorOptions(max_iterations=50)
        )
        assert result.u_eps < start

    def test_respects_initial(self, cost, rng):
        initial = rng.dirichlet(np.ones(4), size=4)
        result = optimize_mirror(
            cost, initial=initial,
            options=MirrorOptions(max_iterations=1),
        )
        assert result.iterations <= 1

    def test_competitive_with_adaptive_on_coverage(self):
        """The headline of ablation A5 at small scale."""
        from repro import AdaptiveOptions, optimize_adaptive

        cost = CoverageCost(
            paper_topology(1), CostWeights(alpha=1.0, beta=1e-4)
        )
        start = uniform_matrix(4)
        mirror = optimize_mirror(
            cost, initial=start,
            options=MirrorOptions(max_iterations=120),
        )
        adaptive = optimize_adaptive(
            cost, initial=start,
            options=AdaptiveOptions(max_iterations=120,
                                    trisection_rounds=20),
        )
        assert mirror.u_eps <= adaptive.u_eps * 2.0

    @pytest.mark.parametrize("field,value", [
        ("max_iterations", 0),
        ("momentum", 1.0),
        ("momentum", -0.1),
        ("max_logit", 0.0),
    ])
    def test_option_validation(self, field, value):
        with pytest.raises(ValueError):
            MirrorOptions(**{field: value})

    def test_history_off(self, cost):
        result = optimize_mirror(
            cost,
            options=MirrorOptions(max_iterations=5,
                                  record_history=False),
        )
        assert result.history == []
