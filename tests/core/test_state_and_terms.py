"""Tests for repro.core.state and repro.core.terms.

Every term's analytic partials are validated against central finite
differences *of that term alone*, holding the other arguments fixed —
which isolates mistakes per-term instead of only catching them in the
total gradient.
"""

import numpy as np
import pytest

from repro.core.state import ChainState
from repro.core.terms import (
    CoverageDeviationTerm,
    EnergyTerm,
    EntropyTerm,
    ExposureTerm,
    broadcast_weights,
)
from repro.markov.fundamental import fundamental_matrix
from repro.markov.passage import first_passage_times
from repro.markov.stationary import stationary_via_linear_solve
from repro import paper_topology


@pytest.fixture
def state(rng):
    matrix = 0.03 + 0.88 * rng.dirichlet(np.ones(4), size=4)
    matrix /= matrix.sum(axis=1, keepdims=True)
    return ChainState.from_matrix(matrix)


def term_value_at(term, p, pi, z):
    """Evaluate a term at explicitly supplied (p, pi, z)."""
    fake = ChainState(p=p, pi=pi, z=z)
    return term.value(fake)


def check_partials(term, state, rng, h=1e-6, atol=1e-4):
    """Finite-difference check of grad_pi, grad_z, grad_p for one term."""
    p, pi, z = state.p, state.pi, state.z
    grad_pi = term.grad_pi(state)
    if grad_pi is not None:
        for _ in range(3):
            d = rng.normal(size=pi.shape)
            numeric = (
                term_value_at(term, p, pi + h * d, z)
                - term_value_at(term, p, pi - h * d, z)
            ) / (2 * h)
            assert numeric == pytest.approx(
                float(grad_pi @ d), abs=atol, rel=1e-4
            )
    grad_z = term.grad_z(state)
    if grad_z is not None:
        for _ in range(3):
            d = rng.normal(size=z.shape)
            numeric = (
                term_value_at(term, p, pi, z + h * d)
                - term_value_at(term, p, pi, z - h * d)
            ) / (2 * h)
            assert numeric == pytest.approx(
                float(np.sum(grad_z * d)), abs=atol, rel=1e-4
            )
    grad_p = term.grad_p(state)
    if grad_p is not None:
        for _ in range(3):
            d = rng.normal(size=p.shape) * 0.01
            numeric = (
                term_value_at(term, p + h * d, pi, z)
                - term_value_at(term, p - h * d, pi, z)
            ) / (2 * h)
            assert numeric == pytest.approx(
                float(np.sum(grad_p * d)), abs=atol, rel=1e-4
            )


class TestChainState:
    def test_from_matrix_computes_consistently(self, state):
        np.testing.assert_allclose(
            state.pi, stationary_via_linear_solve(state.p), atol=1e-12
        )
        np.testing.assert_allclose(
            state.z, fundamental_matrix(state.p, state.pi), atol=1e-12
        )

    def test_r_lazily_computed(self, state):
        np.testing.assert_allclose(
            state.r, first_passage_times(state.p), atol=1e-9
        )

    def test_rejects_non_stochastic(self):
        with pytest.raises(ValueError, match="row-stochastic"):
            ChainState.from_matrix(np.ones((3, 3)))

    def test_rejects_non_ergodic(self):
        blocks = np.array([
            [0.5, 0.5, 0.0, 0.0],
            [0.5, 0.5, 0.0, 0.0],
            [0.0, 0.0, 0.5, 0.5],
            [0.0, 0.0, 0.5, 0.5],
        ])
        with pytest.raises(ValueError):
            ChainState.from_matrix(blocks)

    def test_exposure_times_match_r_formula(self, state):
        """Eq. (3): E_i = sum_{j != i} p_ij R_ji / (1 - p_ii)."""
        r = state.r
        p = state.p
        expected = np.array([
            sum(p[i, j] * r[j, i] for j in range(4) if j != i)
            / (1 - p[i, i])
            for i in range(4)
        ])
        np.testing.assert_allclose(
            state.exposure_times(), expected, atol=1e-9
        )

    def test_exposure_rejects_absorbing(self):
        near_absorbing = np.array([
            [1.0, 0.0],
            [0.5, 0.5],
        ])
        with pytest.raises(ValueError):
            state = ChainState.from_matrix(near_absorbing)
            state.exposure_times()


class TestBroadcastWeights:
    def test_scalar(self):
        np.testing.assert_allclose(broadcast_weights("a", 2.0, 3), 2.0)

    def test_array(self):
        out = broadcast_weights("a", [1.0, 2.0], 2)
        np.testing.assert_allclose(out, [1.0, 2.0])

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match="weights"):
            broadcast_weights("a", -1.0, 3)


class TestCoverageDeviationTerm:
    @pytest.fixture
    def term(self):
        topo = paper_topology(3)
        return CoverageDeviationTerm(
            topo.travel_times, topo.passby, topo.target_shares, alpha=1.0
        )

    def test_partials(self, term, state, rng):
        check_partials(term, state, rng)

    def test_grad_z_is_none(self, term, state):
        assert term.grad_z(state) is None

    def test_value_nonnegative(self, term, state):
        assert term.value(state) >= 0.0

    def test_deviations_match_eq12_sum(self, term, state):
        c = term.deviations(state)
        topo = paper_topology(3)
        passby, travel = topo.passby, topo.travel_times
        phi = topo.target_shares
        for i in range(4):
            expected = sum(
                state.pi[j] * state.p[j, k]
                * (passby[j, k, i] - phi[i] * travel[j, k])
                for j in range(4) for k in range(4)
            )
            assert c[i] == pytest.approx(expected, abs=1e-10)

    def test_shape_validation(self):
        topo = paper_topology(3)
        with pytest.raises(ValueError, match="passby"):
            CoverageDeviationTerm(
                topo.travel_times, np.zeros((2, 2, 2)),
                topo.target_shares, 1.0,
            )
        with pytest.raises(ValueError, match="target_shares"):
            CoverageDeviationTerm(
                topo.travel_times, topo.passby, np.ones(3) / 3, 1.0
            )


class TestExposureTerm:
    def test_partials(self, state, rng):
        check_partials(ExposureTerm(beta=1.0, size=4), state, rng)

    def test_partials_with_per_poi_weights(self, state, rng):
        term = ExposureTerm(beta=[1.0, 0.5, 2.0, 0.1], size=4)
        check_partials(term, state, rng)

    def test_exposures_positive(self, state):
        assert np.all(ExposureTerm(1.0, 4).exposures(state) > 0)

    def test_zero_beta_still_exposes_metrics(self, state):
        term = ExposureTerm(0.0, 4)
        assert term.value(state) == 0.0
        assert np.all(term.exposures(state) > 0)


class TestEnergyTerm:
    @pytest.fixture
    def term(self):
        topo = paper_topology(1)
        return EnergyTerm(topo.distances, weight=0.5, target=40.0)

    def test_partials(self, term, state, rng):
        check_partials(term, state, rng)

    def test_mean_travel_formula(self, term, state):
        topo = paper_topology(1)
        d = topo.distances
        expected = sum(
            state.pi[i] * state.p[i, j] * d[i, j]
            for i in range(4) for j in range(4) if j != i
        )
        assert term.mean_travel(state) == pytest.approx(expected)

    def test_zero_at_target(self, state, term):
        gap_free = EnergyTerm(
            paper_topology(1).distances, weight=1.0,
            target=term.mean_travel(state),
        )
        assert gap_free.value(state) == pytest.approx(0.0, abs=1e-12)

    def test_rejects_negative_weight(self):
        with pytest.raises(ValueError, match="weight"):
            EnergyTerm(np.zeros((2, 2)), weight=-1.0)


class TestEntropyTerm:
    def test_partials(self, state, rng):
        check_partials(EntropyTerm(weight=0.7), state, rng)

    def test_entropy_matches_markov_module(self, state):
        from repro.markov.entropy import entropy_rate

        term = EntropyTerm(weight=1.0)
        assert term.entropy(state) == pytest.approx(
            entropy_rate(state.p, state.pi)
        )

    def test_value_is_negative_weighted_entropy(self, state):
        term = EntropyTerm(weight=2.0)
        assert term.value(state) == pytest.approx(
            -2.0 * term.entropy(state)
        )

    def test_rejects_negative_weight(self):
        with pytest.raises(ValueError, match="weight"):
            EntropyTerm(weight=-0.1)
