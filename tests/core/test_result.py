"""Tests for repro.core.result."""

import numpy as np

from repro.core.result import IterationRecord, OptimizationResult


def make_result(costs):
    history = [
        IterationRecord(
            iteration=i + 1, u_eps=c, u=c, delta_c=c / 2, e_bar=c / 3,
            step=1e-3, gradient_norm=1.0,
        )
        for i, c in enumerate(costs)
    ]
    return OptimizationResult(
        matrix=np.full((2, 2), 0.5),
        u_eps=costs[-1], u=costs[-1], delta_c=costs[-1] / 2,
        e_bar=costs[-1] / 3, iterations=len(costs), converged=True,
        stop_reason="stalled", history=history,
    )


class TestOptimizationResult:
    def test_best_defaults_to_final(self):
        result = make_result([3.0, 2.0, 1.0])
        np.testing.assert_array_equal(result.best_matrix, result.matrix)
        assert result.best_u_eps == 1.0

    def test_traces(self):
        result = make_result([3.0, 2.0, 1.0])
        np.testing.assert_allclose(result.cost_trace(), [3.0, 2.0, 1.0])
        np.testing.assert_allclose(result.u_trace(), [3.0, 2.0, 1.0])
        np.testing.assert_allclose(
            result.delta_c_trace(), [1.5, 1.0, 0.5]
        )
        np.testing.assert_allclose(
            result.e_bar_trace(), [1.0, 2 / 3, 1 / 3]
        )

    def test_empty_history_traces(self):
        result = make_result([1.0])
        result.history.clear()
        assert result.cost_trace().size == 0

    def test_checkpoint_iterations(self):
        result = make_result([1.0])
        result.checkpoints.extend([(5, np.eye(2)), (10, np.eye(2))])
        assert result.checkpoint_iterations() == [5, 10]

    def test_summary_contains_key_fields(self):
        text = make_result([2.0, 1.0]).summary()
        assert "U_eps=1" in text
        assert "stalled" in text

    def test_explicit_best_preserved(self):
        result = OptimizationResult(
            matrix=np.eye(2), u_eps=5.0, u=5.0, delta_c=1.0, e_bar=1.0,
            iterations=1, converged=False, stop_reason="max_iterations",
            best_matrix=np.full((2, 2), 0.5), best_u_eps=2.0,
        )
        assert result.best_u_eps == 2.0
        np.testing.assert_array_equal(
            result.best_matrix, np.full((2, 2), 0.5)
        )
