"""Tests for repro.core.cost and repro.core.gradient.

The decisive test is the finite-difference validation of the full
Eq. (10) total derivative along random row-sum-zero directions — it
exercises Schweitzer adjoints, every term partial, and their assembly.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import CostWeights, CoverageCost, paper_topology
from repro.core.gradient import (
    accumulate_partials,
    directional_derivative,
    projected_gradient,
    total_derivative,
)
from repro.core.state import ChainState
from tests.conftest import random_zero_rowsum_direction


@pytest.fixture
def full_cost(topology1):
    """Cost with every term enabled (coverage, exposure, barrier,
    energy, entropy)."""
    return CoverageCost(
        topology1,
        CostWeights(
            alpha=1.0, beta=0.7, epsilon=1e-3,
            energy_weight=0.02, energy_target=30.0,
            entropy_weight=0.05,
        ),
    )


@pytest.fixture
def interior_matrix(rng):
    matrix = 0.05 + 0.8 * rng.dirichlet(np.ones(4), size=4)
    return matrix / matrix.sum(axis=1, keepdims=True)


class TestCostWeights:
    def test_defaults(self):
        weights = CostWeights()
        assert weights.alpha == 1.0
        assert weights.epsilon == 1e-4

    @pytest.mark.parametrize("epsilon", [0.0, 0.5, -1.0])
    def test_rejects_bad_epsilon(self, epsilon):
        with pytest.raises(ValueError, match="epsilon"):
            CostWeights(epsilon=epsilon)

    def test_rejects_negative_extension_weights(self):
        with pytest.raises(ValueError, match="extension"):
            CostWeights(energy_weight=-1.0)

    def test_frozen(self):
        with pytest.raises(Exception):
            CostWeights().alpha = 2.0


class TestEvaluate:
    def test_breakdown_consistency(self, full_cost, interior_matrix):
        b = full_cost.evaluate(interior_matrix)
        assert b.u_eps == pytest.approx(b.u + b.penalty_value)
        assert b.u == pytest.approx(
            b.coverage_value + b.exposure_value
            + b.energy_value + b.entropy_value
        )
        assert b.coverage_shares.shape == (4,)
        assert b.exposure_times.shape == (4,)

    def test_value_equals_breakdown(self, full_cost, interior_matrix):
        assert full_cost.value(interior_matrix) == pytest.approx(
            full_cost.evaluate(interior_matrix).u_eps
        )

    def test_eq14_identity(self, topology1, interior_matrix):
        """U = alpha/2 dC + beta/2 E^2 with scalar weights (Eq. 14)."""
        alpha, beta = 0.8, 0.3
        cost = CoverageCost(
            topology1, CostWeights(alpha=alpha, beta=beta)
        )
        b = cost.evaluate(interior_matrix)
        assert b.u == pytest.approx(
            0.5 * alpha * b.delta_c + 0.5 * beta * b.e_bar**2
        )

    def test_accepts_state_or_matrix(self, full_cost, interior_matrix):
        state = ChainState.from_matrix(interior_matrix)
        assert full_cost.value(state) \
            == pytest.approx(full_cost.value(interior_matrix))

    def test_coverage_shares_eq2(self, topology1, interior_matrix):
        """C-bar_i = sum pi p T_{jk,i} / sum pi p T_jk."""
        cost = CoverageCost(topology1, CostWeights())
        state = ChainState.from_matrix(interior_matrix)
        shares = cost.coverage_shares(state)
        passby, travel = topology1.passby, topology1.travel_times
        denominator = sum(
            state.pi[j] * state.p[j, k] * travel[j, k]
            for j in range(4) for k in range(4)
        )
        for i in range(4):
            numerator = sum(
                state.pi[j] * state.p[j, k] * passby[j, k, i]
                for j in range(4) for k in range(4)
            )
            assert shares[i] == pytest.approx(numerator / denominator)

    def test_e_bar_eq13(self, full_cost, interior_matrix):
        exposures = full_cost.exposure_times(interior_matrix)
        assert full_cost.e_bar(interior_matrix) == pytest.approx(
            float(np.sqrt(np.sum(exposures**2)))
        )

    def test_delta_c_nonnegative(self, full_cost, interior_matrix):
        assert full_cost.delta_c(interior_matrix) >= 0.0

    def test_identity_minus_uniform_shares_sum_below_one(
        self, full_cost, interior_matrix
    ):
        """Travel time is partly uncovered, so shares sum to < 1."""
        shares = full_cost.coverage_shares(interior_matrix)
        assert shares.sum() < 1.0


class TestGradient:
    def test_matches_finite_difference(
        self, full_cost, interior_matrix, rng
    ):
        state = ChainState.from_matrix(interior_matrix)
        h = 1e-7
        for _ in range(5):
            direction = random_zero_rowsum_direction(rng, 4)
            numeric = (
                full_cost.value(interior_matrix + h * direction)
                - full_cost.value(interior_matrix - h * direction)
            ) / (2 * h)
            analytic = directional_derivative(
                state, full_cost.terms, direction
            )
            assert numeric == pytest.approx(analytic, rel=1e-5, abs=1e-8)

    def test_projected_gradient_rows_sum_zero(
        self, full_cost, interior_matrix
    ):
        projected = full_cost.projected_gradient(interior_matrix)
        np.testing.assert_allclose(
            projected.sum(axis=1), 0.0, atol=1e-10
        )

    def test_descent_direction_decreases_cost(
        self, full_cost, interior_matrix
    ):
        direction = full_cost.descent_direction(interior_matrix)
        baseline = full_cost.value(interior_matrix)
        stepped = full_cost.value(interior_matrix + 1e-7 * direction)
        assert stepped < baseline

    def test_accumulate_skips_missing(self, full_cost, interior_matrix):
        state = ChainState.from_matrix(interior_matrix)
        grad_pi, grad_z, grad_p = accumulate_partials(
            state, [full_cost._penalty]
        )
        assert grad_pi is None
        assert grad_z is None
        assert grad_p is not None

    def test_total_derivative_zero_terms(self, interior_matrix):
        state = ChainState.from_matrix(interior_matrix)
        np.testing.assert_array_equal(
            total_derivative(state, []), np.zeros((4, 4))
        )

    def test_projected_matches_manual(self, full_cost, interior_matrix):
        state = ChainState.from_matrix(interior_matrix)
        total = total_derivative(state, full_cost.terms)
        manual = total - total.mean(axis=1, keepdims=True)
        np.testing.assert_allclose(
            projected_gradient(state, full_cost.terms), manual,
            atol=1e-12,
        )

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 1000))
    def test_property_gradient_check(self, seed):
        rng = np.random.default_rng(seed)
        topology = paper_topology(1)
        cost = CoverageCost(topology, CostWeights(alpha=1.0, beta=1.0))
        matrix = 0.05 + 0.8 * rng.dirichlet(np.ones(4), size=4)
        matrix /= matrix.sum(axis=1, keepdims=True)
        state = ChainState.from_matrix(matrix)
        direction = random_zero_rowsum_direction(rng, 4)
        h = 1e-7
        numeric = (
            cost.value(matrix + h * direction)
            - cost.value(matrix - h * direction)
        ) / (2 * h)
        analytic = directional_derivative(state, cost.terms, direction)
        assert numeric == pytest.approx(analytic, rel=1e-4, abs=1e-7)


class TestBatchValues:
    def test_matches_scalar_path(self, full_cost, rng):
        stack = np.array(
            [rng.dirichlet(np.ones(4), size=4) for _ in range(20)]
        )
        batch = full_cost.batch_values(stack)
        scalar = np.array([full_cost.value(m) for m in stack])
        np.testing.assert_allclose(batch, scalar, rtol=1e-10)

    def test_barrier_band_entries_match(self, topology1, rng):
        cost = CoverageCost(
            topology1, CostWeights(alpha=1.0, beta=1.0, epsilon=1e-2)
        )
        matrix = np.array([
            [0.995, 0.002, 0.002, 0.001],
            [0.25, 0.25, 0.25, 0.25],
            [0.25, 0.25, 0.25, 0.25],
            [0.25, 0.25, 0.25, 0.25],
        ])
        batch = cost.batch_values(matrix[None])
        assert batch[0] == pytest.approx(cost.value(matrix), rel=1e-10)

    def test_infeasible_maps_to_inf(self, full_cost):
        reducible = np.array([
            [1.0, 0.0, 0.0, 0.0],
            [0.0, 1.0, 0.0, 0.0],
            [0.0, 0.0, 1.0, 0.0],
            [0.0, 0.0, 0.0, 1.0],
        ])
        values = full_cost.batch_values(reducible[None])
        assert np.isinf(values[0])

    def test_negative_entries_map_to_inf(self, full_cost):
        bad = np.full((4, 4), 0.25)
        bad = bad.copy()
        bad[0, 0] = -0.25
        bad[0, 1] = 0.75
        values = full_cost.batch_values(bad[None])
        assert np.isinf(values[0])

    def test_empty_stack(self, full_cost):
        assert full_cost.batch_values(
            np.zeros((0, 4, 4))
        ).shape == (0,)

    def test_rejects_wrong_shape(self, full_cost):
        with pytest.raises(ValueError, match="stack"):
            full_cost.batch_values(np.zeros((2, 3, 3)))

    def test_ray_batch(self, full_cost, interior_matrix):
        direction = full_cost.descent_direction(interior_matrix)
        ray = full_cost.ray_batch(interior_matrix, direction)
        steps = np.array([0.0, 1e-6, 1e-5])
        values = ray(steps)
        assert values[0] == pytest.approx(
            full_cost.value(interior_matrix)
        )
        assert values[1] < values[0]
