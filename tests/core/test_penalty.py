"""Tests for repro.core.penalty (the Eq. 9 log-barrier)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.penalty import BarrierPenalty
from repro.core.state import ChainState


@pytest.fixture
def barrier():
    return BarrierPenalty(epsilon=1e-2)


class TestConstruction:
    def test_rejects_nonpositive_epsilon(self):
        with pytest.raises(ValueError, match="epsilon"):
            BarrierPenalty(epsilon=0.0)

    def test_rejects_overlapping_bands(self):
        with pytest.raises(ValueError, match="overlap"):
            BarrierPenalty(epsilon=0.6)


class TestValue:
    def test_zero_in_interior(self, barrier):
        p = np.array([[0.5, 0.3], [0.2, 0.9]])
        np.testing.assert_array_equal(
            barrier.elementwise_value(p), 0.0
        )

    def test_zero_exactly_at_band_edges(self, barrier):
        p = np.array([1e-2, 1.0 - 1e-2])
        np.testing.assert_allclose(
            barrier.elementwise_value(p), 0.0, atol=1e-30
        )

    def test_positive_inside_lower_band(self, barrier):
        assert barrier.elementwise_value(np.array([1e-3]))[0] > 0

    def test_positive_inside_upper_band(self, barrier):
        assert barrier.elementwise_value(np.array([0.9999]))[0] > 0

    def test_infinite_at_boundaries(self, barrier):
        values = barrier.elementwise_value(np.array([0.0, 1.0]))
        assert np.all(np.isinf(values))

    def test_closed_form_lower(self, barrier):
        """phi(p) = -ln(p) (eps - p)^2 / eps for p <= eps."""
        p = 5e-3
        expected = -np.log(p) * (1e-2 - p) ** 2 / 1e-2
        assert barrier.elementwise_value(np.array([p]))[0] \
            == pytest.approx(expected)

    def test_rejects_out_of_range(self, barrier):
        with pytest.raises(ValueError, match="\\[0, 1\\]"):
            barrier.elementwise_value(np.array([1.5]))

    def test_symmetry(self, barrier):
        """phi(p) == phi(1 - p) by construction."""
        p = np.array([1e-3, 2e-3, 9e-3])
        np.testing.assert_allclose(
            barrier.elementwise_value(p),
            barrier.elementwise_value(1.0 - p),
            rtol=1e-12,
        )


class TestGradient:
    def test_zero_in_interior(self, barrier):
        np.testing.assert_array_equal(
            barrier.elementwise_grad(np.array([0.5])), 0.0
        )

    def test_matches_finite_difference(self, barrier):
        h = 1e-9
        for p in [2e-3, 8e-3, 0.993, 0.999]:
            numeric = (
                barrier.elementwise_value(np.array([p + h]))[0]
                - barrier.elementwise_value(np.array([p - h]))[0]
            ) / (2 * h)
            analytic = barrier.elementwise_grad(np.array([p]))[0]
            assert analytic == pytest.approx(numeric, rel=1e-4)

    def test_pushes_away_from_zero(self, barrier):
        """Negative derivative near 0: descent increases p."""
        assert barrier.elementwise_grad(np.array([1e-4]))[0] < 0

    def test_pushes_away_from_one(self, barrier):
        assert barrier.elementwise_grad(np.array([1.0 - 1e-4]))[0] > 0

    def test_continuous_at_band_edge(self, barrier):
        """The barrier is C^1: gradient ~ 0 just inside the band."""
        just_inside = barrier.elementwise_grad(
            np.array([1e-2 - 1e-10])
        )[0]
        assert abs(just_inside) < 1e-6

    def test_rejects_out_of_range(self, barrier):
        with pytest.raises(ValueError):
            barrier.elementwise_grad(np.array([-0.1]))

    @settings(max_examples=50, deadline=None)
    @given(p=st.floats(1e-12, 1.0 - 1e-12))
    def test_property_value_nonnegative(self, p):
        barrier = BarrierPenalty(epsilon=1e-2)
        assert barrier.elementwise_value(np.array([p]))[0] >= 0.0


class TestObjectiveTermInterface:
    def test_state_value_sums_entries(self, barrier):
        matrix = np.array([[0.999, 0.001], [0.5, 0.5]])
        state = ChainState.from_matrix(matrix)
        expected = barrier.elementwise_value(matrix).sum()
        assert barrier.value(state) == pytest.approx(expected)

    def test_grad_p_shape(self, barrier):
        matrix = np.full((3, 3), 1 / 3)
        state = ChainState.from_matrix(matrix)
        assert barrier.grad_p(state).shape == (3, 3)

    def test_no_pi_or_z_dependence(self, barrier):
        matrix = np.full((3, 3), 1 / 3)
        state = ChainState.from_matrix(matrix)
        assert barrier.grad_pi(state) is None
        assert barrier.grad_z(state) is None
