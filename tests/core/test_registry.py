"""The cost-term registry, the ``CostSum`` composer, and their contracts.

The decisive tests are the bit-identity checks: the paper's objective
re-expressed through registry-built terms and ``CostSum`` must match
``CoverageCost``'s values and gradients exactly — not approximately —
on both the plain and the fully-extended weight configurations.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    CostWeights,
    CoverageCost,
    optimize,
    paper_topology,
)
from repro.core.gradient import total_derivative
from repro.core.penalty import BarrierPenalty
from repro.core.registry import (
    TERM_REGISTRY,
    CostSum,
    ScaledTerm,
    TermSpec,
    build_term,
    normalize_extra_terms,
)
from repro.core.terms import CostTerm, KCoverageShortfallTerm

REGISTERED = (
    "coverage", "exposure", "energy", "entropy",
    "minimax", "kcoverage", "periodicity",
)


@pytest.fixture
def interior_matrix(rng):
    matrix = 0.05 + 0.8 * rng.dirichlet(np.ones(4), size=4)
    return matrix / matrix.sum(axis=1, keepdims=True)


class TestRegistry:
    def test_registered_names_snapshot(self):
        assert tuple(TERM_REGISTRY) == REGISTERED

    def test_specs_are_complete(self):
        for name, spec in TERM_REGISTRY.items():
            assert isinstance(spec, TermSpec)
            assert spec.name == name
            assert spec.summary
            assert callable(spec.factory)

    def test_build_term_builds_every_entry(self, topology1):
        for name in TERM_REGISTRY:
            term = build_term(name, topology1, 0.5)
            assert isinstance(term, CostTerm)
            assert term.supports_batch

    def test_unknown_name_rejected(self, topology1):
        with pytest.raises(ValueError, match="unknown cost term"):
            build_term("curvature", topology1)

    def test_unknown_param_rejected_by_name(self, topology1):
        with pytest.raises(ValueError, match="sigma"):
            build_term("minimax", topology1, 1.0, sigma=2.0)

    def test_param_defaults_applied(self, topology1):
        term = build_term("kcoverage", topology1, 1.0)
        assert isinstance(term, KCoverageShortfallTerm)
        assert (term.team, term.k, term.threshold) == (4, 2, 0.5)

    @pytest.mark.parametrize("weight", [-1.0, float("nan"),
                                        float("inf"), [1.0, 2.0]])
    def test_bad_weights_rejected(self, topology1, weight):
        with pytest.raises(ValueError, match="weight"):
            build_term("minimax", topology1, weight)


class TestNormalizeExtraTerms:
    def test_none_and_empty(self):
        assert normalize_extra_terms(None) == ()
        assert normalize_extra_terms([]) == ()

    def test_accepted_forms_agree(self):
        canonical = normalize_extra_terms([("minimax", 1.0)])
        assert normalize_extra_terms(["minimax"]) == canonical
        assert normalize_extra_terms({"minimax": 1.0}) == canonical
        assert normalize_extra_terms(
            [("minimax", 1.0, {})]
        ) == canonical

    def test_params_sorted_canonically(self):
        a = normalize_extra_terms(
            [("kcoverage", 1.0, {"team": 3, "k": 2})]
        )
        b = normalize_extra_terms(
            [("kcoverage", 1.0, {"k": 2, "team": 3})]
        )
        assert a == b

    def test_idempotent(self):
        once = normalize_extra_terms(
            [("minimax", 0.5, {"tau": 4.0}), "periodicity"]
        )
        assert normalize_extra_terms(once) == once

    def test_bare_string_rejected(self):
        with pytest.raises(TypeError, match="bare string"):
            normalize_extra_terms("minimax")

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown cost term"):
            normalize_extra_terms([("nonsense", 1.0)])

    def test_unknown_param_rejected(self):
        with pytest.raises(ValueError, match="zeta"):
            normalize_extra_terms([("periodicity", 1.0, {"zeta": 2})])

    def test_overlong_entry_rejected(self):
        with pytest.raises(ValueError, match="entries"):
            normalize_extra_terms([("minimax", 1.0, {}, "extra")])


class TestCostSum:
    def test_scaled_term_scales_value_and_partials(
        self, topology1, interior_matrix
    ):
        cost = CoverageCost(topology1, CostWeights())
        state = cost.build_state(interior_matrix)
        raw = build_term("minimax", topology1, 1.0)
        scaled = ScaledTerm(raw, 2.5)
        assert scaled.value(state) == 2.5 * raw.value(state)
        np.testing.assert_array_equal(
            scaled.grad_pi(state), 2.5 * raw.grad_pi(state)
        )
        np.testing.assert_array_equal(
            scaled.grad_z(state), 2.5 * raw.grad_z(state)
        )
        assert scaled.supports_batch

    def test_unit_weight_members_are_raw_terms(self, topology1):
        term = build_term("periodicity", topology1, 1.0)
        sum_ = CostSum([("periodicity", 1.0, term)])
        assert sum_.members() == [term]
        assert sum_.member("periodicity") is term

    def test_non_unit_weight_wraps(self, topology1):
        term = build_term("periodicity", topology1, 1.0)
        sum_ = CostSum([("periodicity", 3.0, term)])
        (member,) = sum_.members()
        assert isinstance(member, ScaledTerm)
        assert member.term is term

    def test_unknown_label_rejected(self, topology1):
        term = build_term("minimax", topology1, 1.0)
        with pytest.raises(KeyError, match="no term labeled"):
            CostSum([("minimax", 1.0, term)]).member("exposure")


class TestPaperTermsBitIdentical:
    """The tentpole's equivalence contract: registry-built terms summed
    by ``CostSum`` reproduce ``CoverageCost`` bit for bit."""

    @pytest.mark.parametrize("weights", [
        CostWeights(alpha=1.0, beta=0.7, epsilon=1e-3),
        CostWeights(alpha=1.0, beta=0.7, epsilon=1e-3,
                    energy_weight=0.02, energy_target=30.0,
                    entropy_weight=0.05),
    ])
    def test_value_and_gradient_match_exactly(
        self, topology1, interior_matrix, weights
    ):
        cost = CoverageCost(topology1, weights)
        state = cost.build_state(interior_matrix)
        entries = [
            ("coverage", 1.0,
             TERM_REGISTRY["coverage"].factory(topology1, weights.alpha)),
            ("exposure", 1.0,
             TERM_REGISTRY["exposure"].factory(topology1, weights.beta)),
            ("penalty", 1.0,
             BarrierPenalty(epsilon=weights.epsilon, support=None)),
        ]
        if weights.energy_weight > 0:
            entries.append((
                "energy", 1.0,
                TERM_REGISTRY["energy"].factory(
                    topology1, weights.energy_weight,
                    target=weights.energy_target,
                ),
            ))
        if weights.entropy_weight > 0:
            entries.append((
                "entropy", 1.0,
                TERM_REGISTRY["entropy"].factory(
                    topology1, weights.entropy_weight
                ),
            ))
        hand_wired = CostSum(entries)
        assert hand_wired.value(state) == cost.value(state)
        np.testing.assert_array_equal(
            total_derivative(state, hand_wired.members()),
            cost.gradient(state),
        )

    def test_cost_terms_are_the_sum_members(self, topology1):
        cost = CoverageCost(
            topology1,
            CostWeights(energy_weight=0.1, entropy_weight=0.1),
        )
        assert cost.terms == cost.term_sum.members()
        assert cost.term_sum.labels == [
            "coverage", "exposure", "penalty", "energy", "entropy",
        ]

    def test_paper_batch_values_unchanged_by_empty_composition(
        self, topology1, rng
    ):
        plain = CoverageCost(topology1, CostWeights())
        composed = plain.with_extra_terms(())
        stack = 0.05 + 0.8 * rng.dirichlet(np.ones(4), size=(3, 4))
        stack = stack / stack.sum(axis=2, keepdims=True)
        np.testing.assert_array_equal(
            plain.batch_values(stack), composed.batch_values(stack)
        )


class TestEngineCompatibility:
    def test_scalar_only_term_rejected_at_construction(
        self, topology1, monkeypatch
    ):
        class ScalarOnly(CostTerm):
            def value(self, state):
                return 0.0

        monkeypatch.setitem(
            TERM_REGISTRY,
            "scalaronly",
            TermSpec(
                name="scalaronly",
                factory=lambda topology, weight: ScalarOnly(),
                summary="no batch_value",
            ),
        )
        with pytest.raises(ValueError, match="batch_value"):
            CoverageCost(
                topology1, CostWeights(),
                extra_terms=[("scalaronly", 1.0)],
            )

    def test_base_batch_value_raises(self, topology1):
        class ScalarOnly(CostTerm):
            def value(self, state):
                return 0.0

        term = ScalarOnly()
        assert not term.supports_batch
        with pytest.raises(NotImplementedError, match="batch_value"):
            term.batch_value(None)


class TestCostPlumbing:
    def test_with_extra_terms_noop_returns_self(self, topology1):
        cost = CoverageCost(topology1, CostWeights())
        assert cost.with_extra_terms(None) is cost
        assert cost.with_extra_terms(()) is cost
        composed = cost.with_extra_terms([("minimax", 0.5)])
        assert composed.with_extra_terms([("minimax", 0.5)]) is composed

    def test_with_linalg_preserves_extra_terms(self, topology1):
        cost = CoverageCost(
            topology1, CostWeights(),
            extra_terms=[("periodicity", 0.3)],
        )
        dense = cost.with_linalg("dense")
        assert dense.extra_terms == cost.extra_terms

    def test_breakdown_reports_extras(self, topology1, interior_matrix):
        cost = CoverageCost(
            topology1, CostWeights(),
            extra_terms=[("minimax", 0.5), ("kcoverage", 1.0)],
        )
        breakdown = cost.evaluate(interior_matrix)
        assert [name for name, _ in breakdown.extra_values] == [
            "minimax", "kcoverage",
        ]
        assert breakdown.u_eps == pytest.approx(
            cost.value(interior_matrix)
        )
        total = (
            breakdown.coverage_value + breakdown.exposure_value
            + breakdown.penalty_value
            + sum(value for _, value in breakdown.extra_values)
        )
        assert breakdown.u_eps == pytest.approx(total)

    def test_facade_terms_keyword(self, topology1):
        cost = CoverageCost(paper_topology(1), CostWeights())
        direct = optimize(
            cost.with_extra_terms([("minimax", 0.5)]),
            method="adaptive", seed=3,
            options={"max_iterations": 6, "trisection_rounds": 6},
        )
        via_facade = optimize(
            cost, method="adaptive", seed=3,
            options={"max_iterations": 6, "trisection_rounds": 6},
            terms=[("minimax", 0.5)],
        )
        assert via_facade.best_u_eps == direct.best_u_eps
        np.testing.assert_array_equal(
            via_facade.best_matrix, direct.best_matrix
        )
