"""``linalg`` selection: resolve rules, cost plumbing, facade, CLI.

``linalg="auto"`` must stay bit-exact dense at paper scale (no
adjacency mask, small M) and switch to the sparse solvers only for
large support-masked topologies; explicit selections are honored
everywhere the cost travels — facade, CLI, pickled executor workers.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro import (
    CostWeights,
    CoverageCost,
    optimize,
    optimize_mirror,
    paper_topology,
    scalable_topology,
)
from repro.cli import main
from repro.core.cost import (
    LINALG_MODES,
    SPARSE_AUTO_THRESHOLD,
    resolve_linalg,
)
from repro.core.initializers import paper_random_matrix
from repro.markov.sparse import HAVE_SPARSE

pytestmark = pytest.mark.skipif(
    not HAVE_SPARSE, reason="scipy.sparse unavailable"
)

WEIGHTS = CostWeights(alpha=1.0, beta=1e-3)


def sparse_cost(size=64, seed=5, linalg="auto"):
    topology = scalable_topology("city-grid", size, seed=seed)
    return CoverageCost(topology, WEIGHTS, linalg=linalg)


class TestResolveLinalg:
    def test_modes_snapshot(self):
        assert LINALG_MODES == ("auto", "dense", "sparse")

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError, match="linalg"):
            resolve_linalg("banded", paper_topology(1))

    def test_explicit_selections_honored(self):
        topology = paper_topology(1)
        assert resolve_linalg("dense", topology) == "dense"
        assert resolve_linalg("sparse", topology) == "sparse"

    def test_auto_stays_dense_without_adjacency(self):
        assert resolve_linalg("auto", paper_topology(1)) == "dense"

    def test_auto_stays_dense_below_threshold(self):
        small = scalable_topology("city-grid", 36, seed=1)
        assert small.size < SPARSE_AUTO_THRESHOLD
        assert resolve_linalg("auto", small) == "dense"

    def test_auto_goes_sparse_at_threshold(self):
        large = scalable_topology(
            "city-grid", SPARSE_AUTO_THRESHOLD, seed=1
        )
        assert resolve_linalg("auto", large) == "sparse"


class TestCostPlumbing:
    def test_resolved_linalg_recorded(self):
        assert sparse_cost(linalg="auto").resolved_linalg == "sparse"
        assert sparse_cost(linalg="dense").resolved_linalg == "dense"
        paper = CoverageCost(paper_topology(1), WEIGHTS)
        assert paper.resolved_linalg == "dense"

    def test_with_linalg_noop_returns_self(self):
        cost = sparse_cost(linalg="sparse")
        assert cost.with_linalg(None) is cost
        assert cost.with_linalg("sparse") is cost

    def test_with_linalg_switches_backend(self):
        cost = sparse_cost(linalg="sparse")
        dense = cost.with_linalg("dense")
        assert dense is not cost
        assert dense.resolved_linalg == "dense"
        assert dense.topology is cost.topology

    def test_sparse_state_evaluates_like_dense(self):
        dense = sparse_cost(linalg="dense")
        sparse = dense.with_linalg("sparse")
        matrix = paper_random_matrix(
            dense.size, seed=9, support=dense.support
        )
        assert sparse.value(matrix) == pytest.approx(
            dense.value(matrix), rel=1e-10
        )
        np.testing.assert_allclose(
            sparse.projected_gradient(sparse.build_state(matrix)),
            dense.projected_gradient(dense.build_state(matrix)),
            rtol=1e-6,
        )

    def test_off_support_probability_rejected(self):
        cost = sparse_cost(linalg="sparse")
        matrix = paper_random_matrix(cost.size, seed=2)  # unmasked
        with pytest.raises(ValueError, match="support"):
            cost.build_state(matrix)

    def test_batch_evaluate_returns_no_z_on_sparse_path(self):
        cost = sparse_cost(linalg="sparse")
        matrix = paper_random_matrix(
            cost.size, seed=3, support=cost.support
        )
        values, pis, zs, ok = cost.batch_evaluate(matrix[None])
        assert zs is None
        assert ok[0]
        assert np.isfinite(values[0])

    def test_sparse_cost_pickles_and_still_works(self):
        cost = sparse_cost(linalg="sparse")
        matrix = paper_random_matrix(
            cost.size, seed=4, support=cost.support
        )
        before = cost.value(matrix)
        clone = pickle.loads(pickle.dumps(cost))
        assert clone.resolved_linalg == "sparse"
        assert clone.value(matrix) == pytest.approx(before, rel=1e-12)


class TestFacade:
    def test_linalg_kwarg_rebinds_cost(self):
        cost = sparse_cost(linalg="dense")
        result = optimize(
            cost, method="perturbed", seed=7, linalg="sparse",
            options={"max_iterations": 5, "stall_limit": 100},
        )
        assert np.isfinite(result.best_u_eps)
        # Off-support mass never appears in the sparse run's matrices.
        assert np.all(result.best_matrix[~cost.support] == 0.0)

    def test_linalg_none_leaves_cost_untouched(self):
        cost = sparse_cost(linalg="dense")
        direct = optimize(
            cost, method="perturbed", seed=7,
            options={"max_iterations": 5, "stall_limit": 100},
        )
        explicit = optimize(
            cost, method="perturbed", seed=7, linalg="dense",
            options={"max_iterations": 5, "stall_limit": 100},
        )
        assert (
            direct.best_matrix.tobytes()
            == explicit.best_matrix.tobytes()
        )

    def test_mirror_rejects_support_topologies(self):
        with pytest.raises(ValueError, match="softmax"):
            optimize_mirror(sparse_cost(linalg="sparse"))


class TestCli:
    def test_optimize_accepts_linalg_flag(self, capsys):
        assert main([
            "optimize", "--paper", "1", "--algorithm", "perturbed",
            "--iterations", "5", "--linalg", "dense",
        ]) == 0
        assert "U_eps=" in capsys.readouterr().out

    def test_optimize_rejects_unknown_linalg(self):
        with pytest.raises(SystemExit):
            main([
                "optimize", "--paper", "1", "--linalg", "banded",
            ])

    def test_topology_family_flag(self, capsys):
        assert main([
            "topology", "--family", "city-grid", "--size", "36",
            "--seed", "3",
        ]) == 0
        out = capsys.readouterr().out
        assert "36 PoIs" in out
        assert "sparse support" in out

    def test_family_requires_size(self):
        with pytest.raises(SystemExit):
            main(["topology", "--family", "city-grid"])
