"""Lockstep multi-ray evaluation: fused == per-ray, bit for bit.

Three layers of equivalence, each pinned exactly (``==`` on floats and
raw matrix bytes, not ``allclose``):

* :class:`~repro.core.cost.MultiRayBatch` — fusing several rays' probes
  into one stacked ``batch_evaluate`` returns the same values and
  records the same per-ray winners as evaluating each ray alone;
* :class:`~repro.core.linesearch.TrisectionState` — the state machine
  the lockstep driver advances stage by stage reproduces
  :func:`~repro.core.linesearch.trisection_search` exactly;
* :func:`~repro.core.lockstep.lockstep_multistart` — every start's full
  trajectory (history, matrices, perf accounting) equals the serial
  ``optimize_multistart(..., executor=None)`` run's.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import CostWeights, CoverageCost, PerturbedOptions
from repro.core.cost import MultiRayBatch, RayBatch
from repro.core.linesearch import (
    TrisectionState,
    feasible_step_bound,
    trisection_search,
)
from repro.core.lockstep import lockstep_multistart
from repro.core.multistart import optimize_multistart
from repro.core.initializers import dirichlet_matrix

from tests.conftest import random_zero_rowsum_direction


def _rays_setup(cost, rng, count):
    """``count`` distinct (matrix, direction, steps) ray problems."""
    problems = []
    for index in range(count):
        matrix = dirichlet_matrix(cost.size, floor=0.02, seed=rng)
        direction = random_zero_rowsum_direction(rng, cost.size)
        bound = feasible_step_bound(matrix, direction)
        steps = np.linspace(0.1, 0.9, 4 + index) * bound
        problems.append((matrix, direction, steps))
    return problems


class TestMultiRayBatch:
    def test_fused_values_bitwise_equal_per_ray(self, cost_both, rng):
        problems = _rays_setup(cost_both, rng, 3)
        solo_values = [
            RayBatch(cost_both, m, d)(steps) for m, d, steps in problems
        ]
        batch = cost_both.multi_ray_batch(
            [(m, d) for m, d, _ in problems]
        )
        fused_values = batch.evaluate([s for _, _, s in problems])
        for solo, fused in zip(solo_values, fused_values):
            assert solo.tobytes() == fused.tobytes()

    def test_fused_winner_states_match(self, cost_both, rng):
        problems = _rays_setup(cost_both, rng, 3)
        solo_rays = [
            RayBatch(cost_both, m, d) for m, d, _ in problems
        ]
        for ray, (_, _, steps) in zip(solo_rays, problems):
            ray(steps)
        batch = cost_both.multi_ray_batch(
            [(m, d) for m, d, _ in problems]
        )
        batch.evaluate([s for _, _, s in problems])
        for solo, fused in zip(solo_rays, batch.rays):
            assert solo._best_step == fused._best_step
            assert solo._best_value == fused._best_value
            state_a = solo.state_at(solo._best_step)
            state_b = fused.state_at(fused._best_step)
            assert state_a.p.tobytes() == state_b.p.tobytes()
            assert state_a.pi.tobytes() == state_b.pi.tobytes()
            assert state_a.z.tobytes() == state_b.z.tobytes()

    def test_none_entries_sit_out(self, cost_both, rng):
        problems = _rays_setup(cost_both, rng, 3)
        batch = cost_both.multi_ray_batch(
            [(m, d) for m, d, _ in problems]
        )
        values = batch.evaluate(
            [problems[0][2], None, problems[2][2]]
        )
        assert values[1] is None
        assert values[0] is not None and values[2] is not None
        # The sat-out ray recorded no winner.
        assert batch.rays[1]._best_parts is None

    def test_all_none_is_a_noop(self, cost_both, rng):
        problems = _rays_setup(cost_both, rng, 2)
        batch = cost_both.multi_ray_batch(
            [(m, d) for m, d, _ in problems]
        )
        assert batch.evaluate([None, None]) == [None, None]
        assert batch.probe_states([None, None]) == [None, None]
        assert len(batch) == 2

    def test_fused_probe_states_match(self, cost_both, rng):
        problems = _rays_setup(cost_both, rng, 3)
        solo = [
            RayBatch(cost_both, m, d).probe_state(float(steps[0]))
            for m, d, steps in problems
        ]
        batch = cost_both.multi_ray_batch(
            [(m, d) for m, d, _ in problems]
        )
        fused = batch.probe_states(
            [float(steps[0]) for _, _, steps in problems]
        )
        for (value_a, state_a), (value_b, state_b) in zip(solo, fused):
            assert value_a == value_b
            assert (state_a is None) == (state_b is None)
            if state_a is not None:
                assert state_a.p.tobytes() == state_b.p.tobytes()
                assert state_a.pi.tobytes() == state_b.pi.tobytes()
                assert state_a.z.tobytes() == state_b.z.tobytes()


class TestTrisectionState:
    def test_state_machine_matches_trisection_search(
        self, cost_both, rng
    ):
        for _ in range(3):
            matrix = dirichlet_matrix(cost_both.size, floor=0.02, seed=rng)
            direction = random_zero_rowsum_direction(rng, cost_both.size)
            bound = feasible_step_bound(matrix, direction)
            baseline = cost_both.value(matrix)

            reference = trisection_search(
                upper=bound, baseline=baseline, rounds=9,
                geometric_decades=6,
                batch_objective=RayBatch(cost_both, matrix, direction),
            )

            ray = RayBatch(cost_both, matrix, direction)
            search = TrisectionState(
                upper=bound, baseline=baseline, rounds=9,
                geometric_decades=6,
            )
            probes = search.sweep_steps()
            if probes is not None:
                values = np.asarray(ray(probes), dtype=float)
                values[~np.isfinite(values)] = np.inf
                search.observe_sweep(values)
                while True:
                    pair = search.round_steps()
                    if pair is None:
                        break
                    values = np.asarray(ray(pair), dtype=float)
                    values[~np.isfinite(values)] = np.inf
                    search.observe_round(values[0], values[1])
            lockstep = search.result()

            assert lockstep.step == reference.step
            assert lockstep.value == reference.value
            assert lockstep.evaluations == reference.evaluations
            assert lockstep.step_bound == reference.step_bound

    def test_infeasible_bound_finishes_immediately(self):
        search = TrisectionState(upper=0.0, baseline=1.0)
        assert search.finished
        assert search.sweep_steps() is None
        assert search.round_steps() is None
        assert search.result().step == 0.0

    def test_nonfinite_baseline_finishes_immediately(self):
        search = TrisectionState(upper=1.0, baseline=np.inf)
        assert search.finished
        assert search.result().step == 0.0


class TestLockstepMultistart:
    def _assert_identical(self, serial, lockstep):
        assert serial.start_labels == lockstep.start_labels
        assert serial.best_label == lockstep.best_label
        assert serial.best.best_u_eps == lockstep.best.best_u_eps
        for run_a, run_b in zip(serial.runs, lockstep.runs):
            assert run_a.best_u_eps == run_b.best_u_eps
            assert (
                run_a.best_matrix.tobytes() == run_b.best_matrix.tobytes()
            )
            assert run_a.matrix.tobytes() == run_b.matrix.tobytes()
            assert run_a.iterations == run_b.iterations
            assert run_a.stop_reason == run_b.stop_reason
            # Per-iteration trajectories, not just endpoints.
            assert run_a.history == run_b.history
            assert len(run_a.checkpoints) == len(run_b.checkpoints)
            for (it_a, p_a), (it_b, p_b) in zip(
                run_a.checkpoints, run_b.checkpoints
            ):
                assert it_a == it_b
                assert p_a.tobytes() == p_b.tobytes()

    def test_bit_identical_to_serial(self, cost_both):
        opts = PerturbedOptions(
            max_iterations=10, stall_limit=100, checkpoint_every=4
        )
        serial = optimize_multistart(
            cost_both, random_starts=3, seed=3, options=opts,
            executor=None,
        )
        lockstep = lockstep_multistart(
            cost_both, random_starts=3, seed=3, options=opts
        )
        self._assert_identical(serial, lockstep)

    def test_perf_accounting_matches_serial(self, cost_both):
        opts = PerturbedOptions(max_iterations=6, stall_limit=100)
        serial = optimize_multistart(
            cost_both, random_starts=2, seed=5, options=opts
        )
        lockstep = lockstep_multistart(
            cost_both, random_starts=2, seed=5, options=opts
        )
        for run_a, run_b in zip(serial.runs, lockstep.runs):
            perf_a, perf_b = run_a.perf, run_b.perf
            assert perf_a.accepted_steps == perf_b.accepted_steps
            assert (
                perf_a.accept_factorizations
                == perf_b.accept_factorizations
            )
            assert perf_a.factorizations == perf_b.factorizations
            assert perf_a.state_builds == perf_b.state_builds
            assert perf_a.states_reused == perf_b.states_reused
            assert perf_a.batch_calls == perf_b.batch_calls
            assert perf_a.batch_matrices == perf_b.batch_matrices

    def test_execution_knob_routes_to_lockstep(self, cost_both):
        opts = PerturbedOptions(max_iterations=6, stall_limit=100)
        direct = lockstep_multistart(
            cost_both, random_starts=2, seed=4, options=opts
        )
        routed = optimize_multistart(
            cost_both, random_starts=2, seed=4, options=opts,
            execution="lockstep",
        )
        self._assert_identical(direct, routed)

    def test_execution_serial_equals_default(self, cost_both):
        opts = PerturbedOptions(max_iterations=5, stall_limit=100)
        default = optimize_multistart(
            cost_both, random_starts=2, seed=4, options=opts
        )
        explicit = optimize_multistart(
            cost_both, random_starts=2, seed=4, options=opts,
            execution="serial",
        )
        self._assert_identical(default, explicit)

    def test_execution_and_executor_conflict(self, cost_both):
        with pytest.raises(ValueError, match="not both"):
            optimize_multistart(
                cost_both, execution="lockstep", executor="serial"
            )

    def test_lockstep_requires_default_optimizer(self, cost_both):
        from repro.core.adaptive import optimize_adaptive

        with pytest.raises(ValueError, match="perturbed"):
            optimize_multistart(
                cost_both, optimizer=optimize_adaptive,
                execution="lockstep",
            )

    def test_other_topology_and_weights(self, topology3):
        """Exposure-heavy weighting on the line topology, same identity."""
        cost = CoverageCost(
            topology3, CostWeights(alpha=1.0, beta=1e-3)
        )
        opts = PerturbedOptions(max_iterations=8, stall_limit=100)
        serial = optimize_multistart(
            cost, random_starts=2, seed=11, options=opts
        )
        lockstep = lockstep_multistart(
            cost, random_starts=2, seed=11, options=opts
        )
        self._assert_identical(serial, lockstep)
