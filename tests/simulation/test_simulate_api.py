"""The ``repro.simulate`` façade: routing, options coercion, snapshot.

Mirrors ``tests/core/test_api.py``: for every registered kind and every
engine/execution combination, ``simulate(..., kind=k)`` must be
*bit-identical* to calling the kind's function directly with the same
arguments; the registry surface and the error contract are pinned the
same way.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro import (
    SIMULATOR_REGISTRY,
    SimulationOptions,
    SimulatorSpec,
    TeamOptions,
    simulate,
    simulate_schedule,
)
from repro.experiments.runner import simulate_repeatedly
from repro.multisensor import simulate_team, simulate_team_repeatedly


@pytest.fixture(scope="module")
def topology():
    return repro.paper_topology(1)


@pytest.fixture(scope="module")
def matrix(topology):
    return repro.metropolis_hastings_matrix(topology.target_shares)


def _same_simulation(a, b):
    assert a.transitions == b.transitions
    assert a.total_time == b.total_time
    assert a.coverage_shares.tobytes() == b.coverage_shares.tobytes()
    assert a.delta_c == b.delta_c
    assert a.e_bar_transitions == b.e_bar_transitions
    assert a.exposure_physical.tobytes() == b.exposure_physical.tobytes()
    assert a.start_state == b.start_state
    assert a.end_state == b.end_state


def _same_team(a, b):
    assert a.sensors == b.sensors
    assert a.horizon == b.horizon
    assert a.coverage_shares.tobytes() == b.coverage_shares.tobytes()
    assert a.per_sensor_shares.tobytes() == b.per_sensor_shares.tobytes()
    assert np.array_equal(a.exposure_mean, b.exposure_mean,
                          equal_nan=True)
    assert np.array_equal(a.transitions, b.transitions)


class TestSingleEquivalence:
    @pytest.mark.parametrize("engine", ["vectorized", "loop"])
    def test_each_engine_bit_identical(self, topology, matrix, engine):
        direct = simulate_schedule(
            topology, matrix, transitions=400, seed=5,
            options=SimulationOptions(engine=engine, warmup=20),
        )
        routed = simulate(
            topology, matrix, kind="single", transitions=400, seed=5,
            options={"engine": engine, "warmup": 20},
        )
        _same_simulation(direct, routed)

    def test_engine_keyword_shorthand(self, topology, matrix):
        direct = simulate_schedule(
            topology, matrix, transitions=300, seed=2,
            options=SimulationOptions(engine="loop"),
        )
        routed = simulate(
            topology, matrix, transitions=300, seed=2, engine="loop"
        )
        _same_simulation(direct, routed)

    def test_default_kind_is_single(self, topology, matrix):
        direct = simulate_schedule(topology, matrix, transitions=200,
                                   seed=9)
        routed = simulate(topology, matrix, transitions=200, seed=9)
        _same_simulation(direct, routed)

    @pytest.mark.parametrize("execution", [None, "serial", "thread"])
    def test_repetitions_match_driver(self, topology, matrix, execution):
        direct = simulate_repeatedly(
            topology, matrix, 300, repetitions=3, seed=4,
            executor=execution,
        )
        routed = simulate(
            topology, matrix, transitions=300, repetitions=3, seed=4,
            execution=execution,
        )
        assert len(routed) == 3
        for one, other in zip(direct, routed):
            _same_simulation(one, other)

    def test_repetitions_with_explicit_warmup(self, topology, matrix):
        direct = simulate_repeatedly(
            topology, matrix, 300, repetitions=2, seed=4, warmup=10,
            engine="loop",
        )
        routed = simulate(
            topology, matrix, transitions=300, repetitions=2, seed=4,
            options={"warmup": 10, "engine": "loop"},
        )
        for one, other in zip(direct, routed):
            _same_simulation(one, other)


class TestTeamEquivalence:
    @pytest.mark.parametrize("engine", ["vectorized", "loop"])
    def test_each_engine_bit_identical(self, topology, matrix, engine):
        direct = simulate_team(
            topology, [matrix, matrix], horizon=800.0, seed=5,
            engine=engine,
        )
        routed = simulate(
            topology, matrix, kind="team", sensors=2, horizon=800.0,
            seed=5, engine=engine,
        )
        _same_team(direct, routed)

    def test_matrix_sequence_and_starts(self, topology, matrix):
        other = repro.uniform_policy_matrix(topology.size)
        direct = simulate_team(
            topology, [matrix, other], horizon=500.0, seed=3,
            starts=(0, 2),
        )
        routed = simulate(
            topology, [matrix, other], kind="team", horizon=500.0,
            seed=3, options=TeamOptions(starts=(0, 2)),
        )
        _same_team(direct, routed)

    @pytest.mark.parametrize("execution", [None, "serial", "thread"])
    def test_repetitions_match_driver(self, topology, matrix, execution):
        direct = simulate_team_repeatedly(
            topology, [matrix], 400.0, repetitions=3, seed=6,
            executor=execution,
        )
        routed = simulate(
            topology, matrix, kind="team", horizon=400.0,
            repetitions=3, seed=6, execution=execution,
        )
        assert len(routed) == 3
        for one, other in zip(direct, routed):
            _same_team(one, other)


class TestFacadeErrors:
    def test_unknown_kind_lists_registry(self, topology, matrix):
        with pytest.raises(ValueError, match="team"):
            simulate(topology, matrix, kind="swarm", transitions=10)

    def test_missing_required_argument(self, topology, matrix):
        with pytest.raises(ValueError, match="transitions"):
            simulate(topology, matrix, kind="single")
        with pytest.raises(ValueError, match="horizon"):
            simulate(topology, matrix, kind="team")

    def test_wrong_duration_axis_rejected(self, topology, matrix):
        with pytest.raises(ValueError, match="horizon"):
            simulate(topology, matrix, kind="single", transitions=10,
                     horizon=5.0)
        with pytest.raises(ValueError, match="transitions"):
            simulate(topology, matrix, kind="team", horizon=5.0,
                     transitions=10)

    def test_unknown_keyword_named(self, topology, matrix):
        with pytest.raises(ValueError, match="frobnicate"):
            simulate(topology, matrix, transitions=10, frobnicate=2)

    def test_sensors_rejected_for_single(self, topology, matrix):
        with pytest.raises(ValueError, match="sensors"):
            simulate(topology, matrix, transitions=10, sensors=3)

    def test_unknown_option_key_named(self, topology, matrix):
        with pytest.raises(ValueError, match="bogus"):
            simulate(topology, matrix, transitions=10,
                     options={"bogus": 1})

    def test_execution_requires_repetitions(self, topology, matrix):
        with pytest.raises(ValueError, match="repetitions"):
            simulate(topology, matrix, transitions=10,
                     execution="thread")

    def test_conflicting_engines_rejected(self, topology, matrix):
        with pytest.raises(ValueError, match="conflicting"):
            simulate(topology, matrix, transitions=10, engine="loop",
                     options={"engine": "vectorized"})

    def test_bad_engine_named(self, topology, matrix):
        with pytest.raises(ValueError, match="loop"):
            simulate(topology, matrix, transitions=10, engine="warp")

    def test_sensor_count_conflict(self, topology, matrix):
        with pytest.raises(ValueError, match="sensors"):
            simulate(topology, [matrix, matrix], kind="team",
                     horizon=10.0, sensors=3)


class TestRegistry:
    def test_registry_snapshot(self):
        assert list(SIMULATOR_REGISTRY) == ["single", "team"]

    def test_specs_are_complete(self):
        for name, spec in SIMULATOR_REGISTRY.items():
            assert isinstance(spec, SimulatorSpec)
            assert spec.name == name
            assert callable(spec.func)
            assert callable(spec.repeat_func)
            assert spec.required in ("transitions", "horizon")
            assert spec.summary

    def test_direct_entry_points_still_importable(self):
        from repro.multisensor.engine import simulate_team  # noqa: F401
        from repro.simulation.engine import (  # noqa: F401
            simulate_schedule,
        )


class TestPublicApiSnapshot:
    def test_facade_names_exported(self):
        for name in (
            "simulate", "SIMULATOR_REGISTRY", "SimulatorSpec",
            "TeamOptions", "SimulationOptions",
        ):
            assert name in repro.__all__
            assert hasattr(repro, name)
