"""Tests for repro.simulation.capture (event-capture metric)."""

import numpy as np
import pytest

from repro import paper_topology, uniform_matrix
from repro.simulation.capture import (
    _count_caught,
    _gap_lengths,
    _merge,
    capture_probability_approximation,
    simulate_event_capture,
)


@pytest.fixture(scope="module")
def topology():
    return paper_topology(1)


@pytest.fixture(scope="module")
def run(topology):
    return simulate_event_capture(
        topology, uniform_matrix(4), horizon=200_000.0,
        rates=0.002, lifetime=30.0, seed=0,
    )


class TestHelpers:
    def test_merge(self):
        assert _merge([(0, 2), (1, 3), (5, 6)]) == [(0, 3), (5, 6)]

    def test_merge_empty(self):
        assert _merge([]) == []

    def test_gap_lengths(self):
        gaps = _gap_lengths([(1.0, 2.0), (4.0, 5.0)], horizon=10.0)
        assert gaps == [1.0, 2.0, 5.0]

    def test_gap_lengths_full_coverage(self):
        assert _gap_lengths([(0.0, 10.0)], horizon=10.0) == []

    def test_count_caught_inside_interval(self):
        merged = [(10.0, 20.0)]
        caught = _count_caught(
            merged, np.array([15.0]), lifetime=0.0, horizon=100.0
        )
        assert caught == 1

    def test_count_caught_by_waiting(self):
        merged = [(10.0, 20.0)]
        # Event at t=5 with lifetime 6 survives until coverage at 10.
        assert _count_caught(
            merged, np.array([5.0]), 6.0, 100.0
        ) == 1
        # Lifetime 4 expires at 9, before coverage.
        assert _count_caught(
            merged, np.array([5.0]), 4.0, 100.0
        ) == 0

    def test_count_caught_no_coverage(self):
        assert _count_caught([], np.array([5.0]), 100.0, 100.0) == 0


class TestValidation:
    def test_rejects_bad_horizon(self, topology):
        with pytest.raises(ValueError, match="horizon"):
            simulate_event_capture(
                topology, uniform_matrix(4), 0.0, 0.1, 1.0
            )

    def test_rejects_negative_lifetime(self, topology):
        with pytest.raises(ValueError, match="lifetime"):
            simulate_event_capture(
                topology, uniform_matrix(4), 100.0, 0.1, -1.0
            )

    def test_rejects_negative_rates(self, topology):
        with pytest.raises(ValueError, match="rates"):
            simulate_event_capture(
                topology, uniform_matrix(4), 100.0, -0.1, 1.0
            )

    def test_rejects_size_mismatch(self, topology):
        with pytest.raises(ValueError, match="size"):
            simulate_event_capture(
                topology, uniform_matrix(3), 100.0, 0.1, 1.0
            )

    def test_rejects_non_stochastic(self, topology):
        with pytest.raises(ValueError, match="stochastic"):
            simulate_event_capture(
                topology, np.ones((4, 4)), 100.0, 0.1, 1.0
            )


class TestCapture:
    def test_fractions_in_unit_interval(self, run):
        valid = run.capture_fraction[~np.isnan(run.capture_fraction)]
        assert np.all((valid >= 0) & (valid <= 1))

    def test_reproducible(self, topology):
        a = simulate_event_capture(
            topology, uniform_matrix(4), 20_000.0, 0.01, 30.0, seed=3
        )
        b = simulate_event_capture(
            topology, uniform_matrix(4), 20_000.0, 0.01, 30.0, seed=3
        )
        np.testing.assert_array_equal(
            a.capture_fraction, b.capture_fraction
        )

    def test_longer_lifetime_catches_more(self, topology):
        short = simulate_event_capture(
            topology, uniform_matrix(4), 100_000.0, 0.005, 10.0, seed=1
        )
        long = simulate_event_capture(
            topology, uniform_matrix(4), 100_000.0, 0.005, 200.0, seed=1
        )
        assert long.overall_capture > short.overall_capture

    def test_zero_rate_poi_has_no_events(self, topology):
        result = simulate_event_capture(
            topology, uniform_matrix(4), 10_000.0,
            rates=[0.01, 0.0, 0.01, 0.01], lifetime=10.0, seed=2,
        )
        assert result.event_counts[1] == 0
        assert np.isnan(result.capture_fraction[1])

    def test_capture_at_least_coverage(self, run):
        """With a positive lifetime, capture beats instant coverage."""
        valid = ~np.isnan(run.capture_fraction)
        assert np.all(
            run.capture_fraction[valid]
            >= run.coverage_shares[valid] - 0.05
        )

    def test_overall_is_weighted_mean(self, run):
        valid = ~np.isnan(run.capture_fraction)
        expected = (
            (run.capture_fraction[valid] * run.event_counts[valid]).sum()
            / run.event_counts.sum()
        )
        assert run.overall_capture == pytest.approx(expected)


class TestApproximation:
    def test_matches_simulation(self, run):
        approx = capture_probability_approximation(
            run.coverage_shares, run.mean_gaps, 30.0
        )
        valid = ~np.isnan(run.capture_fraction)
        np.testing.assert_allclose(
            approx[valid], run.capture_fraction[valid], atol=0.1
        )

    def test_zero_lifetime_reduces_to_coverage(self):
        approx = capture_probability_approximation(
            np.array([0.3]), np.array([50.0]), 0.0
        )
        np.testing.assert_allclose(approx, [0.3])

    def test_infinite_gap_reduces_to_coverage(self):
        approx = capture_probability_approximation(
            np.array([0.3]), np.array([np.inf]), 100.0
        )
        np.testing.assert_allclose(approx, [0.3])

    def test_always_covered_is_one(self):
        approx = capture_probability_approximation(
            np.array([1.0]), np.array([np.nan]), 5.0
        )
        np.testing.assert_allclose(approx, [1.0])

    def test_monotone_in_lifetime(self):
        c = np.array([0.2])
        m = np.array([40.0])
        values = [
            capture_probability_approximation(c, m, tau)[0]
            for tau in (0.0, 10.0, 100.0, 1000.0)
        ]
        assert values == sorted(values)
        assert values[-1] <= 1.0 + 1e-12

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError, match="lifetime"):
            capture_probability_approximation(
                np.array([0.5]), np.array([1.0]), -1.0
            )
        with pytest.raises(ValueError, match="shares"):
            capture_probability_approximation(
                np.array([1.5]), np.array([1.0]), 1.0
            )
