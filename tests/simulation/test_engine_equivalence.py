"""Loop-vs-vectorized engine equivalence.

The vectorized engine's contract is stronger than "close": it consumes
the RNG stream identically to the per-step loop engine and computes every
metric with the same floating-point operations, so whole
:class:`SimulationResult` objects must match **bit for bit** — which
trivially satisfies the documented 1e-12 tolerance.  These tests sweep
topologies, warmup settings, start states, path recording, and
self-loop-heavy matrices.
"""

from dataclasses import fields

import numpy as np
import pytest

from repro import SimulationOptions, paper_topology, simulate_schedule
from repro.topology.random_gen import random_topology


def _run_both(topology, matrix, transitions, seed, **kwargs):
    return tuple(
        simulate_schedule(
            topology, matrix, transitions, seed=seed,
            options=SimulationOptions(engine=engine, **kwargs),
        )
        for engine in ("loop", "vectorized")
    )


def _assert_identical(loop, vectorized):
    for field in fields(loop):
        expected = getattr(loop, field.name)
        actual = getattr(vectorized, field.name)
        if expected is None:
            assert actual is None, field.name
            continue
        expected = np.asarray(expected)
        actual = np.asarray(actual)
        assert expected.shape == actual.shape, field.name
        equal_nan = expected.dtype.kind == "f"
        assert np.array_equal(actual, expected, equal_nan=equal_nan), (
            f"{field.name}: {actual} != {expected}"
        )
        # The documented guarantee is <= 1e-12; bit-identity implies it,
        # but assert the public contract explicitly for float fields.
        if equal_nan:
            assert np.allclose(
                actual, expected, rtol=1e-12, atol=1e-12, equal_nan=True
            ), field.name


def _random_matrix(size, rng, self_loop_boost=0.0):
    raw = rng.random((size, size)) + self_loop_boost * np.eye(size)
    return raw / raw.sum(axis=1, keepdims=True)


@pytest.mark.parametrize("topology_id", [1, 2, 3, 4])
def test_paper_topologies_bit_identical(topology_id):
    topology = paper_topology(topology_id)
    rng = np.random.default_rng(topology_id)
    matrix = _random_matrix(topology.size, rng)
    loop, vectorized = _run_both(
        topology, matrix, transitions=400, seed=17 + topology_id,
        warmup=25, record_path=True,
    )
    _assert_identical(loop, vectorized)


@pytest.mark.parametrize("warmup", [0, 1, 500])
def test_warmup_settings(warmup):
    topology = paper_topology(2)
    matrix = _random_matrix(topology.size, np.random.default_rng(5))
    loop, vectorized = _run_both(
        topology, matrix, transitions=300, seed=warmup, warmup=warmup,
        record_path=True,
    )
    _assert_identical(loop, vectorized)


@pytest.mark.parametrize("start_state", [None, 0, 3])
def test_start_state_selection(start_state):
    topology = paper_topology(1)
    matrix = _random_matrix(topology.size, np.random.default_rng(8))
    loop, vectorized = _run_both(
        topology, matrix, transitions=200, seed=3,
        start_state=start_state, record_path=True,
    )
    _assert_identical(loop, vectorized)
    if start_state is not None:
        assert loop.start_state == start_state


def test_record_path_off_returns_no_path():
    topology = paper_topology(3)
    matrix = _random_matrix(topology.size, np.random.default_rng(1))
    loop, vectorized = _run_both(
        topology, matrix, transitions=150, seed=9, record_path=False,
    )
    assert vectorized.path is None
    _assert_identical(loop, vectorized)


def test_self_loop_heavy_matrix():
    """Mostly-dwelling sensors exercise the dwell-interval branch."""
    topology = random_topology(10, seed=2)
    rng = np.random.default_rng(4)
    matrix = _random_matrix(topology.size, rng, self_loop_boost=15.0)
    loop, vectorized = _run_both(
        topology, matrix, transitions=2_000, seed=21, warmup=50,
        record_path=True,
    )
    _assert_identical(loop, vectorized)


def test_random_topologies_property_sweep():
    """Randomized sizes/matrices/seeds, all bit-identical."""
    rng = np.random.default_rng(123)
    for _ in range(6):
        size = int(rng.integers(3, 14))
        topology = random_topology(size, seed=int(rng.integers(1000)))
        matrix = _random_matrix(
            topology.size, rng,
            self_loop_boost=float(rng.uniform(0.0, 5.0)),
        )
        loop, vectorized = _run_both(
            topology, matrix,
            transitions=int(rng.integers(50, 800)),
            seed=int(rng.integers(10_000)),
            warmup=int(rng.integers(0, 100)),
            record_path=True,
        )
        _assert_identical(loop, vectorized)


def test_engine_option_validation():
    with pytest.raises(ValueError, match="engine"):
        SimulationOptions(engine="warp-drive")


def test_default_engine_is_vectorized():
    assert SimulationOptions().engine == "vectorized"
