"""Tests for repro.simulation.engine.

The decisive checks compare long-run simulated averages against the
closed-form quantities of Section III — coverage shares (Eq. 2) and
exposure times (Eq. 3) — which ties the whole pipeline together.
"""

import numpy as np
import pytest

from repro import (
    CostWeights,
    CoverageCost,
    SimulationOptions,
    paper_topology,
    simulate_schedule,
    uniform_matrix,
)
from repro.core.state import ChainState


@pytest.fixture(scope="module")
def topology():
    return paper_topology(3)


@pytest.fixture(scope="module")
def matrix():
    rng = np.random.default_rng(3)
    m = 0.05 + 0.8 * rng.dirichlet(np.ones(4), size=4)
    return m / m.sum(axis=1, keepdims=True)


@pytest.fixture(scope="module")
def long_run(topology, matrix):
    return simulate_schedule(
        topology, matrix, transitions=150_000, seed=42,
        options=SimulationOptions(warmup=1000),
    )


class TestValidation:
    def test_rejects_size_mismatch(self, topology):
        with pytest.raises(ValueError, match="size"):
            simulate_schedule(topology, uniform_matrix(3), 100)

    def test_rejects_non_stochastic(self, topology):
        with pytest.raises(ValueError, match="stochastic"):
            simulate_schedule(topology, np.ones((4, 4)), 100)

    def test_rejects_zero_transitions(self, topology):
        with pytest.raises(ValueError, match="transitions"):
            simulate_schedule(topology, uniform_matrix(4), 0)

    def test_rejects_bad_start(self, topology):
        with pytest.raises(ValueError, match="start_state"):
            simulate_schedule(
                topology, uniform_matrix(4), 10,
                options=SimulationOptions(start_state=9),
            )

    def test_rejects_negative_warmup(self):
        with pytest.raises(ValueError, match="warmup"):
            SimulationOptions(warmup=-1)


class TestBasicBehavior:
    def test_deterministic_given_seed(self, topology, matrix):
        a = simulate_schedule(topology, matrix, 500, seed=7)
        b = simulate_schedule(topology, matrix, 500, seed=7)
        assert a.total_time == b.total_time
        np.testing.assert_array_equal(a.visit_counts, b.visit_counts)

    def test_record_path(self, topology, matrix):
        result = simulate_schedule(
            topology, matrix, 100, seed=1,
            options=SimulationOptions(record_path=True, start_state=2),
        )
        assert result.path.shape == (101,)
        assert result.path[0] == 2
        assert result.start_state == 2
        assert result.end_state == result.path[-1]

    def test_no_path_by_default(self, topology, matrix):
        result = simulate_schedule(topology, matrix, 100, seed=1)
        assert result.path is None

    def test_time_accounting(self, topology, matrix):
        result = simulate_schedule(
            topology, matrix, 200, seed=2,
            options=SimulationOptions(record_path=True),
        )
        travel = topology.travel_times
        expected = sum(
            travel[result.path[n], result.path[n + 1]]
            for n in range(200)
        )
        assert result.total_time == pytest.approx(expected)

    def test_visit_counts_sum(self, topology, matrix):
        result = simulate_schedule(topology, matrix, 300, seed=3)
        assert result.visit_counts.sum() == 300

    def test_occupancy_is_distribution(self, topology, matrix):
        result = simulate_schedule(topology, matrix, 300, seed=3)
        assert result.occupancy.sum() == pytest.approx(1.0)

    def test_occupancy_counts_measured_start_state(self, topology, matrix):
        """Documented convention: occupancy is the empirical distribution
        of all ``transitions + 1`` measured states, including the state
        occupied at the start of the measured window."""
        transitions = 250
        result = simulate_schedule(
            topology, matrix, transitions, seed=3,
            options=SimulationOptions(warmup=40, record_path=True),
        )
        assert result.path.size == transitions + 1
        assert result.path[0] == result.start_state
        expected = np.bincount(
            result.path, minlength=topology.size
        ) / (transitions + 1)
        np.testing.assert_array_equal(result.occupancy, expected)

    def test_summary_renders(self, topology, matrix):
        text = simulate_schedule(topology, matrix, 50, seed=0).summary()
        assert "N=50" in text


class TestConvergenceToAnalytic:
    def test_coverage_shares_match_eq2(self, topology, matrix, long_run):
        cost = CoverageCost(topology, CostWeights())
        analytic = cost.coverage_shares(matrix)
        np.testing.assert_allclose(
            long_run.coverage_shares, analytic, atol=5e-3
        )

    def test_occupancy_matches_stationary(
        self, topology, matrix, long_run
    ):
        state = ChainState.from_matrix(matrix)
        np.testing.assert_allclose(
            long_run.occupancy, state.pi, atol=5e-3
        )

    def test_exposure_transitions_match_eq3(
        self, topology, matrix, long_run
    ):
        state = ChainState.from_matrix(matrix)
        analytic = state.exposure_times()
        np.testing.assert_allclose(
            long_run.exposure_transitions, analytic, rtol=0.05
        )

    def test_delta_c_matches_eq12(self, topology, matrix, long_run):
        cost = CoverageCost(topology, CostWeights())
        analytic = cost.delta_c(matrix)
        assert long_run.delta_c == pytest.approx(analytic, rel=0.05)

    def test_e_bar_transitions_matches_eq13(
        self, topology, matrix, long_run
    ):
        cost = CoverageCost(topology, CostWeights())
        analytic = cost.e_bar(matrix)
        assert long_run.e_bar_transitions \
            == pytest.approx(analytic, rel=0.05)

    def test_physical_exposure_close_to_transition_exposure(
        self, topology, matrix, long_run
    ):
        """The physical measurement (variable durations, pass-by
        interruptions) lands near the transition-count one but not
        exactly on it — the paper's Section VI-D observation."""
        ratio = (
            long_run.e_bar_physical_normalized
            / long_run.e_bar_transitions
        )
        assert 0.5 < ratio < 2.0

    def test_physical_coverage_exceeds_schedule_coverage(
        self, topology, matrix, long_run
    ):
        """Physically the sensor also covers the origin while departing
        and the destination while approaching, which the schedule
        convention does not credit."""
        assert long_run.physical_coverage_shares.sum() \
            > long_run.coverage_shares.sum()


class TestWarmup:
    def test_warmup_changes_start(self, topology, matrix):
        cold = simulate_schedule(
            topology, matrix, 50, seed=9,
            options=SimulationOptions(start_state=0, warmup=0),
        )
        warm = simulate_schedule(
            topology, matrix, 50, seed=9,
            options=SimulationOptions(start_state=0, warmup=100),
        )
        assert cold.start_state == 0
        # After warmup the start state is whatever the chain reached.
        assert warm.transitions == cold.transitions
