"""Tests for repro.simulation.events."""

import numpy as np
import pytest

from repro.simulation.events import ExposureTracker, IntervalAccumulator


class TestIntervalAccumulator:
    def test_single_interval(self):
        acc = IntervalAccumulator()
        acc.add(2.0, 5.0)
        assert acc.covered_time == pytest.approx(3.0)
        # The stretch [0, 2) before first coverage is one gap.
        assert acc.gap_count == 1
        assert acc.gap_total == pytest.approx(2.0)

    def test_no_initial_gap_when_covered_from_origin(self):
        acc = IntervalAccumulator()
        acc.add(0.0, 3.0)
        assert acc.gap_count == 0

    def test_merging_overlapping(self):
        acc = IntervalAccumulator()
        acc.add(0.0, 2.0)
        acc.add(1.0, 3.0)
        assert acc.covered_time == pytest.approx(3.0)
        assert acc.gap_count == 0

    def test_merging_touching(self):
        acc = IntervalAccumulator()
        acc.add(0.0, 2.0)
        acc.add(2.0, 4.0)
        assert acc.covered_time == pytest.approx(4.0)
        assert acc.gap_count == 0

    def test_gap_recorded(self):
        acc = IntervalAccumulator()
        acc.add(0.0, 1.0)
        acc.add(4.0, 5.0)
        acc.add(7.0, 8.0)
        assert acc.gap_count == 2
        assert acc.gap_total == pytest.approx(3.0 + 2.0)
        assert acc.mean_gap() == pytest.approx(2.5)

    def test_mean_gap_nan_when_none(self):
        acc = IntervalAccumulator()
        acc.add(0.0, 1.0)
        assert np.isnan(acc.mean_gap())

    def test_contained_interval_ignored(self):
        acc = IntervalAccumulator()
        acc.add(0.0, 10.0)
        acc.add(2.0, 3.0)
        assert acc.covered_time == pytest.approx(10.0)

    def test_rejects_reversed_interval(self):
        acc = IntervalAccumulator()
        with pytest.raises(ValueError, match="end"):
            acc.add(5.0, 2.0)

    def test_rejects_unordered_starts(self):
        acc = IntervalAccumulator()
        acc.add(5.0, 6.0)
        with pytest.raises(ValueError, match="order"):
            acc.add(1.0, 2.0)

    def test_custom_origin(self):
        acc = IntervalAccumulator(origin=10.0)
        acc.add(12.0, 13.0)
        assert acc.gap_total == pytest.approx(2.0)


class TestExposureTracker:
    def test_simple_round_trip(self):
        """0 -> 1 -> 0: PoI 0's segment is 1 transition."""
        tracker = ExposureTracker(2, start_state=0)
        tracker.record(1, 0, 1)
        tracker.record(2, 1, 0)
        means = tracker.mean_segments()
        assert means[0] == pytest.approx(1.0)

    def test_longer_absence(self):
        """0 -> 1 -> 2 -> 0 on 3 states: segment for 0 is 2."""
        tracker = ExposureTracker(3, start_state=0)
        tracker.record(1, 0, 1)
        tracker.record(2, 1, 2)
        tracker.record(3, 2, 0)
        assert tracker.mean_segments()[0] == pytest.approx(2.0)

    def test_self_loops_do_not_end_segments(self):
        """Self-loop at 1 extends PoI 0's segment."""
        tracker = ExposureTracker(2, start_state=0)
        tracker.record(1, 0, 1)
        tracker.record(2, 1, 1)
        tracker.record(3, 1, 1)
        tracker.record(4, 1, 0)
        assert tracker.mean_segments()[0] == pytest.approx(3.0)

    def test_initial_absence_counted_from_zero(self):
        """States not visited initially accumulate from step 0."""
        tracker = ExposureTracker(3, start_state=0)
        tracker.record(1, 0, 2)
        # PoI 2 was away since step 0; arrival at step 1: segment 1.
        assert tracker.mean_segments()[2] == pytest.approx(1.0)

    def test_never_revisited_is_nan(self):
        tracker = ExposureTracker(3, start_state=0)
        tracker.record(1, 0, 1)
        assert np.isnan(tracker.mean_segments()[0]) is np.True_ or \
            np.isnan(tracker.mean_segments()[0])

    def test_counts(self):
        tracker = ExposureTracker(2, start_state=0)
        tracker.record(1, 0, 1)
        tracker.record(2, 1, 0)
        tracker.record(3, 0, 1)
        tracker.record(4, 1, 0)
        assert tracker.counts[0] == 2

    def test_mean_matches_expected_return_time(self):
        """Long 2-state simulation: mean segment -> R_10 = 1/b."""
        rng = np.random.default_rng(0)
        a, b = 0.3, 0.5
        matrix = np.array([[1 - a, a], [b, 1 - b]])
        tracker = ExposureTracker(2, start_state=0)
        state = 0
        for step in range(1, 100_000):
            nxt = int(rng.random() < matrix[state, 1])
            tracker.record(step, state, nxt)
            state = nxt
        means = tracker.mean_segments()
        # Leaving 0 lands at 1; return time from 1 is geometric mean 1/b.
        assert means[0] == pytest.approx(1.0 / b, rel=0.05)
        assert means[1] == pytest.approx(1.0 / a, rel=0.05)

    def test_validates_arguments(self):
        with pytest.raises(ValueError, match="size"):
            ExposureTracker(0, 0)
        with pytest.raises(ValueError, match="start_state"):
            ExposureTracker(3, 5)
