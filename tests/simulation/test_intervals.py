"""Tests for repro.simulation.intervals.

The array kernels are checked two ways: against tiny hand-computed
examples, and against the reference implementations they replace
(:class:`IntervalAccumulator` and brute-force loops) on randomized
interval streams.
"""

import numpy as np
import pytest

from repro.simulation.events import IntervalAccumulator
from repro.simulation.intervals import (
    count_caught,
    gap_lengths,
    grouped_coverage,
    merge_intervals,
)


def _random_stream(rng, count, max_start=100.0):
    starts = np.sort(rng.uniform(0.0, max_start, size=count))
    lengths = rng.uniform(0.0, 5.0, size=count)
    return starts, starts + lengths


class TestMergeIntervals:
    def test_empty(self):
        starts, ends = merge_intervals(np.array([]), np.array([]))
        assert starts.size == 0 and ends.size == 0

    def test_hand_example(self):
        starts, ends = merge_intervals(
            np.array([0.0, 1.0, 5.0]), np.array([2.0, 3.0, 6.0])
        )
        assert starts.tolist() == [0.0, 5.0]
        assert ends.tolist() == [2.0 + 1.0, 6.0]

    def test_contained_interval(self):
        starts, ends = merge_intervals(
            np.array([0.0, 1.0, 1.5]), np.array([10.0, 2.0, 11.0])
        )
        assert starts.tolist() == [0.0]
        assert ends.tolist() == [11.0]

    def test_unsorted_input_is_sorted(self):
        starts, ends = merge_intervals(
            np.array([5.0, 0.0]), np.array([6.0, 1.0])
        )
        assert starts.tolist() == [0.0, 5.0]

    def test_merge_tol_bridges_small_gaps(self):
        starts, ends = merge_intervals(
            np.array([0.0, 1.0 + 5e-10]), np.array([1.0, 2.0]),
            merge_tol=1e-9,
        )
        assert starts.size == 1
        assert ends[0] == 2.0

    def test_random_against_brute_force(self):
        rng = np.random.default_rng(7)
        for _ in range(20):
            s, e = _random_stream(rng, int(rng.integers(1, 40)))
            order = rng.permutation(s.size)
            merged_s, merged_e = merge_intervals(s[order], e[order])
            expected = []
            for lo, hi in sorted(zip(s.tolist(), e.tolist())):
                if expected and lo <= expected[-1][1]:
                    expected[-1][1] = max(expected[-1][1], hi)
                else:
                    expected.append([lo, hi])
            assert merged_s.tolist() == [lo for lo, _ in expected]
            assert merged_e.tolist() == [hi for _, hi in expected]


class TestGapLengths:
    def test_hand_example_with_horizon(self):
        gaps = gap_lengths(
            np.array([1.0, 4.0]), np.array([2.0, 5.0]), horizon=10.0
        )
        assert gaps.tolist() == [1.0, 2.0, 5.0]

    def test_no_horizon_drops_trailing_gap(self):
        gaps = gap_lengths(np.array([1.0, 4.0]), np.array([2.0, 5.0]))
        assert gaps.tolist() == [1.0, 2.0]

    def test_full_coverage_no_gaps(self):
        gaps = gap_lengths(np.array([0.0]), np.array([10.0]), horizon=10.0)
        assert gaps.size == 0

    def test_empty_timeline_is_one_gap(self):
        gaps = gap_lengths(np.array([]), np.array([]), horizon=7.0)
        assert gaps.tolist() == [7.0]


class TestCountCaught:
    def test_hand_example(self):
        starts = np.array([2.0, 8.0])
        ends = np.array([4.0, 9.0])
        # t=0: window [0, 1] misses; t=3 inside; t=5: window [5, 6]
        # misses; t=7.5: window reaches 8.5 -> caught.
        times = np.array([0.0, 3.0, 5.0, 7.5])
        assert count_caught(starts, ends, times, 1.0, 10.0) == 2

    def test_window_clipped_to_horizon(self):
        starts, ends = np.array([9.5]), np.array([10.0])
        assert count_caught(starts, ends, np.array([9.0]), 100.0, 9.2) == 0

    def test_empty_cases(self):
        assert count_caught(np.array([]), np.array([]),
                            np.array([1.0]), 1.0, 10.0) == 0
        assert count_caught(np.array([0.0]), np.array([1.0]),
                            np.array([]), 1.0, 10.0) == 0

    def test_random_against_per_event_loop(self):
        rng = np.random.default_rng(11)
        for _ in range(20):
            s, e = _random_stream(rng, int(rng.integers(1, 30)))
            merged_s, merged_e = merge_intervals(s, e)
            times = np.sort(rng.uniform(0.0, 110.0, size=25))
            lifetime = float(rng.uniform(0.0, 4.0))
            horizon = 110.0
            expected = 0
            for t in times:
                window_end = min(t + lifetime, horizon)
                idx = int(np.searchsorted(merged_e, t))
                if idx < merged_s.size and merged_s[idx] <= window_end:
                    expected += 1
            assert count_caught(
                merged_s, merged_e, times, lifetime, horizon
            ) == expected


class TestGroupedCoverage:
    def test_matches_interval_accumulator_bitwise(self):
        rng = np.random.default_rng(3)
        size = 6
        for _ in range(10):
            count = int(rng.integers(1, 120))
            poi = np.sort(rng.integers(size, size=count))
            starts = np.empty(count)
            ends = np.empty(count)
            # Per PoI, emit intervals with non-decreasing starts (the
            # accumulator's contract).
            for index in range(size):
                mask = poi == index
                n = int(mask.sum())
                s, e = _random_stream(rng, n) if n else (np.empty(0),) * 2
                starts[mask] = s
                ends[mask] = e
            covered, gap_sum, gap_count = grouped_coverage(
                poi, starts, ends, size
            )
            for index in range(size):
                acc = IntervalAccumulator(origin=0.0)
                mask = poi == index
                for lo, hi in zip(starts[mask], ends[mask]):
                    acc.add(lo, hi)
                # Bit-identical, not approximately equal.
                assert covered[index] == acc.covered_time
                assert gap_sum[index] == acc.gap_total
                assert gap_count[index] == acc.gap_count

    def test_empty_poi_reports_zero(self):
        covered, gap_sum, gap_count = grouped_coverage(
            np.array([2]), np.array([1.0]), np.array([3.0]), size=4
        )
        assert covered.tolist() == [0.0, 0.0, 2.0, 0.0]
        assert gap_sum.tolist() == [0.0, 0.0, 1.0, 0.0]
        assert gap_count.tolist() == [0, 0, 1, 0]

    def test_leading_gap_under_tolerance_not_counted(self):
        covered, gap_sum, gap_count = grouped_coverage(
            np.array([0]), np.array([5e-10]), np.array([1.0]), size=1
        )
        assert gap_count[0] == 0
        assert gap_sum[0] == 0.0

    def test_rejects_nothing_but_handles_single_interval(self):
        covered, gap_sum, gap_count = grouped_coverage(
            np.array([0]), np.array([2.0]), np.array([5.0]), size=1
        )
        assert covered[0] == 3.0
        assert gap_sum[0] == 2.0
        assert gap_count[0] == 1
