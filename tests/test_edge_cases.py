"""Edge cases and failure injection across the pipeline.

Scenarios outside the benchmarks' happy path: per-PoI weights,
asymmetric pause times, minimal and larger-than-paper topologies, and
malformed inputs reaching the optimizers.
"""

import numpy as np
import pytest

from repro import (
    CostWeights,
    CoverageCost,
    PerturbedOptions,
    SimulationOptions,
    Topology,
    grid_topology,
    line_topology,
    optimize_adaptive,
    optimize_perturbed,
    simulate_schedule,
    uniform_matrix,
)
from repro.core.state import ChainState
from tests.conftest import random_zero_rowsum_direction


class TestPerPoiWeights:
    def test_cost_accepts_weight_arrays(self):
        topology = line_topology(
            3, target_shares=[0.5, 0.25, 0.25]
        )
        cost = CoverageCost(
            topology,
            CostWeights(alpha=[2.0, 1.0, 0.5], beta=[0.1, 1.0, 0.1]),
        )
        value = cost.value(uniform_matrix(3))
        assert np.isfinite(value) and value > 0

    def test_gradient_check_with_weight_arrays(self, rng):
        topology = line_topology(3, target_shares=[0.5, 0.25, 0.25])
        cost = CoverageCost(
            topology,
            CostWeights(alpha=[2.0, 1.0, 0.5], beta=[0.1, 1.0, 0.1]),
        )
        matrix = 0.1 + 0.6 * rng.dirichlet(np.ones(3), size=3)
        matrix /= matrix.sum(axis=1, keepdims=True)
        state = ChainState.from_matrix(matrix)
        from repro.core.gradient import directional_derivative

        h = 1e-7
        direction = random_zero_rowsum_direction(rng, 3)
        numeric = (
            cost.value(matrix + h * direction)
            - cost.value(matrix - h * direction)
        ) / (2 * h)
        analytic = directional_derivative(state, cost.terms, direction)
        assert numeric == pytest.approx(analytic, rel=1e-4, abs=1e-7)

    def test_zero_alpha_on_one_poi_ignores_its_deviation(self):
        """A PoI with alpha_i = 0 contributes nothing to the coverage
        term no matter how badly it misses its target."""
        topology = line_topology(3, target_shares=[0.8, 0.1, 0.1])
        cost = CoverageCost(
            topology, CostWeights(alpha=[0.0, 1.0, 1.0], beta=0.0)
        )
        full = CoverageCost(
            topology, CostWeights(alpha=1.0, beta=0.0)
        )
        matrix = uniform_matrix(3)
        assert cost.value(matrix) < full.value(matrix)

    def test_optimizer_runs_with_weight_arrays(self):
        topology = line_topology(3, target_shares=[0.5, 0.25, 0.25])
        cost = CoverageCost(
            topology, CostWeights(alpha=[1.0, 2.0, 1.0], beta=0.5)
        )
        result = optimize_perturbed(
            cost, seed=0,
            options=PerturbedOptions(max_iterations=25,
                                     trisection_rounds=12),
        )
        assert np.isfinite(result.best_u_eps)


class TestAsymmetricPauses:
    @pytest.fixture
    def topology(self):
        return Topology(
            positions=[(0, 0), (100, 0), (200, 0)],
            target_shares=[0.5, 0.25, 0.25],
            sensing_radius=30.0,
            pause_times=[30.0, 5.0, 5.0],
        )

    def test_travel_times_reflect_destination_pause(self, topology):
        travel = topology.travel_times
        assert travel[1, 0] == pytest.approx(10.0 + 30.0)
        assert travel[0, 1] == pytest.approx(10.0 + 5.0)

    def test_simulation_time_accounting(self, topology):
        result = simulate_schedule(
            topology, uniform_matrix(3), transitions=500, seed=0,
            options=SimulationOptions(record_path=True),
        )
        travel = topology.travel_times
        expected = sum(
            travel[result.path[n], result.path[n + 1]]
            for n in range(500)
        )
        assert result.total_time == pytest.approx(expected)

    def test_long_pause_attracts_coverage(self, topology):
        """Sitting at the long-pause PoI accumulates more coverage per
        visit, so uniform transitions give it a larger share."""
        cost = CoverageCost(topology, CostWeights())
        shares = cost.coverage_shares(uniform_matrix(3))
        assert shares[0] > shares[1]
        assert shares[0] > shares[2]


class TestMinimalTopology:
    def test_two_poi_pipeline(self):
        topology = Topology(
            positions=[(0, 0), (100, 0)],
            target_shares=[0.7, 0.3],
            sensing_radius=20.0,
        )
        cost = CoverageCost(topology, CostWeights(alpha=1.0, beta=0.1))
        result = optimize_adaptive(
            cost, seed=0,
            options=__import__("repro").AdaptiveOptions(
                max_iterations=60, trisection_rounds=15
            ),
        )
        sim = simulate_schedule(
            topology, result.matrix, transitions=20_000, seed=1
        )
        assert sim.coverage_shares[0] > sim.coverage_shares[1]

    def test_two_poi_exposure_identity(self):
        """With 2 PoIs, E_i = R_ji exactly (only one place to go)."""
        topology = Topology(
            positions=[(0, 0), (100, 0)],
            target_shares=[0.5, 0.5],
            sensing_radius=20.0,
        )
        matrix = np.array([[0.6, 0.4], [0.3, 0.7]])
        state = ChainState.from_matrix(matrix)
        exposure = state.exposure_times()
        r = state.r
        assert exposure[0] == pytest.approx(r[1, 0])
        assert exposure[1] == pytest.approx(r[0, 1])


class TestLargerTopology:
    def test_twelve_poi_smoke(self):
        topology = grid_topology(3, 4)
        cost = CoverageCost(topology, CostWeights(alpha=1.0, beta=1.0))
        result = optimize_perturbed(
            cost, seed=0,
            options=PerturbedOptions(max_iterations=20,
                                     trisection_rounds=10),
        )
        assert np.isfinite(result.best_u_eps)
        assert result.best_matrix.shape == (12, 12)

    def test_batch_values_scale(self):
        topology = grid_topology(3, 4)
        cost = CoverageCost(topology, CostWeights())
        rng = np.random.default_rng(0)
        stack = np.array(
            [rng.dirichlet(np.ones(12), size=12) for _ in range(8)]
        )
        batch = cost.batch_values(stack)
        scalar = np.array([cost.value(m) for m in stack])
        np.testing.assert_allclose(batch, scalar, rtol=1e-9)


class TestFailureInjection:
    def test_optimizer_rejects_non_ergodic_initial(self, cost_both):
        blocks = np.array([
            [0.5, 0.5, 0.0, 0.0],
            [0.5, 0.5, 0.0, 0.0],
            [0.0, 0.0, 0.5, 0.5],
            [0.0, 0.0, 0.5, 0.5],
        ])
        with pytest.raises(ValueError):
            optimize_adaptive(cost_both, initial=blocks)

    def test_optimizer_rejects_non_stochastic_initial(self, cost_both):
        with pytest.raises(ValueError):
            optimize_perturbed(cost_both, initial=np.ones((4, 4)))

    def test_cost_rejects_wrong_size_matrix(self, cost_both):
        with pytest.raises(ValueError):
            cost_both.value(uniform_matrix(3))

    def test_simulation_rejects_matrix_with_nan(self, topology1):
        bad = uniform_matrix(4)
        bad[0, 0] = np.nan
        with pytest.raises(ValueError):
            simulate_schedule(topology1, bad, transitions=10)

    def test_exposure_blows_up_informatively_near_absorbing(
        self, topology1
    ):
        nearly = np.full((4, 4), 1e-14)
        np.fill_diagonal(nearly, 1.0 - 3e-14)
        nearly /= nearly.sum(axis=1, keepdims=True)
        cost = CoverageCost(topology1, CostWeights())
        with pytest.raises(ValueError, match="p_ii|ergodic"):
            cost.exposure_times(nearly)
