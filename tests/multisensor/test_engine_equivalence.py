"""Loop-vs-vectorized team engine equivalence.

The vectorized team engine's contract mirrors the single-sensor one
(``tests/simulation/test_engine_equivalence.py``): it consumes each
sensor's spawned RNG stream identically to the per-event loop engine and
computes every metric with the same floating-point operations, so whole
:class:`TeamSimulationResult` objects must match **bit for bit** — no
tolerances.  These tests sweep team sizes, heterogeneous matrices,
explicit starts, short and long horizons, and self-loop-heavy sensors.
"""

from dataclasses import fields

import numpy as np
import pytest

from repro import paper_topology, uniform_matrix
from repro.multisensor import check_team_result, simulate_team
from repro.topology.random_gen import random_topology


def _run_both(topology, matrices, horizon, seed, starts=None):
    return tuple(
        simulate_team(
            topology, matrices, horizon, seed=seed, starts=starts,
            engine=engine,
        )
        for engine in ("loop", "vectorized")
    )


def _assert_identical(loop, vectorized):
    for field in fields(loop):
        expected = np.asarray(getattr(loop, field.name))
        actual = np.asarray(getattr(vectorized, field.name))
        assert expected.shape == actual.shape, field.name
        equal_nan = expected.dtype.kind == "f"
        assert np.array_equal(actual, expected, equal_nan=equal_nan), (
            f"{field.name}: {actual} != {expected}"
        )
    check_team_result(vectorized)


def _random_matrix(size, rng, self_loop_boost=0.0):
    raw = rng.random((size, size)) + self_loop_boost * np.eye(size)
    return raw / raw.sum(axis=1, keepdims=True)


@pytest.mark.parametrize("topology_id", [1, 2, 3, 4])
def test_paper_topologies_bit_identical(topology_id):
    topology = paper_topology(topology_id)
    rng = np.random.default_rng(topology_id)
    matrices = [
        _random_matrix(topology.size, rng) for _ in range(3)
    ]
    loop, vectorized = _run_both(
        topology, matrices, horizon=20_000.0, seed=31 + topology_id
    )
    _assert_identical(loop, vectorized)


@pytest.mark.parametrize("team_size", [1, 2, 4, 7])
def test_team_sizes(team_size):
    topology = paper_topology(2)
    matrix = _random_matrix(topology.size, np.random.default_rng(6))
    loop, vectorized = _run_both(
        topology, [matrix] * team_size, horizon=15_000.0, seed=team_size
    )
    _assert_identical(loop, vectorized)


def test_explicit_starts():
    topology = paper_topology(1)
    matrix = uniform_matrix(topology.size)
    loop, vectorized = _run_both(
        topology, [matrix] * 3, horizon=8_000.0, seed=4,
        starts=[0, 2, 3],
    )
    _assert_identical(loop, vectorized)


def test_short_horizon_first_transition_clipped():
    """A horizon inside the very first transition exercises clipping."""
    topology = paper_topology(3)
    matrix = _random_matrix(topology.size, np.random.default_rng(2))
    loop, vectorized = _run_both(
        topology, [matrix] * 2, horizon=3.0, seed=11
    )
    assert np.all(loop.transitions == 1)
    _assert_identical(loop, vectorized)


def test_self_loop_heavy_team():
    """Mostly-dwelling sensors make the horizon sampler over-draw in
    several chunks (many short pause-only transitions)."""
    topology = random_topology(8, seed=3)
    rng = np.random.default_rng(7)
    matrices = [
        _random_matrix(topology.size, rng, self_loop_boost=20.0)
        for _ in range(3)
    ]
    loop, vectorized = _run_both(
        topology, matrices, horizon=30_000.0, seed=13
    )
    _assert_identical(loop, vectorized)


def test_heterogeneous_random_sweep():
    """Randomized sizes/teams/horizons/starts, all bit-identical."""
    rng = np.random.default_rng(321)
    for trial in range(5):
        size = int(rng.integers(3, 12))
        topology = random_topology(size, seed=int(rng.integers(1000)))
        team = int(rng.integers(1, 6))
        matrices = [
            _random_matrix(
                size, rng, self_loop_boost=float(rng.uniform(0.0, 6.0))
            )
            for _ in range(team)
        ]
        starts = (
            None if trial % 2 == 0
            else [int(s) for s in rng.integers(0, size, team)]
        )
        loop, vectorized = _run_both(
            topology, matrices,
            horizon=float(rng.uniform(20.0, 25_000.0)),
            seed=int(rng.integers(10_000)),
            starts=starts,
        )
        _assert_identical(loop, vectorized)


def test_engine_validation():
    topology = paper_topology(1)
    with pytest.raises(ValueError, match="engine"):
        simulate_team(
            topology, [uniform_matrix(4)], horizon=100.0,
            engine="warp-drive",
        )


def test_default_engine_is_vectorized():
    """The default must match the loop reference (i.e. be the vectorized
    engine, not a third behavior)."""
    topology = paper_topology(1)
    matrix = uniform_matrix(4)
    default = simulate_team(topology, [matrix] * 2, 5_000.0, seed=9)
    explicit = simulate_team(
        topology, [matrix] * 2, 5_000.0, seed=9, engine="vectorized"
    )
    np.testing.assert_array_equal(
        default.coverage_shares, explicit.coverage_shares
    )
