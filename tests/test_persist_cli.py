"""Tests for repro.persist and the command-line interface."""

import json

import numpy as np
import pytest

from repro import paper_topology, uniform_matrix
from repro.cli import EXPERIMENTS, build_parser, main
from repro.core.result import OptimizationResult
from repro.persist import (
    load_matrix,
    load_topology,
    result_to_dict,
    save_matrix,
    save_result,
    save_topology,
    topology_from_dict,
    topology_to_dict,
)


class TestTopologyRoundTrip:
    def test_round_trip_preserves_everything(self, tmp_path):
        original = paper_topology(3)
        path = tmp_path / "topo.json"
        save_topology(original, path)
        loaded = load_topology(path)
        assert loaded.name == original.name
        np.testing.assert_allclose(
            loaded.target_shares, original.target_shares
        )
        np.testing.assert_allclose(
            loaded.travel_times, original.travel_times
        )
        np.testing.assert_allclose(loaded.passby, original.passby)

    def test_dict_schema_checked(self):
        with pytest.raises(ValueError, match="schema"):
            topology_from_dict({"schema": "wrong"})

    def test_dict_contains_schema(self):
        data = topology_to_dict(paper_topology(1))
        assert data["schema"] == "repro/topology/v1"

    def test_defaults_applied(self):
        data = topology_to_dict(paper_topology(1))
        del data["speed"], data["pause_times"]
        loaded = topology_from_dict(data)
        assert loaded.speed == 10.0


class TestMatrixRoundTrip:
    def test_round_trip_exact(self, tmp_path):
        matrix = np.random.default_rng(0).dirichlet(np.ones(4), size=4)
        path = tmp_path / "m.json"
        save_matrix(matrix, path)
        np.testing.assert_array_equal(load_matrix(path), matrix)

    def test_rejects_non_square_save(self, tmp_path):
        with pytest.raises(ValueError, match="square"):
            save_matrix(np.ones((2, 3)), tmp_path / "m.json")

    def test_rejects_wrong_schema(self, tmp_path):
        path = tmp_path / "m.json"
        path.write_text(json.dumps({"schema": "nope", "matrix": []}))
        with pytest.raises(ValueError, match="schema"):
            load_matrix(path)


class TestResultSerialization:
    def test_result_to_dict(self, tmp_path):
        result = OptimizationResult(
            matrix=uniform_matrix(3), u_eps=1.5, u=1.4, delta_c=0.5,
            e_bar=2.0, iterations=10, converged=True,
            stop_reason="stalled",
        )
        data = result_to_dict(result)
        assert data["u_eps"] == 1.5
        assert data["stop_reason"] == "stalled"
        path = tmp_path / "r.json"
        save_result(result, path)
        restored = json.loads(path.read_text())
        assert restored["best_u_eps"] == 1.5


class TestCli:
    def test_parser_builds(self):
        parser = build_parser()
        args = parser.parse_args(["topology", "--paper", "1"])
        assert args.command == "topology"

    def test_experiment_registry_complete(self):
        for name in ("table1", "table3", "figure2a", "figure8",
                     "baselines"):
            assert name in EXPERIMENTS

    def test_topology_command(self, tmp_path, capsys):
        path = tmp_path / "t.json"
        code = main(["topology", "--paper", "1", "--save", str(path)])
        assert code == 0
        assert path.exists()
        out = capsys.readouterr().out
        assert "4 PoIs" in out

    def test_topology_grid(self, capsys):
        assert main(["topology", "--grid", "2", "2"]) == 0
        assert "grid-2x2" in capsys.readouterr().out

    def test_topology_requires_source(self):
        with pytest.raises(SystemExit):
            main(["topology"])

    def test_optimize_and_simulate_pipeline(self, tmp_path, capsys):
        topo = tmp_path / "t.json"
        matrix = tmp_path / "p.json"
        result = tmp_path / "r.json"
        assert main(
            ["topology", "--paper", "1", "--save", str(topo)]
        ) == 0
        assert main([
            "optimize", "--topology", str(topo),
            "--alpha", "1", "--beta", "1",
            "--algorithm", "perturbed", "--iterations", "20",
            "--save-matrix", str(matrix),
            "--save-result", str(result),
        ]) == 0
        assert matrix.exists() and result.exists()
        capsys.readouterr()  # drain the topology/optimize output
        outputs = {}
        for engine in ("vectorized", "loop"):
            assert main([
                "simulate", "--topology", str(topo),
                "--matrix", str(matrix),
                "--transitions", "1000", "--warmup", "50",
                "--engine", engine,
            ]) == 0
            outputs[engine] = capsys.readouterr().out
        assert "coverage shares" in outputs["vectorized"]
        assert outputs["vectorized"] == outputs["loop"]

    def test_optimize_basic_algorithm(self, capsys):
        assert main([
            "optimize", "--paper", "1", "--algorithm", "basic",
            "--iterations", "10", "--step-size", "1e-6",
        ]) == 0
        assert "U_eps=" in capsys.readouterr().out

    def test_optimize_requires_topology(self):
        with pytest.raises(SystemExit):
            main(["optimize", "--alpha", "1"])

    def test_experiment_command(self, capsys, monkeypatch):
        # Patch in a tiny experiment so the test stays fast.
        from repro import cli

        def fake(seed=None):
            from repro.experiments.reporting import TableResult

            return TableResult(
                experiment_id="T", title="t", columns=["c"], rows=[[1]]
            )

        monkeypatch.setitem(cli.EXPERIMENTS, "table1", fake)
        assert main(["experiment", "table1"]) == 0
        assert "T" in capsys.readouterr().out

    def test_tradeoff_command(self, capsys):
        assert main([
            "tradeoff", "--paper", "1", "--points", "2",
            "--iterations", "30",
        ]) == 0
        out = capsys.readouterr().out
        assert "pareto" in out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["experiment", "not-a-thing"])


class TestCliTeam:
    def test_team_command(self, tmp_path, capsys):
        topo = tmp_path / "t.json"
        matrix = tmp_path / "p.json"
        assert main(["topology", "--paper", "1", "--save", str(topo)]) == 0
        assert main([
            "optimize", "--topology", str(topo), "--iterations", "15",
            "--save-matrix", str(matrix),
        ]) == 0
        assert main([
            "team", "--topology", str(topo), "--matrix", str(matrix),
            "--sensors", "2", "--horizon", "5000",
        ]) == 0
        out = capsys.readouterr().out
        assert "union coverage" in out

    def test_team_engine_flag_output_identical(self, tmp_path, capsys):
        topo = tmp_path / "t.json"
        matrix = tmp_path / "p.json"
        assert main(["topology", "--paper", "1", "--save", str(topo)]) == 0
        assert main([
            "optimize", "--topology", str(topo), "--iterations", "15",
            "--save-matrix", str(matrix),
        ]) == 0
        capsys.readouterr()  # drain the topology/optimize output
        outputs = {}
        for engine in ("vectorized", "loop"):
            assert main([
                "team", "--topology", str(topo), "--matrix", str(matrix),
                "--sensors", "3", "--horizon", "4000",
                "--engine", engine,
            ]) == 0
            outputs[engine] = capsys.readouterr().out
        assert outputs["vectorized"] == outputs["loop"]


class TestCliParallel:
    def test_parallel_flags_parse(self):
        parser = build_parser()
        for argv in (
            ["optimize", "--paper", "1", "--jobs", "4"],
            ["experiment", "table1", "--jobs", "2",
             "--backend", "thread"],
            ["tradeoff", "--paper", "1", "--backend", "serial"],
        ):
            args = parser.parse_args(argv)
            assert hasattr(args, "jobs")
            assert hasattr(args, "backend")

    def test_executor_spec_defaults(self):
        from repro.cli import _executor_spec

        parser = build_parser()

        def spec(*extra):
            return _executor_spec(
                parser.parse_args(["experiment", "table1", *extra])
            )

        assert spec() == ("serial", None, None)
        assert spec("--jobs", "1") == ("serial", 1, None)
        assert spec("--jobs", "4") == ("process", 4, None)
        assert spec("--jobs", "4", "--backend", "thread") == (
            "thread", 4, None
        )
        assert spec("--jobs", "4", "--transport", "shm") == (
            "process", 4, "shm"
        )

    def test_jobs_flag_installs_default_executor(self, monkeypatch):
        from repro import cli
        from repro.exec import ThreadExecutor, default_executor

        seen = {}

        def fake(seed=None):
            from repro.experiments.reporting import TableResult

            seen["executor"] = default_executor()
            return TableResult(
                experiment_id="T", title="t", columns=["c"], rows=[[1]]
            )

        monkeypatch.setitem(cli.EXPERIMENTS, "table1", fake)
        assert main([
            "experiment", "table1", "--jobs", "2", "--backend", "thread",
        ]) == 0
        assert isinstance(seen["executor"], ThreadExecutor)
        assert seen["executor"].jobs == 2

    def test_optimize_multistart_with_jobs(self, capsys):
        assert main([
            "optimize", "--paper", "1", "--algorithm", "multistart",
            "--iterations", "5", "--jobs", "2", "--backend", "thread",
        ]) == 0
        assert "U_eps=" in capsys.readouterr().out


class TestCliService:
    def test_submit_computes_then_hits_cache(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        argv = [
            "submit", "--store", store, "--paper", "1",
            "--iterations", "8", "--seed", "3",
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert "fresh computation" in first
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert "served from cache" in second
        # the result lines are identical either way
        strip = lambda out: [l for l in out.splitlines()
                             if l.startswith("  ")]
        assert strip(first) == strip(second)

    def test_submit_saves_matrix(self, tmp_path, capsys):
        matrix_path = tmp_path / "P.json"
        assert main([
            "submit", "--store", str(tmp_path / "store"),
            "--paper", "1", "--iterations", "5",
            "--save-matrix", str(matrix_path),
        ]) == 0
        matrix = load_matrix(matrix_path)
        assert matrix.shape == (4, 4)
        np.testing.assert_allclose(matrix.sum(axis=1), 1.0)

    def test_submit_request_file(self, tmp_path, capsys):
        from repro import metropolis_hastings_matrix
        from repro.service import request_to_dict, simulation_request

        topology = paper_topology(1)
        matrix = metropolis_hastings_matrix(topology.target_shares)
        request_path = tmp_path / "req.json"
        request_path.write_text(json.dumps(request_to_dict(
            simulation_request(topology, matrix, transitions=100,
                               seed=1)
        )))
        assert main([
            "submit", "--store", str(tmp_path / "store"),
            "--request", str(request_path),
        ]) == 0
        assert "[simulate]" in capsys.readouterr().out

    def test_serve_spool_roundtrip(self, tmp_path, capsys):
        from repro import metropolis_hastings_matrix
        from repro.persist import verify_service_record
        from repro.service import request_to_dict, simulation_request

        topology = paper_topology(1)
        matrix = metropolis_hastings_matrix(topology.target_shares)
        spool = tmp_path / "spool"
        spool.mkdir()
        (spool / "job.json").write_text(json.dumps(request_to_dict(
            simulation_request(topology, matrix, transitions=100,
                               seed=1)
        )))
        store = str(tmp_path / "store")
        assert main(["serve", "--store", store, "--spool",
                     str(spool)]) == 0
        out = capsys.readouterr().out
        assert "answered 1 request(s)" in out
        record = json.loads((spool / "job.result.json").read_text())
        assert verify_service_record(record)
        # idempotent second pass
        assert main(["serve", "--store", store, "--spool",
                     str(spool)]) == 0
        assert "answered 0 request(s)" in capsys.readouterr().out

    def test_serve_requires_work(self, tmp_path):
        with pytest.raises(SystemExit, match="spool"):
            main(["serve", "--store", str(tmp_path / "store")])

    def test_serve_import_sweep(self, tmp_path, capsys):
        from repro.sweep import SweepGrid, run_sweep

        out = tmp_path / "sweep"
        grid = SweepGrid(
            topologies=({"family": "paper", "sizes": [1]},),
            weights=({"alpha": 1.0, "beta": 1.0},),
            methods=("perturbed",), seeds=(0,), iterations=5,
            include_matrix=True,
        )
        run_sweep(grid, out)
        assert main([
            "serve", "--store", str(tmp_path / "store"),
            "--import-sweep", str(out),
        ]) == 0
        assert "imported 1 sweep record(s)" in capsys.readouterr().out
