"""Golden regression tests: exact numerical values on a fixed input.

These values were computed by the validated implementation (gradients
finite-difference-checked, closed forms cross-checked against
independent solvers; see tests/core and tests/markov) and are locked
here to catch silent formula drift in future changes.  The input is a
fixed transition matrix on paper Topology 1.
"""

import numpy as np
import pytest

from repro import CostWeights, CoverageCost, paper_topology
from repro.core.state import ChainState

GOLDEN_P = np.array([
    [0.40, 0.30, 0.20, 0.10],
    [0.25, 0.25, 0.25, 0.25],
    [0.10, 0.20, 0.30, 0.40],
    [0.05, 0.15, 0.35, 0.45],
])

GOLDEN_PI = np.array([
    0.16386554621848748, 0.21008403361344535,
    0.28991596638655465, 0.3361344537815126,
])

GOLDEN_EXPOSURES = np.array([
    8.504273504273502, 5.013333333333333,
    3.498964803312629, 3.59090909090909,
])

GOLDEN_COVERAGE = np.array([
    0.09620932690526979, 0.12334529090419201,
    0.17021650144778497, 0.19735246544670723,
])


@pytest.fixture(scope="module")
def cost():
    return CoverageCost(
        paper_topology(1), CostWeights(alpha=1.0, beta=1.0)
    )


@pytest.fixture(scope="module")
def state():
    return ChainState.from_matrix(GOLDEN_P)


class TestGoldenValues:
    def test_stationary_distribution(self, state):
        np.testing.assert_allclose(state.pi, GOLDEN_PI, rtol=1e-13)

    def test_cost_value(self, cost, state):
        assert cost.value(state) == pytest.approx(
            81.43378056169558, rel=1e-12
        )

    def test_delta_c(self, cost, state):
        assert cost.delta_c(state) == pytest.approx(
            40.2739993827976, rel=1e-12
        )

    def test_e_bar(self, cost, state):
        assert cost.e_bar(state) == pytest.approx(
            11.072197692445414, rel=1e-12
        )

    def test_coverage_shares(self, cost, state):
        np.testing.assert_allclose(
            cost.coverage_shares(state), GOLDEN_COVERAGE, rtol=1e-12
        )

    def test_exposure_times(self, cost, state):
        np.testing.assert_allclose(
            cost.exposure_times(state), GOLDEN_EXPOSURES, rtol=1e-12
        )

    def test_gradient_entries(self, cost, state):
        gradient = cost.gradient(state)
        assert gradient[0, 0] == pytest.approx(
            124.00270289636529, rel=1e-11
        )
        assert gradient[2, 3] == pytest.approx(
            50.80472587219781, rel=1e-11
        )
        assert float(gradient.sum()) == pytest.approx(
            388.925146314093, rel=1e-11
        )

    def test_batch_value_agrees_with_golden(self, cost):
        batch = cost.batch_values(GOLDEN_P[None])
        assert batch[0] == pytest.approx(
            81.43378056169558, rel=1e-12
        )

    def test_kac_on_golden_chain(self, state):
        np.testing.assert_allclose(
            np.diag(state.r), 1.0 / GOLDEN_PI, rtol=1e-10
        )
