"""Tests for repro.geometry.points."""

import math

import pytest

from repro.geometry.points import Point, as_point, distance, interpolate


class TestPoint:
    def test_construction(self):
        p = Point(1.0, 2.0)
        assert p.x == 1.0 and p.y == 2.0

    def test_rejects_nan(self):
        with pytest.raises(ValueError, match="finite"):
            Point(float("nan"), 0.0)

    def test_rejects_inf(self):
        with pytest.raises(ValueError, match="finite"):
            Point(0.0, float("inf"))

    def test_immutable(self):
        p = Point(1.0, 2.0)
        with pytest.raises(Exception):
            p.x = 3.0

    def test_arithmetic(self):
        a, b = Point(1.0, 2.0), Point(3.0, 5.0)
        assert (a + b) == Point(4.0, 7.0)
        assert (b - a) == Point(2.0, 3.0)
        assert (2 * a) == Point(2.0, 4.0)
        assert (a * 2) == Point(2.0, 4.0)

    def test_dot_and_norm(self):
        assert Point(3.0, 4.0).norm() == pytest.approx(5.0)
        assert Point(1.0, 2.0).dot(Point(3.0, 4.0)) == pytest.approx(11.0)

    def test_as_tuple(self):
        assert Point(1.5, 2.5).as_tuple() == (1.5, 2.5)

    def test_hashable(self):
        assert len({Point(0, 0), Point(0, 0), Point(1, 0)}) == 2


class TestAsPoint:
    def test_passthrough(self):
        p = Point(1.0, 2.0)
        assert as_point(p) is p

    def test_tuple(self):
        assert as_point((3, 4)) == Point(3.0, 4.0)

    def test_list(self):
        assert as_point([3, 4]) == Point(3.0, 4.0)

    def test_rejects_wrong_length(self):
        with pytest.raises(ValueError, match="2 coordinates"):
            as_point((1, 2, 3))


class TestDistance:
    def test_pythagoras(self):
        assert distance((0, 0), (3, 4)) == pytest.approx(5.0)

    def test_symmetric(self):
        assert distance((1, 2), (5, 7)) == distance((5, 7), (1, 2))

    def test_zero_for_same(self):
        assert distance((2, 2), (2, 2)) == 0.0

    def test_triangle_inequality(self):
        a, b, c = (0, 0), (1, 3), (4, 1)
        assert distance(a, c) <= distance(a, b) + distance(b, c) + 1e-12


class TestInterpolate:
    def test_endpoints(self):
        assert interpolate((0, 0), (10, 20), 0.0) == Point(0.0, 0.0)
        assert interpolate((0, 0), (10, 20), 1.0) == Point(10.0, 20.0)

    def test_midpoint(self):
        assert interpolate((0, 0), (10, 20), 0.5) == Point(5.0, 10.0)

    def test_extrapolation(self):
        assert interpolate((0, 0), (10, 0), 2.0) == Point(20.0, 0.0)

    def test_collinear(self):
        p = interpolate((1, 1), (5, 5), 0.3)
        assert math.isclose(p.x, p.y)
