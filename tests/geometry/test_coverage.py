"""Tests for repro.geometry.coverage."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.coverage import (
    chord_through_disc,
    coverage_fraction,
    covers_point,
    passes_through,
)
from repro.geometry.points import Point
from repro.geometry.segments import Segment


def seg(x1, y1, x2, y2):
    return Segment(Point(x1, y1), Point(x2, y2))


class TestCoversPoint:
    def test_inside(self):
        assert covers_point((0, 0), (1, 0), radius=2.0)

    def test_boundary_counts(self):
        assert covers_point((0, 0), (2, 0), radius=2.0)

    def test_outside(self):
        assert not covers_point((0, 0), (3, 0), radius=2.0)

    def test_negative_radius(self):
        with pytest.raises(ValueError, match="radius"):
            covers_point((0, 0), (0, 0), radius=-1.0)


class TestChord:
    def test_full_crossing(self):
        """Segment passes straight through the disc center."""
        chord = chord_through_disc(seg(-10, 0, 10, 0), (0, 0), 2.0)
        assert chord is not None
        t_in, t_out = chord
        assert t_in == pytest.approx(8 / 20)
        assert t_out == pytest.approx(12 / 20)

    def test_offset_crossing(self):
        """Chord length follows Pythagoras for an offset line."""
        chord = chord_through_disc(seg(-10, 1, 10, 1), (0, 0), 2.0)
        half = math.sqrt(4 - 1)
        assert chord[1] - chord[0] == pytest.approx(2 * half / 20)

    def test_miss(self):
        assert chord_through_disc(seg(-10, 5, 10, 5), (0, 0), 2.0) is None

    def test_tangent_is_none(self):
        assert chord_through_disc(seg(-10, 2, 10, 2), (0, 0), 2.0) is None

    def test_endpoint_inside(self):
        """Segment starts inside the disc: chord starts at t=0."""
        chord = chord_through_disc(seg(0, 0, 10, 0), (0, 0), 2.0)
        assert chord[0] == 0.0
        assert chord[1] == pytest.approx(0.2)

    def test_whole_segment_inside(self):
        chord = chord_through_disc(seg(-1, 0, 1, 0), (0, 0), 5.0)
        assert chord == (0.0, 1.0)

    def test_degenerate_inside(self):
        assert chord_through_disc(seg(1, 0, 1, 0), (0, 0), 2.0) \
            == (0.0, 1.0)

    def test_degenerate_outside(self):
        assert chord_through_disc(seg(5, 0, 5, 0), (0, 0), 2.0) is None

    def test_negative_radius(self):
        with pytest.raises(ValueError, match="radius"):
            chord_through_disc(seg(0, 0, 1, 0), (0, 0), -0.5)

    def test_closest_point_is_endpoint_outside(self):
        """Line passes within r, but the segment stops short."""
        assert chord_through_disc(seg(-10, 0, -5, 0), (0, 0), 2.0) is None

    @settings(max_examples=60, deadline=None)
    @given(
        cx=st.floats(-20, 20), cy=st.floats(-20, 20),
        r=st.floats(0.1, 10),
    )
    def test_chord_ordering_invariant(self, cx, cy, r):
        chord = chord_through_disc(seg(-15, -3, 12, 9), (cx, cy), r)
        if chord is not None:
            t_in, t_out = chord
            assert 0.0 <= t_in < t_out <= 1.0

    @settings(max_examples=60, deadline=None)
    @given(
        cx=st.floats(-20, 20), cy=st.floats(-20, 20),
        r=st.floats(0.1, 10),
    )
    def test_chord_points_are_in_disc(self, cx, cy, r):
        s = seg(-15, -3, 12, 9)
        chord = chord_through_disc(s, (cx, cy), r)
        if chord is not None:
            mid = s.point_at((chord[0] + chord[1]) / 2)
            assert math.hypot(mid.x - cx, mid.y - cy) <= r + 1e-6


class TestCoverageFraction:
    def test_zero_when_missing(self):
        assert coverage_fraction(seg(-10, 5, 10, 5), (0, 0), 2.0) == 0.0

    def test_diameter_fraction(self):
        fraction = coverage_fraction(seg(-10, 0, 10, 0), (0, 0), 2.0)
        assert fraction == pytest.approx(4 / 20)

    def test_bounded_by_one(self):
        assert coverage_fraction(seg(-1, 0, 1, 0), (0, 0), 100.0) == 1.0


class TestPassesThrough:
    def test_middle_crossing(self):
        assert passes_through(seg(-10, 0, 10, 0), (0, 0), 2.0)

    def test_miss(self):
        assert not passes_through(seg(-10, 5, 10, 5), (0, 0), 2.0)

    def test_origin_disc_does_count_as_pass(self):
        """Coverage extending from the start still counts physically."""
        assert passes_through(seg(0, 0, 10, 0), (0, 0), 2.0)
