"""Property-based geometry tests: invariances under rigid motions.

Coverage geometry must not depend on the coordinate frame: translating
or rotating the whole scene leaves chord fractions, distances, and
pass-by coverage identical.  These invariances catch subtle
formula errors (sign conventions, unnormalized projections) that
example-based tests can miss.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.coverage import chord_through_disc, coverage_fraction
from repro.geometry.points import Point, distance
from repro.geometry.segments import Segment, point_segment_distance

coords = st.floats(-50, 50, allow_nan=False, allow_infinity=False)
angles = st.floats(0, 2 * math.pi)
radii = st.floats(0.5, 15.0)

SETTINGS = settings(max_examples=40, deadline=None)


def rotate(point: Point, theta: float) -> Point:
    c, s = math.cos(theta), math.sin(theta)
    return Point(c * point.x - s * point.y, s * point.x + c * point.y)


def translate(point: Point, dx: float, dy: float) -> Point:
    return Point(point.x + dx, point.y + dy)


@SETTINGS
@given(
    ax=coords, ay=coords, bx=coords, by=coords,
    cx=coords, cy=coords, r=radii, theta=angles,
    dx=coords, dy=coords,
)
def test_coverage_fraction_rigid_invariance(
    ax, ay, bx, by, cx, cy, r, theta, dx, dy
):
    segment = Segment(Point(ax, ay), Point(bx, by))
    center = Point(cx, cy)
    original = coverage_fraction(segment, center, r)

    def transform(p):
        return translate(rotate(p, theta), dx, dy)

    moved_segment = Segment(transform(segment.start),
                            transform(segment.end))
    moved_center = transform(center)
    moved = coverage_fraction(moved_segment, moved_center, r)
    assert moved == pytest.approx(original, abs=1e-6)


@SETTINGS
@given(
    ax=coords, ay=coords, bx=coords, by=coords,
    cx=coords, cy=coords, r=radii,
)
def test_chord_direction_reversal_symmetry(ax, ay, bx, by, cx, cy, r):
    """Reversing the segment mirrors the chord parameters.

    Near-tangent chords are excluded: at tangency the intersection
    degenerates to a point and floating-point round-off legitimately
    flips between "no chord" and "zero-width chord" depending on the
    traversal direction (the coverage time is ~0 either way).
    """
    forward = chord_through_disc(
        Segment(Point(ax, ay), Point(bx, by)), Point(cx, cy), r
    )
    backward = chord_through_disc(
        Segment(Point(bx, by), Point(ax, ay)), Point(cx, cy), r
    )
    tangency_tol = 1e-6

    def width(chord):
        return 0.0 if chord is None else chord[1] - chord[0]

    if width(forward) <= tangency_tol or width(backward) <= tangency_tol:
        # Both directions must agree the chord is (nearly) nothing.
        assert width(forward) <= tangency_tol
        assert width(backward) <= tangency_tol
        return
    f_in, f_out = forward
    b_in, b_out = backward
    assert b_in == pytest.approx(1.0 - f_out, abs=1e-6)
    assert b_out == pytest.approx(1.0 - f_in, abs=1e-6)


@SETTINGS
@given(
    ax=coords, ay=coords, bx=coords, by=coords,
    cx=coords, cy=coords, r=radii,
)
def test_chord_length_bounded_by_diameter(ax, ay, bx, by, cx, cy, r):
    segment = Segment(Point(ax, ay), Point(bx, by))
    chord = chord_through_disc(segment, Point(cx, cy), r)
    if chord is not None and not segment.is_degenerate():
        length = (chord[1] - chord[0]) * segment.length()
        assert length <= 2 * r + 1e-6


@SETTINGS
@given(
    ax=coords, ay=coords, bx=coords, by=coords,
    px=coords, py=coords, theta=angles, dx=coords, dy=coords,
)
def test_point_segment_distance_rigid_invariance(
    ax, ay, bx, by, px, py, theta, dx, dy
):
    segment = Segment(Point(ax, ay), Point(bx, by))
    point = Point(px, py)

    def transform(p):
        return translate(rotate(p, theta), dx, dy)

    original = point_segment_distance(point, segment)
    moved = point_segment_distance(
        transform(point),
        Segment(transform(segment.start), transform(segment.end)),
    )
    assert moved == pytest.approx(original, abs=1e-6)


@SETTINGS
@given(ax=coords, ay=coords, bx=coords, by=coords)
def test_distance_symmetry_and_rotation(ax, ay, bx, by):
    a, b = Point(ax, ay), Point(bx, by)
    assert distance(a, b) == pytest.approx(distance(b, a))
    ra, rb = rotate(a, 1.234), rotate(b, 1.234)
    assert distance(ra, rb) == pytest.approx(distance(a, b), abs=1e-8)
