"""Tests for repro.geometry.segments."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.points import Point
from repro.geometry.segments import (
    Segment,
    line_point_distance,
    make_segment,
    point_segment_distance,
    project_onto_segment,
    segments_almost_equal,
    unclamped_projection,
)

coords = st.floats(-1000, 1000, allow_nan=False)


def seg(x1, y1, x2, y2):
    return Segment(Point(x1, y1), Point(x2, y2))


class TestSegment:
    def test_length(self):
        assert seg(0, 0, 3, 4).length() == pytest.approx(5.0)

    def test_degenerate(self):
        assert seg(1, 1, 1, 1).is_degenerate()
        assert not seg(0, 0, 1, 0).is_degenerate()

    def test_point_at(self):
        s = seg(0, 0, 10, 0)
        assert s.point_at(0.25) == Point(2.5, 0.0)

    def test_make_segment(self):
        s = make_segment((0, 0), (1, 2))
        assert s.end == Point(1.0, 2.0)


class TestProjection:
    def test_interior(self):
        s = seg(0, 0, 10, 0)
        assert project_onto_segment((5, 3), s) == pytest.approx(0.5)

    def test_clamps_before_start(self):
        s = seg(0, 0, 10, 0)
        assert project_onto_segment((-5, 1), s) == 0.0

    def test_clamps_after_end(self):
        s = seg(0, 0, 10, 0)
        assert project_onto_segment((15, 1), s) == 1.0

    def test_degenerate_projects_to_zero(self):
        assert project_onto_segment((5, 5), seg(1, 1, 1, 1)) == 0.0

    def test_unclamped_extends(self):
        s = seg(0, 0, 10, 0)
        assert unclamped_projection((15, 1), s) == pytest.approx(1.5)
        assert unclamped_projection((-5, 0), s) == pytest.approx(-0.5)

    def test_unclamped_rejects_degenerate(self):
        with pytest.raises(ValueError, match="degenerate"):
            unclamped_projection((0, 0), seg(1, 1, 1, 1))


class TestDistances:
    def test_perpendicular_distance(self):
        s = seg(0, 0, 10, 0)
        assert point_segment_distance((5, 3), s) == pytest.approx(3.0)

    def test_endpoint_distance(self):
        s = seg(0, 0, 10, 0)
        assert point_segment_distance((13, 4), s) == pytest.approx(5.0)

    def test_on_segment_is_zero(self):
        s = seg(0, 0, 10, 10)
        assert point_segment_distance((5, 5), s) == pytest.approx(0.0)

    def test_line_distance_ignores_endpoints(self):
        s = seg(0, 0, 10, 0)
        assert line_point_distance((100, 3), s) == pytest.approx(3.0)

    def test_line_distance_rejects_degenerate(self):
        with pytest.raises(ValueError, match="degenerate"):
            line_point_distance((0, 0), seg(2, 2, 2, 2))

    @settings(max_examples=50, deadline=None)
    @given(px=coords, py=coords)
    def test_segment_distance_at_most_endpoint_distance(self, px, py):
        s = seg(-3, -7, 11, 5)
        d = point_segment_distance((px, py), s)
        to_start = np.hypot(px - s.start.x, py - s.start.y)
        to_end = np.hypot(px - s.end.x, py - s.end.y)
        assert d <= min(to_start, to_end) + 1e-9

    @settings(max_examples=50, deadline=None)
    @given(px=coords, py=coords)
    def test_line_distance_at_most_segment_distance(self, px, py):
        s = seg(-3, -7, 11, 5)
        assert line_point_distance((px, py), s) <= \
            point_segment_distance((px, py), s) + 1e-9


class TestSegmentsAlmostEqual:
    def test_equal(self):
        assert segments_almost_equal(seg(0, 0, 1, 1), seg(0, 0, 1, 1))

    def test_within_tolerance(self):
        assert segments_almost_equal(
            seg(0, 0, 1, 1), seg(0, 1e-12, 1, 1)
        )

    def test_direction_matters(self):
        assert not segments_almost_equal(seg(0, 0, 1, 1), seg(1, 1, 0, 0))
