"""Tests for repro.baselines (MCMC, heuristics, max-entropy)."""

import numpy as np
import pytest

from repro import paper_topology
from repro.baselines.heuristics import (
    nearest_neighbor_matrix,
    proportional_matrix,
    uniform_policy_matrix,
)
from repro.baselines.maxent import max_entropy_matrix
from repro.baselines.mcmc import (
    metropolis_hastings_matrix,
    stationary_for_target_coverage,
)
from repro.core.cost import CostWeights, CoverageCost
from repro.markov.entropy import entropy_rate
from repro.markov.ergodicity import is_ergodic
from repro.markov.stationary import stationary_via_linear_solve
from repro.utils.linalg import is_row_stochastic


class TestMetropolisHastings:
    def test_stationary_matches_target(self):
        target = np.array([0.4, 0.3, 0.2, 0.1])
        matrix = metropolis_hastings_matrix(target)
        pi = stationary_via_linear_solve(matrix)
        np.testing.assert_allclose(pi, target, atol=1e-10)

    def test_detailed_balance(self):
        target = np.array([0.5, 0.25, 0.25])
        matrix = metropolis_hastings_matrix(target)
        for i in range(3):
            for j in range(3):
                assert target[i] * matrix[i, j] == pytest.approx(
                    target[j] * matrix[j, i], abs=1e-12
                )

    def test_stochastic_and_ergodic(self):
        matrix = metropolis_hastings_matrix(
            np.array([0.7, 0.1, 0.1, 0.1])
        )
        assert is_row_stochastic(matrix)
        assert is_ergodic(matrix)

    def test_uniform_target_gives_uniform_offdiag(self):
        matrix = metropolis_hastings_matrix(np.full(4, 0.25))
        off = matrix[~np.eye(4, dtype=bool)]
        np.testing.assert_allclose(off, 1 / 3)

    def test_custom_proposal(self):
        target = np.array([0.6, 0.4])
        proposal = np.array([[0.0, 1.0], [1.0, 0.0]])
        matrix = metropolis_hastings_matrix(target, proposal)
        pi = stationary_via_linear_solve(matrix)
        np.testing.assert_allclose(pi, target, atol=1e-10)

    def test_rejects_zero_target(self):
        with pytest.raises(ValueError, match="positive"):
            metropolis_hastings_matrix(np.array([1.0, 0.0]))

    def test_rejects_bad_proposal(self):
        with pytest.raises(ValueError, match="row-stochastic"):
            metropolis_hastings_matrix(
                np.array([0.5, 0.5]), np.array([[0.2, 0.2], [0.5, 0.5]])
            )

    def test_rejects_negative_proposal(self):
        with pytest.raises(ValueError, match="non-negative"):
            metropolis_hastings_matrix(
                np.array([0.5, 0.5]),
                np.array([[1.5, -0.5], [0.5, 0.5]]),
            )


class TestCoverageCorrection:
    def test_improves_on_naive_target(self):
        topology = paper_topology(3)
        cost = CoverageCost(topology, CostWeights(alpha=1.0, beta=0.0))
        phi = topology.target_shares
        naive = metropolis_hastings_matrix(phi)
        naive_error = np.abs(
            cost.coverage_shares(naive) - phi
        ).max()
        pi, corrected = stationary_for_target_coverage(
            topology, iterations=50
        )
        corrected_error = np.abs(
            cost.coverage_shares(corrected) - phi
        ).max()
        assert corrected_error <= naive_error

    def test_returns_valid_chain(self):
        topology = paper_topology(1)
        pi, matrix = stationary_for_target_coverage(
            topology, iterations=20
        )
        assert is_row_stochastic(matrix)
        assert pi.sum() == pytest.approx(1.0)

    def test_validates_arguments(self):
        topology = paper_topology(1)
        with pytest.raises(ValueError, match="iterations"):
            stationary_for_target_coverage(topology, iterations=0)
        with pytest.raises(ValueError, match="damping"):
            stationary_for_target_coverage(topology, damping=0.0)


class TestHeuristics:
    def test_uniform_policy(self):
        matrix = uniform_policy_matrix(4)
        assert is_row_stochastic(matrix)
        np.testing.assert_allclose(np.diag(matrix), 0.0)
        np.testing.assert_allclose(
            matrix[~np.eye(4, dtype=bool)], 1 / 3
        )

    def test_uniform_policy_with_stay(self):
        matrix = uniform_policy_matrix(4, stay_probability=0.4)
        np.testing.assert_allclose(np.diag(matrix), 0.4)
        assert is_row_stochastic(matrix)

    def test_uniform_rejects_full_stay(self):
        with pytest.raises(ValueError, match="ergodicity"):
            uniform_policy_matrix(4, stay_probability=1.0)

    def test_proportional_rows_are_target(self):
        phi = np.array([0.5, 0.3, 0.2])
        matrix = proportional_matrix(phi)
        for row in matrix:
            np.testing.assert_allclose(row, phi)

    def test_proportional_stationary_is_target(self):
        phi = np.array([0.5, 0.3, 0.2])
        pi = stationary_via_linear_solve(proportional_matrix(phi))
        np.testing.assert_allclose(pi, phi, atol=1e-12)

    def test_proportional_rejects_zero_share(self):
        with pytest.raises(ValueError, match="positive"):
            proportional_matrix(np.array([1.0, 0.0]))

    def test_nearest_neighbor_prefers_close(self):
        topology = paper_topology(3)  # line: 0-1-2-3
        matrix = nearest_neighbor_matrix(topology, temperature=0.2)
        assert matrix[0, 1] > matrix[0, 2] > matrix[0, 3]
        assert is_row_stochastic(matrix)

    def test_nearest_neighbor_high_temperature_uniformizes(self):
        topology = paper_topology(3)
        matrix = nearest_neighbor_matrix(topology, temperature=100.0)
        off = matrix[0, 1:]
        assert off.max() - off.min() < 0.02

    def test_nearest_neighbor_validates(self):
        topology = paper_topology(1)
        with pytest.raises(ValueError, match="temperature"):
            nearest_neighbor_matrix(topology, temperature=0.0)


class TestMaxEntropy:
    def test_iid_chain_for_pi(self):
        phi = np.array([0.4, 0.3, 0.3])
        matrix = max_entropy_matrix(pi=phi)
        pi = stationary_via_linear_solve(matrix)
        np.testing.assert_allclose(pi, phi, atol=1e-12)
        # Entropy rate equals H(phi), the maximum for this stationary law.
        assert entropy_rate(matrix) == pytest.approx(
            float(-(phi * np.log(phi)).sum())
        )

    def test_parry_on_complete_graph(self):
        adjacency = 1 - np.eye(4)
        matrix = max_entropy_matrix(adjacency=adjacency)
        assert is_row_stochastic(matrix)
        # Complete graph without self-loops: H = ln(M - 1).
        assert entropy_rate(matrix) == pytest.approx(np.log(3))

    def test_parry_on_ring(self):
        ring = np.zeros((4, 4))
        for i in range(4):
            ring[i, (i + 1) % 4] = 1
            ring[i, (i - 1) % 4] = 1
        matrix = max_entropy_matrix(adjacency=ring)
        assert entropy_rate(matrix) == pytest.approx(np.log(2))

    def test_requires_exactly_one_argument(self):
        with pytest.raises(ValueError, match="exactly one"):
            max_entropy_matrix()
        with pytest.raises(ValueError, match="exactly one"):
            max_entropy_matrix(
                pi=np.array([0.5, 0.5]), adjacency=np.eye(2)
            )

    def test_rejects_zero_pi(self):
        with pytest.raises(ValueError, match="positive"):
            max_entropy_matrix(pi=np.array([1.0, 0.0]))

    def test_rejects_reducible_adjacency(self):
        blocks = np.array([
            [1.0, 0.0, 0.0],
            [0.0, 1.0, 1.0],
            [0.0, 1.0, 1.0],
        ])
        with pytest.raises(ValueError):
            max_entropy_matrix(adjacency=blocks)
