"""The scalable sparse-support topology families.

``city_grid_topology`` / ``ring_of_grids_topology`` /
``scalable_topology`` exist to stress the large-``M`` sparse solvers,
so their contracts matter: adjacency masks must be symmetric, strongly
connected, genuinely sparse, and must survive persistence round-trips
exactly.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    SCALABLE_FAMILIES,
    city_grid_topology,
    ring_of_grids_topology,
    scalable_topology,
)
from repro.persist import topology_from_dict, topology_to_dict


def reachable_all(adjacency: np.ndarray) -> bool:
    """Strong connectivity via boolean closure from PoI 0."""
    frontier = np.zeros(adjacency.shape[0], dtype=bool)
    frontier[0] = True
    while True:
        grown = frontier | adjacency[frontier].any(axis=0)
        if np.array_equal(grown, frontier):
            return bool(frontier.all())
        frontier = grown


class TestCityGrid:
    def test_shape_and_naming(self):
        topology = city_grid_topology(3, 5)
        assert topology.size == 15
        assert topology.name == "city-grid-3x5"

    def test_adjacency_is_4_neighbor(self):
        rows, cols = 4, 6
        topology = city_grid_topology(rows, cols)
        adjacency = topology.adjacency
        assert adjacency is not None
        assert np.array_equal(adjacency, adjacency.T)
        assert adjacency.diagonal().all()
        for j in range(rows * cols):
            r, c = divmod(j, cols)
            neighbors = {
                (r + dr) * cols + (c + dc)
                for dr, dc in ((1, 0), (-1, 0), (0, 1), (0, -1))
                if 0 <= r + dr < rows and 0 <= c + dc < cols
            }
            assert set(np.nonzero(adjacency[j])[0]) == neighbors | {j}
        # At most 5 nonzeros per row, whatever the size.
        assert adjacency.sum(axis=1).max() <= 5

    def test_strongly_connected(self):
        assert reachable_all(city_grid_topology(5, 7).adjacency)

    def test_uniform_shares_by_default(self):
        topology = city_grid_topology(3, 3)
        np.testing.assert_allclose(
            topology.target_shares, np.full(9, 1.0 / 9.0)
        )

    def test_dirichlet_shares_seeded(self):
        a = city_grid_topology(3, 3, dirichlet_alpha=2.0, seed=4)
        b = city_grid_topology(3, 3, dirichlet_alpha=2.0, seed=4)
        np.testing.assert_array_equal(a.target_shares, b.target_shares)
        assert a.target_shares.std() > 0
        assert a.target_shares.sum() == pytest.approx(1.0)

    def test_degenerate_inputs_rejected(self):
        with pytest.raises(ValueError, match=">= 1"):
            city_grid_topology(0, 4)
        with pytest.raises(ValueError, match="at least 2"):
            city_grid_topology(1, 1)
        with pytest.raises(ValueError, match="spacing"):
            city_grid_topology(2, 2, spacing=0.0)


class TestRingOfGrids:
    def test_shape_and_gateways(self):
        clusters, block = 3, 16
        topology = ring_of_grids_topology(clusters)
        assert topology.size == clusters * block
        adjacency = topology.adjacency
        assert np.array_equal(adjacency, adjacency.T)
        for cluster in range(clusters):
            exit_poi = cluster * block + block - 1
            entry_poi = ((cluster + 1) % clusters) * block
            assert adjacency[exit_poi, entry_poi]
        # No other inter-cluster legs exist.
        inter = 0
        for j, k in zip(*np.nonzero(adjacency)):
            if j // block != k // block:
                inter += 1
        assert inter == 2 * clusters  # one bidirectional leg per seam

    def test_strongly_connected(self):
        assert reachable_all(ring_of_grids_topology(4).adjacency)

    def test_clusters_do_not_overlap(self):
        topology = ring_of_grids_topology(2)
        positions = np.array(
            [(p.x, p.y) for p in topology.positions]
        )
        first, second = positions[:16], positions[16:]
        gap = np.hypot(
            *(first[:, None, :] - second[None, :, :]).transpose(2, 0, 1)
        ).min()
        assert gap > 2.0 * topology.sensing_radius

    def test_degenerate_inputs_rejected(self):
        with pytest.raises(ValueError, match="clusters"):
            ring_of_grids_topology(1)
        with pytest.raises(ValueError, match="at least 2"):
            ring_of_grids_topology(2, cluster_rows=1, cluster_cols=1)


class TestScalableTopology:
    def test_families_snapshot(self):
        assert SCALABLE_FAMILIES == ("city-grid", "ring-of-grids")

    @pytest.mark.parametrize("family", SCALABLE_FAMILIES)
    def test_requested_size_honored(self, family):
        size = 64
        topology = scalable_topology(family, size, seed=0)
        assert topology.size == size
        assert topology.adjacency is not None
        assert reachable_all(topology.adjacency)
        # Sparse by construction: average degree stays O(1).
        assert topology.adjacency.sum() < 6 * size

    def test_city_grid_prime_size_degenerates_to_street(self):
        topology = scalable_topology("city-grid", 7)
        assert topology.size == 7
        assert topology.adjacency.sum(axis=1).max() <= 3

    def test_unknown_family_rejected(self):
        with pytest.raises(ValueError, match="family"):
            scalable_topology("torus", 64)

    def test_ring_size_constraints(self):
        with pytest.raises(ValueError, match="multiples"):
            scalable_topology("ring-of-grids", 40)
        with pytest.raises(ValueError, match="multiples"):
            scalable_topology("ring-of-grids", 16)

    def test_tiny_size_rejected(self):
        with pytest.raises(ValueError, match="size"):
            scalable_topology("city-grid", 1)


class TestAdjacencyPersistence:
    def test_round_trip_preserves_adjacency_exactly(self):
        topology = scalable_topology("ring-of-grids", 32, seed=2)
        loaded = topology_from_dict(topology_to_dict(topology))
        np.testing.assert_array_equal(
            loaded.adjacency, topology.adjacency
        )
        np.testing.assert_allclose(
            loaded.travel_times, topology.travel_times
        )

    def test_legs_listed_off_diagonal_only(self):
        topology = scalable_topology("city-grid", 9, seed=2)
        data = topology_to_dict(topology)
        legs = np.array(data["adjacency_legs"])
        assert (legs[:, 0] != legs[:, 1]).all()

    def test_dense_topologies_omit_legs(self):
        from repro import paper_topology

        data = topology_to_dict(paper_topology(1))
        assert "adjacency_legs" not in data
        assert topology_from_dict(data).adjacency is None
