"""Tests for repro.topology.model."""

import numpy as np
import pytest

from repro.geometry.points import Point
from repro.topology.model import PoI, Topology


@pytest.fixture
def square():
    """2x2 grid with corner-heavy targets."""
    return Topology(
        positions=[(0, 0), (100, 0), (0, 100), (100, 100)],
        target_shares=[0.4, 0.1, 0.1, 0.4],
        sensing_radius=30.0,
    )


class TestPoI:
    def test_valid(self):
        poi = PoI(index=0, position=Point(0, 0), target_share=0.3)
        assert poi.target_share == 0.3

    def test_rejects_negative_index(self):
        with pytest.raises(ValueError, match="index"):
            PoI(index=-1, position=Point(0, 0), target_share=0.5)

    def test_rejects_bad_share(self):
        with pytest.raises(ValueError, match="target_share"):
            PoI(index=0, position=Point(0, 0), target_share=1.5)


class TestTopologyConstruction:
    def test_size(self, square):
        assert square.size == 4
        assert len(square) == 4

    def test_shares_roundtrip(self, square):
        np.testing.assert_allclose(
            square.target_shares, [0.4, 0.1, 0.1, 0.4]
        )

    def test_rejects_single_poi(self):
        with pytest.raises(ValueError, match="at least 2"):
            Topology([(0, 0)], [1.0], sensing_radius=1.0)

    def test_rejects_share_mismatch(self):
        with pytest.raises(ValueError, match="length"):
            Topology([(0, 0), (100, 0)], [0.5, 0.3, 0.2],
                     sensing_radius=10.0)

    def test_rejects_share_sum(self):
        with pytest.raises(ValueError, match="sum to 1"):
            Topology([(0, 0), (100, 0)], [0.5, 0.6], sensing_radius=10.0)

    def test_rejects_overlapping_pois(self):
        with pytest.raises(ValueError, match="disjoint"):
            Topology([(0, 0), (10, 0)], [0.5, 0.5], sensing_radius=10.0)

    def test_rejects_bad_radius(self):
        with pytest.raises(ValueError, match="sensing_radius"):
            Topology([(0, 0), (100, 0)], [0.5, 0.5], sensing_radius=0.0)

    def test_rejects_bad_pause(self):
        with pytest.raises(ValueError, match="pause_times"):
            Topology([(0, 0), (100, 0)], [0.5, 0.5], sensing_radius=10.0,
                     pause_times=0.0)

    def test_scalar_pause_broadcast(self, square):
        np.testing.assert_allclose(square.pause_times, 10.0)

    def test_per_poi_pauses(self):
        topo = Topology([(0, 0), (100, 0)], [0.5, 0.5],
                        sensing_radius=10.0, pause_times=[5.0, 15.0])
        np.testing.assert_allclose(topo.pause_times, [5.0, 15.0])

    def test_default_name(self):
        topo = Topology([(0, 0), (100, 0)], [0.5, 0.5],
                        sensing_radius=10.0)
        assert "2poi" in topo.name


class TestDerivedMatrices:
    def test_travel_times_shape(self, square):
        assert square.travel_times.shape == (4, 4)

    def test_travel_time_diagonal_is_pause(self, square):
        np.testing.assert_allclose(
            np.diag(square.travel_times), square.pause_times
        )

    def test_diagonal_distance(self, square):
        assert square.distances[0, 3] == pytest.approx(100 * np.sqrt(2))

    def test_passby_shape(self, square):
        assert square.passby.shape == (4, 4, 4)

    def test_returned_arrays_are_copies(self, square):
        square.travel_times[0, 0] = -1.0
        assert square.travel_times[0, 0] != -1.0
        square.passby[0, 0, 0] = -1.0
        assert square.passby[0, 0, 0] != -1.0

    def test_grid_diagonal_has_no_intermediates(self, square):
        assert square.intermediate_pois(0, 3) == []

    def test_self_transition_has_no_intermediates(self, square):
        assert square.intermediate_pois(2, 2) == []


class TestLineIntermediates:
    def test_line_pass_through(self):
        topo = Topology(
            positions=[(0, 0), (100, 0), (200, 0)],
            target_shares=[0.4, 0.2, 0.4],
            sensing_radius=30.0,
        )
        assert topo.intermediate_pois(0, 2) == [1]
        assert topo.intermediate_pois(2, 0) == [1]
        assert topo.intermediate_pois(0, 1) == []
