"""Tests for repro.topology.timing."""

import numpy as np
import pytest

from repro.geometry.points import Point
from repro.topology.timing import (
    check_disjoint_pois,
    passby_tensor,
    travel_distance_matrix,
    travel_time_matrix,
)


@pytest.fixture
def line_points():
    """Four PoIs on a line, 100 m apart."""
    return [Point(0, 0), Point(100, 0), Point(200, 0), Point(300, 0)]


class TestDistances:
    def test_symmetric_zero_diagonal(self, line_points):
        d = travel_distance_matrix(line_points)
        np.testing.assert_allclose(d, d.T)
        np.testing.assert_allclose(np.diag(d), 0.0)

    def test_values(self, line_points):
        d = travel_distance_matrix(line_points)
        assert d[0, 3] == pytest.approx(300.0)
        assert d[1, 2] == pytest.approx(100.0)


class TestTravelTimes:
    def test_includes_destination_pause(self, line_points):
        t = travel_time_matrix(line_points, speed=10.0,
                               pause_times=np.full(4, 10.0))
        assert t[0, 1] == pytest.approx(10.0 + 10.0)
        assert t[0, 3] == pytest.approx(30.0 + 10.0)

    def test_self_time_is_pause(self, line_points):
        pauses = np.array([5.0, 6.0, 7.0, 8.0])
        t = travel_time_matrix(line_points, speed=10.0, pause_times=pauses)
        np.testing.assert_allclose(np.diag(t), pauses)

    def test_asymmetric_pauses(self, line_points):
        pauses = np.array([5.0, 50.0, 5.0, 5.0])
        t = travel_time_matrix(line_points, speed=10.0, pause_times=pauses)
        assert t[0, 1] != t[1, 0]

    def test_rejects_bad_speed(self, line_points):
        with pytest.raises(ValueError, match="speed"):
            travel_time_matrix(line_points, speed=0.0,
                               pause_times=np.full(4, 1.0))


class TestPassbyTensor:
    def test_origin_convention(self, line_points):
        """T_{jk,j} = 0 for k != j."""
        tensor = passby_tensor(line_points, 30.0, 10.0, np.full(4, 10.0))
        for j in range(4):
            for k in range(4):
                if j != k:
                    assert tensor[j, k, j] == 0.0

    def test_destination_convention(self, line_points):
        """T_{jk,k} = P_k."""
        pauses = np.array([10.0, 11.0, 12.0, 13.0])
        tensor = passby_tensor(line_points, 30.0, 10.0, pauses)
        for j in range(4):
            for k in range(4):
                if j != k:
                    assert tensor[j, k, k] == pytest.approx(pauses[k])

    def test_self_loop(self, line_points):
        tensor = passby_tensor(line_points, 30.0, 10.0, np.full(4, 10.0))
        for j in range(4):
            assert tensor[j, j, j] == pytest.approx(10.0)
            for i in range(4):
                if i != j:
                    assert tensor[j, j, i] == 0.0

    def test_intermediate_chord_time(self, line_points):
        """Traveling 0 -> 3 crosses discs of 1 and 2: 60 m chord each."""
        tensor = passby_tensor(line_points, 30.0, 10.0, np.full(4, 10.0))
        assert tensor[0, 3, 1] == pytest.approx(6.0)
        assert tensor[0, 3, 2] == pytest.approx(6.0)

    def test_adjacent_trip_covers_no_intermediate(self, line_points):
        tensor = passby_tensor(line_points, 30.0, 10.0, np.full(4, 10.0))
        assert tensor[0, 1, 2] == 0.0
        assert tensor[0, 1, 3] == 0.0

    def test_coverage_less_than_duration(self, line_points):
        """With disjoint PoIs, total coverage cannot exceed duration."""
        pauses = np.full(4, 10.0)
        tensor = passby_tensor(line_points, 30.0, 10.0, pauses)
        durations = travel_time_matrix(line_points, 10.0, pauses)
        total = tensor.sum(axis=2)
        assert np.all(total <= durations + 1e-9)

    def test_off_line_poi_not_covered(self):
        points = [Point(0, 0), Point(200, 0), Point(100, 90)]
        tensor = passby_tensor(points, 30.0, 10.0, np.full(3, 10.0))
        # PoI 2 is 90 m off the 0 -> 1 path: outside the 30 m radius.
        assert tensor[0, 1, 2] == 0.0

    def test_near_line_poi_covered(self):
        points = [Point(0, 0), Point(200, 0), Point(100, 65)]
        tensor = passby_tensor(points, 40.0, 10.0, np.full(3, 10.0))
        # Wait: 65 > 40, not covered.
        assert tensor[0, 1, 2] == 0.0
        points = [Point(0, 0), Point(200, 0), Point(100, 81)]
        tensor = passby_tensor(points, 100.0, 10.0, np.full(3, 10.0))
        assert tensor[0, 1, 2] > 0.0

    def test_rejects_negative_radius(self, line_points):
        with pytest.raises(ValueError, match="sensing_radius"):
            passby_tensor(line_points, -1.0, 10.0, np.full(4, 10.0))


class TestDisjointness:
    def test_accepts_disjoint(self, line_points):
        check_disjoint_pois(line_points, 30.0)

    def test_rejects_overlapping(self, line_points):
        with pytest.raises(ValueError, match="disjoint"):
            check_disjoint_pois(line_points, 60.0)

    def test_boundary_case_rejected(self, line_points):
        with pytest.raises(ValueError, match="disjoint"):
            check_disjoint_pois(line_points, 50.0)
