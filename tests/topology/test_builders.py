"""Tests for repro.topology.grid, library, and random_gen."""

import numpy as np
import pytest

from repro.topology.grid import grid_topology, line_topology
from repro.topology.library import PAPER_TOPOLOGY_IDS, paper_topology
from repro.topology.random_gen import random_topology


class TestGrid:
    def test_row_major_layout(self):
        topo = grid_topology(2, 3, spacing=100.0)
        positions = topo.positions
        assert positions[0].as_tuple() == (0.0, 0.0)
        assert positions[2].as_tuple() == (200.0, 0.0)
        assert positions[3].as_tuple() == (0.0, 100.0)

    def test_default_uniform_shares(self):
        topo = grid_topology(2, 2)
        np.testing.assert_allclose(topo.target_shares, 0.25)

    def test_custom_shares(self):
        topo = grid_topology(1, 3, target_shares=[0.5, 0.25, 0.25])
        np.testing.assert_allclose(
            topo.target_shares, [0.5, 0.25, 0.25]
        )

    def test_default_radius_fraction(self):
        topo = grid_topology(2, 2, spacing=200.0)
        assert topo.sensing_radius == pytest.approx(60.0)

    def test_rejects_too_small(self):
        with pytest.raises(ValueError, match="at least 2"):
            grid_topology(1, 1)

    def test_rejects_zero_rows(self):
        with pytest.raises(ValueError, match="rows"):
            grid_topology(0, 3)

    def test_rejects_bad_spacing(self):
        with pytest.raises(ValueError, match="spacing"):
            grid_topology(2, 2, spacing=-1.0)


class TestLine:
    def test_is_one_row_grid(self):
        topo = line_topology(4)
        ys = {p.y for p in topo.positions}
        assert ys == {0.0}
        assert topo.size == 4

    def test_intermediates_on_long_trip(self):
        topo = line_topology(5)
        assert topo.intermediate_pois(0, 4) == [1, 2, 3]

    def test_rejects_short_line(self):
        with pytest.raises(ValueError, match="at least 2"):
            line_topology(1)


class TestPaperTopologies:
    @pytest.mark.parametrize("identifier", PAPER_TOPOLOGY_IDS)
    def test_all_build(self, identifier):
        topo = paper_topology(identifier)
        assert topo.size >= 4
        assert topo.target_shares.sum() == pytest.approx(1.0)

    def test_topology1_shares(self):
        np.testing.assert_allclose(
            paper_topology(1).target_shares, [0.4, 0.1, 0.1, 0.4]
        )

    def test_topology3_is_line(self):
        topo = paper_topology(3)
        assert topo.intermediate_pois(0, 3) == [1, 2]

    def test_topology_sizes(self):
        assert paper_topology(1).size == 4
        assert paper_topology(2).size == 6
        assert paper_topology(3).size == 4
        assert paper_topology(4).size == 9

    def test_fresh_instances(self):
        assert paper_topology(1) is not paper_topology(1)

    @pytest.mark.parametrize("identifier", [0, 5, "x", None])
    def test_rejects_unknown(self, identifier):
        with pytest.raises(ValueError, match="unknown paper topology"):
            paper_topology(identifier)


class TestRandomTopology:
    def test_reproducible(self):
        a = random_topology(5, seed=1)
        b = random_topology(5, seed=1)
        for pa, pb in zip(a.positions, b.positions):
            assert pa == pb

    def test_respects_disjointness(self):
        topo = random_topology(8, area_side=2000.0, sensing_radius=40.0,
                               seed=2)
        d = topo.distances
        off = d[~np.eye(8, dtype=bool)]
        assert off.min() > 2 * 40.0

    def test_shares_form_distribution(self):
        topo = random_topology(6, seed=3)
        assert topo.target_shares.sum() == pytest.approx(1.0)
        assert np.all(topo.target_shares >= 0)

    def test_impossible_packing_raises(self):
        with pytest.raises(RuntimeError, match="could not place"):
            random_topology(50, area_side=100.0, sensing_radius=30.0,
                            seed=0, max_attempts=200)

    @pytest.mark.parametrize("kwargs", [
        {"count": 1},
        {"count": 3, "area_side": -1.0},
        {"count": 3, "sensing_radius": 0.0},
        {"count": 3, "dirichlet_alpha": 0.0},
    ])
    def test_rejects_bad_arguments(self, kwargs):
        with pytest.raises(ValueError):
            random_topology(**kwargs)
