"""Consistency checks between documentation, CLI, and code."""

import pathlib

import pytest

import repro
import repro.experiments as ex
from repro.cli import EXPERIMENTS

ROOT = pathlib.Path(__file__).resolve().parent.parent


class TestCliRegistry:
    def test_every_registered_experiment_is_exported(self):
        for name, function in EXPERIMENTS.items():
            assert function.__name__ in ex.__all__, (
                f"CLI experiment {name!r} maps to "
                f"{function.__name__}, which repro.experiments does "
                "not export"
            )

    def test_all_paper_artifacts_registered(self):
        required = {
            "table1", "table2", "table3", "table4",
            "figure2a", "figure2b", "figure3", "figure4",
            "figure5a", "figure5b", "figure6", "figure7", "figure8",
        }
        assert required <= set(EXPERIMENTS)


class TestDocsExist:
    @pytest.mark.parametrize("name", [
        "README.md", "DESIGN.md", "EXPERIMENTS.md", "LICENSE",
        "docs/math.md", "docs/performance.md", "docs/simulation.md",
        "docs/api.md", "docs/service.md",
    ])
    def test_file_present_and_nonempty(self, name):
        path = ROOT / name
        assert path.exists(), f"{name} missing"
        assert path.stat().st_size > 200

    def test_design_mentions_every_subpackage(self):
        design = (ROOT / "DESIGN.md").read_text()
        for subpackage in (
            "geometry", "topology", "markov", "core", "simulation",
            "baselines", "experiments", "multisensor", "analysis",
        ):
            assert subpackage in design

    def test_readme_quickstart_names_exist(self):
        readme = (ROOT / "README.md").read_text()
        for name in (
            "CostWeights", "CoverageCost", "optimize_perturbed",
            "paper_topology", "simulate_schedule",
        ):
            assert name in readme
            assert hasattr(repro, name)


class TestObjectivesDocs:
    def test_every_registered_term_documented(self):
        page = (ROOT / "docs" / "objectives.md").read_text()
        for name in repro.TERM_REGISTRY:
            assert f'`"{name}"`' in page, (
                f"docs/objectives.md does not document term {name!r}"
            )

    def test_objectives_page_names_the_protocol(self):
        page = (ROOT / "docs" / "objectives.md").read_text()
        for needed in (
            "CostTerm", "TermBatch", "build_term", "CostSum",
            "normalize_extra_terms", "grad_pi", "grad_z", "grad_p",
            "batch_value", "--terms", "--weights", "with_extra_terms",
        ):
            assert needed in page, f"docs/objectives.md lost {needed!r}"

    @pytest.mark.parametrize("source", [
        "README.md", "docs/api.md", "docs/math.md",
    ])
    def test_objectives_page_linked(self, source):
        text = (ROOT / source).read_text()
        assert "objectives.md" in text, (
            f"{source} does not link docs/objectives.md"
        )

    def test_cli_term_flags_documented(self):
        api = (ROOT / "docs" / "api.md").read_text()
        assert "--terms" in api and "--weights" in api

    def test_math_derives_each_new_term(self):
        math = (ROOT / "docs" / "math.md").read_text()
        for needed in ("minimax", "kcoverage", "periodicity", "Kac"):
            assert needed in math, f"docs/math.md lost {needed!r}"


class TestSimulationDocs:
    def test_readme_links_simulation_page(self):
        readme = (ROOT / "README.md").read_text()
        assert "docs/simulation.md" in readme

    def test_performance_links_simulation_page(self):
        performance = (ROOT / "docs" / "performance.md").read_text()
        assert "simulation.md" in performance

    def test_simulation_page_names_both_engines_and_knobs(self):
        page = (ROOT / "docs" / "simulation.md").read_text()
        for needed in (
            '"loop"', '"vectorized"', "SimulationOptions",
            "simulate_team", "--engine", "replay_uniforms",
            "spawn_generators", "grouped_coverage",
            "grouped_union_length", "simulate_team_repeatedly",
        ):
            assert needed in page, f"docs/simulation.md lost {needed!r}"

    def test_multisensor_public_api_documented(self):
        import repro.multisensor as team

        for name in team.__all__:
            member = getattr(team, name)
            assert member.__doc__ and member.__doc__.strip(), (
                f"repro.multisensor.{name} has no docstring"
            )

    def test_team_result_documents_start_state_convention(self):
        from repro.multisensor import TeamSimulationResult, simulate_team

        doc = TeamSimulationResult.__doc__
        # The start-state convention is part of the public contract:
        # each sensor starts at its start PoI at time zero, drawing the
        # start uniformly from its own stream when not given.
        for phrase in ("start", "time zero", "stream", "uniform"):
            assert phrase in doc, (
                f"TeamSimulationResult docstring lost {phrase!r}"
            )
        for phrase in ("engine", "vectorized", "loop", "bit-identical"):
            assert phrase in simulate_team.__doc__


class TestBenchmarkCoverage:
    def test_one_bench_module_per_paper_artifact(self):
        bench_dir = ROOT / "benchmarks"
        names = {p.name for p in bench_dir.glob("test_bench_*.py")}
        for expected in (
            "test_bench_table1.py", "test_bench_table2.py",
            "test_bench_table3.py", "test_bench_table4.py",
            "test_bench_figure2.py", "test_bench_figure3.py",
            "test_bench_figure4.py", "test_bench_figure5.py",
            "test_bench_figure6.py", "test_bench_figure7.py",
            "test_bench_figure8.py", "test_bench_ablations.py",
            "test_bench_extensions.py", "test_bench_baselines.py",
        ):
            assert expected in names
