"""Tests for repro.utils.linalg."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.utils.linalg import (
    clip_to_open_interval,
    is_row_stochastic,
    max_feasible_step,
    project_row_sum_zero,
    relative_error,
    row_normalize,
    spectral_gap,
)


class TestIsRowStochastic:
    def test_accepts_valid(self):
        assert is_row_stochastic(np.full((3, 3), 1 / 3))

    def test_rejects_negative(self):
        matrix = np.array([[1.5, -0.5], [0.5, 0.5]])
        assert not is_row_stochastic(matrix)

    def test_rejects_bad_sum(self):
        assert not is_row_stochastic(np.full((2, 2), 0.4))

    def test_rejects_non_square(self):
        assert not is_row_stochastic(np.full((2, 3), 1 / 3))

    def test_rejects_nan(self):
        matrix = np.array([[np.nan, 1.0], [0.5, 0.5]])
        assert not is_row_stochastic(matrix)

    def test_rejects_vector(self):
        assert not is_row_stochastic(np.array([1.0]))


class TestRowNormalize:
    def test_normalizes(self):
        out = row_normalize(np.array([[2.0, 2.0], [1.0, 3.0]]))
        np.testing.assert_allclose(out.sum(axis=1), 1.0)

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match="non-negative"):
            row_normalize(np.array([[-1.0, 2.0]]))

    def test_rejects_zero_row(self):
        with pytest.raises(ValueError, match="row sum"):
            row_normalize(np.array([[0.0, 0.0], [1.0, 1.0]]))


class TestProjection:
    def test_rows_sum_to_zero(self, rng):
        matrix = rng.normal(size=(4, 4))
        projected = project_row_sum_zero(matrix)
        np.testing.assert_allclose(
            projected.sum(axis=1), 0.0, atol=1e-12
        )

    def test_idempotent(self, rng):
        matrix = rng.normal(size=(5, 5))
        once = project_row_sum_zero(matrix)
        twice = project_row_sum_zero(once)
        np.testing.assert_allclose(once, twice, atol=1e-12)

    def test_orthogonality(self, rng):
        """The removed component is orthogonal to the projection."""
        matrix = rng.normal(size=(4, 4))
        projected = project_row_sum_zero(matrix)
        residual = matrix - projected
        assert abs(np.sum(projected * residual)) < 1e-10

    def test_matches_paper_formula(self, rng):
        """Eq. (11): Pi_ij = U_ij - mean_k U_ik."""
        matrix = rng.normal(size=(3, 3))
        projected = project_row_sum_zero(matrix)
        for i in range(3):
            for j in range(3):
                expected = matrix[i, j] - matrix[i].mean()
                assert projected[i, j] == pytest.approx(expected)

    @settings(max_examples=30, deadline=None)
    @given(
        arrays(
            float, (3, 3),
            elements=st.floats(-100, 100, allow_nan=False),
        )
    )
    def test_property_row_sums_zero(self, matrix):
        projected = project_row_sum_zero(matrix)
        assert np.allclose(projected.sum(axis=1), 0.0, atol=1e-9)


class TestRelativeError:
    def test_zero_for_equal(self):
        a = np.ones((2, 2))
        assert relative_error(a, a) == 0.0

    def test_scale_invariant_floor(self):
        assert relative_error(np.array([1e-9]), np.array([0.0])) \
            == pytest.approx(1e-9)


class TestClip:
    def test_clips_both_sides(self):
        out = clip_to_open_interval(np.array([[0.0, 1.0]]), margin=1e-6)
        assert out.min() == 1e-6
        assert out.max() == 1.0 - 1e-6

    def test_bad_margin(self):
        with pytest.raises(ValueError, match="margin"):
            clip_to_open_interval(np.zeros((2, 2)), margin=0.7)


class TestSpectralGap:
    def test_uniform_chain_has_gap_one(self):
        assert spectral_gap(np.full((4, 4), 0.25)) == pytest.approx(1.0)

    def test_identity_has_zero_gap(self):
        assert spectral_gap(np.eye(3)) == pytest.approx(0.0)

    def test_rejects_non_stochastic(self):
        with pytest.raises(ValueError, match="stochastic"):
            spectral_gap(np.zeros((3, 3)))


class TestMaxFeasibleStep:
    def test_basic_bound(self):
        matrix = np.array([[0.5, 0.5], [0.5, 0.5]])
        direction = np.array([[1.0, -1.0], [0.0, 0.0]])
        # Entry (0,0) hits 1 at t=0.5; entry (0,1) hits 0 at t=0.5.
        assert max_feasible_step(matrix, direction) \
            == pytest.approx(0.5)

    def test_infinite_when_unconstrained(self):
        assert max_feasible_step(
            np.full((2, 2), 0.5), np.zeros((2, 2))
        ) == np.inf

    def test_zero_at_boundary(self):
        matrix = np.array([[0.0, 1.0], [0.5, 0.5]])
        direction = np.array([[-1.0, 1.0], [0.0, 0.0]])
        assert max_feasible_step(matrix, direction) == 0.0

    def test_custom_bounds(self):
        matrix = np.array([[0.5]])
        direction = np.array([[1.0]])
        assert max_feasible_step(
            matrix, direction, lower=0.2, upper=0.8
        ) == pytest.approx(0.3)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError, match="mismatch"):
            max_feasible_step(np.ones((2, 2)), np.ones((3, 3)))

    def test_never_violates(self, rng):
        for _ in range(20):
            matrix = rng.dirichlet(np.ones(4), size=4)
            direction = rng.normal(size=(4, 4))
            direction -= direction.mean(axis=1, keepdims=True)
            bound = max_feasible_step(matrix, direction)
            if np.isfinite(bound):
                stepped = matrix + bound * direction
                assert stepped.min() >= -1e-9
                assert stepped.max() <= 1.0 + 1e-9
