"""Tests for repro.utils.validation."""

import numpy as np
import pytest

from repro.utils.validation import (
    check_distribution,
    check_index,
    check_matrix_shape,
    check_positive,
    check_probability,
    check_square,
)


class TestCheckPositive:
    def test_accepts_positive(self):
        assert check_positive("x", 2.5) == 2.5

    def test_rejects_zero_when_strict(self):
        with pytest.raises(ValueError, match="must be > 0"):
            check_positive("x", 0.0)

    def test_accepts_zero_when_not_strict(self):
        assert check_positive("x", 0.0, strict=False) == 0.0

    def test_rejects_negative_nonstrict(self):
        with pytest.raises(ValueError, match=">= 0"):
            check_positive("x", -1.0, strict=False)

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            check_positive("x", float("nan"))

    def test_rejects_inf(self):
        with pytest.raises(ValueError, match="finite"):
            check_positive("x", float("inf"))


class TestCheckProbability:
    @pytest.mark.parametrize("value", [0.0, 0.5, 1.0])
    def test_accepts_unit_interval(self, value):
        assert check_probability("p", value) == value

    @pytest.mark.parametrize("value", [-0.01, 1.01, float("nan")])
    def test_rejects_outside(self, value):
        with pytest.raises(ValueError):
            check_probability("p", value)


class TestCheckSquare:
    def test_accepts_square(self):
        out = check_square("m", [[1, 2], [3, 4]])
        assert out.shape == (2, 2)
        assert out.dtype == float

    def test_rejects_rectangular(self):
        with pytest.raises(ValueError, match="square"):
            check_square("m", np.ones((2, 3)))

    def test_rejects_vector(self):
        with pytest.raises(ValueError, match="square"):
            check_square("m", np.ones(4))

    def test_rejects_nan(self):
        with pytest.raises(ValueError, match="non-finite"):
            check_square("m", [[1.0, np.nan], [0.0, 1.0]])


class TestCheckMatrixShape:
    def test_accepts_exact(self):
        out = check_matrix_shape("m", np.zeros((2, 3)), (2, 3))
        assert out.shape == (2, 3)

    def test_rejects_wrong(self):
        with pytest.raises(ValueError, match="shape"):
            check_matrix_shape("m", np.zeros((3, 2)), (2, 3))


class TestCheckDistribution:
    def test_accepts_valid(self):
        out = check_distribution("d", [0.2, 0.3, 0.5])
        assert out.sum() == pytest.approx(1.0)

    def test_rejects_wrong_sum(self):
        with pytest.raises(ValueError, match="sum to 1"):
            check_distribution("d", [0.2, 0.2])

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match="negative"):
            check_distribution("d", [-0.1, 0.6, 0.5])

    def test_rejects_wrong_size(self):
        with pytest.raises(ValueError, match="length"):
            check_distribution("d", [0.5, 0.5], size=3)

    def test_rejects_2d(self):
        with pytest.raises(ValueError, match="1-D"):
            check_distribution("d", np.full((2, 2), 0.25))

    def test_rejects_nan(self):
        with pytest.raises(ValueError, match="non-finite"):
            check_distribution("d", [0.5, np.nan])

    def test_tolerance_respected(self):
        out = check_distribution("d", [0.5, 0.5 + 1e-12])
        assert out.shape == (2,)


class TestCheckIndex:
    def test_accepts_valid(self):
        assert check_index("i", 2, 5) == 2

    @pytest.mark.parametrize("index", [-1, 5, 100])
    def test_rejects_out_of_range(self, index):
        with pytest.raises(ValueError, match="lie in"):
            check_index("i", index, 5)
