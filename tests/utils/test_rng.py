"""Tests for repro.utils.rng."""

import numpy as np
import pytest

from repro.utils.rng import (
    as_generator,
    derive_seed,
    paper_random_row,
    random_simplex_row,
    spawn_generators,
)


class TestAsGenerator:
    def test_none_gives_generator(self):
        assert isinstance(as_generator(None), np.random.Generator)

    def test_int_is_deterministic(self):
        a = as_generator(7).random(5)
        b = as_generator(7).random(5)
        np.testing.assert_array_equal(a, b)

    def test_different_ints_differ(self):
        assert not np.array_equal(
            as_generator(1).random(5), as_generator(2).random(5)
        )

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert as_generator(gen) is gen

    def test_seed_sequence_accepted(self):
        seq = np.random.SeedSequence(3)
        a = as_generator(seq).random(3)
        b = as_generator(np.random.SeedSequence(3)).random(3)
        np.testing.assert_array_equal(a, b)


class TestSpawnGenerators:
    def test_count(self):
        assert len(spawn_generators(0, 5)) == 5

    def test_zero_count(self):
        assert spawn_generators(0, 0) == []

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            spawn_generators(0, -1)

    def test_streams_are_independent(self):
        streams = spawn_generators(42, 3)
        draws = [g.random(4).tolist() for g in streams]
        assert draws[0] != draws[1] != draws[2]

    def test_deterministic_from_int_seed(self):
        a = [g.random() for g in spawn_generators(9, 3)]
        b = [g.random() for g in spawn_generators(9, 3)]
        assert a == b

    def test_generator_seed_supported(self):
        gens = spawn_generators(np.random.default_rng(0), 2)
        assert len(gens) == 2


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(5, 3) == derive_seed(5, 3)

    def test_distinct_indices(self):
        assert derive_seed(5, 0) != derive_seed(5, 1)

    def test_rejects_generator(self):
        with pytest.raises(TypeError, match="reproducible"):
            derive_seed(np.random.default_rng(0), 0)

    def test_range(self):
        value = derive_seed(123, 7)
        assert 0 <= value < 2**63


class TestSimplexRows:
    def test_random_simplex_row_sums_to_one(self, rng):
        row = random_simplex_row(6, rng)
        assert row.shape == (6,)
        assert row.sum() == pytest.approx(1.0)
        assert np.all(row >= 0)

    def test_floor_respected(self, rng):
        row = random_simplex_row(4, rng, floor=0.05)
        assert row.min() >= 0.05
        assert row.sum() == pytest.approx(1.0)

    def test_bad_floor_rejected(self, rng):
        with pytest.raises(ValueError, match="floor"):
            random_simplex_row(4, rng, floor=0.5)

    def test_bad_size_rejected(self, rng):
        with pytest.raises(ValueError, match="size"):
            random_simplex_row(0, rng)

    def test_paper_row_sums_to_one(self, rng):
        for _ in range(20):
            row = paper_random_row(5, rng)
            assert row.sum() == pytest.approx(1.0)

    def test_paper_row_strictly_positive(self, rng):
        for _ in range(20):
            assert paper_random_row(4, rng).min() > 0

    def test_paper_row_bad_size(self, rng):
        with pytest.raises(ValueError, match="size"):
            paper_random_row(0, rng)
