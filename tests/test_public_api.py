"""Public API surface tests: imports, __all__, and the README quickstart."""

import importlib

import numpy as np
import pytest

import repro


class TestPublicSurface:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"missing export: {name}"

    def test_key_entry_points_exported(self):
        for name in (
            "Topology", "paper_topology", "CoverageCost", "CostWeights",
            "optimize_basic", "optimize_adaptive", "optimize_perturbed",
            "optimize_multistart", "simulate_schedule", "MarkovChain",
        ):
            assert name in repro.__all__

    def test_term_registry_exported(self):
        for name in (
            "CostTerm", "TermBatch", "TermSpec", "TERM_REGISTRY",
            "CostSum", "ScaledTerm", "build_term",
            "normalize_extra_terms", "WorstExposureTerm",
            "KCoverageShortfallTerm", "PeriodicityTerm",
        ):
            assert name in repro.__all__
        # The registry order is part of the documented surface.
        assert tuple(repro.TERM_REGISTRY) == (
            "coverage", "exposure", "energy", "entropy",
            "minimax", "kcoverage", "periodicity",
        )

    @pytest.mark.parametrize("module", [
        "repro.core", "repro.markov", "repro.geometry",
        "repro.topology", "repro.simulation", "repro.baselines",
        "repro.experiments", "repro.utils", "repro.exec",
        "repro.sweep", "repro.service",
    ])
    def test_subpackages_importable(self, module):
        imported = importlib.import_module(module)
        for name in getattr(imported, "__all__", []):
            assert hasattr(imported, name), f"{module} missing {name}"


class TestDeprecatedSpellings:
    """Drifted keyword spellings warn and name the façade equivalent."""

    @pytest.fixture(scope="class")
    def topology(self):
        return repro.paper_topology(1)

    @pytest.fixture(scope="class")
    def matrix(self, topology):
        return repro.metropolis_hastings_matrix(topology.target_shares)

    def test_simulate_schedule_steps_warns(self, topology, matrix):
        with pytest.warns(DeprecationWarning, match="repro.simulate"):
            deprecated = repro.simulate_schedule(
                topology, matrix, steps=200, seed=3
            )
        current = repro.simulate_schedule(
            topology, matrix, transitions=200, seed=3
        )
        assert deprecated.coverage_shares.tobytes() == \
            current.coverage_shares.tobytes()

    def test_simulate_team_duration_warns(self, topology, matrix):
        from repro.multisensor import simulate_team

        with pytest.warns(DeprecationWarning, match="repro.simulate"):
            deprecated = simulate_team(
                topology, [matrix], duration=300.0, seed=3
            )
        current = simulate_team(topology, [matrix], horizon=300.0,
                                seed=3)
        assert deprecated.coverage_shares.tobytes() == \
            current.coverage_shares.tobytes()

    def test_explicit_spelling_takes_precedence(self, topology, matrix):
        with pytest.warns(DeprecationWarning):
            result = repro.simulate_schedule(
                topology, matrix, transitions=150, steps=999, seed=1
            )
        assert result.transitions == 150

    def test_missing_required_argument_still_typeerror(
        self, topology, matrix
    ):
        with pytest.raises(TypeError, match="transitions"):
            repro.simulate_schedule(topology, matrix)


class TestQuickstart:
    def test_readme_quickstart_flow(self):
        """The exact flow advertised in the package docstring."""
        from repro import (
            CostWeights,
            CoverageCost,
            PerturbedOptions,
            optimize_perturbed,
            paper_topology,
            simulate_schedule,
        )

        topology = paper_topology(1)
        cost = CoverageCost(topology, CostWeights(alpha=1.0, beta=1.0))
        result = optimize_perturbed(
            cost, seed=0,
            options=PerturbedOptions(max_iterations=30,
                                     trisection_rounds=10),
        )
        sim = simulate_schedule(
            topology, result.best_matrix, transitions=2000, seed=1
        )
        assert result.summary()
        assert sim.coverage_shares.shape == (4,)
        assert np.isfinite(sim.delta_c)
