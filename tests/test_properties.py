"""Cross-cutting property-based tests (hypothesis).

Each property ties at least two subsystems together on randomly generated
inputs: random topologies, random ergodic chains, random weightings.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import CostWeights, CoverageCost, grid_topology, line_topology
from repro.core.gradient import directional_derivative
from repro.core.state import ChainState
from repro.markov.entropy import entropy_rate
from repro.markov.passage import first_passage_times
from repro.markov.stationary import stationary_via_linear_solve
from tests.conftest import random_zero_rowsum_direction

SETTINGS = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def random_interior_matrix(seed, size):
    rng = np.random.default_rng(seed)
    matrix = 0.04 + 0.8 * rng.dirichlet(np.ones(size), size=size)
    return matrix / matrix.sum(axis=1, keepdims=True)


def random_shares(seed, size):
    rng = np.random.default_rng(seed)
    shares = 0.05 + rng.dirichlet(np.ones(size))
    return shares / shares.sum()


@SETTINGS
@given(seed=st.integers(0, 10_000), cols=st.integers(2, 4))
def test_coverage_shares_are_probabilities(seed, cols):
    """0 <= C-bar_i and sum(C-bar) <= 1 on random line topologies."""
    topology = line_topology(cols, target_shares=random_shares(seed, cols))
    cost = CoverageCost(topology, CostWeights())
    matrix = random_interior_matrix(seed, cols)
    shares = cost.coverage_shares(matrix)
    assert np.all(shares >= -1e-12)
    assert shares.sum() <= 1.0 + 1e-9


@SETTINGS
@given(seed=st.integers(0, 10_000))
def test_exposure_times_at_least_one_transition(seed):
    """Every exposure segment takes at least one transition."""
    matrix = random_interior_matrix(seed, 4)
    state = ChainState.from_matrix(matrix)
    assert np.all(state.exposure_times() >= 1.0 - 1e-9)


@SETTINGS
@given(seed=st.integers(0, 10_000))
def test_cost_nonnegative_without_entropy(seed):
    """All Eq. (9) terms are sums of squares and barriers: U_eps >= 0."""
    topology = grid_topology(2, 2, target_shares=random_shares(seed, 4))
    cost = CoverageCost(
        topology, CostWeights(alpha=1.0, beta=1.0, epsilon=1e-3)
    )
    assert cost.value(random_interior_matrix(seed, 4)) >= 0.0


@SETTINGS
@given(seed=st.integers(0, 10_000))
def test_gradient_check_random_topology_and_weights(seed):
    rng = np.random.default_rng(seed + 1)
    topology = grid_topology(2, 2, target_shares=random_shares(seed, 4))
    cost = CoverageCost(
        topology,
        CostWeights(
            alpha=float(rng.uniform(0.1, 2.0)),
            beta=float(rng.uniform(0.0, 2.0)),
            epsilon=1e-3,
        ),
    )
    matrix = random_interior_matrix(seed, 4)
    state = ChainState.from_matrix(matrix)
    direction = random_zero_rowsum_direction(rng, 4)
    h = 1e-7
    numeric = (
        cost.value(matrix + h * direction)
        - cost.value(matrix - h * direction)
    ) / (2 * h)
    analytic = directional_derivative(state, cost.terms, direction)
    assert numeric == pytest.approx(analytic, rel=1e-4, abs=1e-6)


@SETTINGS
@given(seed=st.integers(0, 10_000))
def test_descent_direction_is_descending(seed):
    topology = grid_topology(2, 2, target_shares=random_shares(seed, 4))
    cost = CoverageCost(topology, CostWeights(alpha=1.0, beta=0.5))
    matrix = random_interior_matrix(seed, 4)
    direction = cost.descent_direction(matrix)
    if np.linalg.norm(direction) < 1e-12:
        return  # critical point: nothing to check
    baseline = cost.value(matrix)
    stepped = cost.value(matrix + 1e-9 * direction)
    assert stepped <= baseline + 1e-12


@SETTINGS
@given(seed=st.integers(0, 10_000))
def test_batch_values_match_scalar(seed):
    topology = grid_topology(2, 2, target_shares=random_shares(seed, 4))
    cost = CoverageCost(topology, CostWeights(alpha=1.0, beta=1.0))
    rng = np.random.default_rng(seed)
    stack = np.array(
        [random_interior_matrix(seed + i, 4) for i in range(5)]
    )
    batch = cost.batch_values(stack)
    scalar = np.array([cost.value(m) for m in stack])
    assert np.allclose(batch, scalar, rtol=1e-9)


@SETTINGS
@given(seed=st.integers(0, 10_000))
def test_kac_and_entropy_invariants(seed):
    matrix = random_interior_matrix(seed, 5)
    pi = stationary_via_linear_solve(matrix)
    r = first_passage_times(matrix)
    assert np.allclose(np.diag(r), 1.0 / pi, rtol=1e-8)
    assert 0.0 <= entropy_rate(matrix, pi) <= np.log(5) + 1e-12


@SETTINGS
@given(seed=st.integers(0, 10_000))
def test_simulation_time_accounting(seed):
    """Total simulated time equals the sum of transition durations."""
    from repro import SimulationOptions, simulate_schedule

    topology = line_topology(3, target_shares=random_shares(seed, 3))
    matrix = random_interior_matrix(seed, 3)
    result = simulate_schedule(
        topology, matrix, transitions=200, seed=seed,
        options=SimulationOptions(record_path=True),
    )
    travel = topology.travel_times
    expected = sum(
        travel[result.path[n], result.path[n + 1]] for n in range(200)
    )
    assert result.total_time == pytest.approx(expected)
    # Schedule-convention coverage cannot exceed elapsed time.
    assert result.coverage_shares.sum() <= 1.0 + 1e-9
