"""End-to-end integration tests: optimize -> simulate -> verify.

These are the library's acceptance tests: they run the full pipeline a
downstream user would run and check the paper's headline claims at small
scale.
"""

import numpy as np
import pytest

from repro import (
    AdaptiveOptions,
    CostWeights,
    CoverageCost,
    PerturbedOptions,
    SimulationOptions,
    optimize_adaptive,
    optimize_multistart,
    optimize_perturbed,
    paper_topology,
    random_topology,
    simulate_schedule,
)


class TestOptimizeThenSimulate:
    def test_combined_objective_pipeline(self):
        topology = paper_topology(1)
        cost = CoverageCost(topology, CostWeights(alpha=1.0, beta=1.0))
        result = optimize_perturbed(
            cost, seed=0,
            options=PerturbedOptions(max_iterations=150,
                                     trisection_rounds=15),
        )
        sim = simulate_schedule(
            topology, result.best_matrix, transitions=60_000, seed=1,
            options=SimulationOptions(warmup=2000),
        )
        # Simulation confirms the analytic metrics of the optimum.
        assert sim.delta_c == pytest.approx(result.delta_c, rel=0.25,
                                            abs=0.5)
        assert sim.e_bar_transitions == pytest.approx(
            result.e_bar, rel=0.15
        )

    def test_coverage_objective_reaches_target(self):
        """alpha=1, beta=0: the optimizer approaches the target
        allocation (the Table I 1:0 behavior)."""
        topology = paper_topology(3)
        cost = CoverageCost(topology, CostWeights(alpha=1.0, beta=0.0))
        result = optimize_multistart(
            cost, random_starts=1, seed=0,
            options=PerturbedOptions(max_iterations=150,
                                     trisection_rounds=15),
        )
        shares = cost.coverage_shares(result.best.best_matrix)
        np.testing.assert_allclose(
            shares, topology.target_shares, atol=0.02
        )

    def test_exposure_objective_moves_constantly(self):
        """alpha=0, beta=1: the optimum has small self-loops."""
        topology = paper_topology(1)
        cost = CoverageCost(topology, CostWeights(alpha=0.0, beta=1.0))
        result = optimize_perturbed(
            cost, seed=0,
            options=PerturbedOptions(max_iterations=250,
                                     trisection_rounds=15),
        )
        assert np.diag(result.best_matrix).max() < 0.2

    def test_weight_tradeoff_direction(self):
        """Decreasing beta improves dC and worsens E-bar."""
        topology = paper_topology(1)
        outcomes = {}
        for beta in (1.0, 1e-4):
            cost = CoverageCost(
                topology, CostWeights(alpha=1.0, beta=beta)
            )
            result = optimize_multistart(
                cost, random_starts=1, seed=0,
                options=PerturbedOptions(max_iterations=150,
                                         trisection_rounds=15),
            )
            metrics = CoverageCost(topology, CostWeights())
            outcomes[beta] = (
                metrics.delta_c(result.best.best_matrix),
                metrics.e_bar(result.best.best_matrix),
            )
        assert outcomes[1e-4][0] < outcomes[1.0][0]
        assert outcomes[1e-4][1] > outcomes[1.0][1]


class TestLocalOptimaStory:
    def test_perturbed_beats_adaptive_on_average(self):
        """The paper's central claim at small scale."""
        topology = paper_topology(1)
        cost = CoverageCost(topology, CostWeights(alpha=0.0, beta=1.0))
        adaptive_costs, perturbed_costs = [], []
        for seed in range(3):
            adaptive_costs.append(
                optimize_adaptive(
                    cost, seed=seed,
                    options=AdaptiveOptions(max_iterations=150,
                                            trisection_rounds=15),
                ).u_eps
            )
            perturbed_costs.append(
                optimize_perturbed(
                    cost, seed=100 + seed,
                    options=PerturbedOptions(max_iterations=150,
                                             trisection_rounds=15),
                ).best_u_eps
            )
        assert np.mean(perturbed_costs) <= np.mean(adaptive_costs)

    def test_perturbed_consistent_across_seeds(self):
        topology = paper_topology(1)
        cost = CoverageCost(topology, CostWeights(alpha=0.0, beta=1.0))
        finals = [
            optimize_perturbed(
                cost, seed=seed,
                options=PerturbedOptions(max_iterations=300,
                                         trisection_rounds=15),
            ).best_u_eps
            for seed in range(3)
        ]
        spread = (max(finals) - min(finals)) / min(finals)
        assert spread < 0.1


class TestRandomTopologyRobustness:
    def test_pipeline_on_random_topology(self):
        topology = random_topology(5, seed=8)
        cost = CoverageCost(topology, CostWeights(alpha=1.0, beta=0.1))
        result = optimize_perturbed(
            cost, seed=0,
            options=PerturbedOptions(max_iterations=80,
                                     trisection_rounds=12),
        )
        assert np.isfinite(result.best_u_eps)
        sim = simulate_schedule(
            topology, result.best_matrix, transitions=5000, seed=1
        )
        assert sim.coverage_shares.sum() < 1.0
        assert np.all(sim.occupancy >= 0)

    def test_optimizer_improves_on_every_paper_topology(self):
        for identifier in (1, 2, 3, 4):
            topology = paper_topology(identifier)
            cost = CoverageCost(
                topology, CostWeights(alpha=1.0, beta=1.0)
            )
            from repro import uniform_matrix

            start_matrix = uniform_matrix(topology.size)
            start = cost.value(start_matrix)
            result = optimize_perturbed(
                cost, initial=start_matrix, seed=0,
                options=PerturbedOptions(max_iterations=40,
                                         trisection_rounds=12),
            )
            assert result.best_u_eps < start
