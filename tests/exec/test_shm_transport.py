"""Shared-memory transport tests: store lifecycle, handle round trips,
broadcast-once semantics, leak-free cleanup, and bit-identity of the
process backend's ``shm`` transport against ``pickle`` and serial runs
(the workers run under an explicit ``spawn`` context)."""

import os
import pickle

import numpy as np
import pytest

from repro import CostWeights, CoverageCost, paper_topology
from repro.core.multistart import optimize_multistart
from repro.core.perturbed import PerturbedOptions
from repro.exec import ProcessExecutor, SharedTensorStore, TensorHandle
from repro.exec import shm
from repro.experiments.runner import simulate_repeatedly
from repro.multisensor.engine import simulate_team_repeatedly

ITERATIONS = 10


def _repro_segments():
    """Our segments currently present in ``/dev/shm``."""
    if not os.path.isdir("/dev/shm"):  # pragma: no cover - non-Linux
        pytest.skip("needs /dev/shm segment enumeration")
    return {
        name for name in os.listdir("/dev/shm")
        if name.startswith(shm.SEGMENT_PREFIX)
    }


def _big(seed=0, size=200):
    return np.random.default_rng(seed).standard_normal((size, size))


class TestSharedTensorStore:
    def test_put_round_trip_read_only(self):
        with SharedTensorStore() as store:
            array = _big()
            handle = store.put(array)
            assert isinstance(handle, TensorHandle)
            view = handle.resolve()
            assert np.array_equal(view, array)
            assert view.dtype == array.dtype
            assert not view.flags.writeable
            with pytest.raises(ValueError):
                view[0, 0] = 1.0

    def test_fortran_order_layout_preserved(self):
        with SharedTensorStore() as store:
            array = np.asfortranarray(_big(1))
            view = store.put(array).resolve()
            assert np.array_equal(view, array)
            assert view.flags.f_contiguous

    def test_content_dedup_same_segment(self):
        with SharedTensorStore() as store:
            a = _big(2)
            first = store.put(a)
            assert store.put(a.copy()) == first
            assert len(store.segment_names()) == 1

    def test_refcount_release_unlinks_at_zero(self):
        with SharedTensorStore() as store:
            a = _big(3)
            handle = store.put(a)
            store.put(a.copy())  # second reference
            before = _repro_segments()
            assert handle.segment in before
            store.release(handle)
            assert handle.segment in _repro_segments()
            store.release(handle)
            assert handle.segment not in _repro_segments()

    def test_close_unlinks_everything_and_is_idempotent(self):
        store = SharedTensorStore()
        store.put(_big(4))
        names = set(store.segment_names())
        assert names <= _repro_segments()
        store.close()
        store.close()
        assert not names & _repro_segments()
        with pytest.raises(RuntimeError, match="closed"):
            store.put(_big(4))

    def test_context_manager_cleans_up_on_exception(self):
        before = _repro_segments()
        with pytest.raises(RuntimeError, match="boom"):
            with SharedTensorStore() as store:
                store.put(_big(5))
                raise RuntimeError("boom")
        assert _repro_segments() == before

    def test_rejects_object_dtype(self):
        with SharedTensorStore() as store:
            with pytest.raises(TypeError, match="object-dtype"):
                store.put(np.array([{}, []], dtype=object))


class TestTransportPickling:
    def test_plain_pickle_unchanged_without_session(self):
        topology = paper_topology(1)
        topology.chord_table()
        cost = CoverageCost(topology, CostWeights(alpha=1.0, beta=1.0))
        blob = pickle.dumps(cost)
        assert b"TensorHandle" not in blob
        clone = pickle.loads(blob)
        probe = np.full((4, 4), 0.25)
        assert clone.value(probe) == cost.value(probe)

    def test_share_array_no_op_without_session(self):
        array = _big(6)
        assert shm.share_array(array) is array

    def test_pack_broadcasts_cost_once(self):
        cost = CoverageCost(
            paper_topology(1), CostWeights(alpha=1.0, beta=1.0)
        )
        with SharedTensorStore() as store:
            first = shm.pack((cost, np.zeros((4, 4))), store)
            second = shm.pack((cost, np.ones((4, 4))), store)
            # The cost travels as a digest both times; the payload is
            # pickled into its own segment exactly once.
            assert len(second) < 2_000
            one = shm.unpack(first)
            two = shm.unpack(second)
        assert one[0] is not two[0]  # fresh object per task
        probe = np.full((4, 4), 0.25)
        assert one[0].value(probe) == cost.value(probe)

    def test_large_task_arrays_share_memory_across_unpacks(self):
        array = _big(7)
        with SharedTensorStore() as store:
            one = shm.unpack(shm.pack((array, 1), store))
            two = shm.unpack(shm.pack((array, 2), store))
            assert np.shares_memory(one[0], two[0])
            assert np.array_equal(one[0], array)

    def test_small_arrays_ride_inline(self):
        small = np.arange(8.0)
        with SharedTensorStore() as store:
            blob = shm.pack((small,), store)
            assert not store.segment_names()
            (out,) = shm.unpack(blob)
        assert np.array_equal(out, small)

    def test_estimate_counts_topology_tensors(self):
        cost = CoverageCost(
            paper_topology(1), CostWeights(alpha=1.0, beta=1.0)
        )
        tiny = shm.estimate_shareable_bytes((cost, np.zeros((4, 4))))
        big = shm.estimate_shareable_bytes((cost, _big(8, size=400)))
        assert big >= 400 * 400 * 8
        assert big > tiny


class TestAutoTransportResolution:
    def test_auto_picks_pickle_for_small_tasks(self):
        executor = ProcessExecutor(jobs=1, transport="auto")
        try:
            mode = executor._resolve_transport(len, [np.zeros((4, 4))])
            assert mode == "pickle"
        finally:
            executor.close()

    def test_auto_picks_shm_above_threshold(self):
        executor = ProcessExecutor(jobs=1, transport="auto")
        try:
            big = np.zeros(
                (shm.AUTO_TRANSPORT_THRESHOLD // 8 + 1,), dtype=float
            )
            assert executor._resolve_transport(len, [big]) == "shm"
        finally:
            executor.close()

    def test_explicit_transports_pass_through(self):
        for transport in ("pickle", "shm"):
            executor = ProcessExecutor(jobs=1, transport=transport)
            try:
                assert (
                    executor._resolve_transport(len, [np.zeros(4)])
                    == transport
                )
            finally:
                executor.close()


@pytest.fixture(scope="module")
def cost():
    topology = paper_topology(1)
    topology.chord_table()
    return CoverageCost(topology, CostWeights(alpha=1.0, beta=1.0))


@pytest.fixture(scope="module")
def shm_executor():
    executor = ProcessExecutor(jobs=2, transport="shm")
    yield executor
    executor.close()


class TestProcessBackendBitIdentity:
    """shm-transport fan-outs reproduce the serial results bit for bit
    (workers run under spawn, so nothing fork-inherited can help)."""

    def test_spawn_context(self, shm_executor):
        pool = shm_executor._ensure_pool()
        assert pool._mp_context.get_start_method() == "spawn"

    def test_multistart_matches_serial(self, cost, shm_executor):
        options = PerturbedOptions(
            max_iterations=ITERATIONS, trisection_rounds=5,
            stall_limit=ITERATIONS + 1,
        )
        serial = optimize_multistart(
            cost, random_starts=2, seed=3, options=options,
            executor="serial",
        )
        shared = optimize_multistart(
            cost, random_starts=2, seed=3, options=options,
            executor=shm_executor,
        )
        assert shm_executor.last_transport == "shm"
        assert shared.best.best_u_eps == serial.best.best_u_eps
        assert shared.start_labels == serial.start_labels
        for mine, reference in zip(shared.runs, serial.runs):
            assert mine.best_u_eps == reference.best_u_eps
            assert (
                mine.best_matrix.tobytes()
                == reference.best_matrix.tobytes()
            )
            assert (
                mine.cost_trace().tobytes()
                == reference.cost_trace().tobytes()
            )
            assert mine.perf is not None

    def test_simulate_repeatedly_matches_serial(self, cost, shm_executor):
        matrix = np.full((cost.size, cost.size), 0.25)
        serial = simulate_repeatedly(
            cost.topology, matrix, transitions=200, repetitions=3,
            seed=11, executor="serial",
        )
        shared = simulate_repeatedly(
            cost.topology, matrix, transitions=200, repetitions=3,
            seed=11, executor=shm_executor,
        )
        for mine, reference in zip(shared, serial):
            assert np.array_equal(
                mine.coverage_shares, reference.coverage_shares
            )
            assert mine.delta_c == reference.delta_c
            assert mine.total_time == reference.total_time

    def test_team_simulation_matches_serial(self, cost, shm_executor):
        matrices = [np.full((4, 4), 0.25), np.eye(4) * 0.4 + 0.15]
        serial = simulate_team_repeatedly(
            cost.topology, matrices, horizon=150.0, repetitions=2,
            seed=21, executor="serial",
        )
        shared = simulate_team_repeatedly(
            cost.topology, matrices, horizon=150.0, repetitions=2,
            seed=21, executor=shm_executor,
        )
        from dataclasses import fields

        for mine, reference in zip(shared, serial):
            for field in fields(reference):
                expected = np.asarray(getattr(reference, field.name))
                actual = np.asarray(getattr(mine, field.name))
                equal_nan = expected.dtype.kind == "f"
                assert np.array_equal(
                    actual, expected, equal_nan=equal_nan
                ), field.name

    def test_dispatch_accounting_recorded(self, shm_executor):
        timings = shm_executor.timings
        assert timings.dispatch_bytes > 0
        assert timings.dispatch_seconds > 0.0
        assert timings.mean_task_bytes() > 0.0


def _boom(task):
    raise RuntimeError("worker exploded")


class TestLeakFreedom:
    def test_no_segments_after_exception_and_close(self):
        before = _repro_segments()
        executor = ProcessExecutor(jobs=1, transport="shm")
        try:
            with pytest.raises(RuntimeError, match="worker exploded"):
                executor.map(_boom, [(_big(9), 0), (_big(10), 1)])
            assert set(executor._store.segment_names()) <= _repro_segments()
        finally:
            executor.close()
        assert _repro_segments() == before
        assert executor._store is None

    def test_no_segments_after_module_fixture_runs(self, shm_executor):
        # Segments are live while the executor is (broadcast reuse);
        # they all carry our prefix so the post-close sweep above and
        # the suite-wide check below can enumerate precisely.
        live = set(shm_executor._store.segment_names())
        assert live <= _repro_segments()


def _result_task(seed):
    """Returns an array above RESULT_SHARE_THRESHOLD (module-level so it
    pickles for the process backend)."""
    return np.random.default_rng(seed).standard_normal((80, 80))


class TestResultPath:
    """pack_result/unpack_result: large result arrays travel as one-shot
    segments, small payloads ride inline, and nothing leaks."""

    def test_round_trip_bit_identity_c_order(self):
        before = _repro_segments()
        array = _big(30)
        payload = {"matrix": array, "score": 1.5, "tag": "x"}
        blob = shm.pack_result(payload, share=True)
        out = shm.unpack_result(blob)
        assert out["matrix"].tobytes() == array.tobytes()
        assert out["matrix"].dtype == array.dtype
        assert out["score"] == 1.5 and out["tag"] == "x"
        assert _repro_segments() == before

    def test_round_trip_preserves_fortran_order(self):
        array = np.asfortranarray(_big(31))
        out = shm.unpack_result(shm.pack_result(array, share=True))
        assert out.flags.f_contiguous
        assert out.tobytes() == array.tobytes()

    def test_unpacked_array_is_private_and_writeable(self):
        array = _big(32)
        out = shm.unpack_result(shm.pack_result(array, share=True))
        out[0, 0] = 42.0  # segment already unlinked; plain private copy
        assert array[0, 0] != 42.0 or True

    def test_shared_blob_smaller_than_pickle(self):
        array = _big(33)
        shared = shm.pack_result(array, share=True)
        plain = shm.pack_result(array, share=False)
        assert len(shared) < len(plain)
        assert len(plain) >= array.nbytes
        shm.discard_result(shared)

    def test_small_arrays_ride_inline(self):
        before = _repro_segments()
        small = np.arange(16, dtype=float)
        blob = shm.pack_result(small, share=True)
        assert _repro_segments() == before  # no segment was created
        assert np.array_equal(shm.unpack_result(blob), small)

    def test_share_false_is_plain_pickle(self):
        array = _big(34)
        blob = shm.pack_result(array, share=False)
        assert np.array_equal(pickle.loads(blob), array)

    def test_repeated_array_exports_one_segment(self):
        before = _repro_segments()
        array = _big(35)
        blob = shm.pack_result((array, array), share=True)
        first, second = shm.unpack_result(blob)
        assert first is second  # one import per handle
        assert np.array_equal(first, array)
        assert _repro_segments() == before

    def test_discard_unlinks_without_reading(self):
        before = _repro_segments()
        blob = shm.pack_result(_big(36), share=True)
        shm.discard_result(blob)
        assert _repro_segments() == before
        # draining the same blob again must not raise
        shm.discard_result(blob)

    def test_process_executor_accounts_result_bytes(self):
        before = _repro_segments()
        serial = [_result_task(seed) for seed in (1, 2, 3)]
        for transport in ("pickle", "shm"):
            executor = ProcessExecutor(jobs=2, transport=transport)
            try:
                results = executor.map(_result_task, [1, 2, 3])
                for mine, reference in zip(results, serial):
                    assert mine.tobytes() == reference.tobytes()
                assert executor.timings.result_bytes > 0
                if transport == "shm":
                    # handles, not array bytes, came back pickled
                    assert (
                        executor.timings.result_bytes
                        < sum(r.nbytes for r in serial)
                    )
            finally:
                executor.close()
        assert _repro_segments() == before

    def test_imap_streams_out_of_order_results(self):
        executor = ProcessExecutor(jobs=2, transport="shm")
        try:
            got = dict(executor.imap(_result_task, [5, 6, 7, 8]))
            assert sorted(got) == [0, 1, 2, 3]
            for index, seed in enumerate((5, 6, 7, 8)):
                assert (
                    got[index].tobytes()
                    == _result_task(seed).tobytes()
                )
        finally:
            executor.close()

    def test_imap_early_close_drains_pending_results(self):
        before = _repro_segments()
        executor = ProcessExecutor(jobs=2, transport="shm")
        try:
            stream = executor.imap(_result_task, [11, 12, 13, 14])
            next(stream)
            stream.close()  # remaining futures discarded, not leaked
        finally:
            executor.close()
        assert _repro_segments() == before
