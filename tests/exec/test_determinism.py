"""Backend-invariance: identical results on serial/thread/process.

The executors' core contract (see ISSUE-level acceptance criteria): every
multi-run driver seeds its tasks from pre-spawned independent RNG
streams, so the achieved results are **bit-identical** whichever backend
executes them, and whatever the execution order.
"""

import numpy as np
import pytest

from repro import CostWeights, CoverageCost, using_executor
from repro.core.multistart import optimize_multistart
from repro.core.perturbed import PerturbedOptions
from repro.experiments.runner import run_many, simulate_repeatedly

ITERATIONS = 12


@pytest.fixture(scope="module")
def cost():
    from repro import paper_topology

    return CoverageCost(
        paper_topology(1), CostWeights(alpha=1.0, beta=1.0)
    )


@pytest.fixture(scope="module")
def serial_reference(cost):
    return run_many(
        cost, "perturbed", runs=3, iterations=ITERATIONS, seed=5,
        executor="serial",
    )


@pytest.mark.parametrize("backend", ["thread", "process"])
class TestRunManyBackendInvariance:
    def test_best_u_eps_bit_identical(
        self, cost, serial_reference, backend
    ):
        results = run_many(
            cost, "perturbed", runs=3, iterations=ITERATIONS, seed=5,
            executor=backend,
        )
        for reference, result in zip(serial_reference, results):
            assert result.best_u_eps == reference.best_u_eps
            assert np.array_equal(
                result.best_matrix, reference.best_matrix
            )

    def test_perf_counters_travel_back(
        self, cost, serial_reference, backend
    ):
        results = run_many(
            cost, "perturbed", runs=2, iterations=ITERATIONS, seed=5,
            executor=backend,
        )
        for result in results:
            assert result.perf is not None
            assert result.perf.accepted_steps >= 0
            assert result.perf.factorizations > 0


class TestMultistartBackendInvariance:
    def test_thread_matches_serial(self, cost):
        options = PerturbedOptions(
            max_iterations=ITERATIONS, record_history=False,
            stall_limit=ITERATIONS + 1,
        )
        serial = optimize_multistart(
            cost, random_starts=1, seed=2, options=options,
            executor="serial",
        )
        threaded = optimize_multistart(
            cost, random_starts=1, seed=2, options=options,
            executor="thread",
        )
        assert serial.best.best_u_eps == threaded.best.best_u_eps
        assert serial.start_labels == threaded.start_labels
        for a, b in zip(serial.runs, threaded.runs):
            assert a.best_u_eps == b.best_u_eps

    def test_ambient_default_executor_is_used(self, cost):
        options = PerturbedOptions(
            max_iterations=ITERATIONS, record_history=False,
            stall_limit=ITERATIONS + 1,
        )
        explicit = optimize_multistart(
            cost, random_starts=1, seed=2, options=options,
            executor="serial",
        )
        with using_executor("thread", jobs=2):
            ambient = optimize_multistart(
                cost, random_starts=1, seed=2, options=options
            )
        assert ambient.best.best_u_eps == explicit.best.best_u_eps


class TestSimulateRepeatedlyBackendInvariance:
    def test_thread_matches_serial(self, cost):
        matrix = np.full((cost.size, cost.size), 1.0 / cost.size)
        serial = simulate_repeatedly(
            cost.topology, matrix, transitions=300, repetitions=3,
            seed=9, executor="serial",
        )
        threaded = simulate_repeatedly(
            cost.topology, matrix, transitions=300, repetitions=3,
            seed=9, executor="thread",
        )
        for a, b in zip(serial, threaded):
            assert np.array_equal(a.coverage_shares, b.coverage_shares)
            assert a.delta_c == b.delta_c
