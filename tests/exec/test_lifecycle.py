"""Executor lifecycle edges: default restoration on exception, closed
pools transparently re-opening, and transport argument validation."""

import pytest

from repro.exec import (
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    default_executor,
    get_executor,
    resolve_executor,
    set_default_executor,
    using_executor,
)


def _square(x):
    return x * x


def _matrix_sum(array):
    return float(array.sum())


def _topology_size(task):
    topology, factor = task
    return topology.size * factor


class TestUsingExecutorExceptionSafety:
    def test_restores_previous_default_on_exception(self):
        before = default_executor()
        with pytest.raises(RuntimeError, match="boom"):
            with using_executor("thread", jobs=1):
                assert default_executor() is not before
                raise RuntimeError("boom")
        assert default_executor() is before

    def test_owned_executor_closed_on_exception(self):
        with pytest.raises(RuntimeError, match="boom"):
            with using_executor("thread", jobs=1) as scoped:
                scoped.map(_square, [1, 2])
                raise RuntimeError("boom")
        assert scoped._pool is None

    def test_instance_not_closed_on_exception(self):
        mine = ThreadExecutor(jobs=1)
        try:
            mine.map(_square, [1])
            with pytest.raises(RuntimeError, match="boom"):
                with using_executor(mine):
                    raise RuntimeError("boom")
            # still usable: the scope never owned it
            assert mine.map(_square, [3]) == [9]
        finally:
            mine.close()

    def test_nested_scopes_unwind_through_exceptions(self):
        previous = set_default_executor(None)
        try:
            with using_executor("serial") as outer:
                with pytest.raises(RuntimeError, match="inner"):
                    with using_executor("thread", jobs=1):
                        raise RuntimeError("inner")
                assert default_executor() is outer
        finally:
            set_default_executor(previous)


class TestClosedPoolReopens:
    def test_thread_pool_reopens_after_close(self):
        executor = ThreadExecutor(jobs=1)
        try:
            assert executor.map(_square, [2]) == [4]
            first_pool = executor._pool
            executor.close()
            assert executor._pool is None
            assert executor.map(_square, [3]) == [9]
            assert executor._pool is not first_pool
        finally:
            executor.close()

    def test_process_pool_and_store_reopen_after_close(self):
        executor = ProcessExecutor(jobs=1, transport="pickle")
        try:
            assert executor.map(_square, [2]) == [4]
            executor.close()
            assert executor._pool is None
            assert executor._store is None
            assert executor.map(_square, [5]) == [25]
        finally:
            executor.close()


class TestTransportValidation:
    def test_unknown_transport_rejected(self):
        with pytest.raises(ValueError, match="unknown transport"):
            ProcessExecutor(jobs=1, transport="carrier-pigeon")
        with pytest.raises(ValueError, match="unknown transport"):
            get_executor("serial", transport="carrier-pigeon")

    def test_shm_requires_process_backend(self):
        with pytest.raises(ValueError, match="process backend"):
            get_executor("serial", transport="shm")
        with pytest.raises(ValueError, match="process backend"):
            get_executor("thread", transport="shm")

    def test_pickle_and_auto_are_noops_elsewhere(self):
        for transport in ("pickle", "auto"):
            executor = get_executor("serial", transport=transport)
            executor.close()
            assert isinstance(executor, SerialExecutor)

    def test_resolve_rejects_transport_with_instance(self):
        with SerialExecutor() as mine:
            with pytest.raises(ValueError, match="transport applies"):
                resolve_executor(mine, transport="shm")

    def test_resolve_rejects_transport_with_ambient_default(self):
        with pytest.raises(ValueError, match="transport applies"):
            resolve_executor(None, transport="shm")

    def test_resolve_builds_backend_with_transport(self):
        executor = resolve_executor("process", jobs=1, transport="shm")
        try:
            assert isinstance(executor, ProcessExecutor)
            assert executor.transport == "shm"
        finally:
            executor.close()

    def test_multistart_rejects_transport_for_inprocess_modes(self):
        from repro import CostWeights, CoverageCost, paper_topology
        from repro.core.multistart import optimize_multistart

        cost = CoverageCost(
            paper_topology(1), CostWeights(alpha=1.0, beta=1.0)
        )
        for execution in ("serial", "lockstep"):
            with pytest.raises(ValueError, match="in-process"):
                optimize_multistart(
                    cost, execution=execution, transport="shm"
                )


class TestSharedStoreRefcounting:
    """A SharedTensorStore injected into executors outlives each of
    them: close() releases one owner, the last owner unlinks."""

    def test_retain_and_close_balance(self):
        import numpy as np

        from repro.exec import SharedTensorStore

        store = SharedTensorStore()
        handle = store.put(np.ones((64, 64)))
        assert store.retain() is store
        store.close()  # releases the retain
        assert np.array_equal(handle.resolve(), np.ones((64, 64)))
        store.close()  # releases the creator's reference -> unlink
        with pytest.raises(RuntimeError):
            store.put(np.ones(2))

    def test_retain_after_final_close_raises(self):
        from repro.exec import SharedTensorStore

        store = SharedTensorStore()
        store.close()
        with pytest.raises(RuntimeError):
            store.retain()

    def test_store_survives_executor_generations(self):
        from repro import paper_topology
        from repro.exec import SharedTensorStore

        with SharedTensorStore() as store:
            topology = paper_topology(1)
            expected = [topology.size * f for f in (1, 2)]
            for generation in range(2):
                executor = ProcessExecutor(
                    jobs=1, transport="shm", store=store
                )
                try:
                    got = executor.map(
                        _topology_size, [(topology, 1), (topology, 2)]
                    )
                finally:
                    executor.close()
                assert got == expected
                # executor.close() released only its own reference
                assert store.broadcast_requests > 0
            # the second pool generation's broadcasts hit the surviving
            # registry instead of re-exporting the topology
            assert store.broadcast_hits >= store.broadcast_requests // 2
            assert len(store.segment_names()) > 0
        with pytest.raises(RuntimeError):
            store.retain()

    def test_executor_falls_back_when_shared_store_already_closed(self):
        from repro.exec import SharedTensorStore

        store = SharedTensorStore()
        store.close()
        executor = ProcessExecutor(jobs=1, transport="shm", store=store)
        try:
            private = executor._ensure_store()
            assert private is not store  # fresh private store
        finally:
            executor.close()
