"""Tests for the pluggable execution backends (repro.exec)."""

import pytest

from repro.exec import (
    BACKENDS,
    Executor,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    default_executor,
    get_executor,
    resolve_executor,
    set_default_executor,
    using_executor,
)


def _square(x):
    return x * x


def _fail_on_three(x):
    if x == 3:
        raise RuntimeError("task three failed")
    return x


class TestSerialExecutor:
    def test_map_preserves_order(self):
        with SerialExecutor() as executor:
            assert executor.map(_square, range(6)) == [
                0, 1, 4, 9, 16, 25,
            ]

    def test_map_empty(self):
        with SerialExecutor() as executor:
            assert executor.map(_square, []) == []

    def test_errors_propagate(self):
        with SerialExecutor() as executor:
            with pytest.raises(RuntimeError, match="task three"):
                executor.map(_fail_on_three, range(6))

    def test_timings_recorded(self):
        with SerialExecutor() as executor:
            executor.map(_square, range(4))
            assert executor.timings.tasks == 4
            assert executor.timings.task_seconds >= 0.0
            assert executor.timings.wall_seconds > 0.0


@pytest.mark.parametrize(
    "factory", [ThreadExecutor, ProcessExecutor],
    ids=["thread", "process"],
)
class TestPoolExecutors:
    def test_map_preserves_order(self, factory):
        with factory(jobs=2) as executor:
            assert executor.map(_square, range(8)) == [
                x * x for x in range(8)
            ]

    def test_errors_propagate(self, factory):
        with factory(jobs=2) as executor:
            with pytest.raises(RuntimeError, match="task three"):
                executor.map(_fail_on_three, range(6))

    def test_pool_reused_across_maps(self, factory):
        with factory(jobs=2) as executor:
            executor.map(_square, range(3))
            pool = executor._pool
            executor.map(_square, range(3))
            assert executor._pool is pool
            assert executor.timings.tasks == 6

    def test_close_is_idempotent(self, factory):
        executor = factory(jobs=1)
        executor.map(_square, [1])
        executor.close()
        executor.close()


class TestFactoryAndDefaults:
    def test_get_executor_backends(self):
        assert BACKENDS == ("serial", "thread", "process")
        for backend, cls in zip(
            BACKENDS, (SerialExecutor, ThreadExecutor, ProcessExecutor)
        ):
            executor = get_executor(backend, jobs=1)
            try:
                assert type(executor) is cls
                assert executor.name == backend
            finally:
                executor.close()

    def test_get_executor_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown backend"):
            get_executor("gpu")

    def test_rejects_bad_jobs(self):
        with pytest.raises(ValueError, match="jobs"):
            SerialExecutor(jobs=0)

    def test_default_is_serial(self):
        assert isinstance(default_executor(), SerialExecutor)

    def test_resolve_passthrough_and_names(self):
        with SerialExecutor() as mine:
            assert resolve_executor(mine) is mine
        named = resolve_executor("thread", jobs=1)
        try:
            assert isinstance(named, ThreadExecutor)
        finally:
            named.close()
        assert isinstance(resolve_executor(None), Executor)

    def test_using_executor_scopes_default(self):
        before = default_executor()
        with using_executor("thread", jobs=1) as scoped:
            assert default_executor() is scoped
            assert isinstance(scoped, ThreadExecutor)
        assert default_executor() is before

    def test_using_executor_accepts_instance(self):
        with SerialExecutor() as mine:
            with using_executor(mine) as scoped:
                assert scoped is mine
                assert resolve_executor(None) is mine

    def test_set_default_returns_previous(self):
        previous = set_default_executor(None)
        try:
            with SerialExecutor() as mine:
                assert set_default_executor(mine) is None
                assert default_executor() is mine
        finally:
            set_default_executor(previous)
