"""Tests for repro.multisensor (team simulation and approximations)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import paper_topology, uniform_matrix
from repro.multisensor import (
    check_team_result,
    sensors_needed_for_coverage,
    simulate_team,
    simulate_team_repeatedly,
    team_coverage_approximation,
    team_exposure_approximation,
)
from repro.multisensor.engine import _union_length
from repro.simulation.intervals import (
    gap_lengths,
    grouped_coverage,
    grouped_union_length,
    merge_intervals,
)


@pytest.fixture(scope="module")
def topology():
    return paper_topology(1)


@pytest.fixture(scope="module")
def team_run(topology):
    matrix = uniform_matrix(4)
    return simulate_team(
        topology, [matrix, matrix, matrix], horizon=120_000.0, seed=0
    )


class TestUnionLength:
    def test_disjoint(self):
        assert _union_length([(0, 1), (2, 3)]) == pytest.approx(2.0)

    def test_overlapping(self):
        assert _union_length([(0, 2), (1, 3)]) == pytest.approx(3.0)

    def test_unsorted_input(self):
        assert _union_length([(5, 6), (0, 2)]) == pytest.approx(3.0)

    def test_empty(self):
        assert _union_length([]) == 0.0

    def test_nested(self):
        assert _union_length([(0, 10), (2, 3)]) == pytest.approx(10.0)


class TestValidation:
    def test_rejects_empty_team(self, topology):
        with pytest.raises(ValueError, match="at least one"):
            simulate_team(topology, [], horizon=100.0)

    def test_rejects_bad_horizon(self, topology):
        with pytest.raises(ValueError, match="horizon"):
            simulate_team(topology, [uniform_matrix(4)], horizon=0.0)

    def test_rejects_size_mismatch(self, topology):
        with pytest.raises(ValueError, match="size"):
            simulate_team(topology, [uniform_matrix(3)], horizon=100.0)

    def test_rejects_non_stochastic(self, topology):
        with pytest.raises(ValueError, match="stochastic"):
            simulate_team(topology, [np.ones((4, 4))], horizon=100.0)

    def test_rejects_starts_length(self, topology):
        with pytest.raises(ValueError, match="starts"):
            simulate_team(
                topology, [uniform_matrix(4)], horizon=100.0,
                starts=[0, 1],
            )


class TestTeamSimulation:
    def test_result_shapes(self, team_run):
        assert team_run.sensors == 3
        assert team_run.size == 4
        assert team_run.coverage_shares.shape == (4,)
        assert team_run.per_sensor_shares.shape == (3, 4)
        assert team_run.transitions.shape == (3,)

    def test_reproducible(self, topology):
        matrix = uniform_matrix(4)
        a = simulate_team(topology, [matrix] * 2, horizon=5000.0, seed=3)
        b = simulate_team(topology, [matrix] * 2, horizon=5000.0, seed=3)
        np.testing.assert_array_equal(
            a.coverage_shares, b.coverage_shares
        )

    def test_union_at_least_best_individual(self, team_run):
        best_individual = team_run.per_sensor_shares.max(axis=0)
        assert np.all(
            team_run.coverage_shares >= best_individual - 1e-12
        )

    def test_union_at_most_sum(self, team_run):
        total = team_run.per_sensor_shares.sum(axis=0)
        assert np.all(team_run.coverage_shares <= total + 1e-12)

    def test_team_shrinks_exposure(self, topology):
        matrix = uniform_matrix(4)
        solo = simulate_team(
            topology, [matrix], horizon=120_000.0, seed=1
        )
        trio = simulate_team(
            topology, [matrix] * 3, horizon=120_000.0, seed=1
        )
        assert np.nanmean(trio.exposure_mean) \
            < np.nanmean(solo.exposure_mean)

    def test_heterogeneous_team(self, topology, rng):
        slow = 0.9 * np.eye(4) + 0.1 * uniform_matrix(4)
        fast = uniform_matrix(4)
        result = simulate_team(
            topology, [slow, fast], horizon=50_000.0, seed=2
        )
        # The lazy sensor spends most of its time parked at PoIs, so its
        # total covered fraction exceeds the always-traveling one's.
        assert result.per_sensor_shares[0].sum() \
            > result.per_sensor_shares[1].sum()

    def test_fixed_starts(self, topology):
        matrix = uniform_matrix(4)
        result = simulate_team(
            topology, [matrix], horizon=1000.0, seed=0, starts=[2]
        )
        assert result.sensors == 1


#: Hypothesis strategy: a team of per-sensor interval lists inside
#: [0, HORIZON], as (start, length) pairs.
HORIZON = 100.0
_interval = st.tuples(
    st.floats(min_value=0.0, max_value=HORIZON * 0.99),
    st.floats(min_value=1e-6, max_value=HORIZON / 4),
)
_sensor_intervals = st.lists(_interval, min_size=0, max_size=12)
_team_intervals = st.lists(_sensor_intervals, min_size=1, max_size=4)


def _team_arrays(team):
    """Concatenate a team's (start, length) pairs, clipped to HORIZON."""
    starts, ends = [], []
    for sensor in team:
        for lo, length in sensor:
            starts.append(lo)
            ends.append(min(lo + length, HORIZON))
    return np.asarray(starts, dtype=float), np.asarray(ends, dtype=float)


class TestUnionProperties:
    """K-way union identities between the shared interval kernels."""

    @settings(max_examples=60, deadline=None)
    @given(_team_intervals)
    def test_kway_union_equals_merge_of_concatenation(self, team):
        """Union coverage over a K-sensor concatenated stream equals
        merge_intervals over the same concatenated intervals."""
        starts, ends = _team_arrays(team)
        poi = np.zeros(starts.size, dtype=np.int64)
        order = np.argsort(starts, kind="stable")
        covered, _, _ = grouped_coverage(
            poi[order], starts[order], ends[order], 1, merge_tol=0.0
        )
        merged_starts, merged_ends = merge_intervals(starts, ends)
        assert covered[0] == pytest.approx(
            float(np.sum(merged_ends - merged_starts)), abs=1e-9
        )
        union = grouped_union_length(
            poi[order], starts[order], ends[order], 1
        )
        assert union[0] == pytest.approx(covered[0], abs=1e-9)

    @settings(max_examples=60, deadline=None)
    @given(_team_intervals)
    def test_gaps_are_complement_of_union_within_horizon(self, team):
        """Covered time plus all uncovered gaps (leading, interior,
        trailing) tiles the horizon exactly."""
        starts, ends = _team_arrays(team)
        merged_starts, merged_ends = merge_intervals(starts, ends)
        covered = float(np.sum(merged_ends - merged_starts))
        gaps = gap_lengths(
            merged_starts, merged_ends, horizon=HORIZON, origin=0.0
        )
        assert covered + float(gaps.sum()) == pytest.approx(
            HORIZON, rel=1e-9
        )

    @settings(max_examples=40, deadline=None)
    @given(_team_intervals, st.integers(min_value=1, max_value=5))
    def test_grouped_union_matches_per_group_reference(self, team, size):
        """grouped_union_length over scattered groups equals the scalar
        _union_length reference per group."""
        starts, ends = _team_arrays(team)
        rng = np.random.default_rng(starts.size + size)
        poi = rng.integers(0, size, starts.size)
        order = np.argsort(starts, kind="stable")
        order = order[np.argsort(poi[order], kind="stable")]
        union = grouped_union_length(
            poi[order], starts[order], ends[order], size
        )
        for group in range(size):
            reference = _union_length(
                [(s, e) for g, s, e in zip(poi, starts, ends)
                 if g == group]
            )
            assert union[group] == pytest.approx(reference, abs=1e-9)

    def test_engine_union_consistency_seeded(self, topology):
        """Simulated team results satisfy every union invariant."""
        rng = np.random.default_rng(99)
        for seed in range(4):
            raw = rng.random((4, 4)) + np.eye(4)
            matrix = raw / raw.sum(axis=1, keepdims=True)
            result = simulate_team(
                topology, [matrix] * (seed + 1),
                horizon=float(rng.uniform(100.0, 20_000.0)),
                seed=seed,
            )
            check_team_result(result)


class TestTeamRepeatedly:
    def test_returns_independent_replications(self, topology):
        matrix = uniform_matrix(4)
        results = simulate_team_repeatedly(
            topology, [matrix] * 2, horizon=5_000.0, repetitions=3,
            seed=7,
        )
        assert len(results) == 3
        shares = [r.coverage_shares for r in results]
        assert not np.array_equal(shares[0], shares[1])

    def test_bit_identical_across_backends(self, topology):
        matrix = uniform_matrix(4)
        serial = simulate_team_repeatedly(
            topology, [matrix] * 2, horizon=5_000.0, repetitions=4,
            seed=2, executor="serial",
        )
        threaded = simulate_team_repeatedly(
            topology, [matrix] * 2, horizon=5_000.0, repetitions=4,
            seed=2, executor="thread",
        )
        for a, b in zip(serial, threaded):
            np.testing.assert_array_equal(
                a.coverage_shares, b.coverage_shares
            )
            np.testing.assert_array_equal(
                a.exposure_mean, b.exposure_mean
            )

    def test_engine_knob_is_bit_identical(self, topology):
        matrix = uniform_matrix(4)
        loop, vec = (
            simulate_team_repeatedly(
                topology, [matrix], horizon=3_000.0, repetitions=2,
                seed=5, engine=engine,
            )
            for engine in ("loop", "vectorized")
        )
        for a, b in zip(loop, vec):
            np.testing.assert_array_equal(
                a.coverage_shares, b.coverage_shares
            )

    def test_rejects_bad_repetitions(self, topology):
        with pytest.raises(ValueError, match="repetitions"):
            simulate_team_repeatedly(
                topology, [uniform_matrix(4)], horizon=100.0,
                repetitions=0,
            )


class TestCoverageApproximation:
    def test_matches_simulation(self, team_run):
        approx = team_coverage_approximation(team_run.per_sensor_shares)
        np.testing.assert_allclose(
            approx, team_run.coverage_shares, rtol=0.05
        )

    def test_single_sensor_identity(self):
        shares = np.array([0.2, 0.5])
        np.testing.assert_allclose(
            team_coverage_approximation(shares), shares
        )

    def test_two_sensor_closed_form(self):
        approx = team_coverage_approximation(
            np.array([[0.5, 0.2], [0.5, 0.2]])
        )
        np.testing.assert_allclose(approx, [0.75, 0.36])

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError, match="shares"):
            team_coverage_approximation(np.array([1.5]))


class TestExposureApproximation:
    def test_matches_simulation_within_band(self, topology):
        matrix = uniform_matrix(4)
        solo = simulate_team(
            topology, [matrix], horizon=120_000.0, seed=5
        )
        trio = simulate_team(
            topology, [matrix] * 3, horizon=120_000.0, seed=6
        )
        approx = team_exposure_approximation(
            np.tile(solo.exposure_mean, (3, 1))
        )
        ratio = trio.exposure_mean / approx
        assert np.all(ratio > 0.5) and np.all(ratio < 2.0)

    def test_homogeneous_closed_form(self):
        approx = team_exposure_approximation(
            np.array([[6.0, 9.0], [6.0, 9.0], [6.0, 9.0]])
        )
        np.testing.assert_allclose(approx, [2.0, 3.0])

    def test_infinite_sensor_drops_out(self):
        approx = team_exposure_approximation(
            np.array([[4.0], [np.inf]])
        )
        np.testing.assert_allclose(approx, [4.0])

    def test_all_infinite_gives_infinite(self):
        approx = team_exposure_approximation(np.array([[np.inf]]))
        assert np.isinf(approx[0])

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError, match="> 0"):
            team_exposure_approximation(np.array([[0.0]]))


class TestTeamSizing:
    def test_monotone_in_target(self):
        low = sensors_needed_for_coverage(0.3, 0.5)
        high = sensors_needed_for_coverage(0.3, 0.99)
        assert high > low

    def test_exact_boundary(self):
        # 1 - (1 - 0.5)^2 = 0.75 exactly.
        assert sensors_needed_for_coverage(0.5, 0.75) == 2

    def test_single_sensor_enough(self):
        assert sensors_needed_for_coverage(0.9, 0.5) == 1

    @pytest.mark.parametrize("single,target", [
        (0.0, 0.5), (1.0, 0.5), (0.5, 0.0), (0.5, 1.0),
    ])
    def test_rejects_degenerate(self, single, target):
        with pytest.raises(ValueError):
            sensors_needed_for_coverage(single, target)

    def test_formula_satisfied(self):
        for single in (0.1, 0.33, 0.7):
            for target in (0.5, 0.9, 0.999):
                k = sensors_needed_for_coverage(single, target)
                assert 1 - (1 - single) ** k >= target - 1e-12
                if k > 1:
                    assert 1 - (1 - single) ** (k - 1) < target
