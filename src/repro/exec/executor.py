"""Pluggable execution backends for embarrassingly parallel drivers.

Every multi-run axis in the experiment stack — independent seeds in
``run_many``, the start portfolio in ``optimize_multistart``, repeated
simulations in ``simulate_repeatedly`` — is a pure fan-out: each task
receives its own pre-spawned RNG stream (see
:func:`repro.utils.rng.spawn_generators`) and touches no shared state.
This module provides the executors that run such fan-outs:

* ``serial`` — a plain loop, the default; zero overhead and the
  reference behavior.
* ``thread`` — :class:`concurrent.futures.ThreadPoolExecutor`; useful
  when the work releases the GIL (BLAS-heavy tasks) or for I/O.
* ``process`` — :class:`concurrent.futures.ProcessPoolExecutor`; the
  scaling backend for CPU-bound optimization.  Task functions and
  payloads must be picklable (module-level functions; the library's
  topologies, costs, options, and ``numpy`` generators all are).

Determinism is the executors' contract: ``map`` preserves input order
and each task's randomness comes exclusively from its payload, so all
three backends produce **bit-identical** results for the same seed (the
test suite enforces this).

A process-wide *default executor* can be installed
(:func:`set_default_executor` / :func:`using_executor`); drivers resolve
``executor=None`` against it, which is how the CLI's ``--jobs`` flag
reaches every experiment without threading a parameter through each
call chain.
"""

from __future__ import annotations

import os
import threading
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Union

from repro.utils import perf

#: Names accepted by :func:`get_executor` and the CLI ``--backend`` flag.
BACKENDS = ("serial", "thread", "process")


@dataclass
class TaskTimings:
    """Wall-clock accounting for one executor's lifetime."""

    tasks: int = 0
    task_seconds: float = 0.0
    max_task_seconds: float = 0.0
    wall_seconds: float = 0.0

    def record_task(self, seconds: float) -> None:
        self.tasks += 1
        self.task_seconds += seconds
        self.max_task_seconds = max(self.max_task_seconds, seconds)


def _timed_call(fn: Callable, item):
    """Run one task, returning ``(result, seconds)``.

    Module-level so ``(fn, item)`` payloads pickle for the process
    backend; the per-task time is measured inside the worker.
    """
    start = time.perf_counter()
    result = fn(item)
    return result, time.perf_counter() - start


class Executor:
    """Base class: ordered ``map`` over independent tasks.

    Subclasses implement :meth:`_run`; ``map`` wraps it with timing
    instrumentation (accumulated on :attr:`timings` and in any active
    :func:`repro.utils.perf.perf_scope`).
    """

    name = "abstract"

    def __init__(self, jobs: Optional[int] = None) -> None:
        if jobs is not None and jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs or (os.cpu_count() or 1)
        self.timings = TaskTimings()

    def map(self, fn: Callable, items: Sequence) -> List:
        """Apply ``fn`` to every item; results in input order.

        The first task exception propagates (remaining tasks may be
        cancelled), matching the serial loop's behavior.
        """
        items = list(items)
        start = time.perf_counter()
        pairs = self._run(fn, items)
        self.timings.wall_seconds += time.perf_counter() - start
        results = []
        for result, seconds in pairs:
            self.timings.record_task(seconds)
            perf.count("executor_tasks")
            perf.count("executor_task_seconds", seconds)
            results.append(result)
        return results

    def _run(self, fn: Callable, items: List):
        raise NotImplementedError

    def close(self) -> None:
        """Release pool resources; the serial executor is a no-op."""

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(jobs={self.jobs})"


class SerialExecutor(Executor):
    """The reference backend: a plain in-process loop."""

    name = "serial"

    def __init__(self, jobs: Optional[int] = None) -> None:
        super().__init__(jobs=1 if jobs is None else jobs)

    def _run(self, fn: Callable, items: List):
        return [_timed_call(fn, item) for item in items]


class _PoolExecutor(Executor):
    """Shared machinery for the ``concurrent.futures`` backends."""

    _pool_type = None

    def __init__(self, jobs: Optional[int] = None) -> None:
        super().__init__(jobs=jobs)
        self._pool = None
        self._lock = threading.Lock()

    def _ensure_pool(self):
        with self._lock:
            if self._pool is None:
                self._pool = self._pool_type(max_workers=self.jobs)
            return self._pool

    def _run(self, fn: Callable, items: List):
        pool = self._ensure_pool()
        futures = [pool.submit(_timed_call, fn, item) for item in items]
        pairs = []
        error = None
        for future in futures:
            if error is not None:
                future.cancel()
                continue
            try:
                pairs.append(future.result())
            except BaseException as exc:  # noqa: BLE001 - re-raised below
                error = exc
        if error is not None:
            raise error
        return pairs

    def close(self) -> None:
        with self._lock:
            if self._pool is not None:
                self._pool.shutdown(wait=True)
                self._pool = None


class ThreadExecutor(_PoolExecutor):
    """Thread-pool backend; worthwhile when tasks release the GIL."""

    name = "thread"
    _pool_type = ThreadPoolExecutor


class ProcessExecutor(_PoolExecutor):
    """Process-pool backend for CPU-bound fan-outs.

    Tasks cross a pickle boundary: only module-level functions with
    picklable payloads are accepted (everything the built-in drivers
    submit qualifies).  Per-run perf counters still come back attached
    to each :class:`~repro.core.result.OptimizationResult`; ambient
    :func:`~repro.utils.perf.perf_scope` counters in the parent do not
    see child-process increments.
    """

    name = "process"
    _pool_type = ProcessPoolExecutor


_EXECUTORS = {
    "serial": SerialExecutor,
    "thread": ThreadExecutor,
    "process": ProcessExecutor,
}


def get_executor(
    backend: str = "serial", jobs: Optional[int] = None
) -> Executor:
    """Construct an executor by backend name (``--backend`` semantics)."""
    try:
        factory = _EXECUTORS[backend]
    except KeyError:
        raise ValueError(
            f"unknown backend {backend!r}; valid: {sorted(_EXECUTORS)}"
        ) from None
    return factory(jobs=jobs)


_default_lock = threading.Lock()
_default_executor: Optional[Executor] = None


def default_executor() -> Executor:
    """The process-wide default executor (serial unless installed)."""
    with _default_lock:
        global _default_executor
        if _default_executor is None:
            _default_executor = SerialExecutor()
        return _default_executor


def set_default_executor(
    executor: Optional[Executor],
) -> Optional[Executor]:
    """Install ``executor`` as the default; returns the previous one.

    ``None`` resets to the serial default.
    """
    with _default_lock:
        global _default_executor
        previous = _default_executor
        _default_executor = executor
        return previous


@contextmanager
def using_executor(
    executor: Union[Executor, str, None], jobs: Optional[int] = None
):
    """Scope a default executor for the ``with`` block.

    Accepts an :class:`Executor`, a backend name (constructed with
    ``jobs`` workers and closed on exit), or ``None`` (serial).
    """
    owned = isinstance(executor, str) or executor is None
    resolved = (
        get_executor(executor or "serial", jobs=jobs) if owned
        else executor
    )
    previous = set_default_executor(resolved)
    try:
        yield resolved
    finally:
        set_default_executor(previous)
        if owned:
            resolved.close()


def resolve_executor(
    executor: Union[Executor, str, None] = None,
    jobs: Optional[int] = None,
) -> Executor:
    """Resolve a driver's ``executor`` argument.

    ``None`` yields the process-wide default (serial unless one was
    installed via :func:`set_default_executor`/:func:`using_executor`);
    a string constructs that backend; an :class:`Executor` passes
    through.
    """
    if executor is None:
        return default_executor()
    if isinstance(executor, str):
        return get_executor(executor, jobs=jobs)
    return executor
