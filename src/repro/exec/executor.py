"""Pluggable execution backends for embarrassingly parallel drivers.

Every multi-run axis in the experiment stack — independent seeds in
``run_many``, the start portfolio in ``optimize_multistart``, repeated
simulations in ``simulate_repeatedly`` — is a pure fan-out: each task
receives its own pre-spawned RNG stream (see
:func:`repro.utils.rng.spawn_generators`) and touches no shared state.
This module provides the executors that run such fan-outs:

* ``serial`` — a plain loop, the default; zero overhead and the
  reference behavior.
* ``thread`` — :class:`concurrent.futures.ThreadPoolExecutor`; useful
  when the work releases the GIL (BLAS-heavy tasks) or for I/O.
* ``process`` — :class:`concurrent.futures.ProcessPoolExecutor`; the
  scaling backend for CPU-bound optimization.  Task functions and
  payloads must be picklable (module-level functions; the library's
  topologies, costs, options, and ``numpy`` generators all are).

Determinism is the executors' contract: ``map`` preserves input order
and each task's randomness comes exclusively from its payload, so all
three backends produce **bit-identical** results for the same seed (the
test suite enforces this).

A process-wide *default executor* can be installed
(:func:`set_default_executor` / :func:`using_executor`); drivers resolve
``executor=None`` against it, which is how the CLI's ``--jobs`` flag
reaches every experiment without threading a parameter through each
call chain.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
import time
from concurrent.futures import (
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    as_completed,
)
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Union

from repro.utils import perf

#: Names accepted by :func:`get_executor` and the CLI ``--backend`` flag.
BACKENDS = ("serial", "thread", "process")

#: Transport modes for the process backend (``--transport`` semantics);
#: re-exported from :mod:`repro.exec.shm` for convenience.
TRANSPORTS = ("pickle", "shm", "auto")


@dataclass
class TaskTimings:
    """Wall-clock accounting for one executor's lifetime.

    ``dispatch_bytes`` / ``dispatch_seconds`` cover serialization of
    task payloads on the submitting side — only the process backend
    pays them; serial and thread dispatch is a function call.
    ``result_bytes`` counts the serialized *return* payloads the
    process backend collected (with the shm transport, large result
    arrays travel as one-shot segment handles, so this shrinks the same
    way ``dispatch_bytes`` does — benchmarks report both directions).
    """

    tasks: int = 0
    task_seconds: float = 0.0
    max_task_seconds: float = 0.0
    wall_seconds: float = 0.0
    dispatch_bytes: int = 0
    dispatch_seconds: float = 0.0
    result_bytes: int = 0

    def record_task(self, seconds: float) -> None:
        self.tasks += 1
        self.task_seconds += seconds
        self.max_task_seconds = max(self.max_task_seconds, seconds)

    def record_dispatch(self, nbytes: int, seconds: float) -> None:
        self.dispatch_bytes += nbytes
        self.dispatch_seconds += seconds
        perf.count("dispatch_bytes", nbytes)
        perf.count("dispatch_seconds", seconds)

    def record_result(self, nbytes: int) -> None:
        self.result_bytes += nbytes
        perf.count("result_bytes", nbytes)

    def mean_task_bytes(self) -> float:
        """Average serialized payload size per dispatched task."""
        return self.dispatch_bytes / self.tasks if self.tasks else 0.0


def _timed_call(fn: Callable, item):
    """Run one task, returning ``(result, seconds)``.

    Module-level so ``(fn, item)`` payloads pickle for the process
    backend; the per-task time is measured inside the worker.
    """
    start = time.perf_counter()
    result = fn(item)
    return result, time.perf_counter() - start


def _run_packed(blob: bytes, share_results: bool) -> bytes:
    """Worker entry point for the process backend.

    The parent serializes ``(fn, item)`` itself (plain pickle or the
    shared-memory transport — :func:`repro.exec.shm.unpack` reads
    both), so payload bytes can be accounted and large tensors can
    arrive as segment handles.  The result travels back the same way:
    packed into one byte blob (``share_results`` exports large arrays
    to one-shot segments, see :func:`repro.exec.shm.pack_result`) so
    the parent can account ``result_bytes`` on both transports.
    """
    from repro.exec import shm

    fn, item = shm.unpack(blob)
    return shm.pack_result(_timed_call(fn, item), share=share_results)


class Executor:
    """Base class: ordered ``map`` over independent tasks.

    Subclasses implement :meth:`_run`; ``map`` wraps it with timing
    instrumentation (accumulated on :attr:`timings` and in any active
    :func:`repro.utils.perf.perf_scope`).
    """

    name = "abstract"

    def __init__(self, jobs: Optional[int] = None) -> None:
        if jobs is not None and jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs or (os.cpu_count() or 1)
        self.timings = TaskTimings()

    def map(self, fn: Callable, items: Sequence) -> List:
        """Apply ``fn`` to every item; results in input order.

        The first task exception propagates (remaining tasks may be
        cancelled), matching the serial loop's behavior.
        """
        items = list(items)
        start = time.perf_counter()
        pairs = self._run(fn, items)
        self.timings.wall_seconds += time.perf_counter() - start
        results = []
        for result, seconds in pairs:
            self.timings.record_task(seconds)
            perf.count("executor_tasks")
            perf.count("executor_task_seconds", seconds)
            results.append(result)
        return results

    def run_one(self, fn: Callable, item):
        """Apply ``fn`` to a single item through the pool.

        Convenience for callers whose unit of work is one task at a
        time — the service's job runner
        (:mod:`repro.service.runner`) routes each job through here so
        any backend (including the process pool with its shm
        transport) can be the compute pool.  Timing accounting matches
        :meth:`map` with a one-item list.
        """
        return self.map(fn, [item])[0]

    def imap(self, fn: Callable, items: Sequence):
        """Apply ``fn`` to every item, yielding ``(index, result)``
        pairs *as tasks complete* (completion order for the pool
        backends, input order for serial).

        This is the streaming counterpart of :meth:`map`: consumers
        that persist results incrementally (the sweep harness) can
        write each one the moment it lands instead of waiting for the
        whole fan-out.  The first task exception propagates after the
        remaining tasks are cancelled or drained; closing the generator
        early cancels what has not completed.
        """
        items = list(items)
        start = time.perf_counter()
        try:
            for index, (result, seconds) in self._iter(fn, items):
                self.timings.record_task(seconds)
                perf.count("executor_tasks")
                perf.count("executor_task_seconds", seconds)
                yield index, result
        finally:
            self.timings.wall_seconds += time.perf_counter() - start

    def _iter(self, fn: Callable, items: List):
        for index, item in enumerate(items):
            yield index, _timed_call(fn, item)

    def _run(self, fn: Callable, items: List):
        raise NotImplementedError

    def close(self) -> None:
        """Release pool resources; the serial executor is a no-op."""

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(jobs={self.jobs})"


class SerialExecutor(Executor):
    """The reference backend: a plain in-process loop."""

    name = "serial"

    def __init__(self, jobs: Optional[int] = None) -> None:
        super().__init__(jobs=1 if jobs is None else jobs)

    def _run(self, fn: Callable, items: List):
        return [_timed_call(fn, item) for item in items]


class _PoolExecutor(Executor):
    """Shared machinery for the ``concurrent.futures`` backends.

    A closed pool executor transparently re-opens on the next ``map``:
    ``close`` releases the workers, and :meth:`_ensure_pool` lazily
    builds a fresh pool when new work arrives (tested in
    ``tests/exec/test_lifecycle.py``).
    """

    _pool_type = None

    def __init__(self, jobs: Optional[int] = None) -> None:
        super().__init__(jobs=jobs)
        self._pool = None
        self._lock = threading.Lock()

    def _create_pool(self):
        return self._pool_type(max_workers=self.jobs)

    def _ensure_pool(self):
        with self._lock:
            if self._pool is None:
                self._pool = self._create_pool()
            return self._pool

    def _submit(self, pool, fn: Callable, items: List):
        return [pool.submit(_timed_call, fn, item) for item in items]

    def _collect(self, future):
        """Turn one completed future into a ``(result, seconds)`` pair."""
        return future.result()

    def _discard(self, future):
        """Consume a completed future whose result will never be used
        (a sibling task already failed), releasing any resources it
        holds."""
        try:
            future.result()
        except BaseException:  # noqa: BLE001 - draining, not handling
            pass

    def _drain(self, futures) -> None:
        for future in futures:
            if not future.cancel():
                self._discard(future)

    def _run(self, fn: Callable, items: List):
        pool = self._ensure_pool()
        futures = self._submit(pool, fn, items)
        pairs = []
        error = None
        for future in futures:
            if error is not None:
                if not future.cancel():
                    self._discard(future)
                continue
            try:
                pairs.append(self._collect(future))
            except BaseException as exc:  # noqa: BLE001 - re-raised below
                error = exc
        if error is not None:
            raise error
        return pairs

    def _iter(self, fn: Callable, items: List):
        pool = self._ensure_pool()
        futures = self._submit(pool, fn, items)
        index_of = {future: index for index, future in enumerate(futures)}
        pending = set(futures)
        try:
            for future in as_completed(futures):
                pending.discard(future)
                yield index_of[future], self._collect(future)
        finally:
            self._drain(pending)

    def close(self) -> None:
        with self._lock:
            if self._pool is not None:
                self._pool.shutdown(wait=True)
                self._pool = None


class ThreadExecutor(_PoolExecutor):
    """Thread-pool backend; worthwhile when tasks release the GIL."""

    name = "thread"
    _pool_type = ThreadPoolExecutor


class ProcessExecutor(_PoolExecutor):
    """Process-pool backend for CPU-bound fan-outs.

    Workers always come from an explicit ``spawn`` context, whatever
    the platform default: spawned workers import the library afresh, so
    fork-inherited module state can never mask a transport bug, and
    behavior matches across Linux/macOS/Windows.

    Tasks cross a serialization boundary: only module-level functions
    with picklable payloads are accepted (everything the built-in
    drivers submit qualifies).  ``transport`` selects how payloads
    cross it — ``"pickle"`` (plain bytes), ``"shm"`` (shared-memory
    tensor handles + broadcast-once costs/topologies, see
    :mod:`repro.exec.shm`), or ``"auto"`` (the default: shm once the
    estimated shareable payload of a task exceeds
    :data:`repro.exec.shm.AUTO_TRANSPORT_THRESHOLD`).  Results are
    bit-identical across transports; only dispatch cost changes.

    Per-run perf counters still come back attached to each
    :class:`~repro.core.result.OptimizationResult`; ambient
    :func:`~repro.utils.perf.perf_scope` counters in the parent do not
    see child-process increments (the parent-side ``dispatch_bytes`` /
    ``dispatch_seconds`` counters do land in the ambient scope).
    """

    name = "process"
    _pool_type = ProcessPoolExecutor

    def __init__(
        self,
        jobs: Optional[int] = None,
        transport: str = "auto",
        store=None,
    ) -> None:
        super().__init__(jobs=jobs)
        if transport not in TRANSPORTS:
            raise ValueError(
                f"unknown transport {transport!r}; valid: {TRANSPORTS}"
            )
        self.transport = transport
        #: Transport used by the most recent ``map`` (``auto`` resolved).
        self.last_transport: Optional[str] = None
        self._store = None
        #: Externally owned store to retain instead of creating one —
        #: how a sweep shares one broadcast registry across pool
        #: generations.  The executor releases (``close``) exactly the
        #: references it retained; the caller keeps its own.
        self._shared_store = store

    def _create_pool(self):
        return ProcessPoolExecutor(
            max_workers=self.jobs,
            mp_context=multiprocessing.get_context("spawn"),
        )

    def _ensure_store(self):
        from repro.exec.shm import SharedTensorStore

        if self._store is None:
            if self._shared_store is not None:
                try:
                    self._store = self._shared_store.retain()
                except RuntimeError:
                    # The shared store was fully closed under us; fall
                    # back to a private one rather than fail the map.
                    self._store = SharedTensorStore()
            else:
                self._store = SharedTensorStore()
        return self._store

    def _resolve_transport(self, fn: Callable, items: List) -> str:
        if self.transport != "auto":
            return self.transport
        from repro.exec import shm

        if not items:
            return "pickle"
        probe = shm.estimate_shareable_bytes((fn, items[0]))
        return "shm" if probe >= shm.AUTO_TRANSPORT_THRESHOLD else "pickle"

    def _submit(self, pool, fn: Callable, items: List):
        from repro.exec import shm

        mode = self._resolve_transport(fn, items)
        self.last_transport = mode
        share = mode == "shm"
        store = self._ensure_store() if share else None
        futures = []
        for item in items:
            start = time.perf_counter()
            blob = shm.pack((fn, item), store)
            self.timings.record_dispatch(
                len(blob), time.perf_counter() - start
            )
            futures.append(pool.submit(_run_packed, blob, share))
        return futures

    def _collect(self, future):
        from repro.exec import shm

        blob = future.result()
        self.timings.record_result(len(blob))
        return shm.unpack_result(blob)

    def _discard(self, future):
        from repro.exec import shm

        try:
            blob = future.result()
        except BaseException:  # noqa: BLE001 - draining, not handling
            return
        shm.discard_result(blob)

    def close(self) -> None:
        """Shut the pool down, then unlink the shm session (if any).

        Order matters: workers must finish before their segments are
        unlinked.  Like the pool, the store is recreated lazily if the
        executor is used again after ``close``.
        """
        super().close()
        if self._store is not None:
            self._store.close()
            self._store = None


_EXECUTORS = {
    "serial": SerialExecutor,
    "thread": ThreadExecutor,
    "process": ProcessExecutor,
}


def get_executor(
    backend: str = "serial",
    jobs: Optional[int] = None,
    transport: Optional[str] = None,
) -> Executor:
    """Construct an executor by backend name (``--backend`` semantics).

    ``transport`` selects the process backend's payload transport
    (``"pickle"`` | ``"shm"`` | ``"auto"``); requesting ``"shm"`` for a
    backend with no serialization boundary is an error, while
    ``"pickle"``/``"auto"`` are accepted no-ops there.
    """
    try:
        factory = _EXECUTORS[backend]
    except KeyError:
        raise ValueError(
            f"unknown backend {backend!r}; valid: {sorted(_EXECUTORS)}"
        ) from None
    if backend == "process":
        return factory(jobs=jobs, transport=transport or "auto")
    if transport is not None and transport not in TRANSPORTS:
        raise ValueError(
            f"unknown transport {transport!r}; valid: {TRANSPORTS}"
        )
    if transport == "shm":
        raise ValueError(
            "transport='shm' requires the process backend; "
            f"backend {backend!r} has no serialization boundary"
        )
    return factory(jobs=jobs)


_default_lock = threading.Lock()
_default_executor: Optional[Executor] = None


def default_executor() -> Executor:
    """The process-wide default executor (serial unless installed)."""
    with _default_lock:
        global _default_executor
        if _default_executor is None:
            _default_executor = SerialExecutor()
        return _default_executor


def set_default_executor(
    executor: Optional[Executor],
) -> Optional[Executor]:
    """Install ``executor`` as the default; returns the previous one.

    ``None`` resets to the serial default.
    """
    with _default_lock:
        global _default_executor
        previous = _default_executor
        _default_executor = executor
        return previous


@contextmanager
def using_executor(
    executor: Union[Executor, str, None],
    jobs: Optional[int] = None,
    transport: Optional[str] = None,
):
    """Scope a default executor for the ``with`` block.

    Accepts an :class:`Executor`, a backend name (constructed with
    ``jobs`` workers and the given ``transport``, closed on exit), or
    ``None`` (serial).  The previous default is restored even when the
    block raises (tested in ``tests/exec/test_lifecycle.py``).
    """
    owned = isinstance(executor, str) or executor is None
    resolved = (
        get_executor(executor or "serial", jobs=jobs, transport=transport)
        if owned
        else executor
    )
    previous = set_default_executor(resolved)
    try:
        yield resolved
    finally:
        set_default_executor(previous)
        if owned:
            resolved.close()


def resolve_executor(
    executor: Union[Executor, str, None] = None,
    jobs: Optional[int] = None,
    transport: Optional[str] = None,
) -> Executor:
    """Resolve a driver's ``executor`` argument.

    ``None`` yields the process-wide default (serial unless one was
    installed via :func:`set_default_executor`/:func:`using_executor`);
    a string constructs that backend; an :class:`Executor` passes
    through.  ``transport`` applies only when this call constructs the
    backend from a name — an existing executor (or the installed
    default) carries its own transport setting, so combining it with a
    non-``None`` ``transport`` raises rather than silently ignoring
    the request.
    """
    if executor is None:
        if transport is not None:
            raise ValueError(
                "transport applies when a backend is named; the default "
                "executor carries its own transport setting"
            )
        return default_executor()
    if isinstance(executor, str):
        return get_executor(executor, jobs=jobs, transport=transport)
    if transport is not None:
        raise ValueError(
            "transport applies when a backend is named; an Executor "
            "instance carries its own transport setting"
        )
    return executor
