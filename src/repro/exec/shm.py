"""Shared-memory tensor transport for the process execution backend.

The process backend historically pickled every task payload in full —
including the ``CoverageCost``'s topology tensors (travel times,
distances, pass-by entries, chord tables), which are identical across
all tasks of a fan-out and grow as ``O(M^2)``.  At large ``M`` the
dispatch cost swamps the per-task compute.  This module makes large
read-only tensors cross the process boundary exactly once:

* :class:`SharedTensorStore` — the parent-side registry.  ``put``
  copies an array into a ``multiprocessing.shared_memory`` segment
  (content-addressed via :func:`repro.persist.array_digest`, so
  value-identical arrays share one segment) and returns a picklable
  :class:`TensorHandle`.  Segments are refcounted and unlinked exactly
  once — on ``release`` reaching zero, on ``close``, or by the atexit
  sweep — so no ``/dev/shm`` entries outlive the parent even when
  workers crash.
* :class:`TensorHandle` — ``(segment name, dtype, shape, order,
  offset, nbytes)``.  ``resolve`` lazily reattaches the segment in the
  consuming process (cached per process, unregistered from the
  ``resource_tracker`` so only the owning store ever unlinks) and
  returns a **read-only** array view over the shared pages.
* Broadcast-once objects — :meth:`SharedTensorStore.broadcast` pickles
  a ``Topology`` / ``LegCoverageTable`` / ``CoverageCost`` once into
  its own segment and hands out a content digest (conventions from
  :mod:`repro.persist`).  Workers fetch the payload bytes on first
  touch and cache them, then unpickle a *fresh* object per task so no
  lazy caches or incremental-solver state leaks between tasks — this
  is what keeps shm runs bit-identical to the pickle path.
* :func:`transport_session` — a thread-local context manager marking a
  store active.  The ``__getstate__`` hooks on ``Topology``,
  ``LegCoverageTable``, and ``CoverageCost`` consult it via
  :func:`share_array`, so plain pickling (serial/thread backends,
  ``copy``, on-disk persistence) is byte-for-byte unchanged when no
  session is active.
* :func:`pack` / :func:`unpack` — the framing used by
  ``ProcessExecutor``: with a store, a :class:`pickle.Pickler` whose
  ``persistent_id`` swaps large plain ``ndarray``s for handles and
  broadcastable objects for digests; without one, plain pickle.
* :func:`pack_result` / :func:`unpack_result` — the *return* direction.
  A worker packs its result; large plain arrays are exported into
  one-shot segments referenced by :class:`ResultHandle`, whose
  ownership passes to the receiving parent (the parent copies the
  bytes out and unlinks on receipt, so result segments never outlive
  the fan-out).  With ``share=False`` this is plain pickle, byte-count
  comparable — either way the parent can account ``result_bytes``.

Stores are *owner-refcounted* so several executors (or several pool
generations of a sweep) can share one store: :meth:`~SharedTensorStore.
retain` adds an owner, :meth:`~SharedTensorStore.close` releases one,
and segments are unlinked only when the last owner closes.  This is
what lets a scenario sweep broadcast each distinct topology once per
machine rather than once per pool.
"""

from __future__ import annotations

import atexit
import io
import os
import pickle
import threading
import uuid
import weakref
from contextlib import contextmanager
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.persist import array_digest, payload_digest

#: Transport modes accepted by ``ProcessExecutor`` and the CLI
#: ``--transport`` flag.  ``auto`` uses shm only when a task's
#: estimated shareable payload exceeds :data:`AUTO_TRANSPORT_THRESHOLD`.
TRANSPORTS = ("pickle", "shm", "auto")

#: Arrays at least this large (bytes) are placed in shared memory;
#: smaller ones ride inline in the task pickle (a segment + attach
#: round-trip costs more than it saves below this).
ARRAY_SHARE_THRESHOLD = 1 << 15

#: Result arrays at least this large travel back through one-shot
#: shared segments instead of the result pickle (same rationale).
RESULT_SHARE_THRESHOLD = ARRAY_SHARE_THRESHOLD

#: ``transport="auto"`` switches the process backend to shm when the
#: estimated shareable bytes of one task exceed this.
AUTO_TRANSPORT_THRESHOLD = 1 << 20

#: Prefix of every segment name this module creates (used by tests to
#: enumerate leaks without confusing other tenants of ``/dev/shm``).
SEGMENT_PREFIX = "reproshm"


def _broadcast_types() -> tuple:
    """The classes shipped broadcast-once (imported lazily: the cost
    and topology modules must not be import-time dependencies of the
    executor layer)."""
    from repro.core.cost import CoverageCost
    from repro.topology.model import LegCoverageTable, Topology

    return (CoverageCost, Topology, LegCoverageTable)


# --------------------------------------------------------------------- #
# Per-process attachment caches (parent and workers alike)
# --------------------------------------------------------------------- #

_attachments: Dict[str, shared_memory.SharedMemory] = {}
_resolved: Dict["TensorHandle", np.ndarray] = {}
_broadcast_bytes: Dict[str, bytes] = {}
_attach_lock = threading.Lock()

#: Segment names created (and therefore tracker-registered) by a store
#: in *this* process; attaching to one of these must not unregister it.
_owned_names: set = set()

#: Decided once per process at first attach: ``True`` when attachments
#: must be unregistered from the ``resource_tracker``.  Pool workers
#: inherit the parent's tracker, where the owning store already holds
#: the (one) registration — unregistering there would cancel it and
#: break unlink-once.  A standalone process attaching a handle spins up
#: its *own* tracker, which would wrongly unlink the segment at exit
#: (CPython gh-82300); there the attach registration must be dropped.
_untrack_attachments: Optional[bool] = None


def _untrack(segment: shared_memory.SharedMemory) -> None:
    """Drop a non-owning attachment from the ``resource_tracker``.

    Best-effort: the tracker is an implementation detail of CPython's
    ``multiprocessing``.
    """
    try:  # pragma: no cover - depends on interpreter internals
        from multiprocessing import resource_tracker

        resource_tracker.unregister(segment._name, "shared_memory")
    except Exception:
        pass


def _tracker_already_running() -> bool:
    try:  # pragma: no cover - depends on interpreter internals
        from multiprocessing.resource_tracker import _resource_tracker

        return getattr(_resource_tracker, "_fd", None) is not None
    except Exception:
        return True  # assume shared: never cancel someone's registration


def _attach(name: str) -> shared_memory.SharedMemory:
    global _untrack_attachments
    with _attach_lock:
        segment = _attachments.get(name)
        if segment is None:
            if _untrack_attachments is None:
                _untrack_attachments = not _tracker_already_running()
            segment = shared_memory.SharedMemory(name=name)
            if _untrack_attachments and name not in _owned_names:
                _untrack(segment)
            _attachments[name] = segment
        return segment


@atexit.register
def _close_attachments() -> None:
    """Unmap (never unlink) this process's attachments at exit."""
    with _attach_lock:
        _resolved.clear()
        _broadcast_bytes.clear()
        for segment in _attachments.values():
            try:
                segment.close()
            except Exception:  # pragma: no cover - shutdown best-effort
                pass
        _attachments.clear()


# --------------------------------------------------------------------- #
# Handles
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class TensorHandle:
    """Picklable reference to an array living in a shared segment."""

    segment: str
    dtype: str
    shape: Tuple[int, ...]
    order: str
    offset: int
    nbytes: int

    def resolve(self) -> np.ndarray:
        """Attach (cached per process) and view the array, read-only.

        ``order == "F"`` segments store the transpose's C-layout bytes,
        so the returned view reproduces the source array's memory
        layout — required for bit-identity of layout-sensitive BLAS
        paths with the pickle transport.
        """
        cached = _resolved.get(self)
        if cached is not None:
            return cached
        segment = _attach(self.segment)
        dtype = np.dtype(self.dtype)
        shape = tuple(self.shape)
        if self.order == "F":
            view = np.ndarray(
                shape[::-1], dtype=dtype, buffer=segment.buf,
                offset=self.offset,
            ).T
        else:
            view = np.ndarray(
                shape, dtype=dtype, buffer=segment.buf, offset=self.offset
            )
        view.flags.writeable = False
        _resolved[self] = view
        return view


def _c_layout(array: np.ndarray) -> Tuple[np.ndarray, str]:
    """C-contiguous bytes plus the layout tag ``resolve`` must restore."""
    if array.flags.c_contiguous:
        return array, "C"
    if array.flags.f_contiguous:
        return array.T, "F"
    return np.ascontiguousarray(array), "C"


class _Segment:
    """One owned shared-memory segment plus its lifecycle state."""

    __slots__ = ("shm", "handle", "refcount", "unlinked")

    def __init__(self, shm: shared_memory.SharedMemory,
                 handle: TensorHandle) -> None:
        self.shm = shm
        self.handle = handle
        self.refcount = 0
        self.unlinked = False

    def unlink(self) -> None:
        if self.unlinked:
            return
        self.unlinked = True
        _owned_names.discard(self.shm.name)
        self.shm.close()
        try:
            self.shm.unlink()
        except FileNotFoundError:  # pragma: no cover - crashed tenant
            pass


# --------------------------------------------------------------------- #
# The parent-side store
# --------------------------------------------------------------------- #

_open_stores: "weakref.WeakSet[SharedTensorStore]" = weakref.WeakSet()


@atexit.register
def _close_open_stores() -> None:
    """Last-resort sweep: unlink any store the owner forgot to close."""
    for store in list(_open_stores):
        try:
            store._finalize()
        except Exception:  # pragma: no cover - shutdown best-effort
            pass


class SharedTensorStore:
    """Parent-side registry of shared segments, content-addressed.

    Also usable as a context manager (``with SharedTensorStore() as
    store``), closing — and therefore unlinking — on exit even when the
    body raises.  Stores are owner-refcounted: a freshly constructed
    store has one owner, :meth:`retain` adds one, and :meth:`close`
    releases one — segments are unlinked only when the last owner
    closes.  Extra ``close`` calls after full closure are no-ops; an
    atexit sweep force-closes any store still open at interpreter
    shutdown.

    ``broadcast_requests`` / ``broadcast_hits`` count how often
    :meth:`broadcast` was asked to ship an object versus how often a
    previously registered payload (same object or value-identical
    content) could be reused — the sweep harness reports the ratio as
    its broadcast-hit rate.
    """

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._segments: Dict[str, _Segment] = {}        # array digest ->
        self._handles: Dict[TensorHandle, str] = {}     # handle -> digest
        self._array_memo: Dict[int, TensorHandle] = {}  # id(array) ->
        self._object_memo: Dict[int, tuple] = {}        # id(obj) -> pid
        self._broadcasts: Dict[str, tuple] = {}         # digest -> pid
        self._in_flight: set = set()
        self._pinned: List[object] = []
        self._closed = False
        self._owners = 1
        self.broadcast_requests = 0
        self.broadcast_hits = 0
        self._tag = uuid.uuid4().hex[:8]
        self._counter = 0
        _open_stores.add(self)

    # -- segment management -------------------------------------------- #

    def _new_segment_name(self) -> str:
        self._counter += 1
        return f"{SEGMENT_PREFIX}-{os.getpid()}-{self._tag}-{self._counter}"

    def put(self, array: np.ndarray) -> TensorHandle:
        """Copy ``array`` into shared memory (deduplicated by content).

        Repeated ``put`` of value-identical arrays returns the same
        handle and bumps the segment's refcount.
        """
        if array.dtype.hasobject:
            raise TypeError("object-dtype arrays cannot be shared")
        with self._lock:
            if self._closed:
                raise RuntimeError("SharedTensorStore is closed")
            memo = self._array_memo.get(id(array))
            if memo is not None:
                self._segments[self._handles[memo]].refcount += 1
                return memo
            digest = array_digest(array)
            entry = self._segments.get(digest)
            if entry is None:
                buffer, order = _c_layout(array)
                shm = shared_memory.SharedMemory(
                    name=self._new_segment_name(), create=True,
                    size=max(1, buffer.nbytes),
                )
                _owned_names.add(shm.name)
                np.ndarray(
                    buffer.shape, dtype=buffer.dtype, buffer=shm.buf
                )[...] = buffer
                handle = TensorHandle(
                    segment=shm.name, dtype=array.dtype.str,
                    shape=tuple(array.shape), order=order, offset=0,
                    nbytes=buffer.nbytes,
                )
                entry = _Segment(shm, handle)
                self._segments[digest] = entry
                self._handles[handle] = digest
            entry.refcount += 1
            self._memo_array(array, entry.handle)
            return entry.handle

    def _memo_array(self, array: np.ndarray, handle: TensorHandle) -> None:
        key = id(array)
        self._array_memo[key] = handle
        try:
            weakref.finalize(array, self._array_memo.pop, key, None)
        except TypeError:  # pragma: no cover - plain ndarrays weakref fine
            self._pinned.append(array)

    def release(self, handle: TensorHandle) -> None:
        """Drop one reference; the last release unlinks the segment."""
        with self._lock:
            digest = self._handles.get(handle)
            if digest is None:
                return
            entry = self._segments[digest]
            entry.refcount -= 1
            if entry.refcount <= 0:
                del self._segments[digest]
                del self._handles[handle]
                entry.unlink()

    def segment_names(self) -> List[str]:
        """Names of currently owned segments (tests enumerate leaks)."""
        with self._lock:
            return [e.shm.name for e in self._segments.values()]

    def retain(self) -> "SharedTensorStore":
        """Register another owner; every owner must ``close`` once.

        Raises :class:`RuntimeError` if the store is already fully
        closed (its segments are gone — a new store is needed).
        """
        with self._lock:
            if self._closed:
                raise RuntimeError("SharedTensorStore is closed")
            self._owners += 1
            return self

    def close(self) -> None:
        """Release one owner; the last release unlinks every segment.

        Calling ``close`` after full closure is a no-op, so the
        ``with`` protocol and defensive double-closes stay safe.
        """
        with self._lock:
            if self._closed:
                return
            self._owners -= 1
            if self._owners > 0:
                return
        self._finalize()

    def _finalize(self) -> None:
        """Unconditionally unlink every owned segment.  Idempotent."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._owners = 0
            for entry in self._segments.values():
                entry.unlink()
            self._segments.clear()
            self._handles.clear()
            self._array_memo.clear()
            self._object_memo.clear()
            self._broadcasts.clear()
            self._pinned.clear()
        _open_stores.discard(self)

    def __enter__(self) -> "SharedTensorStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- broadcast-once objects ---------------------------------------- #

    def broadcast(self, obj) -> tuple:
        """Persistent-id tail ``(digest, payload handle)`` for ``obj``.

        The object is pickled (under this store, so its own tensors
        become handles) into a dedicated segment at most once per
        distinct content; later broadcasts of the same object — or of a
        value-identical one — reuse the registered payload.
        """
        with self._lock:
            self.broadcast_requests += 1
            memo = self._object_memo.get(id(obj))
            if memo is not None:
                self.broadcast_hits += 1
                return memo
            self._in_flight.add(id(obj))
        try:
            buffer = io.BytesIO()
            _TransportPickler(buffer, self).dump(obj)
            payload = buffer.getvalue()
        finally:
            with self._lock:
                self._in_flight.discard(id(obj))
        digest = payload_digest(payload)
        with self._lock:
            pid_tail = self._broadcasts.get(digest)
            if pid_tail is None:
                handle = self.put(np.frombuffer(payload, dtype=np.uint8))
                pid_tail = (digest, handle)
                self._broadcasts[digest] = pid_tail
            else:
                self.broadcast_hits += 1
            self._object_memo[id(obj)] = pid_tail
            try:
                weakref.finalize(
                    obj, self._object_memo.pop, id(obj), None
                )
            except TypeError:  # e.g. __slots__ classes without __weakref__
                self._pinned.append(obj)
            return pid_tail

    def in_flight(self, obj) -> bool:
        return id(obj) in self._in_flight


# --------------------------------------------------------------------- #
# Transport sessions (consulted by the class __getstate__ hooks)
# --------------------------------------------------------------------- #

_session = threading.local()


def active_session() -> Optional[SharedTensorStore]:
    """The innermost store activated on this thread, or ``None``."""
    stack = getattr(_session, "stack", None)
    return stack[-1] if stack else None


@contextmanager
def transport_session(store: SharedTensorStore):
    """Mark ``store`` active for pickling on the current thread."""
    stack = getattr(_session, "stack", None)
    if stack is None:
        stack = _session.stack = []
    stack.append(store)
    try:
        yield store
    finally:
        stack.pop()


def share_array(array):
    """Hook helper: swap a large array for a handle when a session is
    active; otherwise return it unchanged (plain pickling stays plain).
    """
    store = active_session()
    if (
        store is None
        or type(array) is not np.ndarray
        or array.nbytes < ARRAY_SHARE_THRESHOLD
        or array.dtype.hasobject
    ):
        return array
    return store.put(array)


def resolve_shared(value):
    """Hook helper: resolve a handle back to its array; pass through
    anything else."""
    if isinstance(value, TensorHandle):
        return value.resolve()
    return value


# --------------------------------------------------------------------- #
# Pickling
# --------------------------------------------------------------------- #


class _TransportPickler(pickle.Pickler):
    """Pickler swapping tensors for handles and broadcastables for
    digests.  Persistent ids:

    * ``("tensor", handle)`` — a large plain ``ndarray``;
    * ``("object", digest, payload handle)`` — a broadcast-once object.
    """

    def __init__(self, file, store: SharedTensorStore) -> None:
        super().__init__(file, protocol=pickle.HIGHEST_PROTOCOL)
        self._store = store

    def persistent_id(self, obj):
        if type(obj) is np.ndarray:
            if (
                obj.nbytes >= ARRAY_SHARE_THRESHOLD
                and not obj.dtype.hasobject
            ):
                return ("tensor", self._store.put(obj))
            return None
        if isinstance(obj, _broadcast_types()) and not self._store.in_flight(
            obj
        ):
            return ("object", *self._store.broadcast(obj))
        return None


class _TransportUnpickler(pickle.Unpickler):
    """Inverse of :class:`_TransportPickler`.

    Broadcast objects are deduplicated *within* one payload (matching
    pickle's memo semantics) but rebuilt fresh for every ``unpack``
    call, so per-task optimizer state never aliases across tasks.
    """

    def __init__(self, file) -> None:
        super().__init__(file)
        self._objects: Dict[str, object] = {}

    def persistent_load(self, pid):
        kind = pid[0]
        if kind == "tensor":
            return pid[1].resolve()
        if kind == "object":
            digest, handle = pid[1], pid[2]
            obj = self._objects.get(digest)
            if obj is None:
                obj = _load_broadcast(digest, handle)
                self._objects[digest] = obj
            return obj
        raise pickle.UnpicklingError(f"unknown persistent id {pid!r}")


def _load_broadcast(digest: str, handle: TensorHandle):
    payload = _broadcast_bytes.get(digest)
    if payload is None:
        payload = bytes(memoryview(handle.resolve()))
        _broadcast_bytes[digest] = payload
    return _TransportUnpickler(io.BytesIO(payload)).load()


def pack(payload, store: Optional[SharedTensorStore] = None) -> bytes:
    """Serialize a task payload for the process boundary.

    With a store, large tensors and broadcastable objects travel as
    shared-memory references; without one this is plain pickle (the
    ``transport="pickle"`` path, byte-compatible with what
    ``ProcessPoolExecutor`` would have produced itself).
    """
    if store is None:
        return pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    buffer = io.BytesIO()
    with transport_session(store):
        _TransportPickler(buffer, store).dump(payload)
    return buffer.getvalue()


def unpack(blob: bytes):
    """Inverse of :func:`pack`; handles both transports."""
    return _TransportUnpickler(io.BytesIO(blob)).load()


# --------------------------------------------------------------------- #
# Result path: shipping worker results back through shared memory
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class ResultHandle:
    """Picklable reference to a result array in a *one-shot* segment.

    Unlike :class:`TensorHandle`, ownership transfers with the handle:
    the worker that exported the array unregisters the segment from the
    resource tracker, and the receiving parent copies the bytes out and
    unlinks on receipt (:func:`unpack_result`) or unlinks without
    reading (:func:`discard_result`).  Result segments therefore never
    outlive the fan-out that produced them.
    """

    segment: str
    dtype: str
    shape: Tuple[int, ...]
    order: str
    nbytes: int


def _export_result_array(array: np.ndarray) -> ResultHandle:
    """Worker side: copy ``array`` into a fresh one-shot segment."""
    buffer, order = _c_layout(array)
    segment = shared_memory.SharedMemory(
        name=f"{SEGMENT_PREFIX}-res-{os.getpid()}-{uuid.uuid4().hex[:12]}",
        create=True, size=max(1, buffer.nbytes),
    )
    # The receiver owns the unlink; drop the creator-side registration
    # so the shared resource tracker never double-unlinks.
    _untrack(segment)
    np.ndarray(
        buffer.shape, dtype=buffer.dtype, buffer=segment.buf
    )[...] = buffer
    handle = ResultHandle(
        segment=segment.name, dtype=array.dtype.str,
        shape=tuple(array.shape), order=order, nbytes=buffer.nbytes,
    )
    segment.close()
    return handle


def _open_result_segment(handle: ResultHandle):
    # Attaching registers with the resource tracker; the ``unlink`` at
    # receipt issues the matching unregister, so no ``_untrack`` here —
    # only the worker's creation-time registration is dropped early.
    return shared_memory.SharedMemory(name=handle.segment)


def _import_result_array(handle: ResultHandle) -> np.ndarray:
    """Parent side: materialize the array, then unlink the segment.

    The returned array is a private writeable copy (matching what a
    pickled result would have been), laid out exactly as the worker's
    array was — ``F``-tagged segments come back Fortran-contiguous.
    """
    segment = _open_result_segment(handle)
    try:
        dtype = np.dtype(handle.dtype)
        shape = tuple(handle.shape)
        raw_shape = shape[::-1] if handle.order == "F" else shape
        array = np.ndarray(
            raw_shape, dtype=dtype, buffer=segment.buf
        ).copy()
    finally:
        segment.close()
        try:
            segment.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            _untrack(segment)
    return array.T if handle.order == "F" else array


def _unlink_result(handle: ResultHandle) -> None:
    """Release a result segment without reading it (discard path)."""
    try:
        segment = _open_result_segment(handle)
    except FileNotFoundError:
        return
    segment.close()
    try:
        segment.unlink()
    except FileNotFoundError:  # pragma: no cover - racing sweeps
        _untrack(segment)


class _ResultPickler(pickle.Pickler):
    """Swaps large plain result arrays for one-shot segment handles."""

    def __init__(self, file) -> None:
        super().__init__(file, protocol=pickle.HIGHEST_PROTOCOL)
        self._exported: Dict[int, ResultHandle] = {}

    def persistent_id(self, obj):
        if (
            type(obj) is np.ndarray
            and obj.nbytes >= RESULT_SHARE_THRESHOLD
            and not obj.dtype.hasobject
        ):
            handle = self._exported.get(id(obj))
            if handle is None:
                handle = _export_result_array(obj)
                self._exported[id(obj)] = handle
            return ("result", handle)
        return None


class _ResultUnpickler(pickle.Unpickler):
    """Inverse of :class:`_ResultPickler`: import + unlink on load."""

    def __init__(self, file) -> None:
        super().__init__(file)
        self._imported: Dict[ResultHandle, np.ndarray] = {}

    def persistent_load(self, pid):
        if pid[0] == "result":
            handle = pid[1]
            array = self._imported.get(handle)
            if array is None:
                array = _import_result_array(handle)
                self._imported[handle] = array
            return array
        raise pickle.UnpicklingError(f"unknown persistent id {pid!r}")


class _ResultDiscarder(pickle.Unpickler):
    """Unlinks every result segment in a blob without copying bytes."""

    def persistent_load(self, pid):
        if pid[0] == "result":
            _unlink_result(pid[1])
            return None
        raise pickle.UnpicklingError(f"unknown persistent id {pid!r}")


def pack_result(payload, share: bool = True) -> bytes:
    """Worker side: serialize a task result for the return trip.

    With ``share`` (the shm transport), plain arrays of at least
    :data:`RESULT_SHARE_THRESHOLD` bytes are exported to one-shot
    segments and travel as handles; without it this is plain pickle.
    Either way the parent sees one byte blob per task, so
    ``TaskTimings.result_bytes`` accounts both transports uniformly.
    """
    if not share:
        return pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    buffer = io.BytesIO()
    _ResultPickler(buffer).dump(payload)
    return buffer.getvalue()


def unpack_result(blob: bytes):
    """Parent side inverse of :func:`pack_result` (both modes).

    Any result segments referenced by the blob are consumed: their
    bytes are copied into private arrays and the segments unlinked.
    """
    return _ResultUnpickler(io.BytesIO(blob)).load()


def discard_result(blob: bytes) -> None:
    """Release a result blob that will never be consumed.

    Used on the executor's error path for tasks that completed after a
    sibling already failed: their segments must still be unlinked or
    they would outlive the fan-out.  Best-effort by design.
    """
    try:
        _ResultDiscarder(io.BytesIO(blob)).load()
    except Exception:  # pragma: no cover - discard must never raise
        pass


# --------------------------------------------------------------------- #
# auto-mode sizing
# --------------------------------------------------------------------- #


def estimate_shareable_bytes(obj, depth: int = 4) -> int:
    """Rough count of bytes :func:`pack` could move to shared memory.

    Walks containers and ``repro`` objects a few levels deep without
    triggering any lazy caches; used by ``transport="auto"`` to decide
    whether a fan-out is worth a shm session.
    """
    if depth < 0:
        return 0
    if type(obj) is np.ndarray:
        if obj.nbytes >= ARRAY_SHARE_THRESHOLD and not obj.dtype.hasobject:
            return obj.nbytes
        return 0
    if isinstance(obj, (tuple, list)):
        return sum(estimate_shareable_bytes(o, depth - 1) for o in obj)
    if isinstance(obj, dict):
        return sum(
            estimate_shareable_bytes(o, depth - 1) for o in obj.values()
        )
    module = type(obj).__module__ or ""
    if module.startswith("repro."):
        values = getattr(obj, "__dict__", None)
        if values is not None:
            return sum(
                estimate_shareable_bytes(o, depth - 1)
                for o in values.values()
            )
        slots = getattr(type(obj), "__slots__", ())
        return sum(
            estimate_shareable_bytes(getattr(obj, slot, None), depth - 1)
            for slot in slots
        )
    return 0
