"""Shared-memory tensor transport for the process execution backend.

The process backend historically pickled every task payload in full —
including the ``CoverageCost``'s topology tensors (travel times,
distances, pass-by entries, chord tables), which are identical across
all tasks of a fan-out and grow as ``O(M^2)``.  At large ``M`` the
dispatch cost swamps the per-task compute.  This module makes large
read-only tensors cross the process boundary exactly once:

* :class:`SharedTensorStore` — the parent-side registry.  ``put``
  copies an array into a ``multiprocessing.shared_memory`` segment
  (content-addressed via :func:`repro.persist.array_digest`, so
  value-identical arrays share one segment) and returns a picklable
  :class:`TensorHandle`.  Segments are refcounted and unlinked exactly
  once — on ``release`` reaching zero, on ``close``, or by the atexit
  sweep — so no ``/dev/shm`` entries outlive the parent even when
  workers crash.
* :class:`TensorHandle` — ``(segment name, dtype, shape, order,
  offset, nbytes)``.  ``resolve`` lazily reattaches the segment in the
  consuming process (cached per process, unregistered from the
  ``resource_tracker`` so only the owning store ever unlinks) and
  returns a **read-only** array view over the shared pages.
* Broadcast-once objects — :meth:`SharedTensorStore.broadcast` pickles
  a ``Topology`` / ``LegCoverageTable`` / ``CoverageCost`` once into
  its own segment and hands out a content digest (conventions from
  :mod:`repro.persist`).  Workers fetch the payload bytes on first
  touch and cache them, then unpickle a *fresh* object per task so no
  lazy caches or incremental-solver state leaks between tasks — this
  is what keeps shm runs bit-identical to the pickle path.
* :func:`transport_session` — a thread-local context manager marking a
  store active.  The ``__getstate__`` hooks on ``Topology``,
  ``LegCoverageTable``, and ``CoverageCost`` consult it via
  :func:`share_array`, so plain pickling (serial/thread backends,
  ``copy``, on-disk persistence) is byte-for-byte unchanged when no
  session is active.
* :func:`pack` / :func:`unpack` — the framing used by
  ``ProcessExecutor``: with a store, a :class:`pickle.Pickler` whose
  ``persistent_id`` swaps large plain ``ndarray``s for handles and
  broadcastable objects for digests; without one, plain pickle.
"""

from __future__ import annotations

import atexit
import io
import os
import pickle
import threading
import uuid
import weakref
from contextlib import contextmanager
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.persist import array_digest, payload_digest

#: Transport modes accepted by ``ProcessExecutor`` and the CLI
#: ``--transport`` flag.  ``auto`` uses shm only when a task's
#: estimated shareable payload exceeds :data:`AUTO_TRANSPORT_THRESHOLD`.
TRANSPORTS = ("pickle", "shm", "auto")

#: Arrays at least this large (bytes) are placed in shared memory;
#: smaller ones ride inline in the task pickle (a segment + attach
#: round-trip costs more than it saves below this).
ARRAY_SHARE_THRESHOLD = 1 << 15

#: ``transport="auto"`` switches the process backend to shm when the
#: estimated shareable bytes of one task exceed this.
AUTO_TRANSPORT_THRESHOLD = 1 << 20

#: Prefix of every segment name this module creates (used by tests to
#: enumerate leaks without confusing other tenants of ``/dev/shm``).
SEGMENT_PREFIX = "reproshm"


def _broadcast_types() -> tuple:
    """The classes shipped broadcast-once (imported lazily: the cost
    and topology modules must not be import-time dependencies of the
    executor layer)."""
    from repro.core.cost import CoverageCost
    from repro.topology.model import LegCoverageTable, Topology

    return (CoverageCost, Topology, LegCoverageTable)


# --------------------------------------------------------------------- #
# Per-process attachment caches (parent and workers alike)
# --------------------------------------------------------------------- #

_attachments: Dict[str, shared_memory.SharedMemory] = {}
_resolved: Dict["TensorHandle", np.ndarray] = {}
_broadcast_bytes: Dict[str, bytes] = {}
_attach_lock = threading.Lock()

#: Segment names created (and therefore tracker-registered) by a store
#: in *this* process; attaching to one of these must not unregister it.
_owned_names: set = set()

#: Decided once per process at first attach: ``True`` when attachments
#: must be unregistered from the ``resource_tracker``.  Pool workers
#: inherit the parent's tracker, where the owning store already holds
#: the (one) registration — unregistering there would cancel it and
#: break unlink-once.  A standalone process attaching a handle spins up
#: its *own* tracker, which would wrongly unlink the segment at exit
#: (CPython gh-82300); there the attach registration must be dropped.
_untrack_attachments: Optional[bool] = None


def _untrack(segment: shared_memory.SharedMemory) -> None:
    """Drop a non-owning attachment from the ``resource_tracker``.

    Best-effort: the tracker is an implementation detail of CPython's
    ``multiprocessing``.
    """
    try:  # pragma: no cover - depends on interpreter internals
        from multiprocessing import resource_tracker

        resource_tracker.unregister(segment._name, "shared_memory")
    except Exception:
        pass


def _tracker_already_running() -> bool:
    try:  # pragma: no cover - depends on interpreter internals
        from multiprocessing.resource_tracker import _resource_tracker

        return getattr(_resource_tracker, "_fd", None) is not None
    except Exception:
        return True  # assume shared: never cancel someone's registration


def _attach(name: str) -> shared_memory.SharedMemory:
    global _untrack_attachments
    with _attach_lock:
        segment = _attachments.get(name)
        if segment is None:
            if _untrack_attachments is None:
                _untrack_attachments = not _tracker_already_running()
            segment = shared_memory.SharedMemory(name=name)
            if _untrack_attachments and name not in _owned_names:
                _untrack(segment)
            _attachments[name] = segment
        return segment


@atexit.register
def _close_attachments() -> None:
    """Unmap (never unlink) this process's attachments at exit."""
    with _attach_lock:
        _resolved.clear()
        _broadcast_bytes.clear()
        for segment in _attachments.values():
            try:
                segment.close()
            except Exception:  # pragma: no cover - shutdown best-effort
                pass
        _attachments.clear()


# --------------------------------------------------------------------- #
# Handles
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class TensorHandle:
    """Picklable reference to an array living in a shared segment."""

    segment: str
    dtype: str
    shape: Tuple[int, ...]
    order: str
    offset: int
    nbytes: int

    def resolve(self) -> np.ndarray:
        """Attach (cached per process) and view the array, read-only.

        ``order == "F"`` segments store the transpose's C-layout bytes,
        so the returned view reproduces the source array's memory
        layout — required for bit-identity of layout-sensitive BLAS
        paths with the pickle transport.
        """
        cached = _resolved.get(self)
        if cached is not None:
            return cached
        segment = _attach(self.segment)
        dtype = np.dtype(self.dtype)
        shape = tuple(self.shape)
        if self.order == "F":
            view = np.ndarray(
                shape[::-1], dtype=dtype, buffer=segment.buf,
                offset=self.offset,
            ).T
        else:
            view = np.ndarray(
                shape, dtype=dtype, buffer=segment.buf, offset=self.offset
            )
        view.flags.writeable = False
        _resolved[self] = view
        return view


def _c_layout(array: np.ndarray) -> Tuple[np.ndarray, str]:
    """C-contiguous bytes plus the layout tag ``resolve`` must restore."""
    if array.flags.c_contiguous:
        return array, "C"
    if array.flags.f_contiguous:
        return array.T, "F"
    return np.ascontiguousarray(array), "C"


class _Segment:
    """One owned shared-memory segment plus its lifecycle state."""

    __slots__ = ("shm", "handle", "refcount", "unlinked")

    def __init__(self, shm: shared_memory.SharedMemory,
                 handle: TensorHandle) -> None:
        self.shm = shm
        self.handle = handle
        self.refcount = 0
        self.unlinked = False

    def unlink(self) -> None:
        if self.unlinked:
            return
        self.unlinked = True
        _owned_names.discard(self.shm.name)
        self.shm.close()
        try:
            self.shm.unlink()
        except FileNotFoundError:  # pragma: no cover - crashed tenant
            pass


# --------------------------------------------------------------------- #
# The parent-side store
# --------------------------------------------------------------------- #

_open_stores: "weakref.WeakSet[SharedTensorStore]" = weakref.WeakSet()


@atexit.register
def _close_open_stores() -> None:
    """Last-resort sweep: unlink any store the owner forgot to close."""
    for store in list(_open_stores):
        try:
            store.close()
        except Exception:  # pragma: no cover - shutdown best-effort
            pass


class SharedTensorStore:
    """Parent-side registry of shared segments, content-addressed.

    Also usable as a context manager (``with SharedTensorStore() as
    store``), closing — and therefore unlinking — on exit even when the
    body raises.  ``close`` is idempotent; an atexit sweep closes any
    store still open at interpreter shutdown.
    """

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._segments: Dict[str, _Segment] = {}        # array digest ->
        self._handles: Dict[TensorHandle, str] = {}     # handle -> digest
        self._array_memo: Dict[int, TensorHandle] = {}  # id(array) ->
        self._object_memo: Dict[int, tuple] = {}        # id(obj) -> pid
        self._broadcasts: Dict[str, tuple] = {}         # digest -> pid
        self._in_flight: set = set()
        self._pinned: List[object] = []
        self._closed = False
        self._tag = uuid.uuid4().hex[:8]
        self._counter = 0
        _open_stores.add(self)

    # -- segment management -------------------------------------------- #

    def _new_segment_name(self) -> str:
        self._counter += 1
        return f"{SEGMENT_PREFIX}-{os.getpid()}-{self._tag}-{self._counter}"

    def put(self, array: np.ndarray) -> TensorHandle:
        """Copy ``array`` into shared memory (deduplicated by content).

        Repeated ``put`` of value-identical arrays returns the same
        handle and bumps the segment's refcount.
        """
        if array.dtype.hasobject:
            raise TypeError("object-dtype arrays cannot be shared")
        with self._lock:
            if self._closed:
                raise RuntimeError("SharedTensorStore is closed")
            memo = self._array_memo.get(id(array))
            if memo is not None:
                self._segments[self._handles[memo]].refcount += 1
                return memo
            digest = array_digest(array)
            entry = self._segments.get(digest)
            if entry is None:
                buffer, order = _c_layout(array)
                shm = shared_memory.SharedMemory(
                    name=self._new_segment_name(), create=True,
                    size=max(1, buffer.nbytes),
                )
                _owned_names.add(shm.name)
                np.ndarray(
                    buffer.shape, dtype=buffer.dtype, buffer=shm.buf
                )[...] = buffer
                handle = TensorHandle(
                    segment=shm.name, dtype=array.dtype.str,
                    shape=tuple(array.shape), order=order, offset=0,
                    nbytes=buffer.nbytes,
                )
                entry = _Segment(shm, handle)
                self._segments[digest] = entry
                self._handles[handle] = digest
            entry.refcount += 1
            self._memo_array(array, entry.handle)
            return entry.handle

    def _memo_array(self, array: np.ndarray, handle: TensorHandle) -> None:
        key = id(array)
        self._array_memo[key] = handle
        try:
            weakref.finalize(array, self._array_memo.pop, key, None)
        except TypeError:  # pragma: no cover - plain ndarrays weakref fine
            self._pinned.append(array)

    def release(self, handle: TensorHandle) -> None:
        """Drop one reference; the last release unlinks the segment."""
        with self._lock:
            digest = self._handles.get(handle)
            if digest is None:
                return
            entry = self._segments[digest]
            entry.refcount -= 1
            if entry.refcount <= 0:
                del self._segments[digest]
                del self._handles[handle]
                entry.unlink()

    def segment_names(self) -> List[str]:
        """Names of currently owned segments (tests enumerate leaks)."""
        with self._lock:
            return [e.shm.name for e in self._segments.values()]

    def close(self) -> None:
        """Unlink every owned segment.  Idempotent."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            for entry in self._segments.values():
                entry.unlink()
            self._segments.clear()
            self._handles.clear()
            self._array_memo.clear()
            self._object_memo.clear()
            self._broadcasts.clear()
            self._pinned.clear()
        _open_stores.discard(self)

    def __enter__(self) -> "SharedTensorStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- broadcast-once objects ---------------------------------------- #

    def broadcast(self, obj) -> tuple:
        """Persistent-id tail ``(digest, payload handle)`` for ``obj``.

        The object is pickled (under this store, so its own tensors
        become handles) into a dedicated segment at most once per
        distinct content; later broadcasts of the same object — or of a
        value-identical one — reuse the registered payload.
        """
        with self._lock:
            memo = self._object_memo.get(id(obj))
            if memo is not None:
                return memo
            self._in_flight.add(id(obj))
        try:
            buffer = io.BytesIO()
            _TransportPickler(buffer, self).dump(obj)
            payload = buffer.getvalue()
        finally:
            with self._lock:
                self._in_flight.discard(id(obj))
        digest = payload_digest(payload)
        with self._lock:
            pid_tail = self._broadcasts.get(digest)
            if pid_tail is None:
                handle = self.put(np.frombuffer(payload, dtype=np.uint8))
                pid_tail = (digest, handle)
                self._broadcasts[digest] = pid_tail
            self._object_memo[id(obj)] = pid_tail
            try:
                weakref.finalize(
                    obj, self._object_memo.pop, id(obj), None
                )
            except TypeError:  # e.g. __slots__ classes without __weakref__
                self._pinned.append(obj)
            return pid_tail

    def in_flight(self, obj) -> bool:
        return id(obj) in self._in_flight


# --------------------------------------------------------------------- #
# Transport sessions (consulted by the class __getstate__ hooks)
# --------------------------------------------------------------------- #

_session = threading.local()


def active_session() -> Optional[SharedTensorStore]:
    """The innermost store activated on this thread, or ``None``."""
    stack = getattr(_session, "stack", None)
    return stack[-1] if stack else None


@contextmanager
def transport_session(store: SharedTensorStore):
    """Mark ``store`` active for pickling on the current thread."""
    stack = getattr(_session, "stack", None)
    if stack is None:
        stack = _session.stack = []
    stack.append(store)
    try:
        yield store
    finally:
        stack.pop()


def share_array(array):
    """Hook helper: swap a large array for a handle when a session is
    active; otherwise return it unchanged (plain pickling stays plain).
    """
    store = active_session()
    if (
        store is None
        or type(array) is not np.ndarray
        or array.nbytes < ARRAY_SHARE_THRESHOLD
        or array.dtype.hasobject
    ):
        return array
    return store.put(array)


def resolve_shared(value):
    """Hook helper: resolve a handle back to its array; pass through
    anything else."""
    if isinstance(value, TensorHandle):
        return value.resolve()
    return value


# --------------------------------------------------------------------- #
# Pickling
# --------------------------------------------------------------------- #


class _TransportPickler(pickle.Pickler):
    """Pickler swapping tensors for handles and broadcastables for
    digests.  Persistent ids:

    * ``("tensor", handle)`` — a large plain ``ndarray``;
    * ``("object", digest, payload handle)`` — a broadcast-once object.
    """

    def __init__(self, file, store: SharedTensorStore) -> None:
        super().__init__(file, protocol=pickle.HIGHEST_PROTOCOL)
        self._store = store

    def persistent_id(self, obj):
        if type(obj) is np.ndarray:
            if (
                obj.nbytes >= ARRAY_SHARE_THRESHOLD
                and not obj.dtype.hasobject
            ):
                return ("tensor", self._store.put(obj))
            return None
        if isinstance(obj, _broadcast_types()) and not self._store.in_flight(
            obj
        ):
            return ("object", *self._store.broadcast(obj))
        return None


class _TransportUnpickler(pickle.Unpickler):
    """Inverse of :class:`_TransportPickler`.

    Broadcast objects are deduplicated *within* one payload (matching
    pickle's memo semantics) but rebuilt fresh for every ``unpack``
    call, so per-task optimizer state never aliases across tasks.
    """

    def __init__(self, file) -> None:
        super().__init__(file)
        self._objects: Dict[str, object] = {}

    def persistent_load(self, pid):
        kind = pid[0]
        if kind == "tensor":
            return pid[1].resolve()
        if kind == "object":
            digest, handle = pid[1], pid[2]
            obj = self._objects.get(digest)
            if obj is None:
                obj = _load_broadcast(digest, handle)
                self._objects[digest] = obj
            return obj
        raise pickle.UnpicklingError(f"unknown persistent id {pid!r}")


def _load_broadcast(digest: str, handle: TensorHandle):
    payload = _broadcast_bytes.get(digest)
    if payload is None:
        payload = bytes(memoryview(handle.resolve()))
        _broadcast_bytes[digest] = payload
    return _TransportUnpickler(io.BytesIO(payload)).load()


def pack(payload, store: Optional[SharedTensorStore] = None) -> bytes:
    """Serialize a task payload for the process boundary.

    With a store, large tensors and broadcastable objects travel as
    shared-memory references; without one this is plain pickle (the
    ``transport="pickle"`` path, byte-compatible with what
    ``ProcessPoolExecutor`` would have produced itself).
    """
    if store is None:
        return pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    buffer = io.BytesIO()
    with transport_session(store):
        _TransportPickler(buffer, store).dump(payload)
    return buffer.getvalue()


def unpack(blob: bytes):
    """Inverse of :func:`pack`; handles both transports."""
    return _TransportUnpickler(io.BytesIO(blob)).load()


# --------------------------------------------------------------------- #
# auto-mode sizing
# --------------------------------------------------------------------- #


def estimate_shareable_bytes(obj, depth: int = 4) -> int:
    """Rough count of bytes :func:`pack` could move to shared memory.

    Walks containers and ``repro`` objects a few levels deep without
    triggering any lazy caches; used by ``transport="auto"`` to decide
    whether a fan-out is worth a shm session.
    """
    if depth < 0:
        return 0
    if type(obj) is np.ndarray:
        if obj.nbytes >= ARRAY_SHARE_THRESHOLD and not obj.dtype.hasobject:
            return obj.nbytes
        return 0
    if isinstance(obj, (tuple, list)):
        return sum(estimate_shareable_bytes(o, depth - 1) for o in obj)
    if isinstance(obj, dict):
        return sum(
            estimate_shareable_bytes(o, depth - 1) for o in obj.values()
        )
    module = type(obj).__module__ or ""
    if module.startswith("repro."):
        values = getattr(obj, "__dict__", None)
        if values is not None:
            return sum(
                estimate_shareable_bytes(o, depth - 1)
                for o in values.values()
            )
        slots = getattr(type(obj), "__slots__", ())
        return sum(
            estimate_shareable_bytes(getattr(obj, slot, None), depth - 1)
            for slot in slots
        )
    return 0
