"""Parallel execution layer: pluggable backends for multi-run drivers."""

from repro.exec.executor import (
    BACKENDS,
    Executor,
    ProcessExecutor,
    SerialExecutor,
    TaskTimings,
    ThreadExecutor,
    default_executor,
    get_executor,
    resolve_executor,
    set_default_executor,
    using_executor,
)

__all__ = [
    "BACKENDS",
    "Executor",
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "TaskTimings",
    "default_executor",
    "get_executor",
    "resolve_executor",
    "set_default_executor",
    "using_executor",
]
