"""Parallel execution layer: pluggable backends for multi-run drivers."""

from repro.exec.executor import (
    BACKENDS,
    TRANSPORTS,
    Executor,
    ProcessExecutor,
    SerialExecutor,
    TaskTimings,
    ThreadExecutor,
    default_executor,
    get_executor,
    resolve_executor,
    set_default_executor,
    using_executor,
)
from repro.exec.shm import (
    ResultHandle,
    SharedTensorStore,
    TensorHandle,
    transport_session,
)

__all__ = [
    "BACKENDS",
    "TRANSPORTS",
    "Executor",
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "ResultHandle",
    "SharedTensorStore",
    "TaskTimings",
    "TensorHandle",
    "default_executor",
    "get_executor",
    "resolve_executor",
    "set_default_executor",
    "using_executor",
    "transport_session",
]
