"""The four evaluation topologies of the paper (Fig. 1).

The exact geometry of Fig. 1 is not recoverable from the scanned paper, so
these are documented reconstructions (see DESIGN.md section 3) chosen to
match every surviving quantitative clue:

* **Topology 1** — four PoIs on a 2x2 grid with corner-heavy target shares
  ``Phi = (0.4, 0.1, 0.1, 0.4)`` (Table IV's setting).
* **Topology 2** — six PoIs on a 2x3 grid with shares concentrated on two
  corners, used by Figs. 5-6.
* **Topology 3** — four PoIs on a line, ``Phi = (0.4, 0.1, 0.1, 0.4)``.
  The line shape reproduces Table I's exposure-only optimum, whose achieved
  coverage ``(0.214, 0.286, 0.286, 0.214)`` requires the inner PoIs to be
  passed through on outer-to-outer trips.
* **Topology 4** — nine PoIs on a 3x3 grid with a skewed allocation, the
  "larger map, different allocation" counterpart of Topology 2 compared in
  Fig. 7.
"""

from __future__ import annotations

from typing import Dict

from repro.topology.grid import grid_topology, line_topology
from repro.topology.model import Topology

#: Valid identifiers accepted by :func:`paper_topology`.
PAPER_TOPOLOGY_IDS = (1, 2, 3, 4)


def _topology_1() -> Topology:
    return grid_topology(
        rows=2,
        cols=2,
        target_shares=[0.4, 0.1, 0.1, 0.4],
        name="paper-topology-1",
    )


def _topology_2() -> Topology:
    return grid_topology(
        rows=2,
        cols=3,
        target_shares=[0.3, 0.1, 0.1, 0.1, 0.1, 0.3],
        name="paper-topology-2",
    )


def _topology_3() -> Topology:
    return line_topology(
        count=4,
        target_shares=[0.4, 0.1, 0.1, 0.4],
        name="paper-topology-3",
    )


def _topology_4() -> Topology:
    return grid_topology(
        rows=3,
        cols=3,
        target_shares=[0.2, 0.025, 0.2, 0.025, 0.05, 0.025, 0.2, 0.025, 0.25],
        name="paper-topology-4",
    )


_BUILDERS: Dict[int, object] = {
    1: _topology_1,
    2: _topology_2,
    3: _topology_3,
    4: _topology_4,
}


def paper_topology(identifier: int) -> Topology:
    """Return reconstruction of paper Topology ``identifier`` (1-4).

    Each call builds a fresh instance, so callers may not mutate shared
    state by accident.
    """
    try:
        builder = _BUILDERS[int(identifier)]
    except (KeyError, ValueError, TypeError):
        raise ValueError(
            f"unknown paper topology {identifier!r}; "
            f"valid ids are {PAPER_TOPOLOGY_IDS}"
        ) from None
    return builder()
