"""The four evaluation topologies of the paper (Fig. 1).

The exact geometry of Fig. 1 is not recoverable from the scanned paper, so
these are documented reconstructions (see DESIGN.md section 3) chosen to
match every surviving quantitative clue:

* **Topology 1** — four PoIs on a 2x2 grid with corner-heavy target shares
  ``Phi = (0.4, 0.1, 0.1, 0.4)`` (Table IV's setting).
* **Topology 2** — six PoIs on a 2x3 grid with shares concentrated on two
  corners, used by Figs. 5-6.
* **Topology 3** — four PoIs on a line, ``Phi = (0.4, 0.1, 0.1, 0.4)``.
  The line shape reproduces Table I's exposure-only optimum, whose achieved
  coverage ``(0.214, 0.286, 0.286, 0.214)`` requires the inner PoIs to be
  passed through on outer-to-outer trips.
* **Topology 4** — nine PoIs on a 3x3 grid with a skewed allocation, the
  "larger map, different allocation" counterpart of Topology 2 compared in
  Fig. 7.
"""

from __future__ import annotations

from typing import Dict

from repro.topology.grid import grid_topology, line_topology
from repro.topology.model import Topology
from repro.topology.random_gen import (
    city_grid_topology,
    ring_of_grids_topology,
)
from repro.utils.rng import RandomState

#: Valid identifiers accepted by :func:`paper_topology`.
PAPER_TOPOLOGY_IDS = (1, 2, 3, 4)

#: Family names accepted by :func:`scalable_topology`.
SCALABLE_FAMILIES = ("city-grid", "ring-of-grids")

#: PoIs per cluster in the ring-of-grids family (4x4 blocks).
_RING_BLOCK = 16


def _topology_1() -> Topology:
    return grid_topology(
        rows=2,
        cols=2,
        target_shares=[0.4, 0.1, 0.1, 0.4],
        name="paper-topology-1",
    )


def _topology_2() -> Topology:
    return grid_topology(
        rows=2,
        cols=3,
        target_shares=[0.3, 0.1, 0.1, 0.1, 0.1, 0.3],
        name="paper-topology-2",
    )


def _topology_3() -> Topology:
    return line_topology(
        count=4,
        target_shares=[0.4, 0.1, 0.1, 0.4],
        name="paper-topology-3",
    )


def _topology_4() -> Topology:
    return grid_topology(
        rows=3,
        cols=3,
        target_shares=[0.2, 0.025, 0.2, 0.025, 0.05, 0.025, 0.2, 0.025, 0.25],
        name="paper-topology-4",
    )


_BUILDERS: Dict[int, object] = {
    1: _topology_1,
    2: _topology_2,
    3: _topology_3,
    4: _topology_4,
}


def paper_topology(identifier: int) -> Topology:
    """Return reconstruction of paper Topology ``identifier`` (1-4).

    Each call builds a fresh instance, so callers may not mutate shared
    state by accident.
    """
    try:
        builder = _BUILDERS[int(identifier)]
    except (KeyError, ValueError, TypeError):
        raise ValueError(
            f"unknown paper topology {identifier!r}; "
            f"valid ids are {PAPER_TOPOLOGY_IDS}"
        ) from None
    return builder()


def _near_square_factors(size: int):
    """The divisor pair ``rows * cols == size`` closest to square."""
    rows = int(size**0.5)
    while rows > 1 and size % rows != 0:
        rows -= 1
    return rows, size // rows


def scalable_topology(
    family: str,
    size: int,
    seed: RandomState = None,
    dirichlet_alpha=None,
) -> Topology:
    """Build one of the scalable sparse-support families at ``size`` PoIs.

    The large-``M`` benchmark families (see
    :mod:`repro.topology.random_gen`):

    * ``"city-grid"`` — the near-square ``rows x cols`` street grid with
      ``rows * cols == size`` (prime sizes degenerate to a single
      street);
    * ``"ring-of-grids"`` — ``size / 16`` clusters of ``4 x 4`` blocks
      joined into a ring (``size`` must be a multiple of 16 with at
      least two clusters).

    Target shares are uniform unless ``dirichlet_alpha`` (plus ``seed``)
    requests a random allocation.  Both families carry an adjacency
    mask, so costs built on them default to the compact pass-by term and
    are eligible for ``linalg="auto"`` sparse solves.
    """
    if size < 2:
        raise ValueError(f"size must be >= 2, got {size}")
    if family == "city-grid":
        rows, cols = _near_square_factors(size)
        return city_grid_topology(
            rows, cols, seed=seed, dirichlet_alpha=dirichlet_alpha,
            name=f"city-grid-{size}",
        )
    if family == "ring-of-grids":
        if size % _RING_BLOCK != 0 or size < 2 * _RING_BLOCK:
            raise ValueError(
                "ring-of-grids sizes must be multiples of "
                f"{_RING_BLOCK} with at least two clusters, got {size}"
            )
        return ring_of_grids_topology(
            clusters=size // _RING_BLOCK, seed=seed,
            dirichlet_alpha=dirichlet_alpha,
            name=f"ring-of-grids-{size}",
        )
    raise ValueError(
        f"unknown scalable family {family!r}; "
        f"valid families are {SCALABLE_FAMILIES}"
    )
