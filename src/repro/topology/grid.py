"""Grid and line topology builders.

The paper's four evaluation topologies (Fig. 1) are regular grids of cells
with PoIs at cell centers.  These builders produce that family: PoIs on a
``rows x cols`` lattice with a given cell spacing, row-major indexing
(PoI 0 at the origin, increasing x along a row, increasing y across rows).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.topology.model import DEFAULT_PAUSE, DEFAULT_SPEED, Topology

#: Default cell spacing, meters (cell size of the paper's grid maps).
DEFAULT_SPACING = 100.0
#: Default sensing radius as a fraction of the spacing.  0.3 keeps the
#: sensing discs of adjacent PoIs disjoint (0.3 + 0.3 < 1) while still
#: letting a straight diagonal or co-linear path pass through inner discs.
DEFAULT_RADIUS_FRACTION = 0.3


def grid_topology(
    rows: int,
    cols: int,
    target_shares: Optional[Sequence[float]] = None,
    spacing: float = DEFAULT_SPACING,
    sensing_radius: Optional[float] = None,
    speed: float = DEFAULT_SPEED,
    pause_times=DEFAULT_PAUSE,
    name: Optional[str] = None,
) -> Topology:
    """Build a ``rows x cols`` lattice of PoIs.

    ``target_shares`` defaults to the uniform allocation.  The default
    sensing radius is ``DEFAULT_RADIUS_FRACTION * spacing``.
    """
    if rows < 1 or cols < 1:
        raise ValueError(f"rows and cols must be >= 1, got {rows}x{cols}")
    if rows * cols < 2:
        raise ValueError("a grid topology needs at least 2 PoIs")
    if spacing <= 0:
        raise ValueError(f"spacing must be > 0, got {spacing}")
    positions = [
        (col * spacing, row * spacing)
        for row in range(rows)
        for col in range(cols)
    ]
    count = rows * cols
    if target_shares is None:
        target_shares = np.full(count, 1.0 / count)
    if sensing_radius is None:
        sensing_radius = DEFAULT_RADIUS_FRACTION * spacing
    return Topology(
        positions=positions,
        target_shares=target_shares,
        sensing_radius=sensing_radius,
        speed=speed,
        pause_times=pause_times,
        name=name or f"grid-{rows}x{cols}",
    )


def line_topology(
    count: int,
    target_shares: Optional[Sequence[float]] = None,
    spacing: float = DEFAULT_SPACING,
    sensing_radius: Optional[float] = None,
    speed: float = DEFAULT_SPEED,
    pause_times=DEFAULT_PAUSE,
    name: Optional[str] = None,
) -> Topology:
    """Build ``count`` PoIs on a straight line.

    On a line topology every trip between non-adjacent PoIs passes through
    the sensing discs of all PoIs in between — the strongest form of the
    pass-by coupling (``T_{jk,i} > 0`` for intermediate ``i``) described in
    Section III.
    """
    if count < 2:
        raise ValueError(f"a line topology needs at least 2 PoIs, got {count}")
    return grid_topology(
        rows=1,
        cols=count,
        target_shares=target_shares,
        spacing=spacing,
        sensing_radius=sensing_radius,
        speed=speed,
        pause_times=pause_times,
        name=name or f"line-{count}",
    )
