"""Topology substrate: PoI placements and their physical timing model.

A :class:`~repro.topology.model.Topology` turns geographical PoI placements
into the quantities the Markov scheduling model consumes: travel times
``T_jk`` (travel plus pause at the destination) and the pass-by coverage
tensor ``T_{jk,i}`` (time PoI ``i`` is covered during the ``j -> k``
transition), per Section III-A of the paper.
"""

from repro.topology.model import PoI, Topology
from repro.topology.grid import grid_topology, line_topology
from repro.topology.library import (
    PAPER_TOPOLOGY_IDS,
    SCALABLE_FAMILIES,
    paper_topology,
    scalable_topology,
)
from repro.topology.random_gen import (
    city_grid_topology,
    random_topology,
    ring_of_grids_topology,
)

__all__ = [
    "PoI",
    "Topology",
    "grid_topology",
    "line_topology",
    "paper_topology",
    "PAPER_TOPOLOGY_IDS",
    "SCALABLE_FAMILIES",
    "scalable_topology",
    "random_topology",
    "city_grid_topology",
    "ring_of_grids_topology",
]
