"""Random and scalable topology generation.

Besides the rejection-sampled :func:`random_topology` used by tests and
robustness experiments, this module builds the two **scalable families**
used by the large-``M`` benchmarks (``benchmarks/perf/bench_largeM.py``):

* :func:`city_grid_topology` — a street grid where a sensor may only
  move to the four lattice neighbors (or pause), the canonical
  sparse-support topology; and
* :func:`ring_of_grids_topology` — densely connected grid clusters
  joined into a ring through single gateway legs, giving a block-sparse
  transition structure with long-range mixing bottlenecks.

Both attach an ``adjacency`` mask to the returned
:class:`~repro.topology.model.Topology`, which switches the cost layer
to the compact pass-by representation and makes the sparse linear
algebra (``linalg="sparse"``/``"auto"``) applicable; they scale to
``M = 1024`` and beyond without ever materializing an ``O(M^3)`` tensor.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.topology.model import DEFAULT_PAUSE, DEFAULT_SPEED, Topology
from repro.utils.rng import RandomState, as_generator

#: Cell spacing of the scalable families, meters.
DEFAULT_CITY_SPACING = 100.0
#: Sensing radius as a fraction of the spacing (discs stay disjoint).
DEFAULT_CITY_RADIUS_FRACTION = 0.3


def random_topology(
    count: int,
    area_side: float = 1000.0,
    sensing_radius: float = 30.0,
    speed: float = DEFAULT_SPEED,
    pause_times=DEFAULT_PAUSE,
    dirichlet_alpha: float = 1.0,
    seed: RandomState = None,
    max_attempts: int = 10_000,
    name: Optional[str] = None,
) -> Topology:
    """Sample ``count`` PoIs uniformly in a square with disjoint discs.

    PoIs are rejected-sampled until pairwise separations exceed
    ``2 * sensing_radius`` plus a 5% safety margin.  Target shares are drawn
    from a symmetric Dirichlet with concentration ``dirichlet_alpha``
    (``alpha = 1`` gives a uniform draw over allocations; larger values
    concentrate near the uniform allocation).

    Raises ``RuntimeError`` when the square cannot accommodate the PoIs
    within ``max_attempts`` placement attempts — a sign the area is too
    small for the requested count and radius.
    """
    if count < 2:
        raise ValueError(f"count must be >= 2, got {count}")
    if area_side <= 0:
        raise ValueError(f"area_side must be > 0, got {area_side}")
    if sensing_radius <= 0:
        raise ValueError(f"sensing_radius must be > 0, got {sensing_radius}")
    if dirichlet_alpha <= 0:
        raise ValueError(
            f"dirichlet_alpha must be > 0, got {dirichlet_alpha}"
        )
    rng = as_generator(seed)
    min_separation = 2.0 * sensing_radius * 1.05
    positions: list = []
    attempts = 0
    while len(positions) < count:
        attempts += 1
        if attempts > max_attempts:
            raise RuntimeError(
                f"could not place {count} PoIs with separation "
                f">{min_separation:.3g} m in a {area_side:.3g} m square "
                f"after {max_attempts} attempts; enlarge the area or "
                "shrink the radius"
            )
        candidate = rng.uniform(0.0, area_side, size=2)
        if all(
            np.hypot(candidate[0] - p[0], candidate[1] - p[1])
            > min_separation
            for p in positions
        ):
            positions.append((float(candidate[0]), float(candidate[1])))
    shares = rng.dirichlet(np.full(count, dirichlet_alpha))
    return Topology(
        positions=positions,
        target_shares=shares,
        sensing_radius=sensing_radius,
        speed=speed,
        pause_times=pause_times,
        name=name or f"random-{count}",
    )


def _grid_adjacency(rows: int, cols: int) -> np.ndarray:
    """4-neighbor lattice adjacency (diagonal filled by the model)."""
    count = rows * cols
    adjacency = np.zeros((count, count), dtype=bool)
    index = np.arange(count).reshape(rows, cols)
    horizontal = np.stack(
        (index[:, :-1].ravel(), index[:, 1:].ravel()), axis=1
    )
    vertical = np.stack(
        (index[:-1, :].ravel(), index[1:, :].ravel()), axis=1
    )
    for a, b in np.concatenate((horizontal, vertical)):
        adjacency[a, b] = True
        adjacency[b, a] = True
    np.fill_diagonal(adjacency, True)
    return adjacency


def _target_shares(count: int, dirichlet_alpha, rng) -> np.ndarray:
    """Uniform shares, or a Dirichlet draw when an alpha is given."""
    if dirichlet_alpha is None:
        return np.full(count, 1.0 / count)
    if dirichlet_alpha <= 0:
        raise ValueError(
            f"dirichlet_alpha must be > 0, got {dirichlet_alpha}"
        )
    return rng.dirichlet(np.full(count, float(dirichlet_alpha)))


def city_grid_topology(
    rows: int,
    cols: int,
    spacing: float = DEFAULT_CITY_SPACING,
    sensing_radius: Optional[float] = None,
    speed: float = DEFAULT_SPEED,
    pause_times=DEFAULT_PAUSE,
    dirichlet_alpha: Optional[float] = None,
    seed: RandomState = None,
    name: Optional[str] = None,
) -> Topology:
    """A ``rows x cols`` street grid with 4-neighbor movement only.

    PoIs sit on a square lattice; the adjacency mask allows transitions
    to the north/south/east/west neighbors plus pausing in place, so
    each row of a feasible transition matrix has at most 5 nonzeros
    regardless of ``M`` — the archetypal sparse-support topology.
    Target shares default to uniform; pass ``dirichlet_alpha`` (with a
    ``seed``) for a random allocation.
    """
    if rows < 1 or cols < 1:
        raise ValueError(f"rows and cols must be >= 1, got {rows}x{cols}")
    if rows * cols < 2:
        raise ValueError("a city grid needs at least 2 PoIs")
    if spacing <= 0:
        raise ValueError(f"spacing must be > 0, got {spacing}")
    if sensing_radius is None:
        sensing_radius = DEFAULT_CITY_RADIUS_FRACTION * spacing
    rng = as_generator(seed)
    positions = [
        (col * spacing, row * spacing)
        for row in range(rows)
        for col in range(cols)
    ]
    count = rows * cols
    return Topology(
        positions=positions,
        target_shares=_target_shares(count, dirichlet_alpha, rng),
        sensing_radius=sensing_radius,
        speed=speed,
        pause_times=pause_times,
        name=name or f"city-grid-{rows}x{cols}",
        adjacency=_grid_adjacency(rows, cols),
    )


def ring_of_grids_topology(
    clusters: int,
    cluster_rows: int = 4,
    cluster_cols: int = 4,
    spacing: float = DEFAULT_CITY_SPACING,
    sensing_radius: Optional[float] = None,
    speed: float = DEFAULT_SPEED,
    pause_times=DEFAULT_PAUSE,
    dirichlet_alpha: Optional[float] = None,
    seed: RandomState = None,
    name: Optional[str] = None,
) -> Topology:
    """Grid clusters joined into a ring through single gateway legs.

    Each of the ``clusters`` blocks is a ``cluster_rows x cluster_cols``
    lattice with internal 4-neighbor movement; consecutive clusters
    around the ring are linked by one bidirectional leg between their
    gateway PoIs (the last PoI of one block and the first of the next).
    The result is block-sparse with mixing bottlenecks at the gateways —
    a qualitatively different stress test for the sparse solvers than
    the uniform city grid.  Cluster centers are spread on a circle wide
    enough that all sensing discs stay disjoint.
    """
    if clusters < 2:
        raise ValueError(f"clusters must be >= 2, got {clusters}")
    if cluster_rows < 1 or cluster_cols < 1:
        raise ValueError(
            "cluster_rows and cluster_cols must be >= 1, got "
            f"{cluster_rows}x{cluster_cols}"
        )
    if cluster_rows * cluster_cols < 2:
        raise ValueError("each cluster needs at least 2 PoIs")
    if spacing <= 0:
        raise ValueError(f"spacing must be > 0, got {spacing}")
    if sensing_radius is None:
        sensing_radius = DEFAULT_CITY_RADIUS_FRACTION * spacing
    rng = as_generator(seed)
    block = cluster_rows * cluster_cols
    count = clusters * block

    # Ring radius: adjacent cluster centers must clear the cluster
    # diagonal plus one extra cell of slack so the blocks never touch.
    extent = np.hypot(cluster_rows - 1, cluster_cols - 1) * spacing
    min_separation = extent + 2.0 * spacing
    ring_radius = min_separation / (2.0 * np.sin(np.pi / clusters))

    offsets = np.array(
        [
            (col * spacing, row * spacing)
            for row in range(cluster_rows)
            for col in range(cluster_cols)
        ]
    )
    offsets -= offsets.mean(axis=0)
    positions = []
    for cluster in range(clusters):
        angle = 2.0 * np.pi * cluster / clusters
        center = ring_radius * np.array([np.cos(angle), np.sin(angle)])
        for offset in offsets:
            point = center + offset
            positions.append((float(point[0]), float(point[1])))

    adjacency = np.zeros((count, count), dtype=bool)
    block_adjacency = _grid_adjacency(cluster_rows, cluster_cols)
    for cluster in range(clusters):
        base = cluster * block
        adjacency[base:base + block, base:base + block] = block_adjacency
        # Gateway leg: this cluster's last PoI <-> next cluster's first.
        exit_poi = base + block - 1
        entry_poi = ((cluster + 1) % clusters) * block
        adjacency[exit_poi, entry_poi] = True
        adjacency[entry_poi, exit_poi] = True

    return Topology(
        positions=positions,
        target_shares=_target_shares(count, dirichlet_alpha, rng),
        sensing_radius=sensing_radius,
        speed=speed,
        pause_times=pause_times,
        name=name or (
            f"ring-{clusters}x{cluster_rows}x{cluster_cols}"
        ),
        adjacency=adjacency,
    )
