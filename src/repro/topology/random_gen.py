"""Random topology generation for tests and robustness experiments."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.topology.model import DEFAULT_PAUSE, DEFAULT_SPEED, Topology
from repro.utils.rng import RandomState, as_generator


def random_topology(
    count: int,
    area_side: float = 1000.0,
    sensing_radius: float = 30.0,
    speed: float = DEFAULT_SPEED,
    pause_times=DEFAULT_PAUSE,
    dirichlet_alpha: float = 1.0,
    seed: RandomState = None,
    max_attempts: int = 10_000,
    name: Optional[str] = None,
) -> Topology:
    """Sample ``count`` PoIs uniformly in a square with disjoint discs.

    PoIs are rejected-sampled until pairwise separations exceed
    ``2 * sensing_radius`` plus a 5% safety margin.  Target shares are drawn
    from a symmetric Dirichlet with concentration ``dirichlet_alpha``
    (``alpha = 1`` gives a uniform draw over allocations; larger values
    concentrate near the uniform allocation).

    Raises ``RuntimeError`` when the square cannot accommodate the PoIs
    within ``max_attempts`` placement attempts — a sign the area is too
    small for the requested count and radius.
    """
    if count < 2:
        raise ValueError(f"count must be >= 2, got {count}")
    if area_side <= 0:
        raise ValueError(f"area_side must be > 0, got {area_side}")
    if sensing_radius <= 0:
        raise ValueError(f"sensing_radius must be > 0, got {sensing_radius}")
    if dirichlet_alpha <= 0:
        raise ValueError(
            f"dirichlet_alpha must be > 0, got {dirichlet_alpha}"
        )
    rng = as_generator(seed)
    min_separation = 2.0 * sensing_radius * 1.05
    positions: list = []
    attempts = 0
    while len(positions) < count:
        attempts += 1
        if attempts > max_attempts:
            raise RuntimeError(
                f"could not place {count} PoIs with separation "
                f">{min_separation:.3g} m in a {area_side:.3g} m square "
                f"after {max_attempts} attempts; enlarge the area or "
                "shrink the radius"
            )
        candidate = rng.uniform(0.0, area_side, size=2)
        if all(
            np.hypot(candidate[0] - p[0], candidate[1] - p[1])
            > min_separation
            for p in positions
        ):
            positions.append((float(candidate[0]), float(candidate[1])))
    shares = rng.dirichlet(np.full(count, dirichlet_alpha))
    return Topology(
        positions=positions,
        target_shares=shares,
        sensing_radius=sensing_radius,
        speed=speed,
        pause_times=pause_times,
        name=name or f"random-{count}",
    )
