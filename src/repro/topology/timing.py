"""Construction of the timing matrices ``T_jk`` and ``T_{jk,i}``.

These implement the notation of Section III-A:

* ``T_jk`` — travel time from PoI ``j`` to PoI ``k`` along the straight-line
  path, plus the pause time ``P_k`` at the destination.  ``T_jj = P_j``.
* ``T_{jk,i}`` — time during the ``j -> k`` transition in which PoI ``i`` is
  covered, with the paper's conventions ``T_{jk,j} = 0`` (leaving the origin
  contributes nothing to its own coverage on that transition) and
  ``T_{jk,k} = P_k`` (the destination is credited with its pause time).
  Intermediate PoIs on the path are credited with the chord time their
  sensing disc intersects the path, divided by the travel speed.
"""

from __future__ import annotations

import numpy as np

from repro.geometry.coverage import coverage_fraction
from repro.geometry.segments import Segment


def travel_distance_matrix(positions) -> np.ndarray:
    """Pairwise Euclidean distances between PoI positions."""
    coords = np.asarray([p.as_tuple() for p in positions], dtype=float)
    deltas = coords[:, None, :] - coords[None, :, :]
    return np.sqrt((deltas**2).sum(axis=-1))


def travel_time_matrix(
    positions, speed: float, pause_times: np.ndarray
) -> np.ndarray:
    """Build ``T_jk = d_jk / speed + P_k`` (so ``T_jj = P_j``)."""
    if speed <= 0:
        raise ValueError(f"speed must be > 0, got {speed}")
    distances = travel_distance_matrix(positions)
    return distances / speed + np.asarray(pause_times, dtype=float)[None, :]


def passby_tensor(
    positions,
    sensing_radius: float,
    speed: float,
    pause_times: np.ndarray,
) -> np.ndarray:
    """Build the coverage tensor ``T[j, k, i] = T_{jk,i}``.

    The tensor is dense and of size ``M^3``; for the topology sizes in the
    paper (4-9 PoIs) this is negligible, and even for hundreds of PoIs it
    remains cheap because it is computed once per topology.
    """
    if sensing_radius < 0:
        raise ValueError(f"sensing_radius must be >= 0, got {sensing_radius}")
    if speed <= 0:
        raise ValueError(f"speed must be > 0, got {speed}")
    pause_times = np.asarray(pause_times, dtype=float)
    count = len(positions)
    tensor = np.zeros((count, count, count))
    for j in range(count):
        for k in range(count):
            if j == k:
                # Self-loop: the sensor stays at j and pauses there.
                tensor[j, j, j] = pause_times[j]
                continue
            segment = Segment(positions[j], positions[k])
            travel_time = segment.length() / speed
            for i in range(count):
                if i == j:
                    # Paper convention: T_{jk,j} = 0 for k != j.
                    continue
                if i == k:
                    # Paper convention: the destination is credited with its
                    # pause time only.
                    tensor[j, k, k] = pause_times[k]
                    continue
                fraction = coverage_fraction(
                    segment, positions[i], sensing_radius
                )
                if fraction > 0.0:
                    tensor[j, k, i] = fraction * travel_time
    return tensor


def check_disjoint_pois(positions, sensing_radius: float) -> None:
    """Raise if two PoIs could be covered simultaneously.

    Section III requires the PoIs to be *disjoint*: no sensor position may
    cover two PoIs at once, which holds iff all pairwise distances exceed
    ``2 * sensing_radius``.
    """
    distances = travel_distance_matrix(positions)
    count = distances.shape[0]
    for j in range(count):
        for k in range(j + 1, count):
            if distances[j, k] <= 2.0 * sensing_radius:
                raise ValueError(
                    f"PoIs {j} and {k} are {distances[j, k]:.3g} m apart, "
                    f"within twice the sensing radius "
                    f"{sensing_radius:.3g} m; the paper requires disjoint "
                    "PoIs (no position covers two at once)"
                )
