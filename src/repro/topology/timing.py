"""Construction of the timing matrices ``T_jk`` and ``T_{jk,i}``.

These implement the notation of Section III-A:

* ``T_jk`` — travel time from PoI ``j`` to PoI ``k`` along the straight-line
  path, plus the pause time ``P_k`` at the destination.  ``T_jj = P_j``.
* ``T_{jk,i}`` — time during the ``j -> k`` transition in which PoI ``i`` is
  covered, with the paper's conventions ``T_{jk,j} = 0`` (leaving the origin
  contributes nothing to its own coverage on that transition) and
  ``T_{jk,k} = P_k`` (the destination is credited with its pause time).
  Intermediate PoIs on the path are credited with the chord time their
  sensing disc intersects the path, divided by the travel speed.
"""

from __future__ import annotations

import numpy as np

from repro.geometry.coverage import coverage_fraction
from repro.geometry.segments import Segment


def travel_distance_matrix(positions) -> np.ndarray:
    """Pairwise Euclidean distances between PoI positions."""
    coords = np.asarray([p.as_tuple() for p in positions], dtype=float)
    deltas = coords[:, None, :] - coords[None, :, :]
    return np.sqrt((deltas**2).sum(axis=-1))


def travel_time_matrix(
    positions, speed: float, pause_times: np.ndarray
) -> np.ndarray:
    """Build ``T_jk = d_jk / speed + P_k`` (so ``T_jj = P_j``)."""
    if speed <= 0:
        raise ValueError(f"speed must be > 0, got {speed}")
    distances = travel_distance_matrix(positions)
    return distances / speed + np.asarray(pause_times, dtype=float)[None, :]


def passby_tensor(
    positions,
    sensing_radius: float,
    speed: float,
    pause_times: np.ndarray,
) -> np.ndarray:
    """Build the coverage tensor ``T[j, k, i] = T_{jk,i}``.

    The tensor is dense and of size ``M^3``; for the topology sizes in the
    paper (4-9 PoIs) this is negligible, and even for hundreds of PoIs it
    remains cheap because it is computed once per topology.
    """
    if sensing_radius < 0:
        raise ValueError(f"sensing_radius must be >= 0, got {sensing_radius}")
    if speed <= 0:
        raise ValueError(f"speed must be > 0, got {speed}")
    pause_times = np.asarray(pause_times, dtype=float)
    count = len(positions)
    tensor = np.zeros((count, count, count))
    for j in range(count):
        for k in range(count):
            if j == k:
                # Self-loop: the sensor stays at j and pauses there.
                tensor[j, j, j] = pause_times[j]
                continue
            segment = Segment(positions[j], positions[k])
            travel_time = segment.length() / speed
            for i in range(count):
                if i == j:
                    # Paper convention: T_{jk,j} = 0 for k != j.
                    continue
                if i == k:
                    # Paper convention: the destination is credited with its
                    # pause time only.
                    tensor[j, k, k] = pause_times[k]
                    continue
                fraction = coverage_fraction(
                    segment, positions[i], sensing_radius
                )
                if fraction > 0.0:
                    tensor[j, k, i] = fraction * travel_time
    return tensor


def support_passby_entries(
    positions,
    sensing_radius: float,
    speed: float,
    pause_times: np.ndarray,
    adjacency: np.ndarray,
):
    """Nonzero pass-by entries ``(j, k, i, T_{jk,i})`` on supported legs.

    The sparse-topology counterpart of :func:`passby_tensor`: instead of
    the dense ``O(M^3)`` tensor (8+ GB at ``M = 1024``) it returns four
    flat arrays listing only the nonzero entries of legs allowed by the
    boolean ``adjacency`` mask, with the same conventions —
    ``T_{jj,j} = P_j``, ``T_{jk,j} = 0``, ``T_{jk,k} = P_k``, and chord
    time for intermediate PoIs.  The per-leg chord geometry replicates
    :func:`~repro.geometry.coverage.chord_through_disc` step for step,
    vectorized over candidate PoIs.
    """
    if sensing_radius < 0:
        raise ValueError(f"sensing_radius must be >= 0, got {sensing_radius}")
    if speed <= 0:
        raise ValueError(f"speed must be > 0, got {speed}")
    pause_times = np.asarray(pause_times, dtype=float)
    coords = np.asarray([p.as_tuple() for p in positions], dtype=float)
    count = coords.shape[0]
    adjacency = np.asarray(adjacency, dtype=bool)
    if adjacency.shape != (count, count):
        raise ValueError(
            f"adjacency must have shape {(count, count)}, "
            f"got {adjacency.shape}"
        )
    j_parts = []
    k_parts = []
    i_parts = []
    t_parts = []
    # Self-loops: the sensor pauses at j, covering only j.
    diagonal = np.nonzero(np.diag(adjacency))[0]
    j_parts.append(diagonal)
    k_parts.append(diagonal)
    i_parts.append(diagonal)
    t_parts.append(pause_times[diagonal])
    indices = np.arange(count)
    radius_sq = sensing_radius * sensing_radius
    legs = np.argwhere(adjacency & ~np.eye(count, dtype=bool))
    for j, k in legs:
        start = coords[j]
        delta = coords[k] - start
        length_sq = float(delta @ delta)
        length = np.sqrt(length_sq)
        # chord_through_disc, vectorized: unclamped line projection,
        # clamped segment distance, then the Pythagoras half-chord.
        offsets = coords - start[None, :]
        t_line = (offsets @ delta) / length_sq
        closest = np.clip(t_line, 0.0, 1.0)[:, None] * delta[None, :]
        seg_dist_sq = ((offsets - closest) ** 2).sum(axis=1)
        cross = delta[0] * offsets[:, 1] - delta[1] * offsets[:, 0]
        line_dist_sq = cross * cross / length_sq
        half = np.sqrt(np.maximum(radius_sq - line_dist_sq, 0.0)) / length
        fractions = (
            np.minimum(1.0, t_line + half) - np.maximum(0.0, t_line - half)
        )
        covered = (
            (seg_dist_sq <= radius_sq)
            & (line_dist_sq <= radius_sq)
            & (fractions > 0.0)
            & (indices != j)
            & (indices != k)
        )
        hit = np.nonzero(covered)[0]
        hit_count = hit.size + 1  # + the destination's pause entry
        j_parts.append(np.full(hit_count, j))
        k_parts.append(np.full(hit_count, k))
        i_parts.append(np.concatenate((hit, [k])))
        t_parts.append(
            np.concatenate(
                (fractions[hit] * (length / speed), [pause_times[k]])
            )
        )
    return (
        np.concatenate(j_parts).astype(np.intp),
        np.concatenate(k_parts).astype(np.intp),
        np.concatenate(i_parts).astype(np.intp),
        np.concatenate(t_parts).astype(float),
    )


def check_disjoint_pois(positions, sensing_radius: float) -> None:
    """Raise if two PoIs could be covered simultaneously.

    Section III requires the PoIs to be *disjoint*: no sensor position may
    cover two PoIs at once, which holds iff all pairwise distances exceed
    ``2 * sensing_radius``.
    """
    distances = travel_distance_matrix(positions)
    close = np.triu(distances <= 2.0 * sensing_radius, k=1)
    if close.any():
        j, k = np.argwhere(close)[0]
        raise ValueError(
            f"PoIs {j} and {k} are {distances[j, k]:.3g} m apart, "
            f"within twice the sensing radius "
            f"{sensing_radius:.3g} m; the paper requires disjoint "
            "PoIs (no position covers two at once)"
        )
