"""The :class:`Topology` model: PoIs, target allocation, and derived timing."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.geometry.coverage import chord_through_disc
from repro.geometry.points import Point, PointLike, as_point
from repro.geometry.segments import Segment
from repro.topology.timing import (
    check_disjoint_pois,
    passby_tensor,
    support_passby_entries,
    travel_distance_matrix,
    travel_time_matrix,
)
from repro.utils.validation import check_distribution, check_positive

#: Default sensor travel speed, meters/second.
DEFAULT_SPEED = 10.0
#: Default pause time at a PoI upon arrival, seconds.
DEFAULT_PAUSE = 10.0


class LegCoverageTable:
    """Chord fractions of every ordered travel leg, in CSR layout.

    For the leg ``origin -> destination`` (``origin != destination``) the
    straight-line path crosses the sensing discs of some PoIs; each
    crossing is one chord ``(poi, t_in, t_out)`` with ``t`` the path
    parameter in ``[0, 1]``.  The geometry never changes between
    transitions, so the simulation engines index this table instead of
    re-intersecting segments:

    * ``counts[L]`` / ``offsets[L]`` — number of chords and the start of
      the leg's slice in the flat arrays, for the flattened leg index
      ``L = origin * size + destination`` (diagonal legs have no chords);
    * ``poi`` / ``t_in`` / ``t_out`` — the flat chord arrays, ordered by
      leg and, within a leg, by ascending PoI index.

    Chords are computed by the same scalar
    :func:`~repro.geometry.coverage.chord_through_disc` the per-step
    reference engine historically called, so cached and uncached values
    agree bit for bit.
    """

    __slots__ = ("size", "counts", "offsets", "poi", "t_in", "t_out")

    def __init__(self, positions: Sequence[Point], radius: float) -> None:
        size = len(positions)
        counts = np.zeros(size * size, dtype=np.int64)
        poi_ids: List[int] = []
        t_ins: List[float] = []
        t_outs: List[float] = []
        for origin in range(size):
            for destination in range(size):
                if origin == destination:
                    continue
                segment = Segment(positions[origin], positions[destination])
                leg = origin * size + destination
                for poi in range(size):
                    chord = chord_through_disc(
                        segment, positions[poi], radius
                    )
                    if chord is not None:
                        counts[leg] += 1
                        poi_ids.append(poi)
                        t_ins.append(chord[0])
                        t_outs.append(chord[1])
        self.size = size
        self.counts = counts
        self.offsets = np.concatenate(([0], np.cumsum(counts)[:-1]))
        self.poi = np.asarray(poi_ids, dtype=np.int64)
        self.t_in = np.asarray(t_ins, dtype=float)
        self.t_out = np.asarray(t_outs, dtype=float)

    def leg(self, origin: int, destination: int) -> List[tuple]:
        """Chords of one leg as ``(poi, t_in, t_out)`` tuples."""
        flat = origin * self.size + destination
        lo = int(self.offsets[flat])
        hi = lo + int(self.counts[flat])
        return list(
            zip(
                self.poi[lo:hi].tolist(),
                self.t_in[lo:hi].tolist(),
                self.t_out[lo:hi].tolist(),
            )
        )

    def __getstate__(self):
        """Slot dict; large chord arrays become shared-memory handles
        when a :func:`repro.exec.shm.transport_session` is active (the
        process backend's shm transport), and plain arrays otherwise —
        ordinary pickling is byte-for-byte unchanged."""
        from repro.exec.shm import share_array

        return {
            slot: share_array(getattr(self, slot))
            for slot in self.__slots__
        }

    def __setstate__(self, state):
        from repro.exec.shm import resolve_shared

        for slot, value in state.items():
            setattr(self, slot, resolve_shared(value))


@dataclass(frozen=True)
class PoI:
    """A point of interest: a location plus its target coverage share."""

    index: int
    position: Point
    target_share: float

    def __post_init__(self) -> None:
        if self.index < 0:
            raise ValueError(f"index must be >= 0, got {self.index}")
        if not 0.0 <= self.target_share <= 1.0:
            raise ValueError(
                f"target_share must lie in [0, 1], got {self.target_share}"
            )


class Topology:
    """Physical layout of the PoIs and the sensor's kinematic parameters.

    Parameters
    ----------
    positions:
        PoI locations (meters).  At least two, pairwise more than
        ``2 * sensing_radius`` apart (the paper's disjointness requirement).
    target_shares:
        The prescribed coverage-time allocation ``Phi`` (sums to one).
    sensing_radius:
        Sensor coverage range ``r`` (meters).
    speed:
        Constant travel speed (meters/second).
    pause_times:
        Per-PoI pause time ``P_k`` on arrival (seconds); a scalar is
        broadcast to all PoIs.
    name:
        Optional human-readable label used in reports.
    adjacency:
        Optional boolean ``M x M`` mask of feasible transitions (sparse
        road networks, city grids).  The diagonal is always forced
        feasible (a sensor may pause in place), and the mask must be
        strongly connected so a support-respecting chain can be ergodic.
        ``None`` (the default, and the paper's setting) means every leg
        is feasible.

    The derived matrices (Section III-A) are exposed as read-only
    properties:

    * :attr:`travel_times` — ``T_jk`` including the destination pause.
    * :attr:`passby` — the tensor ``T[j, k, i] = T_{jk,i}`` (dense
      ``O(M^3)``; built lazily so large sparse topologies never pay for
      it — they use :meth:`passby_entries` instead).
    * :attr:`distances` — raw pairwise distances ``d_jk``.
    """

    def __init__(
        self,
        positions: Sequence[PointLike],
        target_shares: Sequence[float],
        sensing_radius: float,
        speed: float = DEFAULT_SPEED,
        pause_times=DEFAULT_PAUSE,
        name: Optional[str] = None,
        adjacency: Optional[np.ndarray] = None,
    ) -> None:
        points = [as_point(p) for p in positions]
        if len(points) < 2:
            raise ValueError(
                f"a topology needs at least 2 PoIs, got {len(points)}"
            )
        shares = check_distribution(
            "target_shares", np.asarray(target_shares, dtype=float),
            size=len(points),
        )
        self._sensing_radius = check_positive("sensing_radius", sensing_radius)
        self._speed = check_positive("speed", speed)
        pause_array = np.broadcast_to(
            np.asarray(pause_times, dtype=float), (len(points),)
        ).copy()
        if np.any(pause_array <= 0):
            raise ValueError("pause_times must all be > 0")
        check_disjoint_pois(points, self._sensing_radius)

        self._pois: List[PoI] = [
            PoI(index=i, position=p, target_share=float(s))
            for i, (p, s) in enumerate(zip(points, shares))
        ]
        self._pause_times = pause_array
        self._name = name or f"topology-{len(points)}poi"
        self._distances = travel_distance_matrix(points)
        self._travel_times = travel_time_matrix(
            points, self._speed, pause_array
        )
        self._adjacency = self._check_adjacency(adjacency, len(points))
        # The dense O(M^3) pass-by tensor is built lazily (see passby).
        self._passby_cache: Optional[np.ndarray] = None
        self._entries_cache = None

    @staticmethod
    def _check_adjacency(adjacency, count: int) -> Optional[np.ndarray]:
        """Validate the feasible-transition mask (or pass ``None`` through).

        Forces the diagonal feasible and requires strong connectivity —
        an unreachable (or non-returning) PoI makes every
        support-respecting chain non-ergodic, which downstream solvers
        would only discover as a confusing singular system.
        """
        if adjacency is None:
            return None
        adjacency = np.array(adjacency, dtype=bool)
        if adjacency.shape != (count, count):
            raise ValueError(
                f"adjacency must have shape {(count, count)}, "
                f"got {adjacency.shape}"
            )
        np.fill_diagonal(adjacency, True)
        for mask in (adjacency, adjacency.T):
            reachable = np.zeros(count, dtype=bool)
            reachable[0] = True
            frontier = reachable
            while frontier.any():
                expanded = mask[frontier].any(axis=0) & ~reachable
                reachable |= expanded
                frontier = expanded
            if not reachable.all():
                missing = np.nonzero(~reachable)[0]
                raise ValueError(
                    "adjacency is not strongly connected: PoIs "
                    f"{missing[:5].tolist()} are unreachable from PoI 0 "
                    "(or cannot return); no support-respecting chain can "
                    "be ergodic"
                )
        return adjacency

    # ----------------------------------------------------------------- #
    # Basic attributes
    # ----------------------------------------------------------------- #

    @property
    def name(self) -> str:
        """Human-readable label."""
        return self._name

    @property
    def size(self) -> int:
        """Number of PoIs ``M``."""
        return len(self._pois)

    def __len__(self) -> int:
        return self.size

    @property
    def pois(self) -> List[PoI]:
        """The PoIs, in index order."""
        return list(self._pois)

    @property
    def positions(self) -> List[Point]:
        """PoI locations, in index order."""
        return [poi.position for poi in self._pois]

    @property
    def target_shares(self) -> np.ndarray:
        """The prescribed allocation ``Phi`` (copy)."""
        return np.array([poi.target_share for poi in self._pois])

    @property
    def sensing_radius(self) -> float:
        """Sensing range ``r`` in meters."""
        return self._sensing_radius

    @property
    def speed(self) -> float:
        """Travel speed in meters/second."""
        return self._speed

    @property
    def pause_times(self) -> np.ndarray:
        """Per-PoI pause times (copy)."""
        return self._pause_times.copy()

    # ----------------------------------------------------------------- #
    # Derived timing quantities
    # ----------------------------------------------------------------- #

    @property
    def distances(self) -> np.ndarray:
        """Pairwise straight-line distances ``d_jk`` (copy)."""
        return self._distances.copy()

    @property
    def travel_times(self) -> np.ndarray:
        """Transition durations ``T_jk = d_jk / speed + P_k`` (copy)."""
        return self._travel_times.copy()

    @property
    def adjacency(self) -> Optional[np.ndarray]:
        """Feasible-transition mask (copy), or ``None`` when unrestricted."""
        return None if self._adjacency is None else self._adjacency.copy()

    def support_matrix(self) -> Optional[np.ndarray]:
        """Alias of :attr:`adjacency` under the optimizer's vocabulary."""
        return self.adjacency

    @property
    def passby(self) -> np.ndarray:
        """Coverage tensor ``T[j, k, i] = T_{jk,i}`` (copy).

        Dense ``O(M^3)`` — built lazily on first access and cached, so
        topologies that only ever use the sparse entry list
        (:meth:`passby_entries`) never allocate it.
        """
        return self._dense_passby().copy()

    def _dense_passby(self) -> np.ndarray:
        if self._passby_cache is None:
            self._passby_cache = passby_tensor(
                self.positions, self._sensing_radius, self._speed,
                self._pause_times,
            )
        return self._passby_cache

    def passby_entries(self):
        """Nonzero pass-by entries ``(j, k, i, T_jki)`` on supported legs.

        The compact pass-by representation for sparse topologies (see
        :func:`~repro.topology.timing.support_passby_entries`); requires
        an ``adjacency`` mask.  Cached after the first call.
        """
        if self._adjacency is None:
            raise ValueError(
                "passby_entries requires a topology with an adjacency "
                "mask; dense topologies use the passby tensor"
            )
        if self._entries_cache is None:
            self._entries_cache = support_passby_entries(
                self.positions, self._sensing_radius, self._speed,
                self._pause_times, self._adjacency,
            )
        return self._entries_cache

    def chord_table(self) -> LegCoverageTable:
        """Per-leg chord fractions (see :class:`LegCoverageTable`).

        Built lazily on first use — the ``O(M^3)`` disc intersections are
        the expensive part of starting a simulation — and cached on the
        instance, so repeated simulations of one topology (and fan-out
        workers receiving a pickled copy of an already-warmed topology)
        pay for the geometry once.
        """
        table = getattr(self, "_chord_table", None)
        if table is None:
            table = LegCoverageTable(
                self.positions, self._sensing_radius
            )
            self._chord_table = table
        return table

    def intermediate_pois(self, origin: int, destination: int) -> List[int]:
        """PoIs covered mid-travel on the ``origin -> destination`` leg.

        These are indices ``i`` distinct from both endpoints with
        ``T_{jk,i} > 0`` — the geographically induced side-effect coverage
        the paper emphasizes.
        """
        if origin == destination:
            return []
        row = self._dense_passby()[origin, destination]
        return [
            i
            for i in range(self.size)
            if i not in (origin, destination) and row[i] > 0.0
        ]

    def __getstate__(self):
        """Instance dict; the derived tensors (travel times, distances,
        adjacency, cached pass-by/entries) become shared-memory handles
        when a :func:`repro.exec.shm.transport_session` is active.
        Without a session this returns the plain dict, so serial/thread
        pickling and :mod:`copy` semantics are unchanged."""
        from repro.exec.shm import active_session, share_array

        if active_session() is None:
            return self.__dict__
        state = {}
        for key, value in self.__dict__.items():
            if isinstance(value, tuple):
                value = tuple(share_array(v) for v in value)
            else:
                value = share_array(value)
            state[key] = value
        return state

    def __setstate__(self, state):
        from repro.exec.shm import TensorHandle, resolve_shared

        restored = {}
        for key, value in state.items():
            if isinstance(value, tuple) and any(
                isinstance(v, TensorHandle) for v in value
            ):
                value = tuple(resolve_shared(v) for v in value)
            else:
                value = resolve_shared(value)
            restored[key] = value
        self.__dict__.update(restored)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Topology(name={self._name!r}, size={self.size}, "
            f"r={self._sensing_radius}, speed={self._speed})"
        )
