"""Analysis utilities on top of the optimizer and the Markov substrate.

* :mod:`repro.analysis.pareto` — sweep the weight ratio to trace the
  coverage/exposure tradeoff frontier (the operator-facing view of the
  paper's Section VI-B results).
* :mod:`repro.analysis.mixing` — spectral diagnostics of a schedule:
  relaxation time, mixing-time bounds, Kemeny constant.
* :mod:`repro.analysis.convergence` — plateau detection and convergence
  summaries for optimization traces.
"""

from repro.analysis.pareto import (
    TradeoffPoint,
    pareto_filter,
    tradeoff_curve,
)
from repro.analysis.mixing import (
    kemeny_constant,
    mixing_time_bound,
    relaxation_time,
)
from repro.analysis.convergence import (
    ConvergenceSummary,
    iterations_to_tolerance,
    summarize_trace,
)
from repro.analysis.sensitivity import (
    WeightSensitivity,
    verify_envelope,
    weight_sensitivity,
)

__all__ = [
    "TradeoffPoint",
    "tradeoff_curve",
    "pareto_filter",
    "relaxation_time",
    "mixing_time_bound",
    "kemeny_constant",
    "ConvergenceSummary",
    "summarize_trace",
    "iterations_to_tolerance",
    "WeightSensitivity",
    "weight_sensitivity",
    "verify_envelope",
]
