"""Spectral diagnostics of a coverage schedule.

Useful sanity checks on optimized schedules: a chain that mixes slowly
needs proportionally longer simulations (and real deployments!) before
its long-run guarantees bind.  The Table IV ``beta = 0`` row is the
canonical example: its near-frozen schedule has a huge relaxation time,
which is why short simulations miss its analytic metrics.
"""

from __future__ import annotations

import numpy as np

from repro.markov.fundamental import fundamental_and_stationary
from repro.utils.validation import check_square


def _sorted_eigen_moduli(matrix: np.ndarray) -> np.ndarray:
    eigenvalues = np.linalg.eigvals(matrix)
    return np.sort(np.abs(eigenvalues))[::-1]


def relaxation_time(matrix: np.ndarray) -> float:
    """``1 / (1 - |lambda_2|)`` — the chain's slowest decay timescale.

    Returns ``inf`` when the second-largest eigenvalue modulus is 1
    (periodic or reducible chains).
    """
    matrix = check_square("matrix", matrix)
    moduli = _sorted_eigen_moduli(matrix)
    if moduli.size < 2:
        return 1.0
    gap = 1.0 - moduli[1]
    if gap <= 1e-15:
        return float("inf")
    return float(1.0 / gap)


def mixing_time_bound(
    matrix: np.ndarray, accuracy: float = 0.25
) -> float:
    """Standard upper bound on the total-variation mixing time.

    ``t_mix(eps) <= log(1 / (eps * pi_min)) * t_rel`` for reversible
    chains; for non-reversible chains this is a heuristic estimate of the
    same order, which is how it should be used (a simulation-length
    guide, not a certificate).
    """
    if not 0.0 < accuracy < 1.0:
        raise ValueError(f"accuracy must lie in (0, 1), got {accuracy}")
    matrix = check_square("matrix", matrix)
    _, pi = fundamental_and_stationary(matrix)
    t_rel = relaxation_time(matrix)
    if not np.isfinite(t_rel):
        return float("inf")
    return float(np.log(1.0 / (accuracy * pi.min())) * t_rel)


def kemeny_constant(matrix: np.ndarray) -> float:
    """Kemeny's constant ``K = sum_j pi_j R_ij`` (independent of ``i``).

    The expected time to reach a stationary-distributed target from
    anywhere — a single-number summary of how quickly the schedule
    reaches "a typical place".  Computed as ``trace(Z) `` via the
    fundamental matrix (Kemeny-Snell), using the convention that counts
    the step to a random target, i.e. ``K = trace(Z) - 1 + 1 = trace(Z)``
    with the self-visit excluded giving ``trace(Z) - 1``; we return the
    hitting-time form ``trace(Z) - 1``.
    """
    matrix = check_square("matrix", matrix)
    z, _ = fundamental_and_stationary(matrix)
    return float(np.trace(z) - 1.0)
