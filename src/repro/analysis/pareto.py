"""Coverage/exposure tradeoff frontier.

The paper presents the tradeoff as tables over a handful of ``alpha:beta``
ratios (Tables I/II/IV).  For an operator the more useful artifact is the
whole frontier: every achievable ``(Delta C, E-bar)`` pair as the weight
ratio sweeps from exposure-dominant to coverage-dominant.  This module
traces that curve with the same warm-started multi-start strategy the
table harness uses, and filters it to its Pareto-efficient subset.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.core.cost import CostWeights, CoverageCost
from repro.core.multistart import optimize_multistart
from repro.core.perturbed import PerturbedOptions, optimize_perturbed
from repro.core.state import ChainState
from repro.topology.model import Topology


@dataclass(frozen=True)
class TradeoffPoint:
    """One optimized point of the coverage/exposure frontier."""

    beta: float
    delta_c: float
    e_bar: float
    mean_travel: float
    matrix: np.ndarray

    def dominates(self, other: "TradeoffPoint", tol: float = 0.0) -> bool:
        """Whether this point is at least as good in both metrics and
        strictly better in one."""
        no_worse = (
            self.delta_c <= other.delta_c + tol
            and self.e_bar <= other.e_bar + tol
        )
        better = (
            self.delta_c < other.delta_c - tol
            or self.e_bar < other.e_bar - tol
        )
        return no_worse and better


def tradeoff_curve(
    topology: Topology,
    betas: Optional[Sequence[float]] = None,
    alpha: float = 1.0,
    iterations: int = 300,
    random_starts: int = 1,
    seed: int = 0,
) -> List[TradeoffPoint]:
    """Trace the tradeoff frontier by sweeping ``beta`` downward.

    Each point is optimized with the multi-start portfolio plus a warm
    start from the previous point (continuation), exactly like the
    Table I/II harness.  ``betas`` defaults to a geometric ladder from 1
    to 1e-7.
    """
    if betas is None:
        betas = np.geomspace(1.0, 1e-7, 8)
    betas = [float(b) for b in betas]
    if any(b < 0 for b in betas):
        raise ValueError("betas must be non-negative")

    points: List[TradeoffPoint] = []
    metrics = CoverageCost(topology, CostWeights())
    distances = topology.distances
    previous: Optional[np.ndarray] = None
    for index, beta in enumerate(betas):
        cost = CoverageCost(
            topology, CostWeights(alpha=alpha, beta=beta)
        )
        options = PerturbedOptions(
            max_iterations=iterations,
            trisection_rounds=18,
            stall_limit=iterations + 1,
            record_history=False,
        )
        result = optimize_multistart(
            cost, random_starts=random_starts,
            seed=seed + 101 * index, options=options,
        ).best
        if previous is not None:
            warm = optimize_perturbed(
                cost, initial=previous, seed=seed + 101 * index + 7,
                options=options,
            )
            if warm.best_u_eps < result.best_u_eps:
                result = warm
        matrix = result.best_matrix
        state = ChainState.from_matrix(matrix)
        travel = float(
            state.pi @ (state.p * distances).sum(axis=1)
        )
        points.append(
            TradeoffPoint(
                beta=beta,
                delta_c=metrics.delta_c(state),
                e_bar=metrics.e_bar(state),
                mean_travel=travel,
                matrix=matrix,
            )
        )
        previous = matrix
    return points


def pareto_filter(
    points: Sequence[TradeoffPoint], tol: float = 1e-12
) -> List[TradeoffPoint]:
    """Return the Pareto-efficient subset, sorted by ``delta_c``.

    A point survives iff no other point dominates it (within ``tol``).
    """
    survivors = [
        p for p in points
        if not any(q.dominates(p, tol) for q in points if q is not p)
    ]
    return sorted(survivors, key=lambda p: p.delta_c)


# --------------------------------------------------------------------- #
# Generic minimization fronts (plain coordinate arrays)
# --------------------------------------------------------------------- #
#
# The sweep harness aggregates thousands of streamed cells into
# per-family fronts; those cells carry plain ``(Delta C, E-bar)`` pairs
# rather than TradeoffPoint objects, so the front arithmetic below works
# on ``(n, d)`` coordinate arrays directly (all objectives minimized).


def dominates_point(a, b, tol: float = 0.0) -> bool:
    """Whether ``a`` dominates ``b``: no worse in every coordinate
    (within ``tol``) and strictly better (beyond ``tol``) in at least
    one.  Antisymmetric for any ``tol >= 0``."""
    if tol < 0:
        raise ValueError(f"tol must be >= 0, got {tol}")
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    if a.shape != b.shape or a.ndim != 1:
        raise ValueError(
            f"points must share one coordinate axis, got {a.shape} "
            f"vs {b.shape}"
        )
    return bool(np.all(a <= b + tol) and np.any(a < b - tol))


def pareto_front_mask(points, tol: float = 0.0) -> np.ndarray:
    """Boolean mask of the non-dominated rows of ``(n, d)`` ``points``.

    Vectorized all-pairs dominance; ties (value-identical rows) all
    survive, since neither dominates the other.
    """
    if tol < 0:
        raise ValueError(f"tol must be >= 0, got {tol}")
    pts = np.asarray(points, dtype=float)
    if pts.size == 0:
        return np.zeros(len(pts), dtype=bool)
    if pts.ndim != 2:
        raise ValueError(f"points must be (n, d), got shape {pts.shape}")
    # dominated[i, j]: point j dominates point i
    no_worse = np.all(pts[None, :, :] <= pts[:, None, :] + tol, axis=2)
    better = np.any(pts[None, :, :] < pts[:, None, :] - tol, axis=2)
    return ~(no_worse & better).any(axis=1)


def pareto_front_indices(points, tol: float = 0.0) -> np.ndarray:
    """Indices of the Pareto-efficient rows, sorted by coordinates
    (then original index, for a deterministic order under ties)."""
    pts = np.asarray(points, dtype=float)
    mask = pareto_front_mask(pts, tol)
    indices = np.nonzero(mask)[0]
    if len(indices) == 0:
        return indices
    keys = tuple(pts[indices, axis]
                 for axis in range(pts.shape[1] - 1, -1, -1))
    return indices[np.lexsort((indices,) + keys)]


def merge_pareto_fronts(fronts: Sequence, tol: float = 0.0) -> np.ndarray:
    """Front of the union of several per-shard fronts.

    With ``tol = 0`` dominance is a strict partial order, so filtering
    the concatenation of per-shard fronts yields exactly the front of
    the union of the underlying point sets — shards can be folded
    incrementally without ever holding every point (the property tests
    in ``tests/analysis`` assert this).  Returns the ``(k, d)`` front
    coordinates.
    """
    stacked = [np.asarray(front, dtype=float) for front in fronts]
    stacked = [front for front in stacked if front.size]
    if not stacked:
        return np.zeros((0, 2), dtype=float)
    if any(front.ndim != 2 for front in stacked):
        raise ValueError("every front must be an (n, d) array")
    pool = np.concatenate(stacked, axis=0)
    return pool[pareto_front_indices(pool, tol)]
