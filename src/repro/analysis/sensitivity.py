"""Weight sensitivities of the optimal cost (envelope theorem).

At a (local) optimum ``P*`` of ``U_eps(P; alpha, beta)``, the envelope
theorem gives the derivative of the optimal value with respect to the
weights directly from the partial derivatives at the optimum — the
inner re-optimization contributes nothing to first order:

    dU*/dalpha = ∂U/∂alpha |_{P*} = ΔC(P*) / 2
    dU*/dbeta  = ∂U/∂beta  |_{P*} = Ē(P*)² / 2

These are the *shadow prices* of the weights: how much total cost a unit
of extra emphasis on coverage (or exposure) buys at the current
operating point.  Operators reading the Pareto frontier
(`repro.analysis.pareto`) use the ratio of the two to know where on the
frontier a weight tweak will move them.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.cost import CostWeights, CoverageCost


@dataclass(frozen=True)
class WeightSensitivity:
    """Envelope-theorem sensitivities at one matrix.

    ``d_alpha``/``d_beta`` are the first-order changes of the cost per
    unit weight change; ``exchange_rate`` is ``d_alpha / d_beta`` — how
    many units of beta-emphasis one unit of alpha-emphasis is worth at
    this operating point (``inf`` when the exposure term is zero).
    """

    d_alpha: float
    d_beta: float

    @property
    def exchange_rate(self) -> float:
        """``d_alpha / d_beta``; ``inf`` when ``d_beta`` vanishes."""
        if self.d_beta <= 0.0:
            return float("inf")
        return self.d_alpha / self.d_beta


def weight_sensitivity(
    cost: CoverageCost, matrix: np.ndarray
) -> WeightSensitivity:
    """Shadow prices of ``alpha`` and ``beta`` at ``matrix``.

    Meaningful as *optimal-value* derivatives only when ``matrix`` is
    (approximately) optimal for ``cost``'s weights; at any other matrix
    they are plain partial derivatives of ``U`` in the weights.
    Scalar-weight costs only (the paper's Section VI setting).
    """
    for name in ("alpha", "beta"):
        value = getattr(cost.weights, name)
        if np.ndim(value) != 0:
            raise ValueError(
                f"weight_sensitivity requires scalar {name}; per-PoI "
                "weights have one shadow price per PoI"
            )
    breakdown = cost.evaluate(matrix)
    return WeightSensitivity(
        d_alpha=0.5 * breakdown.delta_c,
        d_beta=0.5 * breakdown.e_bar**2,
    )


def verify_envelope(
    topology,
    alpha: float,
    beta: float,
    matrix: np.ndarray,
    delta: float = 1e-4,
) -> dict:
    """Finite-difference check of the envelope derivatives at ``matrix``.

    Evaluates ``U`` at ``(alpha ± delta, beta)`` and ``(alpha, beta ±
    delta)`` **holding the matrix fixed** and compares the central
    differences with the analytic sensitivities.  Returns a dict with
    both for reporting; used by tests.
    """
    def value(a, b):
        return CoverageCost(
            topology, CostWeights(alpha=a, beta=b)
        ).value(matrix)

    analytic = weight_sensitivity(
        CoverageCost(topology, CostWeights(alpha=alpha, beta=beta)),
        matrix,
    )
    numeric_alpha = (
        value(alpha + delta, beta) - value(alpha - delta, beta)
    ) / (2 * delta)
    numeric_beta = (
        value(alpha, beta + delta) - value(alpha, beta - delta)
    ) / (2 * delta)
    return {
        "analytic_alpha": analytic.d_alpha,
        "numeric_alpha": numeric_alpha,
        "analytic_beta": analytic.d_beta,
        "numeric_beta": numeric_beta,
    }
