"""Convergence summaries of optimization traces.

Turns the per-iteration cost traces (Figs. 3-5) into the numbers one
actually compares: where the run plateaued, how fast it got within a
tolerance of its final value, and how much of the total improvement the
first iterations delivered.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np


@dataclass(frozen=True)
class ConvergenceSummary:
    """Summary statistics of one cost trace."""

    initial: float
    final: float
    best: float
    total_improvement: float
    iterations: int
    iterations_to_half: Optional[int]
    iterations_to_tenth: Optional[int]
    plateau_iteration: Optional[int]


def iterations_to_tolerance(
    trace: np.ndarray, fraction: float
) -> Optional[int]:
    """First iteration whose *remaining* improvement is below ``fraction``.

    Remaining improvement at iteration ``t`` is
    ``(trace[t] - best) / (trace[0] - best)``.  Returns ``None`` when the
    trace never improves.
    """
    trace = np.asarray(trace, dtype=float)
    if trace.size == 0:
        return None
    if not 0.0 < fraction < 1.0:
        raise ValueError(f"fraction must lie in (0, 1), got {fraction}")
    best = trace.min()
    total = trace[0] - best
    if total <= 0.0:
        return None
    remaining = (trace - best) / total
    below = np.nonzero(remaining <= fraction)[0]
    return int(below[0]) if below.size else None


def detect_plateau(
    trace: np.ndarray, window: int = 20, rtol: float = 1e-6
) -> Optional[int]:
    """First iteration after which the trace improves by less than
    ``rtol`` (relative to its current scale) over any ``window``.

    Returns ``None`` when no plateau is reached within the trace.
    """
    trace = np.asarray(trace, dtype=float)
    if window < 1:
        raise ValueError(f"window must be >= 1, got {window}")
    if trace.size <= window:
        return None
    for start in range(trace.size - window):
        improvement = trace[start] - trace[start + window]
        scale = max(1.0, abs(trace[start]))
        if improvement <= rtol * scale:
            return start
    return None


def summarize_trace(
    trace: np.ndarray, plateau_window: int = 20,
    plateau_rtol: float = 1e-6,
) -> ConvergenceSummary:
    """Build a :class:`ConvergenceSummary` for a cost trace."""
    trace = np.asarray(trace, dtype=float)
    if trace.size == 0:
        raise ValueError("trace must be non-empty")
    best = float(trace.min())
    return ConvergenceSummary(
        initial=float(trace[0]),
        final=float(trace[-1]),
        best=best,
        total_improvement=float(trace[0] - best),
        iterations=int(trace.size),
        iterations_to_half=iterations_to_tolerance(trace, 0.5),
        iterations_to_tenth=iterations_to_tolerance(trace, 0.1),
        plateau_iteration=detect_plateau(
            trace, window=plateau_window, rtol=plateau_rtol
        ),
    )
