"""repro — stochastic steepest-descent optimization of multi-objective
mobile sensor coverage.

A full reproduction of Ma, Yau, Yip, Rao, Chen, *Stochastic
Steepest-Descent Optimization of Multiple-Objective Mobile Sensor
Coverage* (ICDCS 2010): a mobile sensor's visits to points of interest are
scheduled by an ergodic Markov chain whose transition probabilities are
optimized — in the space of *all* transition matrices — for a tunable
tradeoff between coverage-time accuracy, exposure time, energy use, and
schedule entropy.

Quickstart::

    from repro import (CostWeights, CoverageCost, optimize_perturbed,
                       paper_topology, simulate_schedule)

    topology = paper_topology(1)
    cost = CoverageCost(topology, CostWeights(alpha=1.0, beta=1.0))
    result = optimize_perturbed(cost, seed=0)
    sim = simulate_schedule(topology, result.matrix, transitions=20_000,
                            seed=1)
    print(result.summary())
    print(sim.coverage_shares)
"""

from repro.core import (
    OPTIMIZER_REGISTRY,
    TERM_REGISTRY,
    AdaptiveOptions,
    BasicDescentOptions,
    ChainState,
    CostBreakdown,
    CostSum,
    CostTerm,
    CostWeights,
    CoverageCost,
    IterationRecord,
    KCoverageShortfallTerm,
    MirrorOptions,
    MultiRayBatch,
    MultiStartResult,
    OptimizationResult,
    OptimizerOptions,
    OptimizerSpec,
    PeriodicityTerm,
    PerturbedOptions,
    ScaledTerm,
    SearchOptions,
    TermBatch,
    TermSpec,
    WorstExposureTerm,
    build_term,
    coerce_options,
    damped_baseline_matrix,
    dirichlet_matrix,
    lockstep_multistart,
    normalize_extra_terms,
    optimize,
    optimize_adaptive,
    optimize_basic,
    optimize_mirror,
    optimize_multistart,
    optimize_perturbed,
    paper_random_matrix,
    uniform_matrix,
)
from repro.exec import (
    BACKENDS,
    Executor,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    get_executor,
    using_executor,
)
from repro.markov import MarkovChain
from repro.simulation import (
    SIMULATOR_REGISTRY,
    SimulationOptions,
    SimulationResult,
    SimulatorSpec,
    TeamOptions,
    simulate,
    simulate_schedule,
)
from repro.topology import (
    PAPER_TOPOLOGY_IDS,
    SCALABLE_FAMILIES,
    PoI,
    Topology,
    city_grid_topology,
    grid_topology,
    line_topology,
    paper_topology,
    random_topology,
    ring_of_grids_topology,
    scalable_topology,
)
from repro.baselines import (
    max_entropy_matrix,
    metropolis_hastings_matrix,
    nearest_neighbor_matrix,
    proportional_matrix,
    uniform_policy_matrix,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # core
    "ChainState",
    "CostBreakdown",
    "CostWeights",
    "CoverageCost",
    "IterationRecord",
    "OptimizationResult",
    "BasicDescentOptions",
    "AdaptiveOptions",
    "PerturbedOptions",
    "optimize_basic",
    "optimize_adaptive",
    "optimize_perturbed",
    "optimize_mirror",
    "MirrorOptions",
    "uniform_matrix",
    "paper_random_matrix",
    "dirichlet_matrix",
    "damped_baseline_matrix",
    "MultiStartResult",
    "optimize_multistart",
    "lockstep_multistart",
    "MultiRayBatch",
    # façade
    "optimize",
    "OptimizerSpec",
    "OPTIMIZER_REGISTRY",
    "OptimizerOptions",
    "SearchOptions",
    "coerce_options",
    # cost-term registry
    "CostTerm",
    "TermBatch",
    "TermSpec",
    "TERM_REGISTRY",
    "CostSum",
    "ScaledTerm",
    "build_term",
    "normalize_extra_terms",
    "WorstExposureTerm",
    "KCoverageShortfallTerm",
    "PeriodicityTerm",
    # exec
    "BACKENDS",
    "Executor",
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "get_executor",
    "using_executor",
    # markov
    "MarkovChain",
    # topology
    "PoI",
    "Topology",
    "grid_topology",
    "line_topology",
    "paper_topology",
    "random_topology",
    "city_grid_topology",
    "ring_of_grids_topology",
    "scalable_topology",
    "PAPER_TOPOLOGY_IDS",
    "SCALABLE_FAMILIES",
    # simulation
    "SimulationOptions",
    "SimulationResult",
    "simulate_schedule",
    # simulation façade
    "simulate",
    "SimulatorSpec",
    "SIMULATOR_REGISTRY",
    "TeamOptions",
    # baselines
    "metropolis_hastings_matrix",
    "max_entropy_matrix",
    "uniform_policy_matrix",
    "proportional_matrix",
    "nearest_neighbor_matrix",
]
