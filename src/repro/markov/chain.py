"""The :class:`MarkovChain` facade.

Bundles a validated ergodic transition matrix with lazily computed, cached
derived quantities (stationary distribution, fundamental matrix, group
inverse, first-passage times, entropy rate).  Instances are immutable;
moving to a new matrix returns a new instance, which is exactly the access
pattern of the steepest-descent loop (one chain state per iterate).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.markov.entropy import entropy_rate
from repro.markov.ergodicity import require_ergodic
from repro.markov.fundamental import fundamental_matrix
from repro.markov.group_inverse import group_inverse
from repro.markov.passage import first_passage_times
from repro.markov.sampling import sample_path
from repro.markov.stationary import stationary_via_linear_solve
from repro.utils.rng import RandomState
from repro.utils.validation import check_square


class MarkovChain:
    """An ergodic finite Markov chain with cached derived matrices.

    Parameters
    ----------
    matrix:
        Row-stochastic, irreducible, aperiodic transition matrix.
    validate:
        Set ``False`` to skip the ergodicity check when the caller has
        already validated the matrix (hot loops); shape and stochasticity
        are still implicitly assumed.
    """

    def __init__(self, matrix: np.ndarray, validate: bool = True) -> None:
        matrix = check_square("matrix", matrix)
        if validate:
            require_ergodic(matrix)
        self._matrix = matrix.copy()
        self._matrix.setflags(write=False)
        self._pi: Optional[np.ndarray] = None
        self._z: Optional[np.ndarray] = None
        self._r: Optional[np.ndarray] = None
        self._a_sharp: Optional[np.ndarray] = None

    # ----------------------------------------------------------------- #

    @property
    def size(self) -> int:
        """Number of states."""
        return self._matrix.shape[0]

    @property
    def matrix(self) -> np.ndarray:
        """The transition matrix (read-only view)."""
        return self._matrix

    @property
    def stationary(self) -> np.ndarray:
        """Stationary distribution ``pi`` (cached)."""
        if self._pi is None:
            self._pi = stationary_via_linear_solve(self._matrix)
            self._pi.setflags(write=False)
        return self._pi

    @property
    def fundamental(self) -> np.ndarray:
        """Fundamental matrix ``Z = (I - P + W)^{-1}`` (cached)."""
        if self._z is None:
            self._z = fundamental_matrix(self._matrix, self.stationary)
            self._z.setflags(write=False)
        return self._z

    @property
    def group_inverse(self) -> np.ndarray:
        """Group inverse ``A#`` of ``I - P`` (cached)."""
        if self._a_sharp is None:
            self._a_sharp = group_inverse(self._matrix)
            self._a_sharp.setflags(write=False)
        return self._a_sharp

    @property
    def first_passage(self) -> np.ndarray:
        """Expected first-passage times ``R`` in transitions (cached)."""
        if self._r is None:
            self._r = first_passage_times(
                self._matrix, self.fundamental, self.stationary
            )
            self._r.setflags(write=False)
        return self._r

    @property
    def entropy_rate(self) -> float:
        """Entropy rate ``H`` in nats."""
        return entropy_rate(self._matrix, self.stationary)

    # ----------------------------------------------------------------- #

    def with_matrix(self, matrix: np.ndarray, validate: bool = True):
        """Return a new chain for ``matrix`` (caches are not shared)."""
        return MarkovChain(matrix, validate=validate)

    def sample(
        self,
        steps: int,
        start: Optional[int] = None,
        seed: RandomState = None,
    ) -> np.ndarray:
        """Sample a path of ``steps`` transitions (see
        :func:`repro.markov.sampling.sample_path`)."""
        return sample_path(self._matrix, steps, start=start, seed=seed)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"MarkovChain(size={self.size})"
