"""Entropy rate of a Markov chain.

Section VII of the paper proposes maximizing the chain's entropy rate

    ``H = - sum_i pi_i sum_j p_ij ln p_ij``

to make the sensor's schedule unpredictable to smart adversaries.  The
entropy rate is measured in nats and satisfies ``0 <= H <= ln M``.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.markov.stationary import stationary_via_linear_solve
from repro.utils.validation import check_square


def row_entropies(matrix: np.ndarray) -> np.ndarray:
    """Shannon entropy of each row, in nats, with ``0 ln 0 = 0``."""
    matrix = check_square("matrix", matrix)
    with np.errstate(divide="ignore", invalid="ignore"):
        terms = np.where(matrix > 0.0, matrix * np.log(matrix), 0.0)
    return -terms.sum(axis=1)


def entropy_rate(
    matrix: np.ndarray, pi: Optional[np.ndarray] = None
) -> float:
    """Entropy rate ``H`` of the stationary chain, in nats."""
    matrix = check_square("matrix", matrix)
    if pi is None:
        pi = stationary_via_linear_solve(matrix)
    else:
        pi = np.asarray(pi, dtype=float)
        if pi.shape != (matrix.shape[0],):
            raise ValueError(
                f"pi must have shape ({matrix.shape[0]},), got {pi.shape}"
            )
    return float(pi @ row_entropies(matrix))


def max_entropy_rate(size: int) -> float:
    """Upper bound ``ln M`` attained by the uniform chain on ``M`` states."""
    if size < 1:
        raise ValueError(f"size must be >= 1, got {size}")
    return float(np.log(size))
