"""Sparse solvers for the chain core ``(I - P + W)`` at large ``M``.

The dense path factors the core with a dense LU at ``O(M^3)``; for
topologies whose feasible transitions form a sparse graph (city grids,
ring-of-grids — see :mod:`repro.topology.random_gen`) that cost is the
scaling bottleneck.  The core itself is *dense* even when ``P`` is
sparse, because ``W = 1 pi^T`` has rank one but full support.  The trick
is the bordered splitting

    ``A = I - P + 1 pi^T = B + 1 (pi - e_n)^T``  with
    ``B = I - P + 1 e_n^T``,

where ``e_n`` is the last standard basis vector.  ``B`` differs from the
sparse ``I - P`` only in its last column, so it admits a sparse LU
(:func:`scipy.sparse.linalg.splu`), and ``B`` is nonsingular whenever
``P`` is ergodic: ``Bx = 0`` forces ``(I - P)x = -x_n 1``, and
multiplying by ``pi`` gives ``x_n = 0``, hence ``x`` in the null space
of ``I - P``, i.e. ``x = c 1`` with ``c = x_n = 0``.  Solves against the
full core then follow from one rank-one Sherman-Morrison correction:

    ``A^{-1} b = y - h (v^T y) / (1 + v^T h)``,
    ``y = B^{-1} b``, ``h = B^{-1} 1``, ``v = pi - e_n``.

:class:`SparseCoreSolver` packages this behind the same ``solve()`` /
``full_inverse()`` contract as the dense
:class:`~repro.markov.fundamental.CoreFactorization`, so stationary
distributions, first-passage times (Eq. 8), and the Schweitzer adjoints
route through it untouched.  :func:`sparse_stationary` solves the
stationary system itself through a sparse LU of the bordered
``(I - P^T;`` last row ones``)`` matrix with the exact sanitize
semantics of :func:`~repro.markov.stationary.stationary_via_linear_solve`.

scipy is a declared dependency, but every entry point degrades to the
dense solvers when it is missing so the module imports everywhere.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.utils import perf
from repro.utils.validation import check_square

try:
    from scipy import sparse as _sp
    from scipy.sparse.linalg import splu as _splu
except ImportError:  # pragma: no cover - scipy is a declared dependency
    _sp = None
    _splu = None

#: Whether the sparse path is available at all in this environment.
HAVE_SPARSE = _splu is not None

#: Column ordering for every ``splu`` in this module.  The feasible
#: graphs behind the sparse path (city grids, ring-of-grids) are nearly
#: symmetric, where minimum-degree on ``A^T + A`` consistently beats the
#: COLAMD default by ~2x in factorization time.
_PERMC_SPEC = "MMD_AT_PLUS_A"

#: SuperLU options paired with the near-symmetric ordering: symmetric
#: mode with the relaxed diagonal-pivot threshold its documentation
#: recommends.  Worth another ~1.5-2x in factorization time; observed
#: solution perturbation on the benchmark families is ~1e-12, two
#: orders below the tightest equivalence tolerance asserted anywhere.
_SPLU_OPTIONS = {"SymmetricMode": True, "DiagPivotThresh": 0.1}


def _factorize(system):
    return _splu(
        system, permc_spec=_PERMC_SPEC, options=dict(_SPLU_OPTIONS)
    )


def _require_scipy() -> None:
    if not HAVE_SPARSE:  # pragma: no cover - scipy is a declared dependency
        raise RuntimeError(
            "linalg='sparse' requires scipy.sparse; install scipy or use "
            "linalg='dense'"
        )


def sparse_stationary(matrix: np.ndarray) -> np.ndarray:
    """Stationary distribution via a sparse LU of the bordered system.

    Same linear system as
    :func:`~repro.markov.stationary.stationary_via_linear_solve` —
    ``(I - P)^T pi = 0`` with the last equation replaced by
    ``sum(pi) = 1`` — factored sparsely, and sanitized identically
    (clip tiny negative round-off, renormalize).
    """
    _require_scipy()
    from repro.markov.stationary import _sanitize

    matrix = check_square("matrix", matrix)
    count = matrix.shape[0]
    # Assemble (I - P)^T with the last row replaced by ones directly in
    # COO form (duplicate coordinates sum, merging -p_ii with the +1
    # identity diagonal) — format conversions through lil dominate the
    # factorization itself at benchmark sizes.
    j, k = np.nonzero(matrix)
    keep = k != count - 1
    j, k = j[keep], k[keep]
    rows = np.concatenate(
        [k, np.arange(count - 1), np.full(count, count - 1)]
    )
    cols = np.concatenate(
        [j, np.arange(count - 1), np.arange(count)]
    )
    data = np.concatenate(
        [-matrix[j, k], np.ones(count - 1), np.ones(count)]
    )
    system = _sp.coo_matrix(
        (data, (rows, cols)), shape=(count, count)
    ).tocsc()
    rhs = np.zeros(count)
    rhs[-1] = 1.0
    factors = _factorize(system)
    return _sanitize(factors.solve(rhs))


class SparseStationaryTemplate:
    """Pre-indexed bordered stationary system for a fixed support pattern.

    :func:`sparse_stationary` assembles its sparse system from scratch on
    every call — an ``O(M^2)`` dense scan plus format conversions that
    dominate the solve itself once the factorization is cheap.  Batched
    line searches factor dozens of matrices *sharing one support
    pattern*, so this template computes the CSC sparsity structure and
    the data-permutation once and then refills only the numeric values
    per matrix:

    * off-diagonal support entries ``(j, k)`` with ``k < M - 1``
      contribute ``A[k, j] = -p_jk`` (rows of ``(I - P)^T``),
    * diagonal entries ``A[i, i] = 1 - p_ii`` for ``i < M - 1``,
    * the bordered last row is identically one.

    ``solve(matrix)`` returns the sanitized stationary distribution,
    identical to :func:`sparse_stationary` up to floating-point
    assembly order.
    """

    def __init__(self, support: np.ndarray) -> None:
        _require_scipy()
        support = np.asarray(support, dtype=bool)
        if support.ndim != 2 or support.shape[0] != support.shape[1]:
            raise ValueError(
                f"support must be square, got {support.shape}"
            )
        count = support.shape[0]
        j, k = np.nonzero(support)
        off = (j != k) & (k != count - 1)
        diag = np.arange(count - 1)
        rows = np.concatenate([k[off], diag, np.full(count, count - 1)])
        cols = np.concatenate([j[off], diag, np.arange(count)])
        nnz = rows.size
        # Recover the COO -> sorted-CSC data permutation by pushing the
        # entry ranks through the conversion (no duplicate coordinates
        # by construction, so nothing is summed).
        coo = _sp.coo_matrix(
            (np.arange(1.0, nnz + 1.0), (rows, cols)),
            shape=(count, count),
        )
        csc = coo.tocsc()
        self.size = count
        self._source_j = j[off]
        self._source_k = k[off]
        self._offdiag_count = int(off.sum())
        self._order = np.asarray(csc.data, dtype=np.int64) - 1
        self._system = csc
        self._rhs = np.zeros(count)
        self._rhs[-1] = 1.0

    def _fill(self, matrix: np.ndarray) -> None:
        count = self.size
        data = np.empty(self._order.size)
        data[: self._offdiag_count] = -matrix[
            self._source_j, self._source_k
        ]
        diag = np.arange(count - 1)
        data[self._offdiag_count: self._offdiag_count + count - 1] = (
            1.0 - matrix[diag, diag]
        )
        data[self._offdiag_count + count - 1:] = 1.0
        self._system.data = data[self._order]

    def solve(self, matrix: np.ndarray) -> np.ndarray:
        """Stationary distribution of ``matrix`` (support must match)."""
        from repro.markov.stationary import _sanitize

        matrix = check_square("matrix", matrix)
        if matrix.shape[0] != self.size:
            raise ValueError(
                f"matrix size {matrix.shape[0]} != template size "
                f"{self.size}"
            )
        self._fill(matrix)
        factors = _factorize(self._system)
        return _sanitize(factors.solve(self._rhs))

    #: Iterative-refinement controls for :meth:`solve_batch`: accept a
    #: refined solution once its residual inf-norm clears the tolerance,
    #: else fall back to a fresh factorization after the iteration cap.
    IR_TOL = 1e-14
    IR_MAX = 12

    def solve_batch(self, stack: np.ndarray, indices) -> dict:
        """Stationary distributions for selected members of ``stack``.

        Line-search probes share one support pattern and sit close
        together along a ray, so instead of one sparse LU per probe this
        factors the first probe and solves the rest by iterative
        refinement against that factorization — an ``O(nnz)`` matvec
        plus triangular solves per sweep.  Any probe whose refinement
        misses :attr:`IR_TOL` within :attr:`IR_MAX` sweeps gets its own
        fresh factorization (which then becomes the reference for the
        probes after it); singular probes are skipped.

        Returns ``{index: pi}`` for the probes that solved.  The result
        depends only on ``stack`` and ``indices`` — no state persists
        across calls.
        """
        from repro.markov.stationary import _sanitize

        results = {}
        factors = None
        rhs = self._rhs
        for index in indices:
            self._fill(stack[index])
            if factors is not None:
                x = factors.solve(rhs)
                for _ in range(self.IR_MAX):
                    residual = rhs - self._system @ x
                    gap = np.abs(residual).max()
                    if gap < self.IR_TOL:
                        results[index] = _sanitize(x)
                        break
                    if not np.isfinite(gap):
                        break
                    x += factors.solve(residual)
                if index in results:
                    continue
            try:
                factors = _factorize(self._system)
                results[index] = _sanitize(factors.solve(rhs))
            except (ValueError, RuntimeError):
                factors = None  # singular probe: skip, don't reference
        return results


class SparseCoreSolver:
    """Sparse factorization of ``(I - P + W)`` for an ergodic chain.

    Presents the dense :class:`~repro.markov.fundamental.
    CoreFactorization` contract — :meth:`solve`, :meth:`solve_transpose`,
    :meth:`full_inverse` — backed by one ``splu`` of the sparse bordered
    matrix ``B = I - P + 1 e_n^T`` plus the Sherman-Morrison correction
    described in the module docstring.  ``pi`` is trusted as-is (callers
    own its accuracy), mirroring :func:`~repro.markov.fundamental.
    factor_core`.
    """

    def __init__(self, matrix: np.ndarray, pi: np.ndarray) -> None:
        _require_scipy()
        matrix = check_square("matrix", matrix)
        pi = np.asarray(pi, dtype=float)
        count = matrix.shape[0]
        if pi.shape != (count,):
            raise ValueError(
                f"pi must have shape ({count},), got {pi.shape}"
            )
        # B = I - P + 1 e_n^T assembled directly in COO form (duplicate
        # coordinates sum: -P entries, the identity diagonal, and the
        # all-ones last column merge where they overlap).
        j, k = np.nonzero(matrix)
        rows = np.concatenate([j, np.arange(count), np.arange(count)])
        cols = np.concatenate(
            [k, np.arange(count), np.full(count, count - 1)]
        )
        data = np.concatenate(
            [-matrix[j, k], np.ones(count), np.ones(count)]
        )
        bordered = _sp.coo_matrix(
            (data, (rows, cols)), shape=(count, count)
        ).tocsc()
        self.size = count
        self._lu = _factorize(bordered)
        self._v = pi.copy()
        self._v[-1] -= 1.0  # v = pi - e_n
        self._h = self._lu.solve(np.ones(count))  # h = B^{-1} 1
        self._g = self._lu.solve(self._v, trans="T")  # g = B^{-T} v
        self._denom = 1.0 + float(self._v @ self._h)
        perf.count("sparse_factorizations")

    def solve(self, rhs: np.ndarray) -> np.ndarray:
        """Solve ``(I - P + W) x = rhs`` (vector or stacked columns)."""
        rhs = np.asarray(rhs, dtype=float)
        y = self._lu.solve(rhs)
        correction = (self._v @ y) / self._denom
        return y - np.multiply.outer(self._h, correction) if y.ndim > 1 \
            else y - self._h * correction

    def solve_transpose(self, rhs: np.ndarray) -> np.ndarray:
        """Solve ``(I - P + W)^T x = rhs`` (vector or stacked columns)."""
        rhs = np.asarray(rhs, dtype=float)
        y = self._lu.solve(rhs, trans="T")
        correction = y.sum(axis=0) / self._denom
        return y - np.multiply.outer(self._g, correction) if y.ndim > 1 \
            else y - self._g * correction

    def full_inverse(self) -> np.ndarray:
        """The dense fundamental matrix ``Z`` — ``O(M^2)`` memory.

        Provided for the small-``M`` reference paths (first-passage
        matrices, cross-validation tests); the large-``M`` pipeline
        routes everything through targeted :meth:`solve` calls instead.
        """
        return np.ascontiguousarray(self.solve(np.eye(self.size)))


def sparse_fundamental_and_stationary(matrix: np.ndarray):
    """Return ``(solver, pi)`` computed consistently in one pass.

    The sparse analogue of :func:`~repro.markov.fundamental.
    fundamental_and_stationary`, except the fundamental matrix is
    returned *implicitly* as a :class:`SparseCoreSolver` rather than
    materialized.
    """
    pi = sparse_stationary(matrix)
    return SparseCoreSolver(matrix, pi), pi


def changed_rows(
    base: np.ndarray, updated: np.ndarray, atol: float = 0.0
) -> np.ndarray:
    """Indices of rows where ``updated`` differs from ``base``.

    The incremental update machinery
    (:mod:`repro.markov.incremental`) treats a descent step as a
    row-wise perturbation; this helper finds its support.
    """
    base = np.asarray(base, dtype=float)
    updated = np.asarray(updated, dtype=float)
    if base.shape != updated.shape:
        raise ValueError(
            f"shape mismatch: {base.shape} vs {updated.shape}"
        )
    deltas = np.abs(updated - base).max(axis=1)
    return np.nonzero(deltas > atol)[0]
