"""Irreducibility, aperiodicity, and ergodicity checks.

The paper assumes throughout that the scheduling chain is ergodic
(irreducible and aperiodic on a finite state space), which guarantees a
unique stationary distribution and finite first-passage times.  These
checks guard the public API and are also used by tests to reject malformed
transition matrices early, with actionable errors.
"""

from __future__ import annotations

from math import gcd
from typing import List

import numpy as np

from repro.utils.linalg import is_row_stochastic
from repro.utils.validation import check_square

#: Entries at or below this threshold are treated as structurally zero when
#: building the transition graph.
EDGE_TOLERANCE = 1e-15


def transition_graph(matrix: np.ndarray, tol: float = EDGE_TOLERANCE):
    """Adjacency lists of the directed graph induced by positive entries."""
    matrix = check_square("matrix", matrix)
    count = matrix.shape[0]
    return [
        [j for j in range(count) if matrix[i, j] > tol] for i in range(count)
    ]


def _reachable_from(adjacency: List[List[int]], start: int) -> np.ndarray:
    count = len(adjacency)
    seen = np.zeros(count, dtype=bool)
    stack = [start]
    seen[start] = True
    while stack:
        node = stack.pop()
        for neighbor in adjacency[node]:
            if not seen[neighbor]:
                seen[neighbor] = True
                stack.append(neighbor)
    return seen


def is_irreducible(matrix: np.ndarray, tol: float = EDGE_TOLERANCE) -> bool:
    """Whether every state communicates with every other state.

    Checked by forward reachability from state 0 in both the graph and its
    transpose, which is equivalent to strong connectivity.
    """
    adjacency = transition_graph(matrix, tol)
    count = len(adjacency)
    if count == 0:
        return False
    if not _reachable_from(adjacency, 0).all():
        return False
    reverse: List[List[int]] = [[] for _ in range(count)]
    for node, neighbors in enumerate(adjacency):
        for neighbor in neighbors:
            reverse[neighbor].append(node)
    return bool(_reachable_from(reverse, 0).all())


def period_of_state(
    matrix: np.ndarray, state: int, tol: float = EDGE_TOLERANCE
) -> int:
    """Period of ``state``: gcd of lengths of cycles through it.

    Computed by BFS level labeling: for every edge ``u -> v`` inside the
    strongly connected component, ``level[u] + 1 - level[v]`` is a multiple
    of the period, and the gcd of all such values *is* the period for an
    irreducible chain.
    """
    adjacency = transition_graph(matrix, tol)
    count = len(adjacency)
    if not 0 <= state < count:
        raise ValueError(f"state must lie in [0, {count}), got {state}")
    level = np.full(count, -1, dtype=int)
    level[state] = 0
    queue = [state]
    period = 0
    while queue:
        node = queue.pop(0)
        for neighbor in adjacency[node]:
            if level[neighbor] < 0:
                level[neighbor] = level[node] + 1
                queue.append(neighbor)
            else:
                period = gcd(period, level[node] + 1 - level[neighbor])
    return abs(period) if period != 0 else 0


def is_aperiodic(matrix: np.ndarray, tol: float = EDGE_TOLERANCE) -> bool:
    """Whether the chain has period one (requires irreducibility to be
    meaningful; a reducible chain returns the period of state 0's class)."""
    return period_of_state(matrix, 0, tol) == 1


def is_ergodic(matrix: np.ndarray, tol: float = EDGE_TOLERANCE) -> bool:
    """Whether the chain is irreducible and aperiodic."""
    return is_irreducible(matrix, tol) and is_aperiodic(matrix, tol)


def require_ergodic(matrix: np.ndarray, tol: float = EDGE_TOLERANCE) -> None:
    """Raise ``ValueError`` with a diagnosis when the chain is not ergodic."""
    matrix = check_square("matrix", matrix)
    if not is_row_stochastic(matrix):
        raise ValueError(
            "matrix is not row-stochastic: rows must be probability "
            "distributions"
        )
    if not is_irreducible(matrix, tol):
        raise ValueError(
            "transition matrix is reducible: some states cannot reach "
            "each other, so no unique stationary distribution exists"
        )
    if not is_aperiodic(matrix, tol):
        raise ValueError(
            "transition matrix is periodic: time averages exist but the "
            "chain does not converge in distribution; the paper's model "
            "assumes aperiodicity"
        )
