"""The group generalized inverse ``A#`` of ``A = I - P`` (Meyer 1975).

For an ergodic transition matrix ``P`` with stationary distribution ``pi``
and ``W = 1 pi^T`` (all rows equal to ``pi``), the matrix ``I - P + W`` is
nonsingular and

    ``A# = (I - P + W)^{-1} - W``.

``A#`` is the unique matrix satisfying the three group-inverse axioms the
paper quotes (Section III-B):

    ``A A# A = A``,  ``A# A A# = A#``,  ``A A# = A# A``.

It is the workhorse behind the closed-form stationary distribution
(Eq. 5), fundamental matrix (Eq. 7), and first-passage times (Eq. 6/8).
"""

from __future__ import annotations

import numpy as np

from repro.markov.stationary import stationary_via_linear_solve
from repro.utils.validation import check_square


def group_inverse(matrix: np.ndarray) -> np.ndarray:
    """Group inverse ``A#`` of ``A = I - P`` for ergodic ``P``."""
    matrix = check_square("matrix", matrix)
    pi = stationary_via_linear_solve(matrix)
    w = np.tile(pi, (matrix.shape[0], 1))
    core = np.linalg.inv(np.eye(matrix.shape[0]) - matrix + w)
    return core - w


def verify_group_inverse_axioms(
    a: np.ndarray, a_sharp: np.ndarray, atol: float = 1e-8
) -> bool:
    """Check Meyer's three defining axioms within tolerance ``atol``.

    Exposed for tests and for validating externally supplied inverses.
    """
    a = check_square("a", a)
    a_sharp = check_square("a_sharp", a_sharp)
    if a.shape != a_sharp.shape:
        raise ValueError(
            f"shape mismatch: {a.shape} vs {a_sharp.shape}"
        )
    return (
        np.allclose(a @ a_sharp @ a, a, atol=atol)
        and np.allclose(a_sharp @ a @ a_sharp, a_sharp, atol=atol)
        and np.allclose(a @ a_sharp, a_sharp @ a, atol=atol)
    )


def stationary_projector(matrix: np.ndarray) -> np.ndarray:
    """The matrix ``W = I - A A#`` whose rows all equal ``pi`` (Eq. 5)."""
    matrix = check_square("matrix", matrix)
    a = np.eye(matrix.shape[0]) - matrix
    return np.eye(matrix.shape[0]) - a @ group_inverse(matrix)
