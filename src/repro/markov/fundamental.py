"""The fundamental matrix ``Z`` of an ergodic chain.

``Z = (I - P + W)^{-1}`` (Kemeny-Snell), related to the group inverse by
the paper's Eq. (7): ``Z = I + P A#``.  ``Z`` is the object actually used
in the numerical computation of first-passage times (Eq. 8) and of the
Schweitzer perturbation formulas.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.markov.stationary import stationary_via_linear_solve
from repro.utils.validation import check_square


def fundamental_matrix(
    matrix: np.ndarray, pi: Optional[np.ndarray] = None
) -> np.ndarray:
    """Fundamental matrix ``Z = (I - P + W)^{-1}``.

    ``pi`` may be supplied to avoid recomputing the stationary
    distribution; it is trusted as-is (callers own its accuracy).
    """
    matrix = check_square("matrix", matrix)
    if pi is None:
        pi = stationary_via_linear_solve(matrix)
    else:
        pi = np.asarray(pi, dtype=float)
        if pi.shape != (matrix.shape[0],):
            raise ValueError(
                f"pi must have shape ({matrix.shape[0]},), got {pi.shape}"
            )
    w = np.tile(pi, (matrix.shape[0], 1))
    return np.linalg.inv(np.eye(matrix.shape[0]) - matrix + w)


def fundamental_and_stationary(
    matrix: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray]:
    """Return ``(Z, pi)`` computed consistently in one call."""
    matrix = check_square("matrix", matrix)
    pi = stationary_via_linear_solve(matrix)
    return fundamental_matrix(matrix, pi), pi


def fundamental_from_group_inverse(
    matrix: np.ndarray, a_sharp: np.ndarray
) -> np.ndarray:
    """Eq. (7): ``Z = I + P A#`` — used by tests to cross-check solvers."""
    matrix = check_square("matrix", matrix)
    a_sharp = check_square("a_sharp", a_sharp)
    return np.eye(matrix.shape[0]) + matrix @ a_sharp
