"""The fundamental matrix ``Z`` of an ergodic chain.

``Z = (I - P + W)^{-1}`` (Kemeny-Snell), related to the group inverse by
the paper's Eq. (7): ``Z = I + P A#``.  ``Z`` is the object actually used
in the numerical computation of first-passage times (Eq. 8) and of the
Schweitzer perturbation formulas.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.markov.stationary import stationary_via_linear_solve
from repro.utils.validation import check_square

try:  # scipy exposes the reusable LU factors that numpy's inv hides.
    from scipy.linalg import lu_factor as _lu_factor
    from scipy.linalg import lu_solve as _lu_solve
except ImportError:  # pragma: no cover - scipy is a declared dependency
    _lu_factor = None
    _lu_solve = None


class CoreFactorization:
    """One LU factorization of the core ``(I - P + W)``, reused everywhere.

    The fundamental matrix ``Z``, the first-passage times built from it,
    and the Schweitzer adjoints all reduce to solves against the same
    core matrix.  Factoring it once and applying the factors
    (``getrs``-style triangular solves) replaces the historical pattern
    of one ``solve`` plus one ``inv`` per iterate with a single dense
    decomposition.

    Falls back to caching the core and re-solving via
    ``numpy.linalg.solve`` when scipy is unavailable.
    """

    def __init__(self, core: np.ndarray) -> None:
        self._core = None
        if _lu_factor is not None:
            self._lu = _lu_factor(core)
        else:  # pragma: no cover - scipy is a declared dependency
            self._lu = None
            self._core = core

    def solve(self, rhs: np.ndarray) -> np.ndarray:
        """Solve ``(I - P + W) x = rhs`` using the cached factors."""
        if self._lu is not None:
            return _lu_solve(self._lu, rhs)
        return np.linalg.solve(self._core, rhs)  # pragma: no cover

    def solve_transpose(self, rhs: np.ndarray) -> np.ndarray:
        """Solve ``(I - P + W)^T x = rhs`` using the cached factors."""
        if self._lu is not None:
            return _lu_solve(self._lu, rhs, trans=1)
        return np.linalg.solve(self._core.T, rhs)  # pragma: no cover

    def full_inverse(self) -> np.ndarray:
        """The fundamental matrix ``Z`` — the core's full inverse.

        ``O(M^2)`` memory and ``O(M^3)`` work; the small-``M`` dense
        reference path.  Callers that only need ``Z @ v`` / ``v^T Z``
        should use targeted :meth:`solve` / :meth:`solve_transpose`.

        Returned C-contiguous: ``lu_solve`` hands back a Fortran-ordered
        array, and BLAS sums in a different order over F- vs C-layout
        operands, which would make downstream gradients ulp-different
        from ones computed against the batched evaluator's C-ordered
        ``Z`` (breaking bit-reproducible line-search state reuse).
        """
        size = (
            self._lu[0].shape[0] if self._lu is not None
            else self._core.shape[0]
        )
        return np.ascontiguousarray(self.solve(np.eye(size)))

    # Historical name, kept for callers predating the sparse path.
    inverse = full_inverse


def factor_core(matrix: np.ndarray, pi: np.ndarray) -> CoreFactorization:
    """Factor ``(I - P + W)`` once for reuse across ``Z``/``R``/adjoints.

    ``pi`` is trusted as-is (callers own its accuracy), mirroring
    :func:`fundamental_matrix`.
    """
    matrix = check_square("matrix", matrix)
    pi = np.asarray(pi, dtype=float)
    w = np.tile(pi, (matrix.shape[0], 1))
    return CoreFactorization(np.eye(matrix.shape[0]) - matrix + w)


def fundamental_matrix(
    matrix: np.ndarray, pi: Optional[np.ndarray] = None
) -> np.ndarray:
    """Fundamental matrix ``Z = (I - P + W)^{-1}``.

    ``pi`` may be supplied to avoid recomputing the stationary
    distribution; it is trusted as-is (callers own its accuracy).
    """
    matrix = check_square("matrix", matrix)
    if pi is None:
        pi = stationary_via_linear_solve(matrix)
    else:
        pi = np.asarray(pi, dtype=float)
        if pi.shape != (matrix.shape[0],):
            raise ValueError(
                f"pi must have shape ({matrix.shape[0]},), got {pi.shape}"
            )
    w = np.tile(pi, (matrix.shape[0], 1))
    return np.linalg.inv(np.eye(matrix.shape[0]) - matrix + w)


def fundamental_and_stationary(
    matrix: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray]:
    """Return ``(Z, pi)`` computed consistently in one call."""
    matrix = check_square("matrix", matrix)
    pi = stationary_via_linear_solve(matrix)
    return fundamental_matrix(matrix, pi), pi


def fundamental_from_group_inverse(
    matrix: np.ndarray, a_sharp: np.ndarray
) -> np.ndarray:
    """Eq. (7): ``Z = I + P A#`` — used by tests to cross-check solvers."""
    matrix = check_square("matrix", matrix)
    a_sharp = check_square("a_sharp", a_sharp)
    return np.eye(matrix.shape[0]) + matrix @ a_sharp
