"""Incremental ``(pi, Z)``-solve updates across accepted descent steps.

An accepted step replaces the transition matrix ``P0`` with ``P'`` that
differs in a handful of rows (a single-row resampling move, a localized
repair, a team hand-off).  Refactorizing the core from scratch then
wastes the previous factorization; the Schweitzer perturbation calculus
says the new quantities are *low-rank corrections* of the old ones, and
this module applies them exactly.

**Stationary update.**  Write ``P' = P0 + sum_k e_{i_k} delta_k^T`` with
``delta_k . 1 = 0`` (both matrices are row-stochastic).  From
``pi'^T (I - P') = 0`` and ``pi0^T Z0 = pi0^T``:

    ``pi'^T = pi0^T + sum_k pi'_{i_k} x_k^T``,  ``x_k = Z0^T delta_k``,

which is the Schweitzer identity ``dpi = pi dP Z`` resummed to *finite*
row perturbations.  The unknown changed-row masses
``c_k = pi'_{i_k}`` solve the tiny ``r x r`` system
``(I - X) c = pi0[rows]`` with ``X[l, k] = x_k[i_l]``; each ``x_k`` is
one transpose solve against the cached base factorization.  Because
``Z0 1 = 1`` forces ``x_k . 1 = delta_k . 1 = 0``, the update preserves
normalization automatically.

**Core-solve update.**  The new core differs from the old by
``A' - A0 = 1 dpi^T - dP``, a matrix of rank at most ``r + 1``, so
solves against ``A'`` follow from the cached base solves via one
Woodbury correction (:class:`WoodburyCoreSolver`).

**Drift monitor.**  Floating-point error compounds as corrections stack
on an aging base, so each update is verified: the updated ``pi'`` must
satisfy its balance equations and a probe solve against ``A'`` must hit
its residual tolerance, else the tracker discards the corrections and
refactorizes from scratch.  A rank cap and a staleness cap bound the
correction size regardless.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.markov.sparse import (
    HAVE_SPARSE,
    SparseCoreSolver,
    changed_rows,
    sparse_stationary,
)
from repro.utils import perf

#: Default maximum number of changed rows handled incrementally.
DEFAULT_RANK_CAP = 16
#: Default residual tolerance of the drift monitor.
DEFAULT_DRIFT_TOL = 1e-8
#: Default number of incremental updates before a forced refactorization.
DEFAULT_MAX_UPDATES = 64


class WoodburyCoreSolver:
    """Solves against ``A' = A0 + U V^T`` through a cached base solver.

    ``U = [-e_{i_1}, ..., -e_{i_r}, 1]`` and
    ``V^T = [delta_1^T; ...; delta_r^T; dpi^T]`` encode the row
    perturbation plus the rank-one ``W``-shift of the core.  Each solve
    costs one base solve plus an ``(r+1) x (r+1)`` correction:

        ``A'^{-1} b = y - ZU (I + V^T ZU)^{-1} V^T y``, ``y = A0^{-1} b``.

    Exposes the same contract as
    :class:`~repro.markov.sparse.SparseCoreSolver` so chain states hold
    either interchangeably.
    """

    def __init__(
        self,
        base: SparseCoreSolver,
        rows: np.ndarray,
        deltas: np.ndarray,
        dpi: np.ndarray,
    ) -> None:
        size = base.size
        rank = rows.size + 1
        u = np.zeros((size, rank))
        u[rows, np.arange(rows.size)] = -1.0
        u[:, -1] = 1.0
        vt = np.vstack([deltas, dpi[None, :]])  # (r+1, M)
        self.size = size
        self._base = base
        self._vt = vt
        self._zu = base.solve(u)
        self._ztv = base.solve_transpose(vt.T)
        self._cap = np.eye(rank) + vt @ self._zu
        self._ut = u.T

    def solve(self, rhs: np.ndarray) -> np.ndarray:
        """Solve ``A' x = rhs`` (vector or stacked columns)."""
        y = self._base.solve(rhs)
        correction = np.linalg.solve(self._cap, self._vt @ y)
        return y - self._zu @ correction

    def solve_transpose(self, rhs: np.ndarray) -> np.ndarray:
        """Solve ``A'^T x = rhs`` (vector or stacked columns)."""
        y = self._base.solve_transpose(rhs)
        correction = np.linalg.solve(self._cap.T, self._ut @ y)
        return y - self._ztv @ correction

    def full_inverse(self) -> np.ndarray:
        """The dense corrected inverse — small-``M`` reference only."""
        return np.ascontiguousarray(self.solve(np.eye(self.size)))


class IncrementalCoreTracker:
    """Reuses one sparse factorization across nearby transition matrices.

    :meth:`acquire` hands back ``(pi, solver)`` for a matrix.  When the
    matrix differs from the tracked base in at most ``rank_cap`` rows,
    the answer is assembled from the cached base factorization — the
    exact resummed Schweitzer update for ``pi`` plus a
    :class:`WoodburyCoreSolver` for the core — and verified by the
    drift monitor; otherwise (or on any verification failure) the
    tracker refactorizes from scratch and rebases.

    Counters (also mirrored into the ambient
    :mod:`repro.utils.perf` scope): ``incremental_updates`` /
    ``refactorizations`` / ``drift_refactorizations``.
    """

    def __init__(
        self,
        rank_cap: int = DEFAULT_RANK_CAP,
        drift_tol: float = DEFAULT_DRIFT_TOL,
        max_updates: int = DEFAULT_MAX_UPDATES,
        stationary_solver=None,
    ) -> None:
        if not HAVE_SPARSE:  # pragma: no cover - scipy is declared
            raise RuntimeError(
                "IncrementalCoreTracker requires scipy.sparse"
            )
        if rank_cap < 1:
            raise ValueError(f"rank_cap must be >= 1, got {rank_cap}")
        if drift_tol <= 0:
            raise ValueError(f"drift_tol must be > 0, got {drift_tol}")
        if max_updates < 1:
            raise ValueError(
                f"max_updates must be >= 1, got {max_updates}"
            )
        self.rank_cap = int(rank_cap)
        self.drift_tol = float(drift_tol)
        self.max_updates = int(max_updates)
        # Optional SparseStationaryTemplate (or anything exposing
        # ``solve(matrix) -> pi``) to amortize stationary-system assembly
        # across refactorizations on a fixed support pattern.
        self._stationary_solver = stationary_solver
        self._base_p: Optional[np.ndarray] = None
        self._base_pi: Optional[np.ndarray] = None
        self._base_solver: Optional[SparseCoreSolver] = None
        self._updates_since_rebase = 0
        self.incremental_updates = 0
        self.refactorizations = 0
        self.drift_refactorizations = 0

    # ------------------------------------------------------------------ #

    def acquire(self, matrix: np.ndarray, pi: Optional[np.ndarray] = None):
        """``(pi, solver)`` for ``matrix``, incrementally when possible.

        ``pi`` may be supplied by callers who already solved the
        stationary system (e.g. the batched line search); it is trusted
        and only the core solver is corrected.
        """
        matrix = np.array(matrix, dtype=float)
        if self._base_p is None:
            return self._refactor(matrix, pi)
        rows = changed_rows(self._base_p, matrix)
        if rows.size == 0:
            return (
                self._base_pi if pi is None else np.asarray(pi, float),
                self._base_solver,
            )
        # Row selection is tolerance-aware: rows whose perturbation is
        # below drift_tol / M are left to the drift monitor (their total
        # contribution to the probe residual is bounded by drift_tol),
        # so a near-converged step that nudges every row infinitesimally
        # but moves only a few materially still counts as low-rank.
        neglect = self.drift_tol / matrix.shape[0]
        major = changed_rows(self._base_p, matrix, atol=neglect)
        if (
            major.size > self.rank_cap
            or self._updates_since_rebase >= self.max_updates
        ):
            perf.count("incremental_refactorizations")
            return self._refactor(matrix, pi)
        attempt = self._try_incremental(matrix, major, pi)
        if attempt is None:
            self.drift_refactorizations += 1
            perf.count("incremental_refactorizations")
            return self._refactor(matrix, pi)
        return attempt

    # ------------------------------------------------------------------ #

    def _refactor(self, matrix: np.ndarray, pi):
        """Fresh factorization; ``matrix`` becomes the new base."""
        if pi is None:
            pi = (
                sparse_stationary(matrix)
                if self._stationary_solver is None
                else self._stationary_solver.solve(matrix)
            )
        else:
            pi = np.asarray(pi, dtype=float)
        solver = SparseCoreSolver(matrix, pi)
        self._base_p = matrix
        self._base_pi = pi
        self._base_solver = solver
        self._updates_since_rebase = 0
        self.refactorizations += 1
        return pi, solver

    def _try_incremental(self, matrix, rows, pi):
        """One verified low-rank update, or ``None`` on drift."""
        base_pi = self._base_pi
        deltas = matrix[rows] - self._base_p[rows]  # (r, M)
        if pi is None:
            # x_k = Z0^T delta_k, stacked as columns of (M, r).
            x = self._base_solver.solve_transpose(deltas.T)
            small = np.eye(rows.size) - x[rows, :]
            try:
                masses = np.linalg.solve(small, base_pi[rows])
            except np.linalg.LinAlgError:
                return None
            pi_new = base_pi + x @ masses
            # Drift monitor, part 1: the updated pi must satisfy its own
            # balance equations against the *new* matrix.
            residual = np.abs(pi_new - matrix.T @ pi_new).max()
            if (
                not np.all(np.isfinite(pi_new))
                or pi_new.min() <= 0.0
                or residual > self.drift_tol
            ):
                return None
            pi_new = pi_new / pi_new.sum()
        else:
            pi_new = np.asarray(pi, dtype=float)
        solver = WoodburyCoreSolver(
            self._base_solver, rows, deltas, pi_new - base_pi
        )
        # Drift monitor, part 2: probe solve against the true new core
        # A' x = b, with A' applied matrix-free as x - P'x + 1 (pi'.x).
        probe = np.full(matrix.shape[0], 1.0 / matrix.shape[0])
        x = solver.solve(probe)
        residual = np.abs(
            x - matrix @ x + np.dot(pi_new, x) - probe
        ).max()
        if not np.isfinite(residual) or residual > self.drift_tol:
            return None
        self._updates_since_rebase += 1
        self.incremental_updates += 1
        perf.count("incremental_updates")
        return pi_new, solver
