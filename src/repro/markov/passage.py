"""Expected first-passage times.

Paper Eq. (6)/(8): ``R = (I - Z + J Z_dg) D`` with ``D = diag(1/pi)``,
i.e. component-wise

    ``R_ij = (delta_ij - z_ij + z_jj) / pi_j``.

``R_ij`` is the expected number of transitions to reach state ``j``
starting from state ``i``, with the convention ``R_ii = 1 / pi_i`` (the
expected *return* time, Kac's formula).  Note the denominator is ``pi_j``
(the destination), matching the matrix form; the paper's component-wise
restatement prints ``pi_i``, an evident typo (see DESIGN.md section 2).

The unit of ``R`` is *transitions*, consistent with the paper's
simplifying assumption that every transition takes one time unit when
computing exposure times (Section III-A).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.markov.fundamental import fundamental_and_stationary
from repro.utils.validation import check_square


def first_passage_times(
    matrix: np.ndarray,
    z: Optional[np.ndarray] = None,
    pi: Optional[np.ndarray] = None,
) -> np.ndarray:
    """First-passage-time matrix via the fundamental matrix (Eq. 8).

    ``z`` and ``pi`` may be passed together to reuse cached values; passing
    only one of them is rejected to avoid mixing inconsistent inputs.
    """
    matrix = check_square("matrix", matrix)
    if (z is None) != (pi is None):
        raise ValueError("pass both z and pi, or neither")
    if z is None:
        z, pi = fundamental_and_stationary(matrix)
    else:
        z = check_square("z", z)
        pi = np.asarray(pi, dtype=float)
    count = matrix.shape[0]
    if np.any(pi <= 0):
        raise ValueError(
            "stationary distribution has non-positive entries; "
            "first-passage times are infinite for unreachable states"
        )
    z_diag = np.diag(z)
    # R_ij = (delta_ij - z_ij + z_jj) / pi_j, vectorized over (i, j).
    numerator = np.eye(count) - z + z_diag[None, :]
    return numerator / pi[None, :]


def first_passage_times_by_solve(matrix: np.ndarray) -> np.ndarray:
    """First-passage times by first-step analysis (independent method).

    For each destination ``j`` solve the linear system

        ``R_ij = 1 + sum_{k != j} p_ik R_kj``  for all ``i != j``,

    then set the return time ``R_jj = 1 + sum_{k != j} p_jk R_kj``.  Used by
    tests to validate the fundamental-matrix route; O(M^4), fine for the
    small chains of the paper.
    """
    matrix = check_square("matrix", matrix)
    count = matrix.shape[0]
    result = np.zeros((count, count))
    ones = np.ones(count - 1)
    for j in range(count):
        keep = [k for k in range(count) if k != j]
        sub = matrix[np.ix_(keep, keep)]
        system = np.eye(count - 1) - sub
        try:
            hitting = np.linalg.solve(system, ones)
        except np.linalg.LinAlgError as error:
            raise ValueError(
                f"first-passage system for destination {j} is singular; "
                "the chain is likely not irreducible"
            ) from error
        for row_index, i in enumerate(keep):
            result[i, j] = hitting[row_index]
        result[j, j] = 1.0 + float(matrix[j, keep] @ hitting)
    return result
