"""Trajectory sampling from a transition matrix.

Used by the sensor simulator (which adds the physical timing on top) and by
tests that verify ergodic averages against analytic quantities.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.utils.rng import RandomState, as_generator
from repro.utils.linalg import is_row_stochastic
from repro.utils.validation import check_index, check_square


def sample_path(
    matrix: np.ndarray,
    steps: int,
    start: Optional[int] = None,
    seed: RandomState = None,
) -> np.ndarray:
    """Sample a state path of length ``steps + 1`` (including the start).

    ``start`` defaults to a uniformly random state.  The coin toss at each
    decision point — the paper's constant-time stateless scheduling
    operation — is an inverse-CDF draw against the cumulative row.
    """
    matrix = check_square("matrix", matrix)
    if not is_row_stochastic(matrix):
        raise ValueError("matrix must be row-stochastic")
    if steps < 0:
        raise ValueError(f"steps must be >= 0, got {steps}")
    count = matrix.shape[0]
    rng = as_generator(seed)
    if start is None:
        start = int(rng.integers(count))
    else:
        start = check_index("start", start, count)
    cumulative = np.cumsum(matrix, axis=1)
    # Guard against rows summing to 1 - 1e-16: force the last bin to 1.
    cumulative[:, -1] = 1.0
    path = np.empty(steps + 1, dtype=np.int64)
    path[0] = start
    draws = rng.random(steps)
    state = start
    for n in range(steps):
        state = int(np.searchsorted(cumulative[state], draws[n], side="right"))
        path[n + 1] = state
    return path


def empirical_transition_matrix(path: np.ndarray, size: int) -> np.ndarray:
    """Maximum-likelihood transition matrix from a sampled path.

    Rows never visited are left uniform so the estimate stays stochastic.
    Used by tests to confirm sampling follows the requested matrix.
    """
    path = np.asarray(path, dtype=np.int64)
    if path.ndim != 1 or path.size < 2:
        raise ValueError("path must be 1-D with at least 2 states")
    if path.min() < 0 or path.max() >= size:
        raise ValueError("path contains states outside [0, size)")
    counts = np.zeros((size, size))
    np.add.at(counts, (path[:-1], path[1:]), 1.0)
    row_sums = counts.sum(axis=1, keepdims=True)
    estimate = np.where(row_sums > 0, counts / np.maximum(row_sums, 1.0),
                        1.0 / size)
    return estimate


def occupation_frequencies(path: np.ndarray, size: int) -> np.ndarray:
    """Fraction of time steps spent in each state along ``path``."""
    path = np.asarray(path, dtype=np.int64)
    if path.ndim != 1 or path.size == 0:
        raise ValueError("path must be a non-empty 1-D array")
    counts = np.bincount(path, minlength=size).astype(float)
    return counts / path.size
