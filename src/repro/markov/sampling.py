"""Trajectory sampling from a transition matrix.

Used by the sensor simulator (which adds the physical timing on top) and by
tests that verify ergodic averages against analytic quantities.

The sampler is split into two stages so whole paths can be pre-sampled
cheaply: the uniforms for every decision point are drawn in one vectorized
RNG call, then :func:`replay_uniforms` walks them through the row CDFs with
a C-implemented inverse-CDF lookup per step.  The walk consumes the RNG
stream exactly like the historical one-``searchsorted``-per-step loop, so
sampled paths are bit-identical to it.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Optional

import numpy as np

from repro.utils.rng import RandomState, as_generator
from repro.utils.linalg import cumulative_rows, is_row_stochastic
from repro.utils.validation import check_index, check_square


def replay_uniforms(
    cumulative: np.ndarray,
    draws: np.ndarray,
    start: int,
) -> np.ndarray:
    """Walk pre-drawn uniforms through row CDFs; return the state path.

    ``cumulative`` is the output of
    :func:`repro.utils.linalg.cumulative_rows`; ``draws`` holds one
    uniform per transition.  Step ``n`` maps ``draws[n]`` through the
    current state's cumulative row with a right-bisection — exactly
    ``np.searchsorted(cumulative[state], u, side="right")``, but via
    :func:`bisect.bisect_right` over plain Python lists, which skips the
    per-call NumPy dispatch overhead that dominates one-draw lookups.
    The returned path has length ``len(draws) + 1`` (start included).
    """
    rows = cumulative.tolist()
    state = int(start)
    path = [state]
    append = path.append
    for u in draws.tolist():
        state = bisect_right(rows[state], u)
        append(state)
    return np.asarray(path, dtype=np.int64)


def sample_path(
    matrix: np.ndarray,
    steps: int,
    start: Optional[int] = None,
    seed: RandomState = None,
) -> np.ndarray:
    """Sample a state path of length ``steps + 1`` (including the start).

    ``start`` defaults to a uniformly random state.  The coin toss at each
    decision point — the paper's constant-time stateless scheduling
    operation — is an inverse-CDF draw against the cumulative row.
    """
    matrix = check_square("matrix", matrix)
    if not is_row_stochastic(matrix):
        raise ValueError("matrix must be row-stochastic")
    if steps < 0:
        raise ValueError(f"steps must be >= 0, got {steps}")
    count = matrix.shape[0]
    rng = as_generator(seed)
    if start is None:
        start = int(rng.integers(count))
    else:
        start = check_index("start", start, count)
    return replay_uniforms(cumulative_rows(matrix), rng.random(steps), start)


def empirical_transition_matrix(path: np.ndarray, size: int) -> np.ndarray:
    """Maximum-likelihood transition matrix from a sampled path.

    Rows never visited are left uniform so the estimate stays stochastic.
    Used by tests to confirm sampling follows the requested matrix.
    """
    path = np.asarray(path, dtype=np.int64)
    if path.ndim != 1 or path.size < 2:
        raise ValueError("path must be 1-D with at least 2 states")
    if path.min() < 0 or path.max() >= size:
        raise ValueError("path contains states outside [0, size)")
    counts = np.zeros((size, size))
    np.add.at(counts, (path[:-1], path[1:]), 1.0)
    row_sums = counts.sum(axis=1, keepdims=True)
    estimate = np.where(row_sums > 0, counts / np.maximum(row_sums, 1.0),
                        1.0 / size)
    return estimate


def occupation_frequencies(path: np.ndarray, size: int) -> np.ndarray:
    """Fraction of time steps spent in each state along ``path``."""
    path = np.asarray(path, dtype=np.int64)
    if path.ndim != 1 or path.size == 0:
        raise ValueError("path must be a non-empty 1-D array")
    counts = np.bincount(path, minlength=size).astype(float)
    return counts / path.size
