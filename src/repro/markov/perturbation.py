"""Schweitzer (1968) perturbation formulas for ergodic chains.

For a differentiable path of transition matrices ``P(t)`` with derivative
``dP`` (row sums zero, so ``P(t)`` stays stochastic):

* stationary distribution:  ``dpi = pi dP Z``            (paper Sec. IV)
* fundamental matrix:       ``dZ = Z dP Z - W dP Z^2``

These are the ingredients of the total cost derivative ``[D_P U]``
(Eq. 10).  The functions below compute both the directional derivatives
(given ``dP``) and the full Jacobian "operators" needed to assemble
``[D_P U]`` without materializing an ``M^2 x M^2`` Jacobian.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.utils.validation import check_square


def stationary_derivative(
    pi: np.ndarray, z: np.ndarray, dp: np.ndarray
) -> np.ndarray:
    """Directional derivative ``dpi = pi dP Z`` for perturbation ``dP``."""
    pi = np.asarray(pi, dtype=float)
    z = check_square("z", z)
    dp = check_square("dp", dp)
    return pi @ dp @ z


def fundamental_derivative(
    pi: np.ndarray,
    z: np.ndarray,
    dp: np.ndarray,
    z2: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Directional derivative ``dZ = Z dP Z - W dP Z^2``.

    ``z2`` may be supplied as a precomputed ``Z @ Z`` (e.g.
    :attr:`~repro.core.state.ChainState.z2`) to skip one dense product.
    """
    pi = np.asarray(pi, dtype=float)
    z = check_square("z", z)
    dp = check_square("dp", dp)
    if z2 is None:
        z2 = z @ z
    w = np.tile(pi, (z.shape[0], 1))
    return z @ dp @ z - w @ dp @ z2


def adjoint_stationary_term(
    pi: np.ndarray, z: np.ndarray, grad_pi: np.ndarray
) -> np.ndarray:
    """Adjoint of ``dP -> dpi`` applied to ``grad_pi``.

    Returns the matrix ``G`` with ``G_kl = pi_k (Z grad_pi)_l`` so that for
    any perturbation ``dP``:

        ``<grad_pi, dpi> = <G, dP>``  (Frobenius inner products).

    This is the first bracket of Eq. (10).
    """
    pi = np.asarray(pi, dtype=float)
    z = check_square("z", z)
    grad_pi = np.asarray(grad_pi, dtype=float)
    return np.outer(pi, z @ grad_pi)


def adjoint_fundamental_term(
    pi: np.ndarray,
    z: np.ndarray,
    grad_z: np.ndarray,
    z2: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Adjoint of ``dP -> dZ`` applied to ``grad_z``.

    Returns ``G`` with ``<grad_z, dZ> = <G, dP>`` for every ``dP``:

        ``G_kl = sum_ij grad_z_ij (z_ik z_lj - pi_k (Z^2)_lj)
               = (Z^T grad_z Z^T)_kl - pi_k (Z^2 grad_z^T 1)_l``

    — the second bracket of Eq. (10), assembled with three matrix products
    instead of a quadruple loop.  ``z2`` may be supplied as a precomputed
    ``Z @ Z`` (the per-iterate cache on
    :class:`~repro.core.state.ChainState`) so repeated adjoint
    evaluations at the same iterate share it.
    """
    pi = np.asarray(pi, dtype=float)
    z = check_square("z", z)
    grad_z = check_square("grad_z", grad_z)
    if z2 is None:
        z2 = z @ z
    first = z.T @ grad_z @ z.T
    column_sums = grad_z.sum(axis=0)  # s_j = sum_i grad_z_ij
    second = np.outer(pi, z2 @ column_sums)
    return first - second
