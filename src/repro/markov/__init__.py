"""Finite Markov chain substrate.

Everything the scheduling model needs from Markov chain theory, computed
with the group generalized inverse machinery of Meyer (1975) that the paper
adopts (Section III-B):

* stationary distributions (three independent solvers),
* the group inverse ``A# `` of ``A = I - P``,
* the fundamental matrix ``Z = (I - P + W)^{-1} = I + P A#``,
* expected first-passage times ``R = (I - Z + J Z_dg) D``,
* Schweitzer (1968) perturbation derivatives ``dpi = pi dP Z`` and
  ``dZ = Z dP Z - W dP Z^2``,
* entropy rate, ergodicity checks, and trajectory sampling.
"""

from repro.markov.chain import MarkovChain
from repro.markov.ergodicity import is_aperiodic, is_ergodic, is_irreducible
from repro.markov.stationary import (
    stationary_distribution,
    stationary_via_eigen,
    stationary_via_group_inverse,
    stationary_via_linear_solve,
    stationary_via_power_iteration,
)
from repro.markov.group_inverse import group_inverse
from repro.markov.fundamental import fundamental_matrix
from repro.markov.sparse import (
    HAVE_SPARSE,
    SparseCoreSolver,
    sparse_fundamental_and_stationary,
    sparse_stationary,
)
from repro.markov.incremental import IncrementalCoreTracker, WoodburyCoreSolver
from repro.markov.passage import (
    first_passage_times,
    first_passage_times_by_solve,
)
from repro.markov.perturbation import (
    stationary_derivative,
    fundamental_derivative,
)
from repro.markov.entropy import entropy_rate
from repro.markov.sampling import replay_uniforms, sample_path

__all__ = [
    "MarkovChain",
    "is_aperiodic",
    "is_ergodic",
    "is_irreducible",
    "stationary_distribution",
    "stationary_via_eigen",
    "stationary_via_group_inverse",
    "stationary_via_linear_solve",
    "stationary_via_power_iteration",
    "group_inverse",
    "fundamental_matrix",
    "HAVE_SPARSE",
    "SparseCoreSolver",
    "sparse_fundamental_and_stationary",
    "sparse_stationary",
    "IncrementalCoreTracker",
    "WoodburyCoreSolver",
    "first_passage_times",
    "first_passage_times_by_solve",
    "stationary_derivative",
    "fundamental_derivative",
    "entropy_rate",
    "replay_uniforms",
    "sample_path",
]
