"""Stationary distribution solvers.

Three independent methods are provided; the default is the direct linear
solve.  Having several lets tests cross-validate them against each other
and lets callers pick the one matching their conditioning needs.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_square


def stationary_via_linear_solve(matrix: np.ndarray) -> np.ndarray:
    """Solve ``pi (I - P) = 0`` with the normalization ``sum(pi) = 1``.

    The singular system is made determinate by replacing one equation with
    the normalization constraint — the standard textbook approach, exact up
    to linear-solver round-off for well-conditioned ergodic chains.
    """
    matrix = check_square("matrix", matrix)
    count = matrix.shape[0]
    # (I - P)^T pi = 0 with last row replaced by ones: sum(pi) = 1.
    system = np.eye(count) - matrix.T
    system[-1, :] = 1.0
    rhs = np.zeros(count)
    rhs[-1] = 1.0
    solution = np.linalg.solve(system, rhs)
    return _sanitize(solution)


#: Above this size ``stationary_via_eigen`` falls back to power iteration
#: instead of the dense ``O(M^3)`` (and iterative, complex-valued)
#: ``np.linalg.eig``.
EIGEN_SIZE_LIMIT = 128


def stationary_via_power_iteration(
    matrix: np.ndarray,
    tol: float = 1e-14,
    max_iterations: int = 100_000,
) -> np.ndarray:
    """Left Perron vector by repeated ``pi <- pi P``.

    ``O(M^2)`` per sweep (``O(nnz)`` in spirit for sparse chains) with
    no dense decomposition, so it scales where ``np.linalg.eig`` does
    not.  Converges at the chain's mixing rate; slowly-mixing chains
    should prefer the direct linear solve.
    """
    matrix = check_square("matrix", matrix)
    count = matrix.shape[0]
    vector = np.full(count, 1.0 / count)
    for _ in range(max_iterations):
        updated = vector @ matrix
        total = updated.sum()
        if total <= 0 or not np.isfinite(total):
            raise ValueError(
                "power iteration diverged; the matrix does not look "
                "stochastic"
            )
        updated = updated / total
        if np.abs(updated - vector).max() <= tol:
            return _sanitize(updated)
        vector = updated
    raise ValueError(
        f"power iteration did not converge in {max_iterations} sweeps "
        f"(tol={tol}); the chain may be periodic or nearly reducible"
    )


def stationary_via_eigen(matrix: np.ndarray) -> np.ndarray:
    """Left Perron eigenvector of ``P`` for eigenvalue 1.

    Dense ``np.linalg.eig`` is ``O(M^3)`` with a large constant and
    complex intermediates, so beyond :data:`EIGEN_SIZE_LIMIT` states
    this delegates to :func:`stationary_via_power_iteration`; the exact
    eigensolver remains the small-``M`` cross-validation reference.
    """
    matrix = check_square("matrix", matrix)
    if matrix.shape[0] > EIGEN_SIZE_LIMIT:
        return stationary_via_power_iteration(matrix)
    eigenvalues, eigenvectors = np.linalg.eig(matrix.T)
    index = int(np.argmin(np.abs(eigenvalues - 1.0)))
    if abs(eigenvalues[index] - 1.0) > 1e-6:
        raise ValueError(
            "matrix has no eigenvalue close to 1; it does not look "
            f"stochastic (closest: {eigenvalues[index]})"
        )
    vector = np.real(eigenvectors[:, index])
    return _sanitize(vector / vector.sum())


def stationary_via_group_inverse(matrix: np.ndarray) -> np.ndarray:
    """Stationary distribution through ``W = I - A A#`` (Meyer, Thm. 2.3).

    This is the paper's Eq. (5): every row of ``W`` equals ``pi``.  Imported
    lazily to avoid a module cycle with :mod:`repro.markov.group_inverse`.
    """
    from repro.markov.group_inverse import group_inverse

    matrix = check_square("matrix", matrix)
    a = np.eye(matrix.shape[0]) - matrix
    w = np.eye(matrix.shape[0]) - a @ group_inverse(matrix)
    return _sanitize(w.mean(axis=0))


def stationary_distribution(
    matrix: np.ndarray, method: str = "solve"
) -> np.ndarray:
    """Stationary distribution of an ergodic chain.

    ``method`` is one of ``"solve"`` (default), ``"eigen"``,
    ``"power"``, or ``"group-inverse"``.
    """
    solvers = {
        "solve": stationary_via_linear_solve,
        "eigen": stationary_via_eigen,
        "power": stationary_via_power_iteration,
        "group-inverse": stationary_via_group_inverse,
    }
    try:
        solver = solvers[method]
    except KeyError:
        raise ValueError(
            f"unknown method {method!r}; valid: {sorted(solvers)}"
        ) from None
    return solver(matrix)


def _sanitize(vector: np.ndarray) -> np.ndarray:
    """Clip tiny negative round-off and renormalize exactly."""
    vector = np.asarray(vector, dtype=float)
    if np.any(vector < -1e-8):
        raise ValueError(
            "stationary solve produced significantly negative entries "
            f"(min {vector.min():.3g}); the chain is likely not ergodic"
        )
    vector = np.clip(vector, 0.0, None)
    total = vector.sum()
    if total <= 0:
        raise ValueError("stationary solve produced a zero vector")
    return vector / total
