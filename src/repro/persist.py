"""Serialization of topologies, matrices, and optimization results.

JSON in, JSON out — the interchange format of the CLI and of anyone
scripting batch experiments.  Matrices are stored as nested lists; all
floats survive a round trip exactly (JSON numbers are doubles).
"""

from __future__ import annotations

import hashlib
import json
import pathlib
from typing import Union

import numpy as np

from repro.core.result import OptimizationResult
from repro.topology.model import Topology

PathLike = Union[str, pathlib.Path]

#: Schema tag written into every file for forward compatibility.
TOPOLOGY_SCHEMA = "repro/topology/v1"
MATRIX_SCHEMA = "repro/matrix/v1"
RESULT_SCHEMA = "repro/result/v1"

#: Service-layer schema tags (:mod:`repro.service`): the canonical job
#: request and the content-addressed store record wrapping a completed
#: job's result payload.
SERVICE_REQUEST_SCHEMA = "repro/service-request/v1"
SERVICE_RESULT_SCHEMA = "repro/service-result/v1"

#: Digest algorithm used for content addressing throughout the repo
#: (shared-memory transport dedup today, result caching tomorrow).
DIGEST_ALGORITHM = "sha256"


def array_digest(array: np.ndarray) -> str:
    """Content digest of an ndarray: dtype, shape, layout, and bytes.

    Two arrays share a digest iff they are value- *and* layout-identical,
    which is the equivalence the shared-memory transport needs: a
    reattached segment must reproduce the source array bit for bit.
    Fortran-ordered arrays hash their transpose's bytes (tagged ``F``)
    so the digest never has to materialize a contiguous copy.
    """
    if array.flags.c_contiguous:
        buffer, order = array, "C"
    elif array.flags.f_contiguous:
        buffer, order = array.T, "F"
    else:
        buffer, order = np.ascontiguousarray(array), "C"
    hasher = hashlib.new(DIGEST_ALGORITHM)
    header = f"{array.dtype.str}|{array.shape}|{order}|".encode()
    hasher.update(header)
    hasher.update(buffer.tobytes() if buffer.dtype.hasobject else buffer)
    return hasher.hexdigest()


def payload_digest(data: bytes) -> str:
    """Content digest of an opaque byte payload (e.g. a pickled object)."""
    return hashlib.new(DIGEST_ALGORITHM, data).hexdigest()


def canonical_json(value) -> str:
    """The canonical JSON encoding used for content addressing.

    Sorted keys and no whitespace, so two value-equal structures encode
    to identical bytes; floats use ``repr`` (via ``json``), which
    round-trips doubles exactly.
    """
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


def json_digest(value) -> str:
    """Content digest of a JSON-serializable structure.

    The digest of :func:`canonical_json`'s bytes — the cell identity
    used by the sweep harness to deduplicate scenario cells and resume
    interrupted sweeps (:mod:`repro.sweep`).
    """
    return payload_digest(canonical_json(value).encode("utf-8"))


def topology_to_dict(topology: Topology) -> dict:
    """Serializable description of a topology.

    A sparse-support topology's adjacency mask is stored as the list of
    feasible off-diagonal legs ``[j, k]`` (the diagonal is always
    feasible) — compact for the street-grid families, whose masks have
    ``O(M)`` true entries out of ``M^2``.  Unrestricted topologies omit
    the key entirely, keeping their files byte-identical to the v1
    format readers already accept.
    """
    payload = {
        "schema": TOPOLOGY_SCHEMA,
        "name": topology.name,
        "positions": [p.as_tuple() for p in topology.positions],
        "target_shares": topology.target_shares.tolist(),
        "sensing_radius": topology.sensing_radius,
        "speed": topology.speed,
        "pause_times": topology.pause_times.tolist(),
    }
    adjacency = topology.adjacency
    if adjacency is not None:
        np.fill_diagonal(adjacency, False)
        payload["adjacency_legs"] = np.argwhere(adjacency).tolist()
    return payload


def topology_from_dict(data: dict) -> Topology:
    """Rebuild a :class:`Topology`; derived matrices are recomputed."""
    schema = data.get("schema")
    if schema != TOPOLOGY_SCHEMA:
        raise ValueError(
            f"expected schema {TOPOLOGY_SCHEMA!r}, got {schema!r}"
        )
    adjacency = None
    legs = data.get("adjacency_legs")
    if legs is not None:
        count = len(data["positions"])
        adjacency = np.zeros((count, count), dtype=bool)
        for j, k in legs:
            adjacency[int(j), int(k)] = True
        np.fill_diagonal(adjacency, True)
    return Topology(
        positions=[tuple(p) for p in data["positions"]],
        target_shares=data["target_shares"],
        sensing_radius=data["sensing_radius"],
        speed=data.get("speed", 10.0),
        pause_times=data.get("pause_times", 10.0),
        name=data.get("name"),
        adjacency=adjacency,
    )


def save_topology(topology: Topology, path: PathLike) -> None:
    """Write a topology as JSON."""
    pathlib.Path(path).write_text(
        json.dumps(topology_to_dict(topology), indent=2) + "\n"
    )


def load_topology(path: PathLike) -> Topology:
    """Read a topology written by :func:`save_topology`."""
    return topology_from_dict(json.loads(pathlib.Path(path).read_text()))


def save_matrix(matrix: np.ndarray, path: PathLike) -> None:
    """Write a transition matrix as JSON."""
    matrix = np.asarray(matrix, dtype=float)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise ValueError(f"matrix must be square, got {matrix.shape}")
    payload = {"schema": MATRIX_SCHEMA, "matrix": matrix.tolist()}
    pathlib.Path(path).write_text(json.dumps(payload, indent=2) + "\n")


def load_matrix(path: PathLike) -> np.ndarray:
    """Read a matrix written by :func:`save_matrix`."""
    data = json.loads(pathlib.Path(path).read_text())
    schema = data.get("schema")
    if schema != MATRIX_SCHEMA:
        raise ValueError(
            f"expected schema {MATRIX_SCHEMA!r}, got {schema!r}"
        )
    matrix = np.asarray(data["matrix"], dtype=float)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise ValueError(f"stored matrix is not square: {matrix.shape}")
    return matrix


def result_to_dict(result: OptimizationResult) -> dict:
    """Serializable summary of an optimization result.

    The per-iteration history is reduced to its cost trace (the full
    record objects are session artifacts, not interchange data).
    """
    return {
        "schema": RESULT_SCHEMA,
        "u_eps": result.u_eps,
        "u": result.u,
        "delta_c": result.delta_c,
        "e_bar": result.e_bar,
        "iterations": result.iterations,
        "converged": result.converged,
        "stop_reason": result.stop_reason,
        "best_u_eps": result.best_u_eps,
        "matrix": np.asarray(result.matrix, dtype=float).tolist(),
        "best_matrix": np.asarray(
            result.best_matrix, dtype=float
        ).tolist(),
        "cost_trace": result.cost_trace().tolist(),
    }


def save_result(result: OptimizationResult, path: PathLike) -> None:
    """Write an optimization result summary as JSON."""
    pathlib.Path(path).write_text(
        json.dumps(result_to_dict(result), indent=2) + "\n"
    )


def pack_service_record(
    request_digest: str, kind: str, payload: dict
) -> dict:
    """Wrap a completed job's ``payload`` in a verifiable store record.

    The record carries the request digest it is keyed under and a digest
    of its own canonical-JSON payload, so a reader can detect both a
    mis-filed record and a corrupted/truncated one without any other
    context (:func:`verify_service_record`).
    """
    return {
        "schema": SERVICE_RESULT_SCHEMA,
        "request": request_digest,
        "kind": kind,
        "payload": payload,
        "payload_digest": json_digest(payload),
    }


def verify_service_record(record, expected_digest=None) -> dict:
    """Validate a store record's integrity; return its payload.

    Raises :class:`ValueError` when the record is not a dict, carries
    the wrong schema tag, is keyed under a different request digest than
    ``expected_digest``, or its payload does not hash to the recorded
    ``payload_digest`` (bit rot, torn write, or tampering) — the store
    treats any of these as a cache miss and recomputes.
    """
    if not isinstance(record, dict):
        raise ValueError(
            f"service record must be a dict, got {type(record).__name__}"
        )
    schema = record.get("schema")
    if schema != SERVICE_RESULT_SCHEMA:
        raise ValueError(
            f"expected schema {SERVICE_RESULT_SCHEMA!r}, got {schema!r}"
        )
    if expected_digest is not None and (
        record.get("request") != expected_digest
    ):
        raise ValueError(
            f"record is keyed for request {record.get('request')!r}, "
            f"expected {expected_digest!r}"
        )
    payload = record.get("payload")
    recorded = record.get("payload_digest")
    actual = json_digest(payload)
    if recorded != actual:
        raise ValueError(
            f"payload digest mismatch: recorded {recorded!r}, actual "
            f"{actual!r}"
        )
    return payload
