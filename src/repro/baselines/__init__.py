"""Baseline schedulers to compare against the steepest-descent optimizer.

* :mod:`repro.baselines.mcmc` — Metropolis-Hastings chains that target a
  prescribed stationary distribution (the MCMC approach Section II notes
  can handle *only* the coverage-time objective).
* :mod:`repro.baselines.heuristics` — stateless policies practitioners
  would reach for first: uniform random walk, target-proportional jumps,
  and distance-biased (nearest-neighbor-ish) walks.
* :mod:`repro.baselines.maxent` — the maximum-entropy chain with a given
  stationary distribution (Burda et al. construction), the natural
  entropy-optimal point of comparison for Section VII.
"""

from repro.baselines.mcmc import (
    metropolis_hastings_matrix,
    stationary_for_target_coverage,
)
from repro.baselines.heuristics import (
    nearest_neighbor_matrix,
    proportional_matrix,
    uniform_policy_matrix,
)
from repro.baselines.maxent import max_entropy_matrix

__all__ = [
    "metropolis_hastings_matrix",
    "stationary_for_target_coverage",
    "uniform_policy_matrix",
    "proportional_matrix",
    "nearest_neighbor_matrix",
    "max_entropy_matrix",
]
