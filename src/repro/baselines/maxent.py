"""Maximum-entropy chains (Section VII's entropy objective, stand-alone).

Two classical constructions:

* With a **prescribed stationary distribution** ``pi`` and unconstrained
  support, the chain of maximal entropy rate is the i.i.d. chain
  ``p_ij = pi_j``, whose entropy rate equals the Shannon entropy
  ``H(pi)`` — the upper bound for any chain with that stationary law.
* With a **support constraint** (adjacency matrix) the maximal-entropy
  random walk is the Parry measure / Burda et al. construction from the
  leading eigenpair of the adjacency matrix; its entropy rate is
  ``ln lambda_max``.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.utils.validation import check_distribution, check_square


def max_entropy_matrix(
    pi: Optional[np.ndarray] = None,
    adjacency: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Maximum-entropy-rate transition matrix.

    Exactly one of ``pi`` (prescribed stationary distribution, free
    support) or ``adjacency`` (support constraint, free stationary
    distribution) must be given.
    """
    if (pi is None) == (adjacency is None):
        raise ValueError("pass exactly one of pi or adjacency")
    if pi is not None:
        pi = check_distribution("pi", pi)
        if np.any(pi <= 0):
            raise ValueError("pi must be strictly positive")
        return np.tile(pi, (pi.shape[0], 1))
    return _parry_matrix(adjacency)


def _parry_matrix(adjacency: np.ndarray) -> np.ndarray:
    """Parry measure: ``p_ij = A_ij psi_j / (lambda psi_i)``.

    ``(lambda, psi)`` is the Perron eigenpair of the (irreducible,
    0/1-patterned) adjacency matrix; the resulting chain maximizes the
    entropy rate among all chains supported on ``A`` and attains
    ``H = ln(lambda)``.
    """
    adjacency = check_square("adjacency", adjacency)
    if np.any(adjacency < 0):
        raise ValueError("adjacency must be non-negative")
    binary = (adjacency > 0).astype(float)
    eigenvalues, eigenvectors = np.linalg.eig(binary)
    index = int(np.argmax(eigenvalues.real))
    lam = float(eigenvalues[index].real)
    psi = eigenvectors[:, index].real
    if np.all(psi <= 0):
        psi = -psi
    if np.any(psi <= 0) or lam <= 0:
        raise ValueError(
            "adjacency matrix is not irreducible: the Perron eigenvector "
            "has non-positive entries"
        )
    matrix = binary * psi[None, :] / (lam * psi[:, None])
    sums = matrix.sum(axis=1)
    if not np.allclose(sums, 1.0, atol=1e-8):
        raise ValueError(
            "Parry construction failed to produce a stochastic matrix "
            f"(row sums {sums}); is the adjacency strongly connected?"
        )
    # Clean round-off so downstream stochasticity checks pass exactly.
    return matrix / sums[:, None]
