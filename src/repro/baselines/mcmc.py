"""Metropolis-Hastings baseline (Section II's MCMC comparison).

MCMC can construct a chain with any prescribed stationary distribution —
but, as the paper stresses, that addresses *only* the coverage-time
objective: it can neither trade coverage off against exposure time, nor
natively account for the pass-by coverage and variable transition
durations that decouple the stationary distribution from the achieved
coverage shares.  The helpers here give that baseline its best shot:

* :func:`metropolis_hastings_matrix` — the standard MH chain with a
  uniform proposal over the other PoIs.
* :func:`stationary_for_target_coverage` — a fixed-point correction that
  searches for the stationary distribution whose *achieved* coverage
  shares (Eq. 2, pass-bys and durations included) match the target.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.topology.model import Topology
from repro.utils.validation import check_distribution


def metropolis_hastings_matrix(
    target: np.ndarray,
    proposal: Optional[np.ndarray] = None,
) -> np.ndarray:
    """MH transition matrix with stationary distribution ``target``.

    ``proposal`` defaults to the uniform proposal over the *other* states,
    ``q_ij = 1/(M-1)`` for ``j != i``.  The returned matrix satisfies
    detailed balance with ``target`` and is ergodic whenever ``target`` is
    strictly positive.
    """
    target = check_distribution("target", target)
    size = target.shape[0]
    if np.any(target <= 0):
        raise ValueError(
            "target must be strictly positive for an ergodic MH chain"
        )
    if proposal is None:
        proposal = np.full((size, size), 1.0 / (size - 1))
        np.fill_diagonal(proposal, 0.0)
    else:
        proposal = np.asarray(proposal, dtype=float)
        if proposal.shape != (size, size):
            raise ValueError(
                f"proposal must have shape {(size, size)}, "
                f"got {proposal.shape}"
            )
        if np.any(proposal < 0):
            raise ValueError("proposal must be non-negative")
        if not np.allclose(proposal.sum(axis=1), 1.0, atol=1e-8):
            raise ValueError("proposal must be row-stochastic")

    matrix = np.zeros((size, size))
    for i in range(size):
        for j in range(size):
            if i == j or proposal[i, j] == 0.0:
                continue
            if proposal[j, i] == 0.0:
                # Irreversible proposal edge: MH rejects it always.
                continue
            ratio = (target[j] * proposal[j, i]) / (
                target[i] * proposal[i, j]
            )
            matrix[i, j] = proposal[i, j] * min(1.0, ratio)
        matrix[i, i] = 1.0 - matrix[i].sum()
    return matrix


def stationary_for_target_coverage(
    topology: Topology,
    iterations: int = 200,
    damping: float = 0.5,
    tol: float = 1e-10,
) -> Tuple[np.ndarray, np.ndarray]:
    """Search for the MH chain whose achieved coverage matches the target.

    Starting from ``pi = Phi``, repeatedly builds the MH matrix, computes
    its achieved coverage shares ``C-bar`` (Eq. 2 — including pass-by
    coverage and true durations), and applies the multiplicative update
    ``pi <- pi * (Phi / C-bar)^damping`` (renormalized).  Returns the pair
    ``(pi, matrix)`` at the best iterate found.

    Convergence is not guaranteed — the fixed point may not exist when
    pass-by coverage alone exceeds a PoI's target — but on the paper's
    topologies it reliably reduces the coverage deviation by orders of
    magnitude relative to the naive ``pi = Phi`` chain, making it a fair
    baseline for the coverage-only objective.
    """
    from repro.core.cost import CostWeights, CoverageCost

    if iterations < 1:
        raise ValueError(f"iterations must be >= 1, got {iterations}")
    if not 0.0 < damping <= 1.0:
        raise ValueError(f"damping must lie in (0, 1], got {damping}")
    phi = topology.target_shares
    if np.any(phi <= 0):
        raise ValueError(
            "all target shares must be positive for the MCMC baseline"
        )
    cost = CoverageCost(
        topology, CostWeights(alpha=1.0, beta=0.0, epsilon=1e-6)
    )
    pi = phi.copy()
    best_pi, best_matrix, best_error = None, None, np.inf
    for _ in range(iterations):
        matrix = metropolis_hastings_matrix(pi)
        achieved = cost.coverage_shares(matrix)
        error = float(np.max(np.abs(achieved - phi)))
        if error < best_error:
            best_error, best_pi, best_matrix = error, pi.copy(), matrix
        if error < tol:
            break
        with np.errstate(divide="ignore", invalid="ignore"):
            ratio = np.where(achieved > 0, phi / achieved, 1.0)
        pi = pi * ratio**damping
        pi = np.clip(pi, 1e-12, None)
        pi = pi / pi.sum()
    return best_pi, best_matrix
