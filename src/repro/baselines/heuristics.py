"""Stateless heuristic policies.

The "first thing a practitioner would try" baselines: they need no
optimization, only the topology and the target allocation.  None of them
can trade coverage accuracy off against exposure time — which is exactly
the gap the paper's optimizer fills.
"""

from __future__ import annotations

import numpy as np

from repro.topology.model import Topology
from repro.utils.validation import check_distribution, check_probability


def uniform_policy_matrix(size: int, stay_probability: float = 0.0
                          ) -> np.ndarray:
    """Uniform random walk over the other PoIs.

    ``stay_probability`` puts mass on the self-loop; the rest is split
    evenly among the remaining PoIs.  With ``stay_probability = 0`` this
    is the most exploratory stateless policy (and minimizes the maximum
    per-PoI exposure on symmetric topologies).
    """
    if size < 2:
        raise ValueError(f"size must be >= 2, got {size}")
    stay = check_probability("stay_probability", stay_probability)
    if stay >= 1.0:
        raise ValueError("stay_probability must be < 1 for ergodicity")
    matrix = np.full((size, size), (1.0 - stay) / (size - 1))
    np.fill_diagonal(matrix, stay)
    return matrix


def proportional_matrix(target_shares: np.ndarray) -> np.ndarray:
    """I.i.d. jumps to the target allocation: ``p_ij = Phi_j``.

    The next PoI is drawn from ``Phi`` regardless of the current location
    (lottery-scheduling style).  Its stationary distribution is exactly
    ``Phi`` — but its *achieved coverage* is not, because travel time,
    pause time, and pass-by coverage all distort the mapping.
    """
    phi = check_distribution("target_shares", target_shares)
    if np.any(phi <= 0):
        raise ValueError(
            "all target shares must be positive for an ergodic policy"
        )
    return np.tile(phi, (phi.shape[0], 1))


def nearest_neighbor_matrix(
    topology: Topology,
    temperature: float = 0.25,
    stay_probability: float = 0.0,
) -> np.ndarray:
    """Distance-biased walk: ``p_ij ~ exp(-d_ij / (temperature * scale))``.

    ``scale`` is the mean off-diagonal distance, so ``temperature``
    controls locality in topology-independent units: small values approach
    a deterministic nearest-neighbor tour; large values approach the
    uniform walk.  Minimizes travel energy at the cost of long exposure
    times for far-apart PoIs.
    """
    if temperature <= 0:
        raise ValueError(f"temperature must be > 0, got {temperature}")
    stay = check_probability("stay_probability", stay_probability)
    if stay >= 1.0:
        raise ValueError("stay_probability must be < 1 for ergodicity")
    distances = topology.distances
    size = topology.size
    off_diagonal = distances[~np.eye(size, dtype=bool)]
    scale = float(off_diagonal.mean())
    weights = np.exp(-distances / (temperature * scale))
    np.fill_diagonal(weights, 0.0)
    weights = weights / weights.sum(axis=1, keepdims=True)
    matrix = (1.0 - stay) * weights
    np.fill_diagonal(matrix, stay)
    return matrix
