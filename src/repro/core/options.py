"""Shared option dataclasses for the optimizer variants.

Every optimizer's knobs derive from :class:`OptimizerOptions`, which
carries the fields all variants understand — the iteration budget, the
relative improvement tolerance, and the history/checkpoint recording
switches.  Line-search optimizers additionally derive from
:class:`SearchOptions`, which adds the conservative-trisection knobs of
:mod:`repro.core.linesearch`.  Subclasses redeclare inherited fields to
change their defaults (e.g. the basic algorithm's looser ``rtol``).

The shared base is what lets :func:`repro.core.api.optimize` treat the
variants uniformly: :func:`coerce_options` turns a plain ``dict`` into
the right options class with a clear error naming any unknown keys, so
``repro.optimize(..., options=dict(max_iterations=100))`` works for
every method.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Mapping, Optional, Type


@dataclass(frozen=True)
class OptimizerOptions:
    """Knobs shared by every optimizer variant.

    ``max_iterations`` bounds the outer descent loop; ``rtol`` is the
    relative improvement tolerance the variant's stopping rule uses;
    ``record_history`` toggles per-iteration
    :class:`~repro.core.result.IterationRecord` collection; a positive
    ``checkpoint_every`` snapshots the iterate matrix every that many
    iterations.
    """

    max_iterations: int = 500
    rtol: float = 1e-12
    record_history: bool = True
    checkpoint_every: int = 0

    def __post_init__(self) -> None:
        if self.max_iterations < 1:
            raise ValueError("max_iterations must be >= 1")
        if self.checkpoint_every < 0:
            raise ValueError("checkpoint_every must be >= 0")


@dataclass(frozen=True)
class SearchOptions(OptimizerOptions):
    """Adds the conservative-trisection line-search knobs.

    ``trisection_rounds`` refinement rounds follow a geometric pre-sweep
    of ``geometric_decades`` probes (see
    :func:`repro.core.linesearch.trisection_search`).
    """

    trisection_rounds: int = 40
    geometric_decades: int = 12

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.trisection_rounds < 1:
            raise ValueError(
                f"trisection_rounds must be >= 1, "
                f"got {self.trisection_rounds}"
            )
        if self.geometric_decades < 0:
            raise ValueError(
                f"geometric_decades must be >= 0, "
                f"got {self.geometric_decades}"
            )


def coerce_options(
    options_class: Type[OptimizerOptions],
    value,
    method: Optional[str] = None,
):
    """Normalize a user-supplied ``options`` argument.

    ``None`` passes through (the optimizer applies its defaults), an
    instance of ``options_class`` passes through unchanged, and a
    mapping is expanded into ``options_class(**value)`` after rejecting
    unknown keys with a :class:`ValueError` that names both the
    offenders and the valid field set.  Any other type — including an
    options instance for a *different* method — raises :class:`TypeError`.
    """
    label = f"method {method!r}" if method else options_class.__name__
    if value is None or isinstance(value, options_class):
        return value
    if isinstance(value, OptimizerOptions):
        raise TypeError(
            f"{label} expects {options_class.__name__}, "
            f"got {type(value).__name__}"
        )
    if isinstance(value, Mapping):
        valid = [f.name for f in fields(options_class)]
        unknown = sorted(set(value) - set(valid))
        if unknown:
            raise ValueError(
                f"unknown option(s) for {label}: {', '.join(unknown)}; "
                f"valid options: {', '.join(sorted(valid))}"
            )
        return options_class(**dict(value))
    raise TypeError(
        f"{label} options must be None, a mapping, or "
        f"{options_class.__name__}; got {type(value).__name__}"
    )
