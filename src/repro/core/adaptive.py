"""Variants V2+V3: random initialization with adaptive step size.

Each iteration performs an exact line search along the projected steepest
descent ray using the conservative trisection of
:mod:`repro.core.linesearch`.  The algorithm terminates when the line
search returns ``dt* = 0``: no improving step exists along the computed
descent direction, i.e. the iterate is (numerically) a local optimum —
exactly the paper's definition in Section V.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.cost import CoverageCost
from repro.core.initializers import paper_random_matrix
from repro.core.linesearch import feasible_step_bound, trisection_search
from repro.core.options import SearchOptions
from repro.core.result import IterationRecord, OptimizationResult
from repro.utils import perf
from repro.utils.rng import RandomState


@dataclass(frozen=True)
class AdaptiveOptions(SearchOptions):
    """Knobs of the adaptive algorithm (V2 + V3).

    ``reuse_linesearch_state`` hands the line search's winning probe's
    ``(pi, Z)`` to the accepted iterate instead of refactorizing from
    scratch; disable it only to cross-check the two paths.
    """

    max_iterations: int = 500
    reuse_linesearch_state: bool = True


def optimize_adaptive(
    cost: CoverageCost,
    initial: Optional[np.ndarray] = None,
    seed: RandomState = None,
    options: Optional[AdaptiveOptions] = None,
) -> OptimizationResult:
    """Run the adaptive algorithm on ``cost``.

    ``initial`` defaults to the paper's V2 random matrix drawn with
    ``seed``.  Returns with ``stop_reason = "local_optimum"`` when the line
    search finds no improving step — the behavior Fig. 2 measures.
    """
    options = options or AdaptiveOptions()
    started = time.perf_counter()
    with perf.perf_scope() as counters:
        matrix = (
            paper_random_matrix(cost.size, seed=seed, support=cost.support)
            if initial is None
            else np.array(initial, dtype=float)
        )
        state = cost.build_state(matrix)
        breakdown = cost.evaluate(state)
        history = []
        checkpoints = []
        stop_reason = "max_iterations"
        converged = False
        iteration = 0
        accepted_steps = 0
        accept_factorizations = 0

        for iteration in range(1, options.max_iterations + 1):
            direction = cost.descent_direction(state)
            gradient_norm = float(np.linalg.norm(direction))
            bound = feasible_step_bound(state.p, direction)

            ray = cost.ray_batch(state.p, direction)
            search = trisection_search(
                upper=bound,
                baseline=breakdown.u_eps,
                rounds=options.trisection_rounds,
                improvement_rtol=options.rtol,
                geometric_decades=options.geometric_decades,
                batch_objective=ray,
            )
            if search.step == 0.0:
                stop_reason = "local_optimum"
                converged = True
                iteration -= 1
                break

            build_start = counters.factorizations
            next_state = (
                ray.state_at(search.step)
                if options.reuse_linesearch_state else None
            )
            if next_state is None:
                next_state = cost.build_state(
                    state.p + search.step * direction, check=False
                )
            state = next_state
            breakdown = cost.evaluate(state)
            accepted_steps += 1
            accept_factorizations += counters.factorizations - build_start
            if (
                options.checkpoint_every
                and iteration % options.checkpoint_every == 0
            ):
                checkpoints.append((iteration, state.p.copy()))
            if options.record_history:
                history.append(
                    IterationRecord(
                        iteration=iteration,
                        u_eps=breakdown.u_eps,
                        u=breakdown.u,
                        delta_c=breakdown.delta_c,
                        e_bar=breakdown.e_bar,
                        step=search.step,
                        gradient_norm=gradient_norm,
                    )
                )

    return OptimizationResult(
        matrix=state.p.copy(),
        u_eps=breakdown.u_eps,
        u=breakdown.u,
        delta_c=breakdown.delta_c,
        e_bar=breakdown.e_bar,
        iterations=iteration,
        converged=converged,
        stop_reason=stop_reason,
        history=history,
        checkpoints=checkpoints,
        perf=perf.OptimizerPerf.from_counters(
            counters,
            accepted_steps=accepted_steps,
            accept_factorizations=accept_factorizations,
            seconds=time.perf_counter() - started,
        ),
    )
