"""Mirror descent in softmax coordinates (extension, ablation A5).

The paper optimizes directly over the transition-matrix polytope, using a
projection to stay row-stochastic and a log-barrier to stay off the
boundary.  The textbook alternative reparametrizes each row through a
softmax:

    ``p_ij = exp(q_ij) / sum_k exp(q_ik)``,

making every ``Q`` in ``R^{M x M}`` a strictly positive stochastic matrix
— no projection, no feasibility bounds, no barrier blow-ups.  The chain
rule against the paper's total derivative ``[D_P U]`` gives

    ``dU/dq_ij = p_ij ([D_P U]_ij - sum_k p_ik [D_P U]_ik)``,

i.e. the softmax Jacobian applied row-wise.  Updates use gradient descent
with momentum and a line search over the step size in ``Q``-space.

This optimizer exists to quantify the design choice (see ablation A5):
it is *not* part of the paper's method.  In practice it trades the
barrier's ill-conditioning for the softmax's own flatness near
deterministic rows; neither dominates, which is itself a finding.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.cost import CoverageCost
from repro.core.linesearch import trisection_search
from repro.core.options import SearchOptions
from repro.core.result import IterationRecord, OptimizationResult
from repro.core.state import ChainState
from repro.utils.rng import RandomState, as_generator


@dataclass(frozen=True)
class MirrorOptions(SearchOptions):
    """Knobs of the mirror-descent optimizer.

    ``momentum`` is classical heavy-ball momentum on the ``Q``-space
    gradient; ``max_logit`` clips ``Q`` entries to keep the softmax away
    from exactly deterministic rows (the analogue of the paper's
    epsilon barrier, but acting on the parametrization).
    """

    max_iterations: int = 400
    trisection_rounds: int = 20
    geometric_decades: int = 10
    momentum: float = 0.5
    max_logit: float = 30.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if not 0.0 <= self.momentum < 1.0:
            raise ValueError(
                f"momentum must lie in [0, 1), got {self.momentum}"
            )
        if self.max_logit <= 0:
            raise ValueError("max_logit must be > 0")


def softmax_rows(logits: np.ndarray) -> np.ndarray:
    """Row-wise softmax with the usual max-shift stabilization."""
    shifted = logits - logits.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=1, keepdims=True)


def logits_of(matrix: np.ndarray, floor: float = 1e-12) -> np.ndarray:
    """A logit preimage of a positive stochastic matrix (log rows)."""
    matrix = np.asarray(matrix, dtype=float)
    return np.log(np.clip(matrix, floor, None))


def gradient_in_logits(
    p: np.ndarray, gradient_p: np.ndarray
) -> np.ndarray:
    """Chain rule through the row softmax.

    ``dU/dQ = P * (G - rowsum(P * G))`` where ``G = [D_P U]``; each row
    of the result automatically sums to zero (softmax gauge invariance).
    """
    inner = (p * gradient_p).sum(axis=1, keepdims=True)
    return p * (gradient_p - inner)


def optimize_mirror(
    cost: CoverageCost,
    initial: Optional[np.ndarray] = None,
    seed: RandomState = None,
    options: Optional[MirrorOptions] = None,
) -> OptimizationResult:
    """Minimize ``cost`` by mirror descent in softmax coordinates.

    ``initial`` is a transition matrix (defaults to uniform); ``seed`` is
    accepted for interface compatibility with the other optimizers and
    used only when ``initial`` is None and random initialization is
    desired by passing a generator — the default start is deterministic.
    """
    from repro.core.initializers import uniform_matrix

    options = options or MirrorOptions()
    if cost.support is not None:
        raise ValueError(
            "mirror descent parametrizes strictly positive rows via a "
            "softmax, which cannot represent the zero entries a "
            "support-restricted (adjacency) topology requires; use the "
            "projected-descent optimizers instead"
        )
    _ = as_generator(seed)  # reserved; keeps the optimizer signature
    if initial is None:
        matrix = uniform_matrix(cost.size)
    else:
        matrix = np.array(initial, dtype=float)
    logits = logits_of(matrix)
    state = ChainState.from_matrix(softmax_rows(logits), check=False)
    breakdown = cost.evaluate(state)
    velocity = np.zeros_like(logits)
    history = []
    checkpoints = []
    stop_reason = "max_iterations"
    converged = False
    iteration = 0

    for iteration in range(1, options.max_iterations + 1):
        gradient_p = cost.gradient(state)
        gradient_q = gradient_in_logits(state.p, gradient_p)
        velocity = options.momentum * velocity - gradient_q
        gradient_norm = float(np.linalg.norm(gradient_q))

        def ray_batch(steps, _logits=logits, _velocity=velocity):
            steps = np.asarray(steps, dtype=float)
            stack = np.clip(
                _logits[None] + steps[:, None, None] * _velocity[None],
                -options.max_logit, options.max_logit,
            )
            matrices = np.stack([softmax_rows(q) for q in stack])
            return cost.batch_values(matrices)

        # One full step may traverse the clipped logit box.
        velocity_scale = float(np.abs(velocity).max())
        if velocity_scale <= 0.0:
            stop_reason = "zero_gradient"
            converged = True
            iteration -= 1
            break
        search = trisection_search(
            upper=2.0 * options.max_logit / velocity_scale,
            baseline=breakdown.u_eps,
            rounds=options.trisection_rounds,
            geometric_decades=options.geometric_decades,
            improvement_rtol=options.rtol,
            batch_objective=ray_batch,
        )
        if search.step == 0.0:
            stop_reason = "local_optimum"
            converged = True
            iteration -= 1
            break
        logits = np.clip(
            logits + search.step * velocity,
            -options.max_logit, options.max_logit,
        )
        state = ChainState.from_matrix(softmax_rows(logits), check=False)
        breakdown = cost.evaluate(state)
        if (
            options.checkpoint_every
            and iteration % options.checkpoint_every == 0
        ):
            checkpoints.append((iteration, state.p.copy()))
        if options.record_history:
            history.append(
                IterationRecord(
                    iteration=iteration,
                    u_eps=breakdown.u_eps,
                    u=breakdown.u,
                    delta_c=breakdown.delta_c,
                    e_bar=breakdown.e_bar,
                    step=search.step,
                    gradient_norm=gradient_norm,
                )
            )

    return OptimizationResult(
        matrix=state.p.copy(),
        u_eps=breakdown.u_eps,
        u=breakdown.u,
        delta_c=breakdown.delta_c,
        e_bar=breakdown.e_bar,
        iterations=iteration,
        converged=converged,
        stop_reason=stop_reason,
        history=history,
        checkpoints=checkpoints,
    )
