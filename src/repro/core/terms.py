"""Objective terms (the ``CostTerm`` protocol) and their analytic partials.

The cost ``U`` is a sum of terms, each a function of the chain state
``(pi, Z, P)``.  A term contributes its value and the three partials

    ``dU/dpi`` (vector), ``dU/dZ`` (matrix), ``dU/dP`` (matrix),

which the gradient engine combines with the Schweitzer adjoints into the
total derivative ``[D_P U]`` of Eq. (10).  Terms may return ``None`` for a
partial that is identically zero, which the engine skips.

The paper's terms:

* :class:`CoverageDeviationTerm` — ``sum_i (alpha_i / 2) c_i^2`` with
  ``c_i = sum_{j,k} pi_j p_jk (T_{jk,i} - Phi_i T_jk)`` (Eq. 9, first sum).
* :class:`ExposureTerm` — ``sum_i (beta_i / 2) E-bar_i^2`` (Eq. 9, second
  sum, written via the fundamental matrix).
* :class:`EnergyTerm` — ``(w/2) (D - gamma)^2`` with
  ``D = sum_i pi_i sum_{j != i} p_ij d_ij`` (Section VII).
* :class:`EntropyTerm` — ``-w H`` with the chain entropy rate ``H``
  (Section VII), i.e. entropy *maximization* inside a minimization.

Plugin terms beyond the paper (registered in
:data:`repro.core.registry.TERM_REGISTRY`, derivations in
``docs/math.md`` §9):

* :class:`WorstExposureTerm` — softmax-smoothed minimax worst-PoI
  exposure (Pinto et al., multi-agent persistent monitoring).
* :class:`KCoverageShortfallTerm` — squared-hinge shortfall of the
  per-PoI ``k``-coverage probability for a team of independent sensors
  (Iyer & Manjunath, k-coverage limit laws).
* :class:`PeriodicityTerm` — squared-hinge penalty on Kac return times
  exceeding per-PoI visit periods (point sweep coverage).
"""

from __future__ import annotations

import abc
import math
from typing import NamedTuple, Optional

import numpy as np

from repro.core.state import ChainState
from repro.utils.validation import check_square


def broadcast_weights(name: str, weights, size: int) -> np.ndarray:
    """Expand a scalar or per-PoI weight spec into a length-``size`` array."""
    array = np.broadcast_to(np.asarray(weights, dtype=float), (size,)).copy()
    if np.any(array < 0) or not np.all(np.isfinite(array)):
        raise ValueError(f"{name} weights must be finite and >= 0")
    return array


class TermBatch(NamedTuple):
    """The shared per-probe arrays a batched cost evaluation computes.

    Handed to :meth:`CostTerm.batch_value` so plugin terms ride the
    line search's stacked evaluation instead of forcing ``k`` scalar
    state builds.  ``exposures`` rows are only meaningful where the
    caller's feasibility mask holds — infeasible probes map to ``+inf``
    afterwards, so garbage rows are never read.
    """

    pis: np.ndarray        # (k, M) stationary distributions
    stack: np.ndarray      # (k, M, M) transition matrices
    diag: np.ndarray       # (k, M) diagonals p_ii
    exposures: np.ndarray  # (k, M) per-PoI exposure times E-bar_i


class CostTerm(abc.ABC):
    """A differentiable summand of the cost function.

    The objective-layer protocol: a term exposes its :meth:`value` and
    the partials ``grad_pi`` / ``grad_z`` / ``grad_p``, from which the
    gradient engine (:mod:`repro.core.gradient`) assembles the analytic
    total derivative through the shared Schweitzer adjoints.  Terms
    meant for use as composable plugins additionally implement
    :meth:`batch_value` so the batched/lockstep line-search paths can
    evaluate them on a whole probe stack at once (see
    ``docs/objectives.md``).
    """

    @abc.abstractmethod
    def value(self, state: ChainState) -> float:
        """Evaluate the term at ``state``."""

    def grad_pi(self, state: ChainState) -> Optional[np.ndarray]:
        """Partial derivative w.r.t. ``pi``; ``None`` means zero."""
        return None

    def grad_z(self, state: ChainState) -> Optional[np.ndarray]:
        """Partial derivative w.r.t. ``Z``; ``None`` means zero."""
        return None

    def grad_p(self, state: ChainState) -> Optional[np.ndarray]:
        """Direct partial w.r.t. ``P`` (holding ``pi``, ``Z`` fixed)."""
        return None

    def batch_value(self, batch: TermBatch) -> np.ndarray:
        """Per-probe term values for a stacked evaluation, shape ``(k,)``.

        Must agree with :meth:`value` probe for probe.  The base
        implementation raises: a term without a batched form cannot be
        composed into a :class:`~repro.core.cost.CoverageCost`, whose
        optimizers all evaluate through the batched line search.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not implement batch_value and "
            "cannot be used with the batched/lockstep evaluators"
        )

    @property
    def supports_batch(self) -> bool:
        """Whether this term overrides :meth:`batch_value`."""
        return type(self).batch_value is not CostTerm.batch_value


#: Historical name of the protocol, kept importable for existing code.
ObjectiveTerm = CostTerm


class CoverageDeviationTerm(ObjectiveTerm):
    """Weighted squared deviation of coverage shares from the target.

    Precomputes ``B[i, j, k] = T_{jk,i} - Phi_i T_jk`` once; every
    evaluation is then a couple of einsums.
    """

    def __init__(
        self,
        travel_times: np.ndarray,
        passby: np.ndarray,
        target_shares: np.ndarray,
        alpha,
    ) -> None:
        travel_times = check_square("travel_times", travel_times)
        size = travel_times.shape[0]
        passby = np.asarray(passby, dtype=float)
        if passby.shape != (size, size, size):
            raise ValueError(
                f"passby must have shape {(size, size, size)}, "
                f"got {passby.shape}"
            )
        target_shares = np.asarray(target_shares, dtype=float)
        if target_shares.shape != (size,):
            raise ValueError(
                f"target_shares must have shape ({size},), "
                f"got {target_shares.shape}"
            )
        self.alpha = broadcast_weights("alpha", alpha, size)
        # B indexed [i, j, k]; passby is indexed [j, k, i].
        self._b = (
            passby.transpose(2, 0, 1)
            - target_shares[:, None, None] * travel_times[None, :, :]
        )

    def deviations(self, state: ChainState) -> np.ndarray:
        """The per-PoI deviations ``c_i = sum_jk pi_j p_jk B[i, j, k]``."""
        weighted = state.pi[:, None] * state.p
        return np.einsum("jk,ijk->i", weighted, self._b)

    def value(self, state: ChainState) -> float:
        c = self.deviations(state)
        return float(0.5 * np.sum(self.alpha * c * c))

    def grad_pi(self, state: ChainState) -> np.ndarray:
        c = self.deviations(state)
        # s[i, j] = sum_k p_jk B[i, j, k]; dU/dpi_j = sum_i alpha_i c_i s_ij.
        s = np.einsum("jk,ijk->ij", state.p, self._b)
        return (self.alpha * c) @ s

    def grad_p(self, state: ChainState) -> np.ndarray:
        c = self.deviations(state)
        # dU/dp_jk = pi_j sum_i alpha_i c_i B[i, j, k].
        contracted = np.einsum("i,ijk->jk", self.alpha * c, self._b)
        return state.pi[:, None] * contracted

    def batch_value(self, batch: TermBatch) -> np.ndarray:
        weighted = batch.pis[:, :, None] * batch.stack
        c = np.einsum("kjl,ijl->ki", weighted, self._b)
        return 0.5 * np.einsum("i,ki,ki->k", self.alpha, c, c)


class SupportCoverageTerm(ObjectiveTerm):
    """Coverage deviation over a sparse leg support — ``O(E)`` memory.

    Mathematically identical to :class:`CoverageDeviationTerm` when
    ``P`` vanishes off the support, but it never builds the dense
    ``O(M^3)`` tensor ``B``: the pass-by structure is stored as a flat
    entry list ``(j, k, i, T_{jk,i})`` over supported legs only, and

        ``c_i = sum_entries pi_j p_jk T_{jk,i} - Phi_i sum_jk pi_j p_jk
        T_jk``

    is two weighted bincounts plus one dense ``O(M^2)`` contraction.
    Gradients reuse the same entry list: with
    ``a_jk = sum_i alpha_i c_i T_{jk,i}`` (a bincount over legs) and
    ``q = sum_i alpha_i c_i Phi_i``,

        ``dU/dpi_j = sum_k p_jk (a_jk - q T_jk)``,
        ``dU/dp_jk = pi_j (a_jk - q T_jk)``  (supported legs only).
    """

    def __init__(
        self,
        travel_times: np.ndarray,
        entries,
        target_shares: np.ndarray,
        alpha,
        support: np.ndarray,
    ) -> None:
        travel_times = check_square("travel_times", travel_times)
        size = travel_times.shape[0]
        j_idx, k_idx, i_idx, t_val = entries
        j_idx = np.asarray(j_idx, dtype=np.intp)
        k_idx = np.asarray(k_idx, dtype=np.intp)
        i_idx = np.asarray(i_idx, dtype=np.intp)
        t_val = np.asarray(t_val, dtype=float)
        if not (j_idx.shape == k_idx.shape == i_idx.shape == t_val.shape):
            raise ValueError("entry arrays must share one shape")
        target_shares = np.asarray(target_shares, dtype=float)
        if target_shares.shape != (size,):
            raise ValueError(
                f"target_shares must have shape ({size},), "
                f"got {target_shares.shape}"
            )
        support = np.asarray(support, dtype=bool)
        if support.shape != (size, size):
            raise ValueError(
                f"support must have shape {(size, size)}, "
                f"got {support.shape}"
            )
        self.alpha = broadcast_weights("alpha", alpha, size)
        self._t = travel_times
        self._phi = target_shares
        self._support = support
        self._j = j_idx
        self._k = k_idx
        self._i = i_idx
        self._t_val = t_val
        self._flat_leg = j_idx * size + k_idx
        self._size = size
        # Gathered support legs for the batched total-travel contraction
        # (entries off the support contribute nothing).
        self._sup_j, self._sup_k = np.nonzero(support)
        self._sup_t = travel_times[self._sup_j, self._sup_k]

    def _deviations(self, pi: np.ndarray, p: np.ndarray) -> np.ndarray:
        weights = pi[self._j] * p[self._j, self._k] * self._t_val
        covered = np.bincount(
            self._i, weights=weights, minlength=self._size
        )
        total = float(pi @ (p * self._t).sum(axis=1))
        return covered - self._phi * total

    def deviations(self, state: ChainState) -> np.ndarray:
        """The per-PoI deviations ``c_i`` (same contract as the dense term)."""
        return self._deviations(state.pi, state.p)

    def value(self, state: ChainState) -> float:
        c = self.deviations(state)
        return float(0.5 * np.sum(self.alpha * c * c))

    def batch_deviation_values(
        self, pis: np.ndarray, stack: np.ndarray
    ) -> np.ndarray:
        """Per-probe coverage term values for a stacked line search."""
        # sum_jl pi_j p_jl T_jl over supported legs only: the dense
        # einsum is an O(n M^2) scan that dominates at large M, while
        # off-support entries of a valid stack are identically zero.
        totals = (
            pis[:, self._sup_j]
            * stack[:, self._sup_j, self._sup_k]
            * self._sup_t
        ).sum(axis=1)
        values = np.empty(stack.shape[0])
        for n in range(stack.shape[0]):
            weights = (
                pis[n, self._j] * stack[n, self._j, self._k] * self._t_val
            )
            covered = np.bincount(
                self._i, weights=weights, minlength=self._size
            )
            c = covered - self._phi * totals[n]
            values[n] = 0.5 * np.sum(self.alpha * c * c)
        return values

    def _leg_inner(self, c: np.ndarray) -> np.ndarray:
        """``a_jk - q T_jk`` as a dense ``(j, k)`` matrix."""
        weighted = self.alpha * c
        a_flat = np.bincount(
            self._flat_leg,
            weights=weighted[self._i] * self._t_val,
            minlength=self._size * self._size,
        )
        q = float(weighted @ self._phi)
        return a_flat.reshape(self._size, self._size) - q * self._t

    def grad_pi(self, state: ChainState) -> np.ndarray:
        inner = self._leg_inner(self.deviations(state))
        return (state.p * inner).sum(axis=1)

    def grad_p(self, state: ChainState) -> np.ndarray:
        inner = self._leg_inner(self.deviations(state))
        return np.where(self._support, state.pi[:, None] * inner, 0.0)

    def batch_value(self, batch: TermBatch) -> np.ndarray:
        return self.batch_deviation_values(batch.pis, batch.stack)


class ExposureTerm(ObjectiveTerm):
    """Weighted squared per-PoI average exposure times.

    Uses the Eq. (9) representation through the fundamental matrix:
    ``E-bar_i = n_i / (pi_i (1 - p_ii))`` with
    ``n_i = sum_{j != i} p_ij (z_ii - z_ji)``.
    """

    def __init__(self, beta, size: int) -> None:
        self.beta = broadcast_weights("beta", beta, size)

    @staticmethod
    def _pieces(state: ChainState):
        """Return ``(e, n, staying)`` with the stability guard applied.

        Sparse states never touch ``Z``: summing Eq. 8 against the
        row-sum identity ``Z 1 = 1`` collapses
        ``n_i = sum_{j != i} p_ij (z_ii - z_ji)`` to exactly
        ``1 - pi_i``, so ``E-bar_i = (1 - pi_i) / (pi_i (1 - p_ii))``.
        """
        staying = np.diag(state.p)
        if np.any(staying >= 1.0 - 1e-13):
            raise ValueError(
                "some p_ii is numerically 1; exposure times are undefined"
            )
        if state.linalg == "sparse":
            n = 1.0 - state.pi
            return n / (state.pi * (1.0 - staying)), n, staying
        z_diag = np.diag(state.z)
        diffs = z_diag[None, :] - state.z  # (j, i): z_ii - z_ji
        weights = state.p * diffs.T  # (i, j): p_ij (z_ii - z_ji)
        np.fill_diagonal(weights, 0.0)
        n = weights.sum(axis=1)
        e = n / (state.pi * (1.0 - staying))
        return e, n, staying

    def exposures(self, state: ChainState) -> np.ndarray:
        """The per-PoI exposure times ``E-bar_i``."""
        return self._pieces(state)[0]

    def value(self, state: ChainState) -> float:
        e = self.exposures(state)
        return float(0.5 * np.sum(self.beta * e * e))

    def batch_value(self, batch: TermBatch) -> np.ndarray:
        e = batch.exposures
        return 0.5 * np.einsum("i,ki,ki->k", self.beta, e, e)

    def grad_pi(self, state: ChainState) -> np.ndarray:
        if state.linalg == "sparse":
            # Closed form: the whole pi-dependence of E-bar_i is explicit,
            # dE_i/dpi_i = -1 / (pi_i^2 (1 - p_ii)); the Z-chain that the
            # dense split routes through grad_z is already absorbed here,
            # so grad_z below is identically zero.  The two splits give
            # the same *projected* total derivative.
            e, _, staying = self._pieces(state)
            return -self.beta * e / (state.pi**2 * (1.0 - staying))
        e, _, _ = self._pieces(state)
        # de_i/dpi_i = -e_i / pi_i  (pi enters only through the denominator).
        return -self.beta * e * e / state.pi

    def grad_z(self, state: ChainState) -> Optional[np.ndarray]:
        if state.linalg == "sparse":
            return None
        e, _, staying = self._pieces(state)
        denom = state.pi * (1.0 - staying)
        scale = self.beta * e  # beta_i e_i, chain through e_i
        grad = np.zeros_like(state.z)
        # dn_i/dz_ji = -p_ij for j != i  ->  grad[j, i] -= scale_i p_ij / denom_i
        grad -= (scale / denom)[None, :] * state.p.T
        np.fill_diagonal(grad, 0.0)
        # dn_i/dz_ii = sum_{j != i} p_ij = 1 - p_ii  ->  grad[i, i].
        grad[np.diag_indices_from(grad)] = scale * (1.0 - staying) / denom
        return grad

    def grad_p(self, state: ChainState) -> np.ndarray:
        if state.linalg == "sparse":
            # dE_i/dp_ii = E_i / (1 - p_ii); all other entries of P reach
            # E-bar only through pi, which the adjoint handles.
            e, _, staying = self._pieces(state)
            grad = np.zeros_like(state.p)
            grad[np.diag_indices_from(grad)] = (
                self.beta * e * e / (1.0 - staying)
            )
            return grad
        e, _, staying = self._pieces(state)
        denom = state.pi * (1.0 - staying)
        scale = self.beta * e
        z_diag = np.diag(state.z)
        diffs = (z_diag[None, :] - state.z).T  # (i, j): z_ii - z_ji
        grad = (scale / denom)[:, None] * diffs
        # de_i/dp_ii = e_i / (1 - p_ii).
        grad[np.diag_indices_from(grad)] = scale * e / (1.0 - staying)
        return grad


class EnergyTerm(ObjectiveTerm):
    """Travel-energy control ``(w/2) (D - gamma)^2`` (Section VII).

    ``gamma = 0`` reduces to penalizing the mean per-transition travel
    distance ``D`` itself; a positive ``gamma`` *prescribes* an average
    movement level, which Section VII notes can be advantageous.
    """

    def __init__(self, distances: np.ndarray, weight: float,
                 target: float = 0.0) -> None:
        self.distances = check_square("distances", distances)
        if weight < 0:
            raise ValueError(f"weight must be >= 0, got {weight}")
        self.weight = float(weight)
        self.target = float(target)

    def mean_travel(self, state: ChainState) -> float:
        """``D = sum_i pi_i sum_{j != i} p_ij d_ij`` (d_ii = 0)."""
        return float(state.pi @ (state.p * self.distances).sum(axis=1))

    def value(self, state: ChainState) -> float:
        gap = self.mean_travel(state) - self.target
        return float(0.5 * self.weight * gap * gap)

    def batch_value(self, batch: TermBatch) -> np.ndarray:
        travel = np.einsum(
            "ki,kij,ij->k", batch.pis, batch.stack, self.distances
        )
        gap = travel - self.target
        return 0.5 * self.weight * gap * gap

    def grad_pi(self, state: ChainState) -> np.ndarray:
        gap = self.mean_travel(state) - self.target
        return self.weight * gap * (state.p * self.distances).sum(axis=1)

    def grad_p(self, state: ChainState) -> np.ndarray:
        gap = self.mean_travel(state) - self.target
        return self.weight * gap * state.pi[:, None] * self.distances


class EntropyTerm(ObjectiveTerm):
    """Entropy regularization ``-w H`` (Section VII).

    Adding this term to a minimized cost maximizes the schedule's entropy
    rate, making the sensor's location harder for an adversary to predict.
    """

    def __init__(self, weight: float) -> None:
        if weight < 0:
            raise ValueError(f"weight must be >= 0, got {weight}")
        self.weight = float(weight)

    @staticmethod
    def _row_plogp(p: np.ndarray) -> np.ndarray:
        with np.errstate(divide="ignore", invalid="ignore"):
            return np.where(p > 0.0, p * np.log(p), 0.0)

    def entropy(self, state: ChainState) -> float:
        """Entropy rate ``H`` at ``state`` in nats."""
        return float(-state.pi @ self._row_plogp(state.p).sum(axis=1))

    def value(self, state: ChainState) -> float:
        return -self.weight * self.entropy(state)

    def batch_value(self, batch: TermBatch) -> np.ndarray:
        with np.errstate(divide="ignore", invalid="ignore"):
            plogp = np.where(
                batch.stack > 0.0,
                batch.stack * np.log(batch.stack),
                0.0,
            ).sum(axis=2)
        return -self.weight * (
            -np.einsum("ki,ki->k", batch.pis, plogp)
        )

    def grad_pi(self, state: ChainState) -> np.ndarray:
        # dH/dpi_i = -sum_j p_ij ln p_ij; value = -w H.
        return self.weight * self._row_plogp(state.p).sum(axis=1)

    def grad_p(self, state: ChainState) -> np.ndarray:
        # dH/dp_ij = -pi_i (ln p_ij + 1); value = -w H.
        with np.errstate(divide="ignore"):
            logs = np.where(state.p > 0.0, np.log(state.p), 0.0)
        return self.weight * state.pi[:, None] * (logs + 1.0)


def check_term_weight(weight: float) -> float:
    """Validate a plugin term's scalar weight (finite, ``>= 0``)."""
    try:
        weight = float(weight)
    except (TypeError, ValueError):
        raise ValueError(
            f"term weight must be a finite scalar >= 0, got {weight!r}"
        ) from None
    if not math.isfinite(weight) or weight < 0:
        raise ValueError(
            f"term weight must be finite and >= 0, got {weight}"
        )
    return weight


class WorstExposureTerm(CostTerm):
    """Softmax-smoothed minimax worst-PoI exposure (docs/math.md §9a).

    ``U = (w / tau) ln sum_i exp(tau E-bar_i)`` — a smooth upper bound
    on ``w max_i E-bar_i``, within ``w ln(M)/tau`` of it, so minimizing
    it drives down the *worst* PoI's exposure rather than the paper's
    sum-of-squares aggregate (the persistent-monitoring minimax
    objective of Pinto et al.).  The gradient chains the softmax
    weights ``s_i`` through the exposure partials of
    :class:`ExposureTerm`: ``dU/dE-bar_i = w s_i``.
    """

    def __init__(self, weight: float, tau: float = 8.0) -> None:
        self.weight = check_term_weight(weight)
        self.tau = float(tau)
        if not math.isfinite(self.tau) or self.tau <= 0:
            raise ValueError(
                f"tau must be finite and > 0, got {self.tau}"
            )

    @staticmethod
    def _smooth_max(exposures: np.ndarray, tau: float) -> np.ndarray:
        """Row-wise ``(1/tau) logsumexp(tau e)``, shift-stabilized."""
        e = np.atleast_2d(exposures)
        shift = e.max(axis=1, keepdims=True)
        out = shift[:, 0] + np.log(
            np.exp(tau * (e - shift)).sum(axis=1)
        ) / tau
        return out

    def _scale(self, e: np.ndarray) -> np.ndarray:
        """``dU/dE-bar_i = w softmax(tau e)_i``."""
        shifted = np.exp(self.tau * (e - e.max()))
        return self.weight * shifted / shifted.sum()

    def value(self, state: ChainState) -> float:
        e = ExposureTerm._pieces(state)[0]
        return float(self.weight * self._smooth_max(e, self.tau)[0])

    def batch_value(self, batch: TermBatch) -> np.ndarray:
        return self.weight * self._smooth_max(batch.exposures, self.tau)

    def grad_pi(self, state: ChainState) -> np.ndarray:
        e, _, staying = ExposureTerm._pieces(state)
        scale = self._scale(e)
        if state.linalg == "sparse":
            # Closed form E_i = (1 - pi_i) / (pi_i (1 - p_ii)):
            # dE_i/dpi_i = -1 / (pi_i^2 (1 - p_ii)); the Z-chain is
            # absorbed here exactly as in ExposureTerm's sparse split.
            return -scale / (state.pi**2 * (1.0 - staying))
        # Dense split: dE_i/dpi_i = -E_i / pi_i.
        return -scale * e / state.pi

    def grad_z(self, state: ChainState) -> Optional[np.ndarray]:
        if state.linalg == "sparse":
            return None
        e, _, staying = ExposureTerm._pieces(state)
        scale = self._scale(e)
        denom = state.pi * (1.0 - staying)
        grad = np.zeros_like(state.z)
        # dn_i/dz_ji = -p_ij (j != i); dn_i/dz_ii = 1 - p_ii.
        grad -= (scale / denom)[None, :] * state.p.T
        np.fill_diagonal(grad, 0.0)
        grad[np.diag_indices_from(grad)] = scale * (1.0 - staying) / denom
        return grad

    def grad_p(self, state: ChainState) -> np.ndarray:
        e, _, staying = ExposureTerm._pieces(state)
        scale = self._scale(e)
        if state.linalg == "sparse":
            grad = np.zeros_like(state.p)
            grad[np.diag_indices_from(grad)] = (
                scale * e / (1.0 - staying)
            )
            return grad
        denom = state.pi * (1.0 - staying)
        z_diag = np.diag(state.z)
        diffs = (z_diag[None, :] - state.z).T  # (i, j): z_ii - z_ji
        grad = (scale / denom)[:, None] * diffs
        # dE_i/dp_ii = E_i / (1 - p_ii).
        grad[np.diag_indices_from(grad)] = scale * e / (1.0 - staying)
        return grad


class KCoverageShortfallTerm(CostTerm):
    """Squared-hinge ``k``-coverage shortfall for teams (math.md §9b).

    A homogeneous team of ``team`` sensors running the schedule
    independently occupies PoI ``i`` as ``Binomial(team, pi_i)``, so the
    chance of at-least-``k`` simultaneous coverage is the binomial tail
    ``q_i = P[Bin(team, pi_i) >= k]`` (the limit-law regime of Iyer &
    Manjunath).  The term penalizes falling short of ``threshold``:

        ``U = (w/2) sum_i max(0, threshold - q_i)^2``

    A pure ``pi``-term: its whole gradient flows through the stationary
    adjoint.
    """

    def __init__(self, weight: float, team: int = 4, k: int = 2,
                 threshold: float = 0.5) -> None:
        self.weight = check_term_weight(weight)
        self.team = int(team)
        self.k = int(k)
        self.threshold = float(threshold)
        if self.team < 1:
            raise ValueError(f"team must be >= 1, got {self.team}")
        if not 1 <= self.k <= self.team:
            raise ValueError(
                f"k must lie in [1, team={self.team}], got {self.k}"
            )
        if not 0.0 < self.threshold < 1.0:
            raise ValueError(
                f"threshold must lie in (0, 1), got {self.threshold}"
            )
        # Tail coefficients C(team, m) for m = k..team, and the exact
        # derivative prefactor q'(p) = team C(team-1, k-1) p^(k-1)
        # (1-p)^(team-k).
        self._orders = np.arange(self.k, self.team + 1)
        self._coefs = np.array(
            [math.comb(self.team, int(m)) for m in self._orders],
            dtype=float,
        )
        self._dcoef = self.team * math.comb(self.team - 1, self.k - 1)

    def tail(self, pi: np.ndarray) -> np.ndarray:
        """``q(pi) = P[Bin(team, pi) >= k]`` elementwise."""
        p = np.asarray(pi, dtype=float)[..., None]
        terms = (
            self._coefs
            * p ** self._orders
            * (1.0 - p) ** (self.team - self._orders)
        )
        return terms.sum(axis=-1)

    def _shortfall(self, pi: np.ndarray) -> np.ndarray:
        return np.maximum(0.0, self.threshold - self.tail(pi))

    def value(self, state: ChainState) -> float:
        h = self._shortfall(state.pi)
        return float(0.5 * self.weight * np.sum(h * h))

    def batch_value(self, batch: TermBatch) -> np.ndarray:
        h = self._shortfall(batch.pis)
        return 0.5 * self.weight * np.sum(h * h, axis=1)

    def grad_pi(self, state: ChainState) -> np.ndarray:
        pi = state.pi
        h = self._shortfall(pi)
        dq = (
            self._dcoef
            * pi ** (self.k - 1)
            * (1.0 - pi) ** (self.team - self.k)
        )
        return -self.weight * h * dq


class PeriodicityTerm(CostTerm):
    """Squared-hinge visit-periodicity penalty (docs/math.md §9c).

    Kac's formula makes the mean inter-visit time of PoI ``i`` exactly
    ``1 / pi_i`` transitions; point-sweep coverage asks every PoI to be
    revisited within a period ``t_i``.  The term penalizes exceedance:

        ``U = (w/2) sum_i max(0, 1/pi_i - t_i)^2``

    Like the k-coverage term it depends on ``pi`` alone, so its exact
    gradient is one stationary-adjoint application.
    """

    def __init__(self, weight: float, periods) -> None:
        self.weight = check_term_weight(weight)
        self.periods = np.asarray(periods, dtype=float)
        if self.periods.ndim != 1:
            raise ValueError(
                f"periods must be a 1-D per-PoI array, got shape "
                f"{self.periods.shape}"
            )
        if np.any(self.periods <= 0) or not np.all(
            np.isfinite(self.periods)
        ):
            raise ValueError("periods must be finite and > 0")

    def excess(self, pi: np.ndarray) -> np.ndarray:
        """``max(0, 1/pi_i - t_i)`` — the per-PoI period violations."""
        return np.maximum(0.0, 1.0 / pi - self.periods)

    def value(self, state: ChainState) -> float:
        g = self.excess(state.pi)
        return float(0.5 * self.weight * np.sum(g * g))

    def batch_value(self, batch: TermBatch) -> np.ndarray:
        g = np.maximum(0.0, 1.0 / batch.pis - self.periods)
        return 0.5 * self.weight * np.sum(g * g, axis=1)

    def grad_pi(self, state: ChainState) -> np.ndarray:
        g = self.excess(state.pi)
        return -self.weight * g / state.pi**2
