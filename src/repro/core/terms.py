"""Objective terms and their analytic partial derivatives.

The cost ``U`` is a sum of terms, each a function of the chain state
``(pi, Z, P)``.  A term contributes its value and the three partials

    ``dU/dpi`` (vector), ``dU/dZ`` (matrix), ``dU/dP`` (matrix),

which the gradient engine combines with the Schweitzer adjoints into the
total derivative ``[D_P U]`` of Eq. (10).  Terms may return ``None`` for a
partial that is identically zero, which the engine skips.

Implemented terms:

* :class:`CoverageDeviationTerm` — ``sum_i (alpha_i / 2) c_i^2`` with
  ``c_i = sum_{j,k} pi_j p_jk (T_{jk,i} - Phi_i T_jk)`` (Eq. 9, first sum).
* :class:`ExposureTerm` — ``sum_i (beta_i / 2) E-bar_i^2`` (Eq. 9, second
  sum, written via the fundamental matrix).
* :class:`EnergyTerm` — ``(w/2) (D - gamma)^2`` with
  ``D = sum_i pi_i sum_{j != i} p_ij d_ij`` (Section VII).
* :class:`EntropyTerm` — ``-w H`` with the chain entropy rate ``H``
  (Section VII), i.e. entropy *maximization* inside a minimization.
"""

from __future__ import annotations

import abc
from typing import Optional

import numpy as np

from repro.core.state import ChainState
from repro.utils.validation import check_square


def broadcast_weights(name: str, weights, size: int) -> np.ndarray:
    """Expand a scalar or per-PoI weight spec into a length-``size`` array."""
    array = np.broadcast_to(np.asarray(weights, dtype=float), (size,)).copy()
    if np.any(array < 0) or not np.all(np.isfinite(array)):
        raise ValueError(f"{name} weights must be finite and >= 0")
    return array


class ObjectiveTerm(abc.ABC):
    """A differentiable summand of the cost function."""

    @abc.abstractmethod
    def value(self, state: ChainState) -> float:
        """Evaluate the term at ``state``."""

    def grad_pi(self, state: ChainState) -> Optional[np.ndarray]:
        """Partial derivative w.r.t. ``pi``; ``None`` means zero."""
        return None

    def grad_z(self, state: ChainState) -> Optional[np.ndarray]:
        """Partial derivative w.r.t. ``Z``; ``None`` means zero."""
        return None

    def grad_p(self, state: ChainState) -> Optional[np.ndarray]:
        """Direct partial w.r.t. ``P`` (holding ``pi``, ``Z`` fixed)."""
        return None


class CoverageDeviationTerm(ObjectiveTerm):
    """Weighted squared deviation of coverage shares from the target.

    Precomputes ``B[i, j, k] = T_{jk,i} - Phi_i T_jk`` once; every
    evaluation is then a couple of einsums.
    """

    def __init__(
        self,
        travel_times: np.ndarray,
        passby: np.ndarray,
        target_shares: np.ndarray,
        alpha,
    ) -> None:
        travel_times = check_square("travel_times", travel_times)
        size = travel_times.shape[0]
        passby = np.asarray(passby, dtype=float)
        if passby.shape != (size, size, size):
            raise ValueError(
                f"passby must have shape {(size, size, size)}, "
                f"got {passby.shape}"
            )
        target_shares = np.asarray(target_shares, dtype=float)
        if target_shares.shape != (size,):
            raise ValueError(
                f"target_shares must have shape ({size},), "
                f"got {target_shares.shape}"
            )
        self.alpha = broadcast_weights("alpha", alpha, size)
        # B indexed [i, j, k]; passby is indexed [j, k, i].
        self._b = (
            passby.transpose(2, 0, 1)
            - target_shares[:, None, None] * travel_times[None, :, :]
        )

    def deviations(self, state: ChainState) -> np.ndarray:
        """The per-PoI deviations ``c_i = sum_jk pi_j p_jk B[i, j, k]``."""
        weighted = state.pi[:, None] * state.p
        return np.einsum("jk,ijk->i", weighted, self._b)

    def value(self, state: ChainState) -> float:
        c = self.deviations(state)
        return float(0.5 * np.sum(self.alpha * c * c))

    def grad_pi(self, state: ChainState) -> np.ndarray:
        c = self.deviations(state)
        # s[i, j] = sum_k p_jk B[i, j, k]; dU/dpi_j = sum_i alpha_i c_i s_ij.
        s = np.einsum("jk,ijk->ij", state.p, self._b)
        return (self.alpha * c) @ s

    def grad_p(self, state: ChainState) -> np.ndarray:
        c = self.deviations(state)
        # dU/dp_jk = pi_j sum_i alpha_i c_i B[i, j, k].
        contracted = np.einsum("i,ijk->jk", self.alpha * c, self._b)
        return state.pi[:, None] * contracted


class SupportCoverageTerm(ObjectiveTerm):
    """Coverage deviation over a sparse leg support — ``O(E)`` memory.

    Mathematically identical to :class:`CoverageDeviationTerm` when
    ``P`` vanishes off the support, but it never builds the dense
    ``O(M^3)`` tensor ``B``: the pass-by structure is stored as a flat
    entry list ``(j, k, i, T_{jk,i})`` over supported legs only, and

        ``c_i = sum_entries pi_j p_jk T_{jk,i} - Phi_i sum_jk pi_j p_jk
        T_jk``

    is two weighted bincounts plus one dense ``O(M^2)`` contraction.
    Gradients reuse the same entry list: with
    ``a_jk = sum_i alpha_i c_i T_{jk,i}`` (a bincount over legs) and
    ``q = sum_i alpha_i c_i Phi_i``,

        ``dU/dpi_j = sum_k p_jk (a_jk - q T_jk)``,
        ``dU/dp_jk = pi_j (a_jk - q T_jk)``  (supported legs only).
    """

    def __init__(
        self,
        travel_times: np.ndarray,
        entries,
        target_shares: np.ndarray,
        alpha,
        support: np.ndarray,
    ) -> None:
        travel_times = check_square("travel_times", travel_times)
        size = travel_times.shape[0]
        j_idx, k_idx, i_idx, t_val = entries
        j_idx = np.asarray(j_idx, dtype=np.intp)
        k_idx = np.asarray(k_idx, dtype=np.intp)
        i_idx = np.asarray(i_idx, dtype=np.intp)
        t_val = np.asarray(t_val, dtype=float)
        if not (j_idx.shape == k_idx.shape == i_idx.shape == t_val.shape):
            raise ValueError("entry arrays must share one shape")
        target_shares = np.asarray(target_shares, dtype=float)
        if target_shares.shape != (size,):
            raise ValueError(
                f"target_shares must have shape ({size},), "
                f"got {target_shares.shape}"
            )
        support = np.asarray(support, dtype=bool)
        if support.shape != (size, size):
            raise ValueError(
                f"support must have shape {(size, size)}, "
                f"got {support.shape}"
            )
        self.alpha = broadcast_weights("alpha", alpha, size)
        self._t = travel_times
        self._phi = target_shares
        self._support = support
        self._j = j_idx
        self._k = k_idx
        self._i = i_idx
        self._t_val = t_val
        self._flat_leg = j_idx * size + k_idx
        self._size = size
        # Gathered support legs for the batched total-travel contraction
        # (entries off the support contribute nothing).
        self._sup_j, self._sup_k = np.nonzero(support)
        self._sup_t = travel_times[self._sup_j, self._sup_k]

    def _deviations(self, pi: np.ndarray, p: np.ndarray) -> np.ndarray:
        weights = pi[self._j] * p[self._j, self._k] * self._t_val
        covered = np.bincount(
            self._i, weights=weights, minlength=self._size
        )
        total = float(pi @ (p * self._t).sum(axis=1))
        return covered - self._phi * total

    def deviations(self, state: ChainState) -> np.ndarray:
        """The per-PoI deviations ``c_i`` (same contract as the dense term)."""
        return self._deviations(state.pi, state.p)

    def value(self, state: ChainState) -> float:
        c = self.deviations(state)
        return float(0.5 * np.sum(self.alpha * c * c))

    def batch_deviation_values(
        self, pis: np.ndarray, stack: np.ndarray
    ) -> np.ndarray:
        """Per-probe coverage term values for a stacked line search."""
        # sum_jl pi_j p_jl T_jl over supported legs only: the dense
        # einsum is an O(n M^2) scan that dominates at large M, while
        # off-support entries of a valid stack are identically zero.
        totals = (
            pis[:, self._sup_j]
            * stack[:, self._sup_j, self._sup_k]
            * self._sup_t
        ).sum(axis=1)
        values = np.empty(stack.shape[0])
        for n in range(stack.shape[0]):
            weights = (
                pis[n, self._j] * stack[n, self._j, self._k] * self._t_val
            )
            covered = np.bincount(
                self._i, weights=weights, minlength=self._size
            )
            c = covered - self._phi * totals[n]
            values[n] = 0.5 * np.sum(self.alpha * c * c)
        return values

    def _leg_inner(self, c: np.ndarray) -> np.ndarray:
        """``a_jk - q T_jk`` as a dense ``(j, k)`` matrix."""
        weighted = self.alpha * c
        a_flat = np.bincount(
            self._flat_leg,
            weights=weighted[self._i] * self._t_val,
            minlength=self._size * self._size,
        )
        q = float(weighted @ self._phi)
        return a_flat.reshape(self._size, self._size) - q * self._t

    def grad_pi(self, state: ChainState) -> np.ndarray:
        inner = self._leg_inner(self.deviations(state))
        return (state.p * inner).sum(axis=1)

    def grad_p(self, state: ChainState) -> np.ndarray:
        inner = self._leg_inner(self.deviations(state))
        return np.where(self._support, state.pi[:, None] * inner, 0.0)


class ExposureTerm(ObjectiveTerm):
    """Weighted squared per-PoI average exposure times.

    Uses the Eq. (9) representation through the fundamental matrix:
    ``E-bar_i = n_i / (pi_i (1 - p_ii))`` with
    ``n_i = sum_{j != i} p_ij (z_ii - z_ji)``.
    """

    def __init__(self, beta, size: int) -> None:
        self.beta = broadcast_weights("beta", beta, size)

    @staticmethod
    def _pieces(state: ChainState):
        """Return ``(e, n, staying)`` with the stability guard applied.

        Sparse states never touch ``Z``: summing Eq. 8 against the
        row-sum identity ``Z 1 = 1`` collapses
        ``n_i = sum_{j != i} p_ij (z_ii - z_ji)`` to exactly
        ``1 - pi_i``, so ``E-bar_i = (1 - pi_i) / (pi_i (1 - p_ii))``.
        """
        staying = np.diag(state.p)
        if np.any(staying >= 1.0 - 1e-13):
            raise ValueError(
                "some p_ii is numerically 1; exposure times are undefined"
            )
        if state.linalg == "sparse":
            n = 1.0 - state.pi
            return n / (state.pi * (1.0 - staying)), n, staying
        z_diag = np.diag(state.z)
        diffs = z_diag[None, :] - state.z  # (j, i): z_ii - z_ji
        weights = state.p * diffs.T  # (i, j): p_ij (z_ii - z_ji)
        np.fill_diagonal(weights, 0.0)
        n = weights.sum(axis=1)
        e = n / (state.pi * (1.0 - staying))
        return e, n, staying

    def exposures(self, state: ChainState) -> np.ndarray:
        """The per-PoI exposure times ``E-bar_i``."""
        return self._pieces(state)[0]

    def value(self, state: ChainState) -> float:
        e = self.exposures(state)
        return float(0.5 * np.sum(self.beta * e * e))

    def grad_pi(self, state: ChainState) -> np.ndarray:
        if state.linalg == "sparse":
            # Closed form: the whole pi-dependence of E-bar_i is explicit,
            # dE_i/dpi_i = -1 / (pi_i^2 (1 - p_ii)); the Z-chain that the
            # dense split routes through grad_z is already absorbed here,
            # so grad_z below is identically zero.  The two splits give
            # the same *projected* total derivative.
            e, _, staying = self._pieces(state)
            return -self.beta * e / (state.pi**2 * (1.0 - staying))
        e, _, _ = self._pieces(state)
        # de_i/dpi_i = -e_i / pi_i  (pi enters only through the denominator).
        return -self.beta * e * e / state.pi

    def grad_z(self, state: ChainState) -> Optional[np.ndarray]:
        if state.linalg == "sparse":
            return None
        e, _, staying = self._pieces(state)
        denom = state.pi * (1.0 - staying)
        scale = self.beta * e  # beta_i e_i, chain through e_i
        grad = np.zeros_like(state.z)
        # dn_i/dz_ji = -p_ij for j != i  ->  grad[j, i] -= scale_i p_ij / denom_i
        grad -= (scale / denom)[None, :] * state.p.T
        np.fill_diagonal(grad, 0.0)
        # dn_i/dz_ii = sum_{j != i} p_ij = 1 - p_ii  ->  grad[i, i].
        grad[np.diag_indices_from(grad)] = scale * (1.0 - staying) / denom
        return grad

    def grad_p(self, state: ChainState) -> np.ndarray:
        if state.linalg == "sparse":
            # dE_i/dp_ii = E_i / (1 - p_ii); all other entries of P reach
            # E-bar only through pi, which the adjoint handles.
            e, _, staying = self._pieces(state)
            grad = np.zeros_like(state.p)
            grad[np.diag_indices_from(grad)] = (
                self.beta * e * e / (1.0 - staying)
            )
            return grad
        e, _, staying = self._pieces(state)
        denom = state.pi * (1.0 - staying)
        scale = self.beta * e
        z_diag = np.diag(state.z)
        diffs = (z_diag[None, :] - state.z).T  # (i, j): z_ii - z_ji
        grad = (scale / denom)[:, None] * diffs
        # de_i/dp_ii = e_i / (1 - p_ii).
        grad[np.diag_indices_from(grad)] = scale * e / (1.0 - staying)
        return grad


class EnergyTerm(ObjectiveTerm):
    """Travel-energy control ``(w/2) (D - gamma)^2`` (Section VII).

    ``gamma = 0`` reduces to penalizing the mean per-transition travel
    distance ``D`` itself; a positive ``gamma`` *prescribes* an average
    movement level, which Section VII notes can be advantageous.
    """

    def __init__(self, distances: np.ndarray, weight: float,
                 target: float = 0.0) -> None:
        self.distances = check_square("distances", distances)
        if weight < 0:
            raise ValueError(f"weight must be >= 0, got {weight}")
        self.weight = float(weight)
        self.target = float(target)

    def mean_travel(self, state: ChainState) -> float:
        """``D = sum_i pi_i sum_{j != i} p_ij d_ij`` (d_ii = 0)."""
        return float(state.pi @ (state.p * self.distances).sum(axis=1))

    def value(self, state: ChainState) -> float:
        gap = self.mean_travel(state) - self.target
        return float(0.5 * self.weight * gap * gap)

    def grad_pi(self, state: ChainState) -> np.ndarray:
        gap = self.mean_travel(state) - self.target
        return self.weight * gap * (state.p * self.distances).sum(axis=1)

    def grad_p(self, state: ChainState) -> np.ndarray:
        gap = self.mean_travel(state) - self.target
        return self.weight * gap * state.pi[:, None] * self.distances


class EntropyTerm(ObjectiveTerm):
    """Entropy regularization ``-w H`` (Section VII).

    Adding this term to a minimized cost maximizes the schedule's entropy
    rate, making the sensor's location harder for an adversary to predict.
    """

    def __init__(self, weight: float) -> None:
        if weight < 0:
            raise ValueError(f"weight must be >= 0, got {weight}")
        self.weight = float(weight)

    @staticmethod
    def _row_plogp(p: np.ndarray) -> np.ndarray:
        with np.errstate(divide="ignore", invalid="ignore"):
            return np.where(p > 0.0, p * np.log(p), 0.0)

    def entropy(self, state: ChainState) -> float:
        """Entropy rate ``H`` at ``state`` in nats."""
        return float(-state.pi @ self._row_plogp(state.p).sum(axis=1))

    def value(self, state: ChainState) -> float:
        return -self.weight * self.entropy(state)

    def grad_pi(self, state: ChainState) -> np.ndarray:
        # dH/dpi_i = -sum_j p_ij ln p_ij; value = -w H.
        return self.weight * self._row_plogp(state.p).sum(axis=1)

    def grad_p(self, state: ChainState) -> np.ndarray:
        # dH/dp_ij = -pi_i (ln p_ij + 1); value = -w H.
        with np.errstate(divide="ignore"):
            logs = np.where(state.p > 0.0, np.log(state.p), 0.0)
        return self.weight * state.pi[:, None] * (logs + 1.0)
