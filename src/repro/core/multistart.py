"""Multi-start optimization driver.

The solution space contains many local optima (Section VI-A), and for
extreme weightings (e.g. ``beta -> 0``) the global basin is a narrow
funnel near a corner of the transition polytope that neither random
initialization nor gradient noise reaches reliably.  The standard
practitioner remedy — and the one our experiment harness uses for the
Table I/II weight sweeps — is a multi-start: run the optimizer from a
portfolio of initial matrices covering qualitatively different schedule
regimes and keep the best result.

The default portfolio:

* the uniform matrix (V1's start),
* ``random_starts`` paper-recipe random matrices (V2's start),
* a geometric grid of damped-baseline matrices
  ``(1 - delta) I + delta 1 phi^T`` spanning fast- to slow-moving
  schedules (see
  :func:`repro.core.initializers.damped_baseline_matrix`).

This module is an extension beyond the paper's Section V variants; it is
documented as such in DESIGN.md and exercised by the ablation benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.core.cost import CoverageCost
from repro.core.initializers import (
    damped_baseline_matrix,
    paper_random_matrix,
    uniform_matrix,
)
from repro.core.perturbed import PerturbedOptions, optimize_perturbed
from repro.core.result import OptimizationResult
from repro.exec import resolve_executor
from repro.utils.rng import RandomState, as_generator, spawn_generators

#: Default damping grid: fast (1.0) down to nearly frozen schedules.
DEFAULT_DELTA_GRID = (1.0, 0.3, 0.1, 0.03, 0.01, 0.003)


@dataclass
class MultiStartResult:
    """Best run plus the full per-start results for diagnostics."""

    best: OptimizationResult
    runs: List[OptimizationResult]
    start_labels: List[str]

    @property
    def best_label(self) -> str:
        """Label of the start that produced the best run."""
        index = int(
            np.argmin([run.best_u_eps for run in self.runs])
        )
        return self.start_labels[index]


def default_start_portfolio(
    cost: CoverageCost,
    random_starts: int = 3,
    delta_grid: Sequence[float] = DEFAULT_DELTA_GRID,
    seed: RandomState = None,
):
    """Build the default ``(label, matrix)`` start list for ``cost``."""
    rng = as_generator(seed)
    size = cost.size
    support = cost.support
    phi = cost.topology.target_shares
    starts = [("uniform", uniform_matrix(size, support=support))]
    for index in range(random_starts):
        starts.append(
            (
                f"random-{index}",
                paper_random_matrix(size, seed=rng, support=support),
            )
        )
    if np.all(phi > 0):
        epsilon = cost.weights.epsilon
        for delta in delta_grid:
            # Keep every entry of delta * phi above the barrier band.
            if delta * phi.min() <= epsilon:
                continue
            starts.append(
                (
                    f"damped-{delta:g}",
                    damped_baseline_matrix(phi, delta, support=support),
                )
            )
    return starts


def _run_start(task) -> OptimizationResult:
    """One portfolio start; module-level so it pickles for processes."""
    optimizer, cost, matrix, rng, options = task
    kwargs = {"initial": matrix, "seed": rng}
    if options is not None:
        kwargs["options"] = options
    return optimizer(cost, **kwargs)


def optimize_multistart(
    cost: CoverageCost,
    optimizer: Optional[Callable[..., OptimizationResult]] = None,
    random_starts: int = 3,
    delta_grid: Sequence[float] = DEFAULT_DELTA_GRID,
    seed: RandomState = None,
    options: Optional[PerturbedOptions] = None,
    executor=None,
    execution=None,
    transport=None,
) -> MultiStartResult:
    """Run ``optimizer`` from every start in the portfolio; keep the best.

    ``optimizer`` defaults to :func:`repro.core.perturbed.optimize_perturbed`
    and must accept ``(cost, initial=..., seed=..., options=...)``.

    The starts are independent: the portfolio is drawn first from
    ``seed``, then each start gets its own spawned RNG stream, so the
    outcome is bit-identical whichever :mod:`repro.exec` backend runs
    them (the ``process`` backend additionally requires ``optimizer`` to
    be picklable — the default is).

    ``execution`` selects how the starts run: ``"serial"`` (one after
    another, same as ``executor=None``), ``"lockstep"`` (all starts
    advance one descent iteration at a time with their line searches
    fused into stacked calls — see :mod:`repro.core.lockstep`; only the
    default perturbed optimizer supports it), or any :mod:`repro.exec`
    backend name / :class:`~repro.exec.executor.Executor` instance.
    Every mode returns bit-identical runs.  ``executor`` remains as the
    original spelling for executor-backed runs; passing both is an
    error.

    ``transport`` selects the process backend's payload transport
    (``"pickle"`` | ``"shm"`` | ``"auto"``, see
    :mod:`repro.exec.shm`); it applies when this call constructs the
    backend from a name, and is rejected for the in-process
    ``"serial"``/``"lockstep"`` modes, which have no serialization
    boundary.  Results are bit-identical across transports.
    """
    if execution is not None:
        if executor is not None:
            raise ValueError(
                "pass either execution= or executor=, not both"
            )
        if execution in ("serial", "lockstep") and transport is not None:
            raise ValueError(
                f"execution={execution!r} runs in-process; transport "
                "applies to executor-backed runs"
            )
        if execution == "lockstep":
            if optimizer is not None and optimizer is not optimize_perturbed:
                raise ValueError(
                    "execution='lockstep' supports only the default "
                    "perturbed optimizer"
                )
            from repro.core.lockstep import lockstep_multistart

            return lockstep_multistart(
                cost,
                random_starts=random_starts,
                delta_grid=delta_grid,
                seed=seed,
                options=options,
            )
        executor = None if execution == "serial" else execution
    rng = as_generator(seed)
    if optimizer is None:
        optimizer = optimize_perturbed
    starts = default_start_portfolio(
        cost, random_starts=random_starts, delta_grid=delta_grid, seed=rng
    )
    streams = spawn_generators(rng, len(starts))
    tasks = [
        (optimizer, cost, matrix, stream, options)
        for (_, matrix), stream in zip(starts, streams)
    ]
    runs = resolve_executor(executor, transport=transport).map(
        _run_start, tasks
    )
    labels = [label for label, _ in starts]
    best = min(runs, key=lambda run: run.best_u_eps)
    return MultiStartResult(best=best, runs=runs, start_labels=labels)
