"""The log-barrier penalty of Eq. (9).

Keeps the descent iterates strictly inside the open box ``0 < p_ij < 1``.
Per entry ``p`` the penalty is

    ``phi(p) = -(1/eps) ln(p) (eps - p)^2          if p <= eps``
    ``       + -(1/eps) ln(1 - p) (1 - eps - p)^2  if p >= 1 - eps``

(and zero in the interior band).  ``phi -> +inf`` as ``p -> 0`` or
``p -> 1``, so steepest descent — which only ever decreases the cost along
its line search — cannot cross the boundary.  The quadratic factors vanish
at the band edges, making ``phi`` continuously differentiable there.

The term depends on ``P`` only: no ``pi`` or ``Z`` partials.
"""

from __future__ import annotations

import numpy as np

from repro.core.state import ChainState
from repro.core.terms import ObjectiveTerm
from repro.utils.validation import check_positive


class BarrierPenalty(ObjectiveTerm):
    """Eq. (9)'s penalization term with band width ``eps``.

    A boolean ``support`` mask restricts the barrier to feasible
    transitions: off-support entries are pinned at exactly zero by the
    support-aware projection, and without the mask their ``-ln(0)``
    contribution would make every support-restricted iterate infinite.
    """

    def __init__(self, epsilon: float = 1e-4, support=None) -> None:
        self.epsilon = check_positive("epsilon", epsilon)
        if self.epsilon >= 0.5:
            raise ValueError(
                f"epsilon must be < 0.5 so the two bands do not overlap, "
                f"got {self.epsilon}"
            )
        self.support = None if support is None else np.asarray(
            support, dtype=bool
        )

    # ------------------------------------------------------------------ #
    # Scalar pieces, vectorized over arrays
    # ------------------------------------------------------------------ #

    def elementwise_value(self, p: np.ndarray) -> np.ndarray:
        """Per-entry penalty ``phi(p_ij)``; ``+inf`` at the boundary."""
        p = np.asarray(p, dtype=float)
        if np.any(p < 0.0) or np.any(p > 1.0):
            raise ValueError("penalty is defined on [0, 1] entries only")
        eps = self.epsilon
        result = np.zeros_like(p)
        lower = p <= eps
        upper = p >= 1.0 - eps
        with np.errstate(divide="ignore"):
            result[lower] = (
                -np.log(p[lower]) * (eps - p[lower]) ** 2 / eps
            )
            result[upper] = (
                -np.log(1.0 - p[upper]) * (1.0 - eps - p[upper]) ** 2 / eps
            )
        return result

    def elementwise_grad(self, p: np.ndarray) -> np.ndarray:
        """Per-entry derivative ``phi'(p_ij)``; ``-inf``/``+inf`` at 0/1."""
        p = np.asarray(p, dtype=float)
        if np.any(p < 0.0) or np.any(p > 1.0):
            raise ValueError("penalty is defined on [0, 1] entries only")
        eps = self.epsilon
        grad = np.zeros_like(p)
        lower = p <= eps
        upper = p >= 1.0 - eps
        with np.errstate(divide="ignore", invalid="ignore"):
            pl = p[lower]
            # d/dp [-ln(p)(eps-p)^2 / eps]
            grad[lower] = (
                -((eps - pl) ** 2) / pl + 2.0 * (eps - pl) * np.log(pl)
            ) / eps
            pu = p[upper]
            # d/dp [-ln(1-p)(1-eps-p)^2 / eps]
            grad[upper] = (
                (1.0 - eps - pu) ** 2 / (1.0 - pu)
                + 2.0 * (1.0 - eps - pu) * np.log(1.0 - pu)
            ) / eps
        return grad

    # ------------------------------------------------------------------ #
    # ObjectiveTerm interface
    # ------------------------------------------------------------------ #

    def value(self, state: ChainState) -> float:
        if self.support is not None:
            return float(
                self.elementwise_value(state.p[self.support]).sum()
            )
        return float(self.elementwise_value(state.p).sum())

    def grad_p(self, state: ChainState) -> np.ndarray:
        if self.support is not None:
            grad = np.zeros_like(state.p)
            grad[self.support] = self.elementwise_grad(
                state.p[self.support]
            )
            return grad
        return self.elementwise_grad(state.p)
