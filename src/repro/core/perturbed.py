"""Variant V4: stochastically perturbed steepest descent.

The search space of this problem contains surprisingly many local optima
(Section VI-A), so pure descent gets trapped from most random starts.  V4
escapes them with two mechanisms (Section V):

1. **Gradient noise** — mean-zero Gaussian noise with standard deviation
   ``sigma`` is added to ``[D_P U]`` before projection, randomizing the
   search direction.
2. **Annealed acceptance** — when the line search finds no improving step
   (``dt* = 0``), a random feasible step is taken instead; a move that
   worsens the cost is accepted with probability
   ``exp(-Delta_U / T(count))``, where ``Delta_U`` is the worsening
   normalized by the best cost found so far and ``T(count) =
   k / ln(count + e)`` is a Hajek-style logarithmic cooling schedule.

The printed formula in the paper (``exp(-Delta_U / (k log count))``) would
make acceptance *more* likely over time, contradicting both the
surrounding text and the cited Hajek cooling result; see DESIGN.md
section 2 for why we implement the decreasing schedule.

The best-so-far matrix is tracked and returned: annealing deliberately
wanders uphill, so the final iterate need not be the best one seen.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.cost import CoverageCost
from repro.core.initializers import paper_random_matrix
from repro.core.linesearch import feasible_step_bound, trisection_search
from repro.core.options import SearchOptions
from repro.core.result import IterationRecord, OptimizationResult
from repro.utils import perf
from repro.utils.rng import (
    RandomState,
    as_generator,
    generator_from_state,
    generator_state,
)

#: Schema tag of :meth:`PerturbedWalk.snapshot` payloads (the service's
#: mid-run job checkpoints, :mod:`repro.service`).
WALK_SNAPSHOT_SCHEMA = "repro/walk-snapshot/v1"


@dataclass(frozen=True)
class PerturbedOptions(SearchOptions):
    """Knobs of the perturbed algorithm (V2 + V3 + V4).

    ``sigma`` scales the gradient noise *relative to* the gradient's RMS
    magnitude when ``relative_noise`` is true (robust across topologies
    whose gradient scales differ by orders of magnitude); set
    ``relative_noise=False`` for absolute noise.  ``cooling_k`` is the
    paper's constant ``k`` (its experiments use ``k = 10000``).
    ``stall_limit`` stops a run after that many iterations without
    improving the best cost.  ``reuse_linesearch_state`` hands the line
    search's winning probe's ``(pi, Z)`` to the accepted candidate
    instead of refactorizing from scratch (see ``docs/performance.md``);
    disable it only to cross-check the two paths.
    """

    max_iterations: int = 600
    sigma: float = 0.5
    relative_noise: bool = True
    cooling_k: float = 10_000.0
    stall_limit: int = 120
    reuse_linesearch_state: bool = True

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.sigma < 0:
            raise ValueError(f"sigma must be >= 0, got {self.sigma}")
        if self.cooling_k <= 0:
            raise ValueError(f"cooling_k must be > 0, got {self.cooling_k}")
        if self.stall_limit < 1:
            raise ValueError("stall_limit must be >= 1")


def acceptance_probability(
    worsening: float, best_cost: float, count: int, cooling_k: float
) -> float:
    """Annealed probability of accepting a move that worsens ``U`` by
    ``worsening`` at iteration ``count``.

    ``worsening`` is normalized by ``|best_cost|`` so the schedule works
    without knowing the range of ``U_eps`` beforehand (the paper's stated
    motivation for the normalization).  The temperature is
    ``T = cooling_k / ln(count + e)``, strictly decreasing in ``count``.
    """
    if worsening <= 0.0:
        return 1.0
    scale = max(abs(best_cost), 1e-300)
    normalized = worsening / scale
    temperature = cooling_k / np.log(count + np.e)
    return float(np.exp(-normalized / temperature))


def acquire_candidate(
    cost: CoverageCost,
    base_matrix: np.ndarray,
    direction: np.ndarray,
    step: float,
    ray,
    from_search: bool,
    reuse: bool,
    probe=None,
):
    """The candidate state and breakdown at ``base + step * direction``.

    With ``reuse`` enabled, line-search winners come back from the
    :class:`~repro.core.cost.RayBatch` with their already-computed
    ``(pi, Z)``, and random fallback steps are evaluated through the
    same batched path — either way no scalar refactorization happens.
    ``probe`` optionally supplies an already-evaluated
    ``(value, state_or_None)`` fallback probe (the lockstep driver fuses
    those across trajectories); when omitted, ``ray.probe_state`` is
    called here.  Falls back to a scratch :meth:`CoverageCost.build_state`
    build when the probe cannot be recovered.  Returns ``(None, None)``
    for infeasible candidates.
    """
    candidate_state = None
    if reuse and ray is not None:
        if from_search:
            candidate_state = ray.state_at(step)
        else:
            if probe is None:
                probe = ray.probe_state(step)
            candidate_state = probe[1]
            if candidate_state is None:
                return None, None
    if candidate_state is None:
        try:
            candidate_state = cost.build_state(
                base_matrix + step * direction, check=False
            )
        except (ValueError, np.linalg.LinAlgError, RuntimeError):
            return None, None
    try:
        return candidate_state, cost.evaluate(candidate_state)
    except (ValueError, np.linalg.LinAlgError):
        return None, None


class SearchSpec:
    """What one iteration's line search needs: the ray and its bounds."""

    __slots__ = ("matrix", "direction", "bound", "baseline")

    def __init__(
        self,
        matrix: np.ndarray,
        direction: np.ndarray,
        bound: float,
        baseline: float,
    ) -> None:
        self.matrix = matrix
        self.direction = direction
        self.bound = bound
        self.baseline = baseline


class PerturbedWalk:
    """One perturbed-descent trajectory, advanced iteration by iteration.

    :func:`optimize_perturbed` drives a single walk to completion; the
    lockstep driver (:mod:`repro.core.lockstep`) advances many walks one
    stage at a time, fusing their line-search probes into stacked
    evaluations.  Both paths run the identical per-iteration arithmetic
    and draw from the walk's own RNG in the identical order — gradient
    noise, then the fallback step, then the acceptance test (which is
    short-circuited, drawing nothing, for non-worsening moves) — so a
    walk's trajectory is bit-identical regardless of the driver.

    Protocol per iteration: :meth:`begin_iteration` returns a
    :class:`SearchSpec` (or ``None`` once finished); the driver runs the
    trisection search over that ray, then calls :meth:`choose_step` with
    the search result, which returns a fallback step needing a probe (or
    ``None``); finally :meth:`complete_iteration` with the ray and the
    optional probe applies the move.  :meth:`result` packages the
    outcome.
    """

    def __init__(
        self,
        cost: CoverageCost,
        initial: Optional[np.ndarray],
        rng,
        options: PerturbedOptions,
    ) -> None:
        self.cost = cost
        self.options = options
        self.rng = as_generator(rng)
        matrix = (
            paper_random_matrix(
                cost.size, seed=self.rng, support=cost.support
            )
            if initial is None else np.array(initial, dtype=float)
        )
        self.state = cost.build_state(matrix)
        self.breakdown = cost.evaluate(self.state)
        self.best_matrix = self.state.p.copy()
        self.best_u_eps = self.breakdown.u_eps
        self.best_breakdown = self.breakdown
        self.history = []
        self.checkpoints = []
        self.stall = 0
        self.stop_reason = "max_iterations"
        self.iteration = 0
        self.accepted_steps = 0
        self.accept_factorizations = 0
        self._finished = options.max_iterations < 1

    @property
    def finished(self) -> bool:
        return self._finished

    def begin_iteration(self) -> Optional[SearchSpec]:
        """Start the next iteration: noisy direction and step bound."""
        if self._finished:
            return None
        self.iteration += 1
        gradient = self.cost.gradient(self.state)
        self._gradient_norm = float(np.linalg.norm(gradient))
        if self.options.sigma > 0.0:
            if self.options.relative_noise:
                rms = self._gradient_norm / self.state.p.size**0.5
                noise_scale = self.options.sigma * max(rms, 1e-300)
            else:
                noise_scale = self.options.sigma
            gradient = gradient + self.rng.normal(
                0.0, noise_scale, size=gradient.shape
            )
        self._direction = -self.cost.project(gradient)
        self._bound = feasible_step_bound(self.state.p, self._direction)
        return SearchSpec(
            matrix=self.state.p,
            direction=self._direction,
            bound=self._bound,
            baseline=self.breakdown.u_eps,
        )

    def choose_step(self, search) -> Optional[float]:
        """Pick the step from the line-search result (or a random
        fallback).

        Returns the fallback step when it needs a probe evaluation from
        the driver (reuse enabled, no improving search step), else
        ``None``.
        """
        if search.step > 0.0:
            self._step = search.step
            self._from_search = True
        elif self._bound > 0.0:
            # Paper: "if dt* = 0 then dt = rand" within the feasible
            # range.
            self._step = self.rng.uniform(0.0, self._bound)
            self._from_search = False
        else:
            self._step = 0.0
            self._from_search = False
        if (
            self._step > 0.0
            and not self._from_search
            and self.options.reuse_linesearch_state
        ):
            return self._step
        return None

    def complete_iteration(self, ray, probe=None) -> None:
        """Acquire the candidate, run the acceptance test, bookkeep."""
        options = self.options
        accepted = False
        if self._step > 0.0:
            with perf.perf_scope() as build:
                candidate_state, candidate_breakdown = acquire_candidate(
                    self.cost, self.state.p, self._direction, self._step,
                    ray, self._from_search,
                    options.reuse_linesearch_state, probe=probe,
                )
            if candidate_breakdown is not None and np.isfinite(
                candidate_breakdown.u_eps
            ):
                worsening = (
                    candidate_breakdown.u_eps - self.breakdown.u_eps
                )
                probability = acceptance_probability(
                    worsening, self.best_u_eps, self.iteration,
                    options.cooling_k,
                )
                if worsening <= 0.0 or self.rng.uniform() < probability:
                    self.state = candidate_state
                    self.breakdown = candidate_breakdown
                    accepted = True
                    self.accepted_steps += 1
                    self.accept_factorizations += build.factorizations

        if self.breakdown.u_eps < self.best_u_eps - 1e-15:
            self.best_u_eps = self.breakdown.u_eps
            self.best_matrix = self.state.p.copy()
            self.best_breakdown = self.breakdown
            self.stall = 0
        else:
            self.stall += 1

        if options.record_history:
            self.history.append(
                IterationRecord(
                    iteration=self.iteration,
                    u_eps=self.breakdown.u_eps,
                    u=self.breakdown.u,
                    delta_c=self.breakdown.delta_c,
                    e_bar=self.breakdown.e_bar,
                    step=self._step if accepted else 0.0,
                    gradient_norm=self._gradient_norm,
                    accepted=accepted,
                )
            )

        if (
            options.checkpoint_every
            and self.iteration % options.checkpoint_every == 0
        ):
            self.checkpoints.append((self.iteration, self.state.p.copy()))

        if self.stall >= options.stall_limit:
            self.stop_reason = "stalled"
            self._finished = True
        elif self.iteration >= options.max_iterations:
            self._finished = True

    def snapshot(self) -> dict:
        """JSON-plain snapshot of the walk at an iteration boundary.

        Valid between :meth:`complete_iteration` and the next
        :meth:`begin_iteration` (per-iteration scratch like the current
        ray is deliberately not captured).  The snapshot carries the
        current and best iterates, the bookkeeping counters, the
        recorded history, and the RNG's exact stream position
        (:func:`~repro.utils.rng.generator_state`); :meth:`restore`
        rebuilds derived state — ``(pi, Z)`` factorizations and cost
        breakdowns — from scratch, which on the dense reference path is
        bit-identical to the states the reuse path carried (the
        invariant ``tests/core/test_reuse_and_perf.py`` pins), so a
        restored walk continues the trajectory bit for bit.
        """
        from dataclasses import asdict

        return {
            "schema": WALK_SNAPSHOT_SCHEMA,
            "iteration": int(self.iteration),
            "matrix": self.state.p.tolist(),
            "best_matrix": np.asarray(self.best_matrix).tolist(),
            "best_u_eps": float(self.best_u_eps),
            "stall": int(self.stall),
            "stop_reason": self.stop_reason,
            "finished": bool(self._finished),
            "accepted_steps": int(self.accepted_steps),
            "accept_factorizations": int(self.accept_factorizations),
            "rng": generator_state(self.rng),
            "history": [asdict(record) for record in self.history],
            "checkpoints": [
                [int(iteration), np.asarray(matrix).tolist()]
                for iteration, matrix in self.checkpoints
            ],
        }

    @classmethod
    def restore(
        cls,
        cost: CoverageCost,
        snapshot: dict,
        options: PerturbedOptions,
    ) -> "PerturbedWalk":
        """Rebuild a walk from a :meth:`snapshot` payload.

        ``cost`` and ``options`` must describe the same problem the
        snapshot was taken under — they are part of the job's identity,
        not of the snapshot.
        """
        schema = snapshot.get("schema")
        if schema != WALK_SNAPSHOT_SCHEMA:
            raise ValueError(
                f"expected schema {WALK_SNAPSHOT_SCHEMA!r}, got "
                f"{schema!r}"
            )
        matrix = np.asarray(snapshot["matrix"], dtype=float)
        walk = cls(cost, matrix, generator_from_state(snapshot["rng"]),
                   options)
        walk.iteration = int(snapshot["iteration"])
        walk.stall = int(snapshot["stall"])
        walk.stop_reason = snapshot["stop_reason"]
        walk._finished = bool(snapshot["finished"])
        walk.accepted_steps = int(snapshot["accepted_steps"])
        walk.accept_factorizations = int(
            snapshot["accept_factorizations"]
        )
        best_matrix = np.asarray(snapshot["best_matrix"], dtype=float)
        walk.best_u_eps = float(snapshot["best_u_eps"])
        if np.array_equal(best_matrix, matrix):
            walk.best_matrix = walk.state.p.copy()
            walk.best_breakdown = walk.breakdown
        else:
            walk.best_matrix = best_matrix
            walk.best_breakdown = cost.evaluate(
                cost.build_state(best_matrix)
            )
        walk.history = [
            IterationRecord(**record) for record in snapshot["history"]
        ]
        walk.checkpoints = [
            (int(iteration), np.asarray(stored, dtype=float))
            for iteration, stored in snapshot["checkpoints"]
        ]
        return walk

    def result(self, run_perf=None) -> OptimizationResult:
        """Package the walk's outcome (best iterate, as the paper
        reports)."""
        return OptimizationResult(
            matrix=self.best_matrix,
            u_eps=self.best_breakdown.u_eps,
            u=self.best_breakdown.u,
            delta_c=self.best_breakdown.delta_c,
            e_bar=self.best_breakdown.e_bar,
            iterations=self.iteration,
            converged=self.stop_reason == "stalled",
            stop_reason=self.stop_reason,
            history=self.history,
            best_matrix=self.best_matrix,
            best_u_eps=self.best_u_eps,
            checkpoints=self.checkpoints,
            perf=run_perf,
        )


def advance_walk(
    cost: CoverageCost, walk: PerturbedWalk, options: PerturbedOptions
) -> bool:
    """Run one complete iteration of ``walk``; ``False`` once finished.

    The single per-iteration driver shared by :func:`optimize_perturbed`
    and the service's checkpointing runner (:mod:`repro.service.runner`)
    — both therefore execute the identical call sequence (ray build,
    trisection, fallback probe, acceptance), so a job driven with
    per-iteration checkpointing is bit-identical to a plain run.
    """
    spec = walk.begin_iteration()
    if spec is None:
        return False
    ray = cost.ray_batch(spec.matrix, spec.direction)
    search = trisection_search(
        upper=spec.bound,
        baseline=spec.baseline,
        rounds=options.trisection_rounds,
        improvement_rtol=options.rtol,
        geometric_decades=options.geometric_decades,
        batch_objective=ray,
    )
    fallback = walk.choose_step(search)
    probe = ray.probe_state(fallback) if fallback is not None else None
    walk.complete_iteration(ray, probe)
    return True


def optimize_perturbed(
    cost: CoverageCost,
    initial: Optional[np.ndarray] = None,
    seed: RandomState = None,
    options: Optional[PerturbedOptions] = None,
) -> OptimizationResult:
    """Run the stochastically perturbed algorithm on ``cost``.

    The returned ``matrix``/``u_eps`` are the **best** iterate found (the
    quantity the paper reports); the full trajectory, including rejected
    and uphill moves, is available in ``history``.
    """
    options = options or PerturbedOptions()
    rng = as_generator(seed)
    started = time.perf_counter()
    with perf.perf_scope() as counters:
        walk = PerturbedWalk(cost, initial, rng, options)
        while advance_walk(cost, walk, options):
            pass

    return walk.result(
        run_perf=perf.OptimizerPerf.from_counters(
            counters,
            accepted_steps=walk.accepted_steps,
            accept_factorizations=walk.accept_factorizations,
            seconds=time.perf_counter() - started,
        )
    )
