"""Variant V4: stochastically perturbed steepest descent.

The search space of this problem contains surprisingly many local optima
(Section VI-A), so pure descent gets trapped from most random starts.  V4
escapes them with two mechanisms (Section V):

1. **Gradient noise** — mean-zero Gaussian noise with standard deviation
   ``sigma`` is added to ``[D_P U]`` before projection, randomizing the
   search direction.
2. **Annealed acceptance** — when the line search finds no improving step
   (``dt* = 0``), a random feasible step is taken instead; a move that
   worsens the cost is accepted with probability
   ``exp(-Delta_U / T(count))``, where ``Delta_U`` is the worsening
   normalized by the best cost found so far and ``T(count) =
   k / ln(count + e)`` is a Hajek-style logarithmic cooling schedule.

The printed formula in the paper (``exp(-Delta_U / (k log count))``) would
make acceptance *more* likely over time, contradicting both the
surrounding text and the cited Hajek cooling result; see DESIGN.md
section 2 for why we implement the decreasing schedule.

The best-so-far matrix is tracked and returned: annealing deliberately
wanders uphill, so the final iterate need not be the best one seen.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.cost import CoverageCost
from repro.core.initializers import paper_random_matrix
from repro.core.linesearch import feasible_step_bound, trisection_search
from repro.core.result import IterationRecord, OptimizationResult
from repro.core.state import ChainState
from repro.utils import perf
from repro.utils.linalg import project_row_sum_zero
from repro.utils.rng import RandomState, as_generator


@dataclass(frozen=True)
class PerturbedOptions:
    """Knobs of the perturbed algorithm (V2 + V3 + V4).

    ``sigma`` scales the gradient noise *relative to* the gradient's RMS
    magnitude when ``relative_noise`` is true (robust across topologies
    whose gradient scales differ by orders of magnitude); set
    ``relative_noise=False`` for absolute noise.  ``cooling_k`` is the
    paper's constant ``k`` (its experiments use ``k = 10000``).
    ``stall_limit`` stops a run after that many iterations without
    improving the best cost.  ``reuse_linesearch_state`` hands the line
    search's winning probe's ``(pi, Z)`` to the accepted candidate
    instead of refactorizing from scratch (see ``docs/performance.md``);
    disable it only to cross-check the two paths.
    """

    max_iterations: int = 600
    sigma: float = 0.5
    relative_noise: bool = True
    cooling_k: float = 10_000.0
    stall_limit: int = 120
    trisection_rounds: int = 40
    geometric_decades: int = 12
    rtol: float = 1e-12
    record_history: bool = True
    checkpoint_every: int = 0
    reuse_linesearch_state: bool = True

    def __post_init__(self) -> None:
        if self.max_iterations < 1:
            raise ValueError("max_iterations must be >= 1")
        if self.sigma < 0:
            raise ValueError(f"sigma must be >= 0, got {self.sigma}")
        if self.cooling_k <= 0:
            raise ValueError(f"cooling_k must be > 0, got {self.cooling_k}")
        if self.stall_limit < 1:
            raise ValueError("stall_limit must be >= 1")
        if self.geometric_decades < 0:
            raise ValueError("geometric_decades must be >= 0")
        if self.checkpoint_every < 0:
            raise ValueError("checkpoint_every must be >= 0")


def acceptance_probability(
    worsening: float, best_cost: float, count: int, cooling_k: float
) -> float:
    """Annealed probability of accepting a move that worsens ``U`` by
    ``worsening`` at iteration ``count``.

    ``worsening`` is normalized by ``|best_cost|`` so the schedule works
    without knowing the range of ``U_eps`` beforehand (the paper's stated
    motivation for the normalization).  The temperature is
    ``T = cooling_k / ln(count + e)``, strictly decreasing in ``count``.
    """
    if worsening <= 0.0:
        return 1.0
    scale = max(abs(best_cost), 1e-300)
    normalized = worsening / scale
    temperature = cooling_k / np.log(count + np.e)
    return float(np.exp(-normalized / temperature))


def acquire_candidate(
    cost: CoverageCost,
    base_matrix: np.ndarray,
    direction: np.ndarray,
    step: float,
    ray,
    from_search: bool,
    reuse: bool,
):
    """The candidate state and breakdown at ``base + step * direction``.

    With ``reuse`` enabled, line-search winners come back from the
    :class:`~repro.core.cost.RayBatch` with their already-computed
    ``(pi, Z)``, and random fallback steps are evaluated through the
    same batched path — either way no scalar refactorization happens.
    Falls back to a scratch :meth:`ChainState.from_matrix` build when the
    probe cannot be recovered.  Returns ``(None, None)`` for infeasible
    candidates.
    """
    candidate_state = None
    if reuse and ray is not None:
        if from_search:
            candidate_state = ray.state_at(step)
        else:
            candidate_state = ray.probe_state(step)[1]
            if candidate_state is None:
                return None, None
    if candidate_state is None:
        try:
            candidate_state = ChainState.from_matrix(
                base_matrix + step * direction, check=False
            )
        except (ValueError, np.linalg.LinAlgError):
            return None, None
    try:
        return candidate_state, cost.evaluate(candidate_state)
    except (ValueError, np.linalg.LinAlgError):
        return None, None


def optimize_perturbed(
    cost: CoverageCost,
    initial: Optional[np.ndarray] = None,
    seed: RandomState = None,
    options: Optional[PerturbedOptions] = None,
) -> OptimizationResult:
    """Run the stochastically perturbed algorithm on ``cost``.

    The returned ``matrix``/``u_eps`` are the **best** iterate found (the
    quantity the paper reports); the full trajectory, including rejected
    and uphill moves, is available in ``history``.
    """
    options = options or PerturbedOptions()
    rng = as_generator(seed)
    started = time.perf_counter()
    with perf.perf_scope() as counters:
        matrix = (
            paper_random_matrix(cost.size, seed=rng) if initial is None
            else np.array(initial, dtype=float)
        )
        state = ChainState.from_matrix(matrix)
        breakdown = cost.evaluate(state)
        best_matrix = state.p.copy()
        best_u_eps = breakdown.u_eps
        best_breakdown = breakdown
        history = []
        checkpoints = []
        stall = 0
        stop_reason = "max_iterations"
        iteration = 0
        accepted_steps = 0
        accept_factorizations = 0

        for iteration in range(1, options.max_iterations + 1):
            gradient = cost.gradient(state)
            gradient_norm = float(np.linalg.norm(gradient))
            if options.sigma > 0.0:
                if options.relative_noise:
                    rms = gradient_norm / state.p.size**0.5
                    noise_scale = options.sigma * max(rms, 1e-300)
                else:
                    noise_scale = options.sigma
                gradient = gradient + rng.normal(
                    0.0, noise_scale, size=gradient.shape
                )
            direction = -project_row_sum_zero(gradient)
            bound = feasible_step_bound(state.p, direction)

            ray = cost.ray_batch(state.p, direction)
            search = trisection_search(
                upper=bound,
                baseline=breakdown.u_eps,
                rounds=options.trisection_rounds,
                improvement_rtol=options.rtol,
                geometric_decades=options.geometric_decades,
                batch_objective=ray,
            )
            if search.step > 0.0:
                step = search.step
                from_search = True
            elif bound > 0.0:
                # Paper: "if dt* = 0 then dt = rand" within the feasible
                # range.
                step = rng.uniform(0.0, bound)
                from_search = False
            else:
                step = 0.0
                from_search = False

            accepted = False
            if step > 0.0:
                build_start = counters.factorizations
                candidate_state, candidate_breakdown = acquire_candidate(
                    cost, state.p, direction, step, ray, from_search,
                    options.reuse_linesearch_state,
                )
                build_factorizations = (
                    counters.factorizations - build_start
                )
                if candidate_breakdown is not None and np.isfinite(
                    candidate_breakdown.u_eps
                ):
                    worsening = candidate_breakdown.u_eps - breakdown.u_eps
                    probability = acceptance_probability(
                        worsening, best_u_eps, iteration, options.cooling_k
                    )
                    if worsening <= 0.0 or rng.uniform() < probability:
                        state = candidate_state
                        breakdown = candidate_breakdown
                        accepted = True
                        accepted_steps += 1
                        accept_factorizations += build_factorizations

            if breakdown.u_eps < best_u_eps - 1e-15:
                best_u_eps = breakdown.u_eps
                best_matrix = state.p.copy()
                best_breakdown = breakdown
                stall = 0
            else:
                stall += 1

            if options.record_history:
                history.append(
                    IterationRecord(
                        iteration=iteration,
                        u_eps=breakdown.u_eps,
                        u=breakdown.u,
                        delta_c=breakdown.delta_c,
                        e_bar=breakdown.e_bar,
                        step=step if accepted else 0.0,
                        gradient_norm=gradient_norm,
                        accepted=accepted,
                    )
                )

            if (
                options.checkpoint_every
                and iteration % options.checkpoint_every == 0
            ):
                checkpoints.append((iteration, state.p.copy()))

            if stall >= options.stall_limit:
                stop_reason = "stalled"
                break

    return OptimizationResult(
        matrix=best_matrix,
        u_eps=best_breakdown.u_eps,
        u=best_breakdown.u,
        delta_c=best_breakdown.delta_c,
        e_bar=best_breakdown.e_bar,
        iterations=iteration,
        converged=stop_reason == "stalled",
        stop_reason=stop_reason,
        history=history,
        best_matrix=best_matrix,
        best_u_eps=best_u_eps,
        checkpoints=checkpoints,
        perf=perf.OptimizerPerf.from_counters(
            counters,
            accepted_steps=accepted_steps,
            accept_factorizations=accept_factorizations,
            seconds=time.perf_counter() - started,
        ),
    )
