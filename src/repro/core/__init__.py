"""Core library: the paper's steepest-descent coverage optimizer.

The pieces map one-to-one onto the paper's sections:

* :mod:`repro.core.state` — per-iterate cache of ``(P, pi, Z, R)``.
* :mod:`repro.core.terms` — objective terms (coverage deviation, exposure,
  energy, entropy, plus plugin terms) with analytic partials w.r.t.
  ``(pi, Z, P)`` behind the :class:`~repro.core.terms.CostTerm` protocol.
* :mod:`repro.core.registry` — the :data:`~repro.core.registry.TERM_REGISTRY`
  of composable cost terms and the weighted
  :class:`~repro.core.registry.CostSum` composer.
* :mod:`repro.core.penalty` — the log-barrier of Eq. (9).
* :mod:`repro.core.cost` — the assembled cost ``U_eps`` and the paper's
  reporting metrics ``Delta C`` (Eq. 12) and ``E-bar`` (Eq. 13).
* :mod:`repro.core.gradient` — the total derivative ``[D_P U]`` (Eq. 10)
  and its row-sum-zero projection (Eq. 11).
* :mod:`repro.core.descent` / :mod:`~repro.core.adaptive` /
  :mod:`~repro.core.perturbed` — algorithm variants V1-V4 (Section V).
"""

from repro.core.state import ChainState
from repro.core.terms import (
    CostTerm,
    KCoverageShortfallTerm,
    PeriodicityTerm,
    TermBatch,
    WorstExposureTerm,
)
from repro.core.registry import (
    TERM_REGISTRY,
    CostSum,
    ScaledTerm,
    TermSpec,
    build_term,
    normalize_extra_terms,
)
from repro.core.cost import (
    LINALG_MODES,
    CostBreakdown,
    CostWeights,
    CoverageCost,
    MultiRayBatch,
    RayBatch,
    resolve_linalg,
)
from repro.core.options import (
    OptimizerOptions,
    SearchOptions,
    coerce_options,
)
from repro.core.initializers import (
    damped_baseline_matrix,
    dirichlet_matrix,
    paper_random_matrix,
    uniform_matrix,
)
from repro.core.result import IterationRecord, OptimizationResult
from repro.core.descent import BasicDescentOptions, optimize_basic
from repro.core.adaptive import AdaptiveOptions, optimize_adaptive
from repro.core.perturbed import PerturbedOptions, optimize_perturbed
from repro.core.mirror import MirrorOptions, optimize_mirror
from repro.core.multistart import (
    MultiStartResult,
    default_start_portfolio,
    optimize_multistart,
)
from repro.core.lockstep import lockstep_multistart
from repro.core.api import OPTIMIZER_REGISTRY, OptimizerSpec, optimize

__all__ = [
    "ChainState",
    "CostTerm",
    "TermBatch",
    "TermSpec",
    "TERM_REGISTRY",
    "CostSum",
    "ScaledTerm",
    "build_term",
    "normalize_extra_terms",
    "WorstExposureTerm",
    "KCoverageShortfallTerm",
    "PeriodicityTerm",
    "CostBreakdown",
    "CostWeights",
    "CoverageCost",
    "RayBatch",
    "MultiRayBatch",
    "LINALG_MODES",
    "resolve_linalg",
    "OptimizerOptions",
    "SearchOptions",
    "coerce_options",
    "optimize",
    "OptimizerSpec",
    "OPTIMIZER_REGISTRY",
    "lockstep_multistart",
    "uniform_matrix",
    "paper_random_matrix",
    "dirichlet_matrix",
    "damped_baseline_matrix",
    "MultiStartResult",
    "default_start_portfolio",
    "optimize_multistart",
    "IterationRecord",
    "OptimizationResult",
    "BasicDescentOptions",
    "optimize_basic",
    "AdaptiveOptions",
    "optimize_adaptive",
    "PerturbedOptions",
    "optimize_perturbed",
    "MirrorOptions",
    "optimize_mirror",
]
