"""The composable cost-term registry and the weighted ``CostSum`` composer.

Mirrors the :data:`~repro.core.api.OPTIMIZER_REGISTRY` spec/options
pattern for the objective layer: each :class:`TermSpec` records a term's
factory, its tunable parameters with their defaults, and one-line help
text, keyed by name in :data:`TERM_REGISTRY`.  :func:`build_term`
constructs a term from a topology with unknown names and parameters
rejected by name, and :class:`CostSum` composes any number of
:class:`~repro.core.terms.CostTerm` instances — each scaled by a weight
— into one objective (the shape of the GPS ``cost_sum.py`` exemplar).

:class:`~repro.core.cost.CoverageCost` builds its paper terms through
these factories and composes them (plus any ``extra_terms`` plugins) in
a :class:`CostSum`, so "the objective" is data, not special cases:
``repro.optimize(..., terms=...)``, the CLI ``--terms``/``--weights``
flags, and sweep-grid ``terms`` entries all name registry entries.  See
``docs/objectives.md`` for the authoring guide.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro.core.state import ChainState
from repro.core.terms import (
    CostTerm,
    CoverageDeviationTerm,
    EnergyTerm,
    EntropyTerm,
    ExposureTerm,
    KCoverageShortfallTerm,
    PeriodicityTerm,
    SupportCoverageTerm,
    TermBatch,
    WorstExposureTerm,
    check_term_weight,
)


@dataclass(frozen=True)
class TermSpec:
    """Registry entry: a cost term's factory and calling contract.

    ``factory(topology, weight, **params)`` returns a
    :class:`~repro.core.terms.CostTerm` with the weight baked into its
    natural knob (``alpha`` for coverage, ``beta`` for exposure, ``w``
    for the rest).  ``params`` maps the term's tunable parameter names
    to their defaults — :func:`build_term` rejects anything else by
    name, the same contract :func:`~repro.core.options.coerce_options`
    applies to optimizer options.  ``summary`` is the one-line help
    text shown by docs and the CLI; ``source`` names where the
    objective comes from (a paper equation or a PAPERS.md direction).
    """

    name: str
    factory: Callable[..., CostTerm]
    params: Mapping[str, object] = field(default_factory=dict)
    summary: str = ""
    source: str = ""


def _make_coverage(topology, weight, **_params) -> CostTerm:
    """Eq. 9's coverage deviation, support-aware exactly as the cost.

    The adjacency branch mirrors :class:`~repro.core.cost.CoverageCost`
    verbatim: sparse-support topologies get the ``O(E)`` entry-list
    term, dense ones the precomputed ``O(M^3)`` tensor term.
    """
    if topology.adjacency is not None:
        return SupportCoverageTerm(
            travel_times=topology.travel_times,
            entries=topology.passby_entries(),
            target_shares=topology.target_shares,
            alpha=weight,
            support=topology.adjacency,
        )
    return CoverageDeviationTerm(
        travel_times=topology.travel_times,
        passby=topology.passby,
        target_shares=topology.target_shares,
        alpha=weight,
    )


def _make_exposure(topology, weight, **_params) -> CostTerm:
    return ExposureTerm(beta=weight, size=topology.size)


def _make_energy(topology, weight, target=0.0) -> CostTerm:
    return EnergyTerm(
        distances=topology.distances, weight=weight, target=float(target)
    )


def _make_entropy(_topology, weight, **_params) -> CostTerm:
    return EntropyTerm(weight=weight)


def _make_minimax(_topology, weight, tau=8.0) -> CostTerm:
    return WorstExposureTerm(weight=weight, tau=float(tau))


def _make_kcoverage(_topology, weight, team=4, k=2,
                    threshold=0.5) -> CostTerm:
    return KCoverageShortfallTerm(
        weight=weight, team=int(team), k=int(k),
        threshold=float(threshold),
    )


def _make_periodicity(topology, weight, slack=1.5) -> CostTerm:
    """Period ceilings derived from the target allocation.

    Under the ideal schedule ``pi = Phi`` the Kac return time of PoI
    ``i`` is ``1/Phi_i`` transitions; ``slack`` multiplies that, so the
    default penalizes only PoIs revisited slower than ``slack`` times
    their allocation-ideal period.
    """
    slack = float(slack)
    if not np.isfinite(slack) or slack <= 0:
        raise ValueError(f"slack must be finite and > 0, got {slack}")
    return PeriodicityTerm(
        weight=weight, periods=slack / topology.target_shares
    )


#: Term name -> spec.  Iteration order is the documentation order; the
#: first four are the paper's objective re-expressed through the
#: registry, the rest are the plugin terms the composer makes cheap.
TERM_REGISTRY: Dict[str, TermSpec] = {
    "coverage": TermSpec(
        name="coverage",
        factory=_make_coverage,
        summary="squared per-PoI coverage-share deviation from Phi",
        source="Eq. 9 first sum (weight = alpha)",
    ),
    "exposure": TermSpec(
        name="exposure",
        factory=_make_exposure,
        summary="squared per-PoI average exposure times",
        source="Eq. 9 second sum (weight = beta)",
    ),
    "energy": TermSpec(
        name="energy",
        factory=_make_energy,
        params={"target": 0.0},
        summary="squared gap of mean travel distance D to a target",
        source="Section VII",
    ),
    "entropy": TermSpec(
        name="entropy",
        factory=_make_entropy,
        summary="entropy-rate maximization -w H (unpredictability)",
        source="Section VII",
    ),
    "minimax": TermSpec(
        name="minimax",
        factory=_make_minimax,
        params={"tau": 8.0},
        summary="softmax-smoothed worst-PoI exposure (smooth max)",
        source="Pinto et al., multi-agent persistent monitoring",
    ),
    "kcoverage": TermSpec(
        name="kcoverage",
        factory=_make_kcoverage,
        params={"team": 4, "k": 2, "threshold": 0.5},
        summary="squared-hinge shortfall of P[>=k sensors co-located]",
        source="Iyer & Manjunath, k-coverage limit laws",
    ),
    "periodicity": TermSpec(
        name="periodicity",
        factory=_make_periodicity,
        params={"slack": 1.5},
        summary="squared-hinge Kac return-time exceedance over periods",
        source="point sweep coverage",
    ),
}


def build_term(name: str, topology, weight: float = 1.0,
               **params) -> CostTerm:
    """Construct the registered term ``name`` for ``topology``.

    ``weight`` is validated (finite, ``>= 0``) and baked into the term;
    ``params`` must be a subset of the spec's declared parameters —
    unknown names raise a :class:`ValueError` listing the valid set,
    exactly as the optimizer options contract does.
    """
    try:
        spec = TERM_REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(TERM_REGISTRY))
        raise ValueError(
            f"unknown cost term {name!r}; registered terms: {known}"
        ) from None
    unknown = sorted(set(params) - set(spec.params))
    if unknown:
        valid = ", ".join(sorted(spec.params)) or "none"
        raise ValueError(
            f"unknown parameter(s) for term {name!r}: "
            f"{', '.join(unknown)}; valid parameters: {valid}"
        )
    return spec.factory(topology, check_term_weight(weight), **params)


def normalize_extra_terms(spec) -> Tuple[Tuple[str, float, Tuple], ...]:
    """Canonicalize an ``extra_terms`` / ``terms=`` argument.

    Accepts ``None``, a ``{name: weight}`` mapping, or a sequence whose
    entries are ``name``, ``(name, weight)``, or
    ``(name, weight, params_mapping)``.  Returns a tuple of
    ``(name, weight, params_items)`` triples — hashable, order
    preserving, and JSON-plain — with names, weights, and parameter
    names validated against :data:`TERM_REGISTRY` up front, so a bad
    composition fails at construction rather than mid-run.
    """
    if spec is None:
        return ()
    if isinstance(spec, Mapping):
        entries = [(name, weight) for name, weight in spec.items()]
    elif isinstance(spec, str):
        raise TypeError(
            "terms must be a mapping or a sequence of (name, weight) "
            f"entries, got the bare string {spec!r}"
        )
    else:
        entries = list(spec)
    normalized = []
    for entry in entries:
        params: Mapping = {}
        if isinstance(entry, str):
            name, weight = entry, 1.0
        else:
            parts = tuple(entry)
            if len(parts) == 2:
                name, weight = parts
            elif len(parts) == 3:
                name, weight, params = parts
                # Accept a mapping or an items-tuple — the latter is
                # this function's own output, so normalization is
                # idempotent.
                params = dict(params)
            else:
                raise ValueError(
                    "terms entries must be name, (name, weight), or "
                    f"(name, weight, params); got {entry!r}"
                )
        if name not in TERM_REGISTRY:
            known = ", ".join(sorted(TERM_REGISTRY))
            raise ValueError(
                f"unknown cost term {name!r}; registered terms: {known}"
            )
        unknown = sorted(set(params) - set(TERM_REGISTRY[name].params))
        if unknown:
            valid = ", ".join(sorted(TERM_REGISTRY[name].params)) or "none"
            raise ValueError(
                f"unknown parameter(s) for term {name!r}: "
                f"{', '.join(unknown)}; valid parameters: {valid}"
            )
        normalized.append((
            str(name),
            check_term_weight(weight),
            tuple(sorted((str(k), v) for k, v in dict(params).items())),
        ))
    return tuple(normalized)


class ScaledTerm(CostTerm):
    """A term multiplied by a scalar weight — ``CostSum``'s scaling node.

    Wraps any :class:`~repro.core.terms.CostTerm`; value, partials, and
    batched values are the inner term's times ``weight``.  ``CostSum``
    skips the wrapper entirely at weight ``1.0``, so unweighted
    compositions evaluate the raw terms bit for bit.
    """

    def __init__(self, term: CostTerm, weight: float) -> None:
        self.term = term
        self.weight = check_term_weight(weight)

    def value(self, state: ChainState) -> float:
        return self.weight * self.term.value(state)

    def grad_pi(self, state: ChainState) -> Optional[np.ndarray]:
        piece = self.term.grad_pi(state)
        return None if piece is None else self.weight * piece

    def grad_z(self, state: ChainState) -> Optional[np.ndarray]:
        piece = self.term.grad_z(state)
        return None if piece is None else self.weight * piece

    def grad_p(self, state: ChainState) -> Optional[np.ndarray]:
        piece = self.term.grad_p(state)
        return None if piece is None else self.weight * piece

    def batch_value(self, batch: TermBatch) -> np.ndarray:
        return self.weight * self.term.batch_value(batch)

    @property
    def supports_batch(self) -> bool:
        return self.term.supports_batch


class CostSum:
    """A weighted sum of cost terms — the assembled objective.

    Holds ordered ``(label, weight, term)`` entries; :meth:`members`
    exposes the effective term list (raw at weight ``1.0``, wrapped in
    :class:`ScaledTerm` otherwise) that the gradient engine iterates,
    and :meth:`value` sums member values in entry order — the exact
    accumulation the historical hard-wired cost performed, so
    composing the paper's four terms at unit weight is bit-identical
    to the special-cased wiring it replaces.
    """

    def __init__(self, entries) -> None:
        self._entries: List[Tuple[str, float, CostTerm]] = []
        self._members: List[CostTerm] = []
        for label, weight, term in entries:
            weight = check_term_weight(weight)
            self._entries.append((str(label), weight, term))
            self._members.append(
                term if weight == 1.0 else ScaledTerm(term, weight)
            )

    @property
    def entries(self) -> List[Tuple[str, float, CostTerm]]:
        """The ``(label, weight, term)`` entries, in composition order."""
        return list(self._entries)

    @property
    def labels(self) -> List[str]:
        """The composition's term labels, in order."""
        return [label for label, _, _ in self._entries]

    def members(self) -> List[CostTerm]:
        """The effective (weight-applied) terms, in composition order."""
        return list(self._members)

    def value(self, state: ChainState) -> float:
        """The composed objective at ``state``."""
        return float(sum(term.value(state) for term in self._members))

    def member(self, label: str) -> CostTerm:
        """The effective term composed under ``label``."""
        for index, (entry_label, _, _) in enumerate(self._entries):
            if entry_label == label:
                return self._members[index]
        known = ", ".join(self.labels)
        raise KeyError(f"no term labeled {label!r}; composed: {known}")


__all__ = [
    "CostSum",
    "ScaledTerm",
    "TERM_REGISTRY",
    "TermSpec",
    "build_term",
    "normalize_extra_terms",
]
