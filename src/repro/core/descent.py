"""Variant V1: the basic constant-step steepest-descent algorithm.

Implements the computational algorithm of Section V verbatim:

1. start from an ergodic ``P`` (uniform by default — V1),
2. compute ``[D_P U]`` and its projection ``Pi [D_P U]``,
3. set ``V = -Pi [D_P U]``,
4. update ``P <- P + V * dt`` for a small constant ``dt``,
5. recompute ``pi``, ``Z``, ``R`` for the new ``P``,
6. repeat until stable (or an iteration budget is exhausted).

One robustness addition over the paper's sketch: if the constant step
would leave the feasible box (or land on a numerically non-ergodic
matrix), the step is halved until feasible.  With the paper's step sizes
(``dt = 1e-6``) this never triggers on the evaluation topologies; it
protects against user-supplied large steps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.cost import CoverageCost
from repro.core.initializers import uniform_matrix
from repro.core.linesearch import feasible_step_bound
from repro.core.options import OptimizerOptions
from repro.core.result import IterationRecord, OptimizationResult


@dataclass(frozen=True)
class BasicDescentOptions(OptimizerOptions):
    """Knobs of the basic algorithm.

    ``step_size`` is the paper's ``dt`` (its experiments use ``1e-6``
    with travel times in seconds).  Convergence is declared when the
    relative cost improvement stays below ``rtol`` for ``patience``
    consecutive iterations, or the projected-gradient norm drops below
    ``gradient_tol``.
    """

    max_iterations: int = 10_000
    rtol: float = 1e-10
    step_size: float = 1e-6
    patience: int = 10
    gradient_tol: float = 0.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.step_size <= 0:
            raise ValueError(f"step_size must be > 0, got {self.step_size}")
        if self.patience < 1:
            raise ValueError("patience must be >= 1")


def optimize_basic(
    cost: CoverageCost,
    initial: Optional[np.ndarray] = None,
    options: Optional[BasicDescentOptions] = None,
) -> OptimizationResult:
    """Run the basic algorithm (V1) on ``cost``.

    ``initial`` defaults to the uniform matrix ``p_ij = 1/M`` as in the
    paper's V1; pass a random matrix for the V2 variant.
    """
    options = options or BasicDescentOptions()
    matrix = (
        uniform_matrix(cost.size, support=cost.support) if initial is None
        else np.array(initial, dtype=float)
    )
    state = cost.build_state(matrix)
    breakdown = cost.evaluate(state)
    history = []
    checkpoints = []
    stall = 0
    stop_reason = "max_iterations"
    converged = False
    iteration = 0

    for iteration in range(1, options.max_iterations + 1):
        direction = cost.descent_direction(state)
        gradient_norm = float(np.linalg.norm(direction))
        if gradient_norm <= options.gradient_tol:
            stop_reason = "gradient_tol"
            converged = True
            iteration -= 1
            break

        step = options.step_size
        bound = feasible_step_bound(state.p, direction)
        if bound <= 0.0:
            stop_reason = "no_feasible_step"
            break
        step = min(step, bound)

        # Halve on numerical failure (non-ergodic candidate etc.).
        new_state = None
        for _ in range(60):
            try:
                candidate = state.p + step * direction
                new_state = cost.build_state(candidate, check=False)
                break
            except (ValueError, np.linalg.LinAlgError, RuntimeError):
                step *= 0.5
        if new_state is None:
            stop_reason = "step_collapse"
            break

        new_breakdown = cost.evaluate(new_state)
        if options.record_history:
            history.append(
                IterationRecord(
                    iteration=iteration,
                    u_eps=new_breakdown.u_eps,
                    u=new_breakdown.u,
                    delta_c=new_breakdown.delta_c,
                    e_bar=new_breakdown.e_bar,
                    step=step,
                    gradient_norm=gradient_norm,
                )
            )

        if (
            options.checkpoint_every
            and iteration % options.checkpoint_every == 0
        ):
            checkpoints.append((iteration, new_state.p.copy()))

        improvement = breakdown.u_eps - new_breakdown.u_eps
        scale = max(1.0, abs(breakdown.u_eps))
        if improvement <= options.rtol * scale:
            stall += 1
        else:
            stall = 0
        state, breakdown = new_state, new_breakdown
        if stall >= options.patience:
            stop_reason = "stalled"
            converged = True
            break

    return OptimizationResult(
        matrix=state.p.copy(),
        u_eps=breakdown.u_eps,
        u=breakdown.u,
        delta_c=breakdown.delta_c,
        e_bar=breakdown.e_bar,
        iterations=iteration,
        converged=converged,
        stop_reason=stop_reason,
        history=history,
        checkpoints=checkpoints,
    )
