"""Assembly of the total cost derivative ``[D_P U]`` (Eq. 10).

Combines each term's partials with the Schweitzer adjoints:

    ``[D_P U]_kl = pi_k (Z dU/dpi)_l
                 + (Z^T dU/dZ Z^T)_kl - pi_k (Z^2 colsum(dU/dZ))_l
                 + (dU/dP)_kl``

then projects onto the row-sum-zero subspace (Eq. 11) so a step along the
negative projected gradient preserves row-stochasticity exactly.
"""

from __future__ import annotations

from typing import Iterable, Optional

import numpy as np

from repro.core.state import ChainState
from repro.core.terms import ObjectiveTerm
from repro.markov.perturbation import (
    adjoint_fundamental_term,
    adjoint_stationary_term,
)
from repro.utils.linalg import project_row_sum_zero


def accumulate_partials(state: ChainState, terms: Iterable[ObjectiveTerm]):
    """Sum each kind of partial over ``terms``.

    Returns ``(grad_pi, grad_z, grad_p)``; any of them is ``None`` when no
    term contributes, letting the caller skip the corresponding adjoint.
    """
    grad_pi: Optional[np.ndarray] = None
    grad_z: Optional[np.ndarray] = None
    grad_p: Optional[np.ndarray] = None
    for term in terms:
        piece = term.grad_pi(state)
        if piece is not None:
            grad_pi = piece if grad_pi is None else grad_pi + piece
        piece = term.grad_z(state)
        if piece is not None:
            grad_z = piece if grad_z is None else grad_z + piece
        piece = term.grad_p(state)
        if piece is not None:
            grad_p = piece if grad_p is None else grad_p + piece
    return grad_pi, grad_z, grad_p


def total_derivative(
    state: ChainState, terms: Iterable[ObjectiveTerm]
) -> np.ndarray:
    """The unprojected total derivative ``[D_P U]`` at ``state``.

    Sparse states apply the stationary adjoint ``pi_k (Z dU/dpi)_l``
    through one targeted core solve instead of the dense ``Z`` product
    (the dense path keeps its explicit ``z @`` for bit-reproducibility).
    The ``Z``-adjoint still requires the full matrix; sparse-mode terms
    therefore fold their ``Z``-dependence into ``grad_pi``/``grad_p``
    and return ``grad_z=None``, and any term that does not triggers a
    one-time dense materialization.
    """
    grad_pi, grad_z, grad_p = accumulate_partials(state, terms)
    result = np.zeros_like(state.p)
    if grad_pi is not None:
        if state.linalg == "sparse":
            result += np.outer(state.pi, state.solve_core(grad_pi))
        else:
            result += adjoint_stationary_term(state.pi, state.z, grad_pi)
    if grad_z is not None:
        result += adjoint_fundamental_term(
            state.pi, state.dense_z(), grad_z, z2=state.z2
        )
    if grad_p is not None:
        result += grad_p
    return result


def projected_gradient(
    state: ChainState,
    terms: Iterable[ObjectiveTerm],
    support: Optional[np.ndarray] = None,
) -> np.ndarray:
    """``Pi [D_P U]`` — the gradient within the stochastic-matrix manifold.

    A boolean ``support`` mask additionally restricts the projection to
    directions vanishing off the feasible-transition pattern.
    """
    return project_row_sum_zero(total_derivative(state, terms), support)


def directional_derivative(
    state: ChainState,
    terms: Iterable[ObjectiveTerm],
    direction: np.ndarray,
) -> float:
    """``<[D_P U], direction>`` — rate of change of ``U`` along ``direction``.

    ``direction`` should have zero row sums for the value to be meaningful
    as a derivative along a stochastic-matrix path; this is not enforced so
    tests can probe the unprojected derivative as well.
    """
    return float(np.sum(total_derivative(state, terms) * direction))
