"""Per-iterate chain state: ``(P, pi, Z, R)`` computed once and shared.

Every steepest-descent iteration evaluates the cost and its gradient at the
same transition matrix; both need the stationary distribution and the
fundamental matrix.  :class:`ChainState` computes them exactly once per
matrix (step 5 of the paper's computational algorithm, Section V).

Two hot-path optimizations live here:

* the core ``(I - P + W)`` is LU-factored exactly once; the factors
  produce ``Z`` and remain available (:meth:`ChainState.solve_core`) for
  any further solves against the same core, replacing the historical
  ``solve`` + ``inv`` pair with a single decomposition;
* :meth:`ChainState.from_parts` assembles a state from an already-computed
  ``(pi, Z)`` — the batched line search hands its winning probe back to
  the optimizer this way, so an accepted step costs no new factorization.
"""

from __future__ import annotations

from dataclasses import dataclass, field
import numpy as np

from repro.markov.fundamental import CoreFactorization, factor_core
from repro.markov.passage import first_passage_times
from repro.markov.stationary import stationary_via_linear_solve
from repro.utils import perf
from repro.utils.linalg import is_row_stochastic
from repro.utils.validation import check_square


@dataclass(frozen=True)
class ChainState:
    """Immutable snapshot of a transition matrix and derived matrices.

    Attributes
    ----------
    p:
        Transition matrix.
    pi:
        Stationary distribution.
    z:
        Fundamental matrix ``(I - P + W)^{-1}``.
    """

    p: np.ndarray
    pi: np.ndarray
    z: np.ndarray
    _r_cache: list = field(default_factory=list, repr=False, compare=False)
    _z2_cache: list = field(default_factory=list, repr=False, compare=False)
    _lu_cache: list = field(default_factory=list, repr=False, compare=False)

    @classmethod
    def from_matrix(cls, matrix: np.ndarray, check: bool = True):
        """Build the state for ``matrix``.

        ``check=True`` validates stochasticity (cheap); ergodicity is
        implied by a successful stationary solve with positive entries,
        which is verified unconditionally because the downstream exposure
        formulas divide by ``pi``.
        """
        matrix = check_square("matrix", matrix)
        if check and not is_row_stochastic(matrix):
            raise ValueError(
                "matrix must be row-stochastic; row sums are "
                f"{np.asarray(matrix).sum(axis=1)}"
            )
        pi = stationary_via_linear_solve(matrix)
        if np.any(pi <= 0):
            raise ValueError(
                "stationary distribution has non-positive entries "
                f"(min {pi.min():.3g}); the chain is not ergodic"
            )
        factors = factor_core(matrix, pi)
        z = factors.inverse()
        # One stationary solve plus one core LU: the only dense
        # decompositions a state build performs.
        perf.count("factorizations", 2)
        perf.count("state_builds")
        state = cls(p=matrix, pi=pi, z=z)
        state._lu_cache.append(factors)
        return state

    @classmethod
    def from_parts(cls, p: np.ndarray, pi: np.ndarray, z: np.ndarray):
        """Assemble a state from already-computed ``(pi, Z)``.

        Used to hand the line search's winning probe back to the
        optimizer without refactorizing.  ``pi`` must already be
        normalized (the batched evaluator sanitizes it exactly as the
        scalar solver does); renormalizing here could drift a ulp away
        from the scalar path and perturb otherwise bit-identical
        trajectories.  ``p``/``pi``/``z`` are trusted (callers own
        their consistency).
        """
        p = check_square("p", p)
        pi = np.asarray(pi, dtype=float)
        z = check_square("z", z)
        if pi.shape != (p.shape[0],) or z.shape != p.shape:
            raise ValueError(
                f"inconsistent shapes: p {p.shape}, pi {pi.shape}, "
                f"z {z.shape}"
            )
        if np.any(pi <= 0):
            raise ValueError(
                "stationary distribution has non-positive entries "
                f"(min {pi.min():.3g}); the chain is not ergodic"
            )
        perf.count("states_reused")
        # Fresh owned copies, not views into the caller's batch stack:
        # BLAS/einsum kernels pick SIMD paths by memory alignment, and a
        # misaligned view can yield ulp-different gradients than the
        # bitwise-equal freshly allocated arrays of ``from_matrix``.
        return cls(
            p=np.array(p, dtype=float),
            pi=np.array(pi, dtype=float),
            z=np.array(z, dtype=float),
        )

    @property
    def size(self) -> int:
        """Number of states."""
        return self.p.shape[0]

    @property
    def r(self) -> np.ndarray:
        """First-passage-time matrix (transitions), computed on demand."""
        if not self._r_cache:
            self._r_cache.append(
                first_passage_times(self.p, self.z, self.pi)
            )
        return self._r_cache[0]

    @property
    def z2(self) -> np.ndarray:
        """``Z @ Z``, cached — the Schweitzer adjoints reuse it."""
        if not self._z2_cache:
            self._z2_cache.append(self.z @ self.z)
        return self._z2_cache[0]

    def solve_core(self, rhs: np.ndarray) -> np.ndarray:
        """Solve ``(I - P + W) x = rhs`` reusing the state's LU factors.

        States assembled via :meth:`from_parts` carry no factors; the
        core is factored lazily on first use (counted as one
        factorization).
        """
        if not self._lu_cache:
            perf.count("factorizations")
            self._lu_cache.append(factor_core(self.p, self.pi))
        factors: CoreFactorization = self._lu_cache[0]
        return factors.solve(rhs)

    def exposure_times(self) -> np.ndarray:
        """Per-PoI average exposure times ``E-bar_i`` (Eq. 3).

        ``E-bar_i = sum_{j != i} p_ij R_ji / (1 - p_ii)`` in transition
        units, computed via the fundamental matrix so no explicit ``R`` is
        required: ``R_ji = (z_ii - z_ji) / pi_i`` for ``j != i``.
        """
        count = self.size
        p, pi, z = self.p, self.pi, self.z
        staying = np.diag(p)
        if np.any(staying >= 1.0 - 1e-13):
            raise ValueError(
                "some p_ii is numerically 1; the sensor never leaves that "
                "PoI and its exposure time is undefined (division by "
                "1 - p_ii)"
            )
        z_diag = np.diag(z)
        # weights[i, j] = p_ij * (z_ii - z_ji) for j != i, 0 on diagonal.
        passage_to_i = (z_diag[None, :] - z) / pi[None, :]  # R_ji over (j, i)
        weights = p * passage_to_i.T  # (i, j): p_ij * R_ji
        np.fill_diagonal(weights, 0.0)
        return weights.sum(axis=1) / (1.0 - staying)
