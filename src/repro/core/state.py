"""Per-iterate chain state: ``(P, pi, Z, R)`` computed once and shared.

Every steepest-descent iteration evaluates the cost and its gradient at the
same transition matrix; both need the stationary distribution and the
fundamental matrix.  :class:`ChainState` computes them exactly once per
matrix (step 5 of the paper's computational algorithm, Section V).
"""

from __future__ import annotations

from dataclasses import dataclass, field
import numpy as np

from repro.markov.fundamental import fundamental_matrix
from repro.markov.passage import first_passage_times
from repro.markov.stationary import stationary_via_linear_solve
from repro.utils.linalg import is_row_stochastic
from repro.utils.validation import check_square


@dataclass(frozen=True)
class ChainState:
    """Immutable snapshot of a transition matrix and derived matrices.

    Attributes
    ----------
    p:
        Transition matrix.
    pi:
        Stationary distribution.
    z:
        Fundamental matrix ``(I - P + W)^{-1}``.
    """

    p: np.ndarray
    pi: np.ndarray
    z: np.ndarray
    _r_cache: list = field(default_factory=list, repr=False, compare=False)

    @classmethod
    def from_matrix(cls, matrix: np.ndarray, check: bool = True):
        """Build the state for ``matrix``.

        ``check=True`` validates stochasticity (cheap); ergodicity is
        implied by a successful stationary solve with positive entries,
        which is verified unconditionally because the downstream exposure
        formulas divide by ``pi``.
        """
        matrix = check_square("matrix", matrix)
        if check and not is_row_stochastic(matrix):
            raise ValueError(
                "matrix must be row-stochastic; row sums are "
                f"{np.asarray(matrix).sum(axis=1)}"
            )
        pi = stationary_via_linear_solve(matrix)
        if np.any(pi <= 0):
            raise ValueError(
                "stationary distribution has non-positive entries "
                f"(min {pi.min():.3g}); the chain is not ergodic"
            )
        z = fundamental_matrix(matrix, pi)
        return cls(p=matrix, pi=pi, z=z)

    @property
    def size(self) -> int:
        """Number of states."""
        return self.p.shape[0]

    @property
    def r(self) -> np.ndarray:
        """First-passage-time matrix (transitions), computed on demand."""
        if not self._r_cache:
            self._r_cache.append(
                first_passage_times(self.p, self.z, self.pi)
            )
        return self._r_cache[0]

    def exposure_times(self) -> np.ndarray:
        """Per-PoI average exposure times ``E-bar_i`` (Eq. 3).

        ``E-bar_i = sum_{j != i} p_ij R_ji / (1 - p_ii)`` in transition
        units, computed via the fundamental matrix so no explicit ``R`` is
        required: ``R_ji = (z_ii - z_ji) / pi_i`` for ``j != i``.
        """
        count = self.size
        p, pi, z = self.p, self.pi, self.z
        staying = np.diag(p)
        if np.any(staying >= 1.0 - 1e-13):
            raise ValueError(
                "some p_ii is numerically 1; the sensor never leaves that "
                "PoI and its exposure time is undefined (division by "
                "1 - p_ii)"
            )
        z_diag = np.diag(z)
        # weights[i, j] = p_ij * (z_ii - z_ji) for j != i, 0 on diagonal.
        passage_to_i = (z_diag[None, :] - z) / pi[None, :]  # R_ji over (j, i)
        weights = p * passage_to_i.T  # (i, j): p_ij * R_ji
        np.fill_diagonal(weights, 0.0)
        return weights.sum(axis=1) / (1.0 - staying)
