"""Per-iterate chain state: ``(P, pi, Z, R)`` computed once and shared.

Every steepest-descent iteration evaluates the cost and its gradient at the
same transition matrix; both need the stationary distribution and the
fundamental matrix.  :class:`ChainState` computes them exactly once per
matrix (step 5 of the paper's computational algorithm, Section V).

Two hot-path optimizations live here:

* the core ``(I - P + W)`` is LU-factored exactly once; the factors
  produce ``Z`` and remain available (:meth:`ChainState.solve_core`) for
  any further solves against the same core, replacing the historical
  ``solve`` + ``inv`` pair with a single decomposition;
* :meth:`ChainState.from_parts` assembles a state from an already-computed
  ``(pi, Z)`` — the batched line search hands its winning probe back to
  the optimizer this way, so an accepted step costs no new factorization.

Large-``M`` states (``linalg="sparse"``) never materialize ``Z``: the
``z`` field stays ``None`` and every ``Z @ v`` / ``v^T Z`` product routes
through targeted solves against a sparse factorization of the core
(:mod:`repro.markov.sparse`), optionally shared and incrementally updated
across iterates by an :class:`~repro.markov.incremental.
IncrementalCoreTracker`.  Small-``M`` reference paths that genuinely need
the full matrix call :meth:`ChainState.dense_z`, which materializes and
caches it on demand.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.markov.fundamental import CoreFactorization, factor_core
from repro.markov.passage import first_passage_times
from repro.markov.stationary import stationary_via_linear_solve
from repro.utils import perf
from repro.utils.linalg import is_row_stochastic
from repro.utils.validation import check_square


@dataclass(frozen=True)
class ChainState:
    """Immutable snapshot of a transition matrix and derived matrices.

    Attributes
    ----------
    p:
        Transition matrix.
    pi:
        Stationary distribution.
    z:
        Fundamental matrix ``(I - P + W)^{-1}``, or ``None`` for sparse
        states (use :meth:`dense_z` if the full matrix is truly needed).
    linalg:
        ``"dense"`` (reference path) or ``"sparse"`` (large-``M`` path).
    """

    p: np.ndarray
    pi: np.ndarray
    z: Optional[np.ndarray] = None
    linalg: str = "dense"
    _r_cache: list = field(default_factory=list, repr=False, compare=False)
    _z2_cache: list = field(default_factory=list, repr=False, compare=False)
    _lu_cache: list = field(default_factory=list, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.linalg not in ("dense", "sparse"):
            raise ValueError(
                f"linalg must be 'dense' or 'sparse', got {self.linalg!r}"
            )
        if self.z is None and self.linalg == "dense":
            raise ValueError("dense states must carry an explicit z")

    @classmethod
    def from_matrix(
        cls,
        matrix: np.ndarray,
        check: bool = True,
        linalg: str = "dense",
        solver_provider=None,
    ):
        """Build the state for ``matrix``.

        ``check=True`` validates stochasticity (cheap); ergodicity is
        implied by a successful stationary solve with positive entries,
        which is verified unconditionally because the downstream exposure
        formulas divide by ``pi``.

        ``linalg="sparse"`` factors the core sparsely and leaves ``z``
        unmaterialized; ``solver_provider`` (an object with
        ``acquire(matrix) -> (pi, solver)``, e.g. an
        :class:`~repro.markov.incremental.IncrementalCoreTracker`) lets
        the factorization be shared across nearby iterates.
        """
        matrix = check_square("matrix", matrix)
        if check and not is_row_stochastic(matrix):
            raise ValueError(
                "matrix must be row-stochastic; row sums are "
                f"{np.asarray(matrix).sum(axis=1)}"
            )
        if linalg == "sparse":
            if solver_provider is not None:
                pi, solver = solver_provider.acquire(matrix)
            else:
                from repro.markov.sparse import (
                    sparse_fundamental_and_stationary,
                )

                solver, pi = sparse_fundamental_and_stationary(matrix)
            if np.any(pi <= 0):
                raise ValueError(
                    "stationary distribution has non-positive entries "
                    f"(min {pi.min():.3g}); the chain is not ergodic"
                )
            perf.count("state_builds")
            state = cls(p=matrix, pi=pi, z=None, linalg="sparse")
            state._lu_cache.append(solver)
            return state
        pi = stationary_via_linear_solve(matrix)
        if np.any(pi <= 0):
            raise ValueError(
                "stationary distribution has non-positive entries "
                f"(min {pi.min():.3g}); the chain is not ergodic"
            )
        factors = factor_core(matrix, pi)
        z = factors.full_inverse()
        # One stationary solve plus one core LU: the only dense
        # decompositions a state build performs.
        perf.count("factorizations", 2)
        perf.count("state_builds")
        state = cls(p=matrix, pi=pi, z=z)
        state._lu_cache.append(factors)
        return state

    @classmethod
    def from_parts(
        cls,
        p: np.ndarray,
        pi: np.ndarray,
        z: Optional[np.ndarray] = None,
        linalg: str = "dense",
        solver=None,
    ):
        """Assemble a state from already-computed ``(pi, Z)``.

        Used to hand the line search's winning probe back to the
        optimizer without refactorizing.  ``pi`` must already be
        normalized (the batched evaluator sanitizes it exactly as the
        scalar solver does); renormalizing here could drift a ulp away
        from the scalar path and perturb otherwise bit-identical
        trajectories.  ``p``/``pi``/``z`` are trusted (callers own
        their consistency).

        Sparse probes carry no ``z``; pass ``linalg="sparse"`` and
        optionally an already-built core ``solver`` (else one is
        factored lazily on first :meth:`solve_core`).
        """
        p = check_square("p", p)
        pi = np.asarray(pi, dtype=float)
        if z is None and linalg != "sparse":
            raise ValueError("z may be omitted only with linalg='sparse'")
        if z is not None:
            z = check_square("z", z)
            if z.shape != p.shape:
                raise ValueError(
                    f"inconsistent shapes: p {p.shape}, z {z.shape}"
                )
        if pi.shape != (p.shape[0],):
            raise ValueError(
                f"inconsistent shapes: p {p.shape}, pi {pi.shape}"
            )
        if np.any(pi <= 0):
            raise ValueError(
                "stationary distribution has non-positive entries "
                f"(min {pi.min():.3g}); the chain is not ergodic"
            )
        perf.count("states_reused")
        # Fresh owned copies, not views into the caller's batch stack:
        # BLAS/einsum kernels pick SIMD paths by memory alignment, and a
        # misaligned view can yield ulp-different gradients than the
        # bitwise-equal freshly allocated arrays of ``from_matrix``.
        state = cls(
            p=np.array(p, dtype=float),
            pi=np.array(pi, dtype=float),
            z=None if z is None else np.array(z, dtype=float),
            linalg=linalg,
        )
        if solver is not None:
            state._lu_cache.append(solver)
        return state

    @property
    def size(self) -> int:
        """Number of states."""
        return self.p.shape[0]

    def dense_z(self) -> np.ndarray:
        """The full fundamental matrix, materialized and cached on demand.

        Dense states return their ``z`` as-is.  Sparse states pay one
        ``O(M^2)``-memory materialization through the core solver —
        small-``M`` reference paths only; the large-``M`` pipeline
        should route through :meth:`solve_core` /
        :meth:`solve_core_transpose` instead.
        """
        if self.z is None:
            object.__setattr__(self, "z", self._solver().full_inverse())
        return self.z

    @property
    def r(self) -> np.ndarray:
        """First-passage-time matrix (transitions), computed on demand."""
        if not self._r_cache:
            self._r_cache.append(
                first_passage_times(self.p, self.dense_z(), self.pi)
            )
        return self._r_cache[0]

    @property
    def z2(self) -> np.ndarray:
        """``Z @ Z``, cached — the Schweitzer adjoints reuse it."""
        if not self._z2_cache:
            z = self.dense_z()
            self._z2_cache.append(z @ z)
        return self._z2_cache[0]

    def _solver(self):
        """The state's core solver, factored lazily on first use."""
        if not self._lu_cache:
            if self.linalg == "sparse":
                from repro.markov.sparse import SparseCoreSolver

                self._lu_cache.append(SparseCoreSolver(self.p, self.pi))
            else:
                perf.count("factorizations")
                self._lu_cache.append(factor_core(self.p, self.pi))
        return self._lu_cache[0]

    def solve_core(self, rhs: np.ndarray) -> np.ndarray:
        """Solve ``(I - P + W) x = rhs`` reusing the state's factors.

        States assembled via :meth:`from_parts` carry no factors; the
        core is factored lazily on first use (counted as one
        factorization).
        """
        return self._solver().solve(rhs)

    def solve_core_transpose(self, rhs: np.ndarray) -> np.ndarray:
        """Solve ``(I - P + W)^T x = rhs`` reusing the state's factors."""
        return self._solver().solve_transpose(rhs)

    def exposure_times(self) -> np.ndarray:
        """Per-PoI average exposure times ``E-bar_i`` (Eq. 3).

        ``E-bar_i = sum_{j != i} p_ij R_ji / (1 - p_ii)`` in transition
        units, computed via the fundamental matrix so no explicit ``R`` is
        required: ``R_ji = (z_ii - z_ji) / pi_i`` for ``j != i``.

        Sparse states use the closed form instead: summing Eq. 8 against
        ``Z``'s row-sum identity ``Z 1 = 1`` gives
        ``sum_{j != i} p_ij pi_i R_ji = 1 - pi_i`` exactly, so
        ``E-bar_i = (1 - pi_i) / (pi_i (1 - p_ii))`` with no fundamental
        matrix at all.
        """
        p, pi = self.p, self.pi
        staying = np.diag(p)
        if np.any(staying >= 1.0 - 1e-13):
            raise ValueError(
                "some p_ii is numerically 1; the sensor never leaves that "
                "PoI and its exposure time is undefined (division by "
                "1 - p_ii)"
            )
        if self.linalg == "sparse":
            return (1.0 - pi) / (pi * (1.0 - staying))
        z = self.z
        z_diag = np.diag(z)
        # weights[i, j] = p_ij * (z_ii - z_ji) for j != i, 0 on diagonal.
        passage_to_i = (z_diag[None, :] - z) / pi[None, :]  # R_ji over (j, i)
        weights = p * passage_to_i.T  # (i, j): p_ij * R_ji
        np.fill_diagonal(weights, 0.0)
        return weights.sum(axis=1) / (1.0 - staying)
