"""Step-size selection: feasibility bounds and conservative trisection.

Variant V3 of the paper chooses the step ``dt* = argmin_d U(P + d V)``
where ``V`` is the (projected, negated) gradient direction.  Because the
cost along the ray is not known to be unimodal, the paper uses a
*conservative trisection*: each refinement discards only one third of the
current interval, so a minimum cannot be bracketed out by a single
misleading comparison.

Two additions over the paper's sketch, both needed in practice:

* a **geometric pre-sweep** across step scales — the log-barrier makes the
  useful step range span many orders of magnitude near the feasibility
  boundary, where an interval-scale search alone stalls;
* a **batched objective**: callers may supply ``d-array -> U-array`` so
  all probes of a sweep are evaluated in one vectorized linear-algebra
  call (see :meth:`repro.core.cost.CoverageCost.batch_values`).

Feasibility: the ray must keep every ``p_ij`` strictly inside ``(0, 1)``
(``U_eps`` is infinite on the boundary).  The upper bound on ``d`` is the
largest step keeping all entries in the closed box, shrunk by a hair.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

import numpy as np

from repro.utils.linalg import max_feasible_step

#: Fraction of the boundary-hitting step that is considered usable.
FEASIBLE_SHRINK = 1.0 - 1e-9


@dataclass(frozen=True)
class LineSearchResult:
    """Outcome of one line search.

    ``step == 0`` signals that no improving step exists along the ray
    within the resolution of the search — the paper's local-optimum
    termination criterion for the adaptive algorithm.
    """

    step: float
    value: float
    evaluations: int
    step_bound: float


def feasible_step_bound(matrix: np.ndarray, direction: np.ndarray) -> float:
    """Largest step keeping ``matrix + step * direction`` inside ``[0, 1]``.

    Returns ``0`` for a zero direction.  The row-sum constraint needs no
    bounding: ``direction`` has zero row sums by construction.
    """
    norm = float(np.abs(direction).max(initial=0.0))
    if norm <= 0.0:
        return 0.0
    bound = max_feasible_step(matrix, direction, lower=0.0, upper=1.0)
    if not np.isfinite(bound):
        # Cannot happen for a nonzero zero-row-sum direction (some entry
        # must decrease), but guard against degenerate inputs.
        return 0.0
    return bound * FEASIBLE_SHRINK


class _RayEvaluator:
    """Uniform wrapper over scalar and batched ray objectives."""

    def __init__(
        self,
        objective: Optional[Callable[[float], float]],
        batch_objective: Optional[Callable[[np.ndarray], np.ndarray]],
    ) -> None:
        if objective is None and batch_objective is None:
            raise ValueError("provide objective or batch_objective")
        self._objective = objective
        self._batch = batch_objective
        self.evaluations = 0

    def __call__(self, steps: Sequence[float]) -> np.ndarray:
        steps = np.asarray(steps, dtype=float)
        self.evaluations += steps.size
        if self._batch is not None:
            with np.errstate(all="ignore"):
                values = np.asarray(self._batch(steps), dtype=float)
            values[~np.isfinite(values)] = np.inf
            return values
        values = np.empty(steps.size)
        for index, step in enumerate(steps):
            try:
                value = float(self._objective(float(step)))
            except (ValueError, np.linalg.LinAlgError, FloatingPointError):
                value = np.inf
            values[index] = value if np.isfinite(value) else np.inf
        return values


def trisection_search(
    objective: Optional[Callable[[float], float]] = None,
    upper: float = 0.0,
    baseline: Optional[float] = None,
    rounds: int = 40,
    improvement_rtol: float = 1e-12,
    geometric_decades: int = 12,
    batch_objective: Optional[Callable[[np.ndarray], np.ndarray]] = None,
) -> LineSearchResult:
    """Minimize the ray objective over ``[0, upper]``.

    Parameters
    ----------
    objective:
        Scalar ``d -> U(P + d V)``.  Optional when ``batch_objective`` is
        given.
    upper:
        Feasibility bound on the step; ``<= 0`` returns a zero step.
    baseline:
        ``U`` at ``d = 0``; computed from the objective when omitted.
    rounds:
        Trisection refinements.  Each round keeps 2/3 of the interval.
    improvement_rtol:
        The best point must beat the baseline by more than
        ``improvement_rtol * max(1, |baseline|)`` to count; otherwise the
        search reports ``step = 0`` (no improving step: a local optimum
        along this ray).
    geometric_decades:
        Number of pre-sweep probes at ``upper * 10^-k``.
    batch_objective:
        Vectorized ``d-array -> U-array``; preferred when available.
    """
    if rounds < 1:
        raise ValueError(f"rounds must be >= 1, got {rounds}")
    if geometric_decades < 0:
        raise ValueError(
            f"geometric_decades must be >= 0, got {geometric_decades}"
        )
    evaluator = _RayEvaluator(objective, batch_objective)
    if baseline is None:
        baseline = float(evaluator([0.0])[0])
    if upper <= 0.0 or not np.isfinite(baseline):
        return LineSearchResult(
            step=0.0, value=baseline, evaluations=evaluator.evaluations,
            step_bound=max(upper, 0.0),
        )

    # Geometric sweep: the endpoint plus ``upper * 10^-k`` probes, all in
    # one batched evaluation.
    probes = float(upper) * 10.0 ** (
        -np.arange(geometric_decades + 1, dtype=float)
    )
    probe_values = evaluator(probes)
    best_index = int(np.argmin(probe_values))
    best_step = float(probes[best_index])
    best_value = float(probe_values[best_index])
    if best_value >= baseline:
        best_step, best_value = 0.0, float(baseline)

    # Local trisection refinement in a bracket around the best probe (the
    # whole interval when the sweep found nothing better than 0).
    if best_step > 0.0:
        lo = best_step * 0.1
        hi = min(best_step * 10.0, float(upper))
    else:
        lo, hi = 0.0, float(upper)
    for _ in range(rounds):
        width = hi - lo
        if width <= max(1e-15, 1e-12 * upper):
            break
        m1 = lo + width / 3.0
        m2 = hi - width / 3.0
        v1, v2 = evaluator([m1, m2])
        if v1 < best_value:
            best_step, best_value = m1, float(v1)
        if v2 < best_value:
            best_step, best_value = m2, float(v2)
        # Conservative: drop only the one third on the losing side.
        if v1 <= v2:
            hi = m2
        else:
            lo = m1

    threshold = baseline - improvement_rtol * max(1.0, abs(baseline))
    if best_value >= threshold:
        return LineSearchResult(
            step=0.0, value=baseline, evaluations=evaluator.evaluations,
            step_bound=upper,
        )
    return LineSearchResult(
        step=best_step, value=best_value,
        evaluations=evaluator.evaluations, step_bound=upper,
    )
