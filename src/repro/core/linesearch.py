"""Step-size selection: feasibility bounds and conservative trisection.

Variant V3 of the paper chooses the step ``dt* = argmin_d U(P + d V)``
where ``V`` is the (projected, negated) gradient direction.  Because the
cost along the ray is not known to be unimodal, the paper uses a
*conservative trisection*: each refinement discards only one third of the
current interval, so a minimum cannot be bracketed out by a single
misleading comparison.

Two additions over the paper's sketch, both needed in practice:

* a **geometric pre-sweep** across step scales — the log-barrier makes the
  useful step range span many orders of magnitude near the feasibility
  boundary, where an interval-scale search alone stalls;
* a **batched objective**: callers may supply ``d-array -> U-array`` so
  all probes of a sweep are evaluated in one vectorized linear-algebra
  call (see :meth:`repro.core.cost.CoverageCost.batch_values`).

Feasibility: the ray must keep every ``p_ij`` strictly inside ``(0, 1)``
(``U_eps`` is infinite on the boundary).  The upper bound on ``d`` is the
largest step keeping all entries in the closed box, shrunk by a hair.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

import numpy as np

from repro.utils.linalg import max_feasible_step

#: Fraction of the boundary-hitting step that is considered usable.
FEASIBLE_SHRINK = 1.0 - 1e-9


@dataclass(frozen=True)
class LineSearchResult:
    """Outcome of one line search.

    ``step == 0`` signals that no improving step exists along the ray
    within the resolution of the search — the paper's local-optimum
    termination criterion for the adaptive algorithm.
    """

    step: float
    value: float
    evaluations: int
    step_bound: float


def feasible_step_bound(matrix: np.ndarray, direction: np.ndarray) -> float:
    """Largest step keeping ``matrix + step * direction`` inside ``[0, 1]``.

    Returns ``0`` for a zero direction.  The row-sum constraint needs no
    bounding: ``direction`` has zero row sums by construction.
    """
    norm = float(np.abs(direction).max(initial=0.0))
    if norm <= 0.0:
        return 0.0
    bound = max_feasible_step(matrix, direction, lower=0.0, upper=1.0)
    if not np.isfinite(bound):
        # Cannot happen for a nonzero zero-row-sum direction (some entry
        # must decrease), but guard against degenerate inputs.
        return 0.0
    return bound * FEASIBLE_SHRINK


class _RayEvaluator:
    """Uniform wrapper over scalar and batched ray objectives."""

    def __init__(
        self,
        objective: Optional[Callable[[float], float]],
        batch_objective: Optional[Callable[[np.ndarray], np.ndarray]],
    ) -> None:
        if objective is None and batch_objective is None:
            raise ValueError("provide objective or batch_objective")
        self._objective = objective
        self._batch = batch_objective
        self.evaluations = 0

    def __call__(self, steps: Sequence[float]) -> np.ndarray:
        steps = np.asarray(steps, dtype=float)
        self.evaluations += steps.size
        if self._batch is not None:
            with np.errstate(all="ignore"):
                values = np.asarray(self._batch(steps), dtype=float)
            values[~np.isfinite(values)] = np.inf
            return values
        values = np.empty(steps.size)
        for index, step in enumerate(steps):
            try:
                value = float(self._objective(float(step)))
            except (ValueError, np.linalg.LinAlgError, FloatingPointError):
                value = np.inf
            values[index] = value if np.isfinite(value) else np.inf
        return values


class TrisectionState:
    """One conservative trisection search, advanced evaluation by
    evaluation.

    :func:`trisection_search` drives this state machine to completion
    against a single ray; the lockstep driver
    (:mod:`repro.core.lockstep`) instead advances *many* instances one
    stage at a time, fusing each stage's probe evaluations across rays
    into a single stacked call (see
    :class:`repro.core.cost.MultiRayBatch`).  Both paths execute the
    identical decision arithmetic, so the resulting steps are
    bit-identical by construction.

    Protocol: :meth:`sweep_steps` -> :meth:`observe_sweep` ->
    repeatedly (:meth:`round_steps` -> :meth:`observe_round`) until
    ``round_steps`` returns ``None`` -> :meth:`result`.  A search that
    is finished (infeasible bound, non-finite baseline, exhausted
    rounds, or a collapsed bracket) returns ``None`` from both
    ``*_steps`` methods.
    """

    def __init__(
        self,
        upper: float,
        baseline: float,
        rounds: int = 40,
        improvement_rtol: float = 1e-12,
        geometric_decades: int = 12,
    ) -> None:
        if rounds < 1:
            raise ValueError(f"rounds must be >= 1, got {rounds}")
        if geometric_decades < 0:
            raise ValueError(
                f"geometric_decades must be >= 0, got {geometric_decades}"
            )
        self.upper = upper
        self.baseline = baseline
        self.improvement_rtol = improvement_rtol
        self.geometric_decades = geometric_decades
        self.evaluations = 0
        self._rounds_left = rounds
        self._swept = False
        self._result: Optional[LineSearchResult] = None
        if upper <= 0.0 or not np.isfinite(baseline):
            self._result = LineSearchResult(
                step=0.0, value=baseline, evaluations=0,
                step_bound=max(upper, 0.0),
            )

    @property
    def finished(self) -> bool:
        """True once the search has produced its result."""
        return self._result is not None

    def sweep_steps(self) -> Optional[np.ndarray]:
        """Steps of the geometric pre-sweep, or ``None`` when finished."""
        if self._result is not None or self._swept:
            return None
        # Geometric sweep: the endpoint plus ``upper * 10^-k`` probes,
        # all in one batched evaluation.
        self._probes = float(self.upper) * 10.0 ** (
            -np.arange(self.geometric_decades + 1, dtype=float)
        )
        return self._probes

    def observe_sweep(self, probe_values: np.ndarray) -> None:
        """Record the sweep's values and bracket the best probe."""
        self.evaluations += len(probe_values)
        best_index = int(np.argmin(probe_values))
        best_step = float(self._probes[best_index])
        best_value = float(probe_values[best_index])
        if best_value >= self.baseline:
            best_step, best_value = 0.0, float(self.baseline)
        self.best_step = best_step
        self.best_value = best_value
        # Local trisection refinement in a bracket around the best probe
        # (the whole interval when the sweep found nothing better than 0).
        if best_step > 0.0:
            self._lo = best_step * 0.1
            self._hi = min(best_step * 10.0, float(self.upper))
        else:
            self._lo, self._hi = 0.0, float(self.upper)
        self._swept = True

    def round_steps(self) -> Optional[np.ndarray]:
        """The next refinement round's ``[m1, m2]``, or ``None`` when
        done."""
        if self._result is not None or not self._swept:
            return None
        width = self._hi - self._lo
        if self._rounds_left <= 0 or width <= max(
            1e-15, 1e-12 * self.upper
        ):
            self._finish()
            return None
        self._rounds_left -= 1
        self._m1 = self._lo + width / 3.0
        self._m2 = self._hi - width / 3.0
        return np.array([self._m1, self._m2])

    def observe_round(self, v1: float, v2: float) -> None:
        """Record one round's two probe values and shrink the bracket."""
        self.evaluations += 2
        if v1 < self.best_value:
            self.best_step, self.best_value = self._m1, float(v1)
        if v2 < self.best_value:
            self.best_step, self.best_value = self._m2, float(v2)
        # Conservative: drop only the one third on the losing side.
        if v1 <= v2:
            self._hi = self._m2
        else:
            self._lo = self._m1

    def _finish(self) -> None:
        threshold = self.baseline - self.improvement_rtol * max(
            1.0, abs(self.baseline)
        )
        if self.best_value >= threshold:
            self._result = LineSearchResult(
                step=0.0, value=self.baseline,
                evaluations=self.evaluations, step_bound=self.upper,
            )
        else:
            self._result = LineSearchResult(
                step=self.best_step, value=self.best_value,
                evaluations=self.evaluations, step_bound=self.upper,
            )

    def snapshot(self) -> dict:
        """JSON-plain snapshot of the search's exact position.

        Captures everything the decision arithmetic depends on — the
        bracket, the incumbent, the remaining round budget, and (between
        :meth:`sweep_steps` and :meth:`observe_sweep`) the pending probe
        grid — so :meth:`restore` continues the search bit-identically.
        Floats survive the JSON round trip exactly.
        """
        payload = {
            "upper": float(self.upper),
            "baseline": float(self.baseline),
            "improvement_rtol": float(self.improvement_rtol),
            "geometric_decades": int(self.geometric_decades),
            "evaluations": int(self.evaluations),
            "rounds_left": int(self._rounds_left),
            "swept": bool(self._swept),
        }
        if getattr(self, "_probes", None) is not None:
            payload["probes"] = np.asarray(self._probes).tolist()
        if self._swept:
            payload["best_step"] = float(self.best_step)
            payload["best_value"] = float(self.best_value)
            payload["lo"] = float(self._lo)
            payload["hi"] = float(self._hi)
        if self._result is not None:
            payload["result"] = {
                "step": self._result.step,
                "value": self._result.value,
                "evaluations": self._result.evaluations,
                "step_bound": self._result.step_bound,
            }
        return payload

    @classmethod
    def restore(cls, snapshot: dict) -> "TrisectionState":
        """Rebuild a search from a :meth:`snapshot` payload."""
        search = cls(
            upper=snapshot["upper"],
            baseline=snapshot["baseline"],
            rounds=max(int(snapshot["rounds_left"]), 1),
            improvement_rtol=snapshot["improvement_rtol"],
            geometric_decades=snapshot["geometric_decades"],
        )
        search._rounds_left = int(snapshot["rounds_left"])
        search.evaluations = int(snapshot["evaluations"])
        search._swept = bool(snapshot["swept"])
        if "probes" in snapshot:
            search._probes = np.asarray(snapshot["probes"], dtype=float)
        if search._swept:
            search.best_step = snapshot["best_step"]
            search.best_value = snapshot["best_value"]
            search._lo = snapshot["lo"]
            search._hi = snapshot["hi"]
        stored = snapshot.get("result")
        if stored is not None:
            search._result = LineSearchResult(**stored)
        elif search._result is not None:
            # The constructor may have finished an infeasible search the
            # snapshot still considered open; honor the snapshot.
            search._result = None
        return search

    def result(
        self, evaluations: Optional[int] = None
    ) -> LineSearchResult:
        """The search outcome (finalizing a still-open bracket first).

        ``evaluations`` overrides the recorded count —
        :func:`trisection_search` uses it to also charge a baseline
        evaluation it may have performed before the state was built.
        """
        if self._result is None:
            self._finish()
        if evaluations is not None and (
            evaluations != self._result.evaluations
        ):
            self._result = LineSearchResult(
                step=self._result.step, value=self._result.value,
                evaluations=evaluations,
                step_bound=self._result.step_bound,
            )
        return self._result


def trisection_search(
    objective: Optional[Callable[[float], float]] = None,
    upper: float = 0.0,
    baseline: Optional[float] = None,
    rounds: int = 40,
    improvement_rtol: float = 1e-12,
    geometric_decades: int = 12,
    batch_objective: Optional[Callable[[np.ndarray], np.ndarray]] = None,
) -> LineSearchResult:
    """Minimize the ray objective over ``[0, upper]``.

    A thin driver over :class:`TrisectionState`: each stage's probes are
    fed to the (preferably batched) objective and the values handed
    back, so this serial path and the lockstep multi-ray path share the
    exact step-selection arithmetic.

    Parameters
    ----------
    objective:
        Scalar ``d -> U(P + d V)``.  Optional when ``batch_objective`` is
        given.
    upper:
        Feasibility bound on the step; ``<= 0`` returns a zero step.
    baseline:
        ``U`` at ``d = 0``; computed from the objective when omitted.
    rounds:
        Trisection refinements.  Each round keeps 2/3 of the interval.
    improvement_rtol:
        The best point must beat the baseline by more than
        ``improvement_rtol * max(1, |baseline|)`` to count; otherwise the
        search reports ``step = 0`` (no improving step: a local optimum
        along this ray).
    geometric_decades:
        Number of pre-sweep probes at ``upper * 10^-k``.
    batch_objective:
        Vectorized ``d-array -> U-array``; preferred when available.
    """
    evaluator = _RayEvaluator(objective, batch_objective)
    if baseline is None:
        baseline = float(evaluator([0.0])[0])
    search = TrisectionState(
        upper=upper, baseline=baseline, rounds=rounds,
        improvement_rtol=improvement_rtol,
        geometric_decades=geometric_decades,
    )
    probes = search.sweep_steps()
    if probes is not None:
        search.observe_sweep(evaluator(probes))
        while True:
            pair = search.round_steps()
            if pair is None:
                break
            v1, v2 = evaluator(pair)
            search.observe_round(v1, v2)
    return search.result(evaluations=evaluator.evaluations)
