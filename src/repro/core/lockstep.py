"""Lockstep multi-start: all trajectories advance one iteration at a time.

``optimize_multistart`` runs its portfolio starts one after another (or
farms whole starts out to an executor); each start's line search then
issues its own stacked linear-algebra calls.  For the paper's matrix
sizes the per-call dispatch overhead (Python bookkeeping, LAPACK setup)
is a large fraction of each call, so fusing the *same stage* of every
start's line search into one taller stacked call is markedly faster on a
single core — same arithmetic, fewer round trips.

This driver advances every start's
:class:`~repro.core.perturbed.PerturbedWalk` in lockstep.  Per descent
iteration: every active walk computes its (noisy) direction, then all
line searches run their geometric sweep in **one**
:meth:`~repro.core.cost.CoverageCost.batch_evaluate` via
:class:`~repro.core.cost.MultiRayBatch`, then each trisection round
likewise, then all random fallback probes.  Bit-identity with the serial
path holds by construction:

* each walk draws from its own pre-spawned RNG stream in exactly the
  serial order (noise, fallback step, acceptance test — the last
  short-circuited for non-worsening moves);
* step selection runs through the shared
  :class:`~repro.core.linesearch.TrisectionState` and each ray's
  :meth:`~repro.core.cost.RayBatch._observe` winner rule, which are the
  very code the serial path executes;
* ``batch_evaluate`` treats stack members independently, so fused probe
  values equal single-ray values bitwise.

Equivalence is tested per start, per iteration in
``tests/core/test_lockstep.py``; the speedup is measured by
``benchmarks/perf/bench_rays.py``.

Per-run :class:`~repro.utils.perf.OptimizerPerf` counters are attributed
as the serial path would have recorded them (one ``batch_call`` per walk
per fused stage it participated in), so a run's "factorizations per
accepted step" budget stays comparable across drivers.  ``seconds`` is
the driver wall time elapsed when that walk finished — walks interleave,
so per-run times are not additive.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import fields
from typing import List, Optional, Sequence

import numpy as np

from repro.core.cost import CoverageCost
from repro.core.linesearch import TrisectionState
from repro.core.multistart import (
    DEFAULT_DELTA_GRID,
    MultiStartResult,
    default_start_portfolio,
)
from repro.core.perturbed import PerturbedOptions, PerturbedWalk
from repro.utils import perf
from repro.utils.rng import RandomState, as_generator, spawn_generators


class _Slot:
    """Driver bookkeeping for one walk: counters and per-stage scratch."""

    __slots__ = ("walk", "counters", "spec", "seconds")

    def __init__(
        self, walk: PerturbedWalk, counters: perf.PerfCounters
    ) -> None:
        self.walk = walk
        self.counters = counters
        self.spec = None
        self.seconds: Optional[float] = None


@contextmanager
def _measured(counters: perf.PerfCounters):
    """Run a per-walk serial section, folding its counts into ``counters``.

    Nested scopes accumulate into any ambient outer scope too, so an
    experiment-level ``perf_scope`` around the whole lockstep run still
    sees the true totals.
    """
    with perf.perf_scope() as delta:
        yield
    for field in fields(perf.PerfCounters):
        amount = getattr(delta, field.name)
        if amount:
            counters.add(field.name, amount)


def _fused_values(batch, steps_per_ray, slots) -> List[Optional[np.ndarray]]:
    """One fused line-search stage; sanitized values per participating ray.

    Mirrors ``_RayEvaluator``'s handling on the serial path: non-finite
    probe values become ``inf`` before the search sees them.  Attributes
    one serial-equivalent ``batch_call`` to each participating walk.
    """
    with np.errstate(all="ignore"):
        values = batch.evaluate(steps_per_ray)
    out: List[Optional[np.ndarray]] = []
    for slot, steps, vals in zip(slots, steps_per_ray, values):
        if vals is None:
            out.append(None)
            continue
        vals = np.asarray(vals, dtype=float)
        vals[~np.isfinite(vals)] = np.inf
        slot.counters.add("batch_calls")
        slot.counters.add("batch_matrices", int(np.asarray(steps).size))
        out.append(vals)
    return out


def _fused_probes(batch, step_per_ray, slots) -> List[Optional[tuple]]:
    """All walks' random fallback probes in one stacked call."""
    if all(step is None for step in step_per_ray):
        return [None] * len(step_per_ray)
    with np.errstate(all="ignore"):
        probes = batch.probe_states(step_per_ray)
    for slot, step, probe in zip(slots, step_per_ray, probes):
        if step is None:
            continue
        slot.counters.add("batch_calls")
        slot.counters.add("batch_matrices", 1)
        if probe is not None and probe[1] is not None:
            slot.counters.add("states_reused")
    return probes


def lockstep_multistart(
    cost: CoverageCost,
    random_starts: int = 3,
    delta_grid: Sequence[float] = DEFAULT_DELTA_GRID,
    seed: RandomState = None,
    options: Optional[PerturbedOptions] = None,
) -> MultiStartResult:
    """Run the perturbed multi-start with all starts fused in lockstep.

    Seeding is identical to :func:`~repro.core.multistart.
    optimize_multistart`: the portfolio is drawn first from ``seed``,
    then each start gets its own spawned stream — so every returned run
    (trajectory, history, best matrix) is bit-identical to the serial
    driver's, only faster.  Supports the default perturbed optimizer
    (the only one whose walk exposes the lockstep protocol).
    """
    options = options or PerturbedOptions()
    started = time.perf_counter()
    rng = as_generator(seed)
    starts = default_start_portfolio(
        cost, random_starts=random_starts, delta_grid=delta_grid, seed=rng
    )
    streams = spawn_generators(rng, len(starts))

    slots = []
    for (_, matrix), stream in zip(starts, streams):
        counters = perf.PerfCounters()
        with _measured(counters):
            walk = PerturbedWalk(cost, matrix, stream, options)
        slots.append(_Slot(walk, counters))

    while True:
        active = [slot for slot in slots if not slot.walk.finished]
        if not active:
            break

        for slot in active:
            with _measured(slot.counters):
                slot.spec = slot.walk.begin_iteration()

        batch = cost.multi_ray_batch(
            [(slot.spec.matrix, slot.spec.direction) for slot in active]
        )
        searches = [
            TrisectionState(
                upper=slot.spec.bound,
                baseline=slot.spec.baseline,
                rounds=options.trisection_rounds,
                improvement_rtol=options.rtol,
                geometric_decades=options.geometric_decades,
            )
            for slot in active
        ]

        # Stage 1: every search's geometric sweep, one stacked call.
        sweeps = [search.sweep_steps() for search in searches]
        values = _fused_values(batch, sweeps, active)
        for search, vals in zip(searches, values):
            if vals is not None:
                search.observe_sweep(vals)

        # Stage 2: trisection rounds in lockstep until every search is
        # done (finished searches sit out with ``None``).
        while True:
            pairs = [search.round_steps() for search in searches]
            if all(pair is None for pair in pairs):
                break
            values = _fused_values(batch, pairs, active)
            for search, vals in zip(searches, values):
                if vals is not None:
                    search.observe_round(vals[0], vals[1])

        # Stage 3: step choices, then all random fallback probes fused.
        fallbacks = [
            slot.walk.choose_step(search.result())
            for slot, search in zip(active, searches)
        ]
        probes = _fused_probes(batch, fallbacks, active)

        for slot, ray, probe in zip(active, batch.rays, probes):
            with _measured(slot.counters):
                slot.walk.complete_iteration(ray, probe)
            if slot.walk.finished and slot.seconds is None:
                slot.seconds = time.perf_counter() - started

    total = time.perf_counter() - started
    runs = [
        slot.walk.result(
            run_perf=perf.OptimizerPerf.from_counters(
                slot.counters,
                accepted_steps=slot.walk.accepted_steps,
                accept_factorizations=slot.walk.accept_factorizations,
                seconds=slot.seconds if slot.seconds is not None else total,
            )
        )
        for slot in slots
    ]
    labels = [label for label, _ in starts]
    best = min(runs, key=lambda run: run.best_u_eps)
    return MultiStartResult(best=best, runs=runs, start_labels=labels)
