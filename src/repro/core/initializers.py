"""Initial transition matrices for the descent variants V1 and V2.

Every initializer accepts an optional boolean ``support`` mask (sparse
topologies restrict feasible transitions to an adjacency pattern): the
unrestricted matrix is built exactly as before — same RNG draw count and
order, so seeded runs stay reproducible — then masked to the support and
row-renormalized.  ``support=None`` is bit-identical to the historical
behavior.
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import RandomState, as_generator, paper_random_row


def _apply_support(matrix: np.ndarray, support) -> np.ndarray:
    """Mask ``matrix`` to a feasible-transition pattern and renormalize."""
    if support is None:
        return matrix
    support = np.asarray(support, dtype=bool)
    if support.shape != matrix.shape:
        raise ValueError(
            f"support shape {support.shape} != matrix shape {matrix.shape}"
        )
    masked = np.where(support, matrix, 0.0)
    sums = masked.sum(axis=1, keepdims=True)
    if np.any(sums <= 0.0):
        raise ValueError(
            "support mask removed all probability from some row"
        )
    return masked / sums


def uniform_matrix(size: int, support=None) -> np.ndarray:
    """V1's initial matrix: every ``p_ij = 1/M`` (Section V).

    The uniform chain is trivially ergodic and lies at the center of the
    feasible polytope, far from every barrier.  With a ``support`` mask
    the mass spreads uniformly over each row's feasible legs instead.
    """
    if size < 2:
        raise ValueError(f"size must be >= 2, got {size}")
    return _apply_support(np.full((size, size), 1.0 / size), support)


def paper_random_matrix(
    size: int, seed: RandomState = None, support=None
) -> np.ndarray:
    """V2's random initial matrix, row by row (Section V).

    Each row uses the paper's recipe: entry ``j < M-1`` takes
    ``rand * rem / M`` of the probability remaining in the row; the last
    column absorbs the remainder, so rows sum to one exactly and every
    entry is strictly positive (hence the chain is ergodic).
    """
    if size < 2:
        raise ValueError(f"size must be >= 2, got {size}")
    rng = as_generator(seed)
    matrix = np.vstack([paper_random_row(size, rng) for _ in range(size)])
    return _apply_support(matrix, support)


def damped_baseline_matrix(
    target_shares: np.ndarray, delta: float, support=None
) -> np.ndarray:
    """Interpolation between staying put and the proportional baseline.

    ``P = (1 - delta) I + delta * ones phi^T`` — with probability
    ``delta`` the sensor draws its next PoI i.i.d. from the target
    allocation ``phi`` (lottery-scheduling style); otherwise it stays.
    The stationary distribution is exactly ``phi`` for every ``delta``,
    while ``delta`` controls how much the sensor moves: small ``delta``
    trades exposure time for coverage accuracy (travel time vanishes).

    A grid over ``delta`` makes an effective structured multi-start set:
    it seeds the optimizer in the slow-moving basins that random
    initializations (which start near the simplex center) practically
    never reach.  Requires strictly positive ``phi`` for ergodicity.
    """
    phi = np.asarray(target_shares, dtype=float)
    if phi.ndim != 1 or phi.shape[0] < 2:
        raise ValueError("target_shares must be 1-D with length >= 2")
    if np.any(phi <= 0):
        raise ValueError(
            "all target shares must be positive for an ergodic chain"
        )
    if not 0.0 < delta <= 1.0:
        raise ValueError(f"delta must lie in (0, 1], got {delta}")
    size = phi.shape[0]
    matrix = (1.0 - delta) * np.eye(size) + delta * np.tile(phi, (size, 1))
    return _apply_support(matrix, support)


def dirichlet_matrix(
    size: int,
    concentration: float = 1.0,
    floor: float = 0.0,
    seed: RandomState = None,
) -> np.ndarray:
    """Random matrix with i.i.d. Dirichlet rows (uniform on the simplex).

    Unlike the paper's V2 recipe — which biases probability mass toward the
    last column — Dirichlet rows are exchangeable across columns.  ``floor``
    bounds entries away from zero.  Used by robustness tests and ablations.
    """
    if size < 2:
        raise ValueError(f"size must be >= 2, got {size}")
    if not 0.0 <= floor < 1.0 / size:
        raise ValueError(
            f"floor must lie in [0, 1/size), got {floor}"
        )
    if concentration <= 0:
        raise ValueError(
            f"concentration must be > 0, got {concentration}"
        )
    rng = as_generator(seed)
    rows = rng.dirichlet(np.full(size, concentration), size=size)
    if floor > 0.0:
        rows = floor + (1.0 - size * floor) * rows
    return rows
