"""Result records for the optimization variants.

Each optimizer returns an :class:`OptimizationResult` holding the final
matrix and a per-iteration history, which the experiment harness consumes
to regenerate the paper's iteration-trace figures (Figs. 3-5, 8).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.utils.perf import OptimizerPerf


@dataclass(frozen=True)
class IterationRecord:
    """One iteration of a descent run.

    ``step`` is the step size actually taken (0 for a rejected proposal),
    ``accepted`` distinguishes annealing rejections in the perturbed
    variant, and ``gradient_norm`` is the Frobenius norm of the projected
    gradient at the iterate *before* the step.
    """

    iteration: int
    u_eps: float
    u: float
    delta_c: float
    e_bar: float
    step: float
    gradient_norm: float
    accepted: bool = True


@dataclass
class OptimizationResult:
    """Outcome of one optimization run."""

    matrix: np.ndarray
    u_eps: float
    u: float
    delta_c: float
    e_bar: float
    iterations: int
    converged: bool
    stop_reason: str
    history: List[IterationRecord] = field(default_factory=list)
    best_matrix: Optional[np.ndarray] = None
    best_u_eps: Optional[float] = None
    checkpoints: List[tuple] = field(default_factory=list)
    #: Hot-path counters for this run (factorizations, reused states,
    #: batched solves); ``None`` for optimizers that do not collect them.
    perf: Optional[OptimizerPerf] = None

    def __post_init__(self) -> None:
        if self.best_matrix is None:
            self.best_matrix = self.matrix
        if self.best_u_eps is None:
            self.best_u_eps = self.u_eps

    def checkpoint_iterations(self) -> List[int]:
        """Iteration indices at which matrices were checkpointed."""
        return [iteration for iteration, _ in self.checkpoints]

    def cost_trace(self) -> np.ndarray:
        """Per-iteration ``U_eps`` values (the y-axis of Figs. 3-5)."""
        return np.array([record.u_eps for record in self.history])

    def u_trace(self) -> np.ndarray:
        """Per-iteration un-penalized ``U`` values."""
        return np.array([record.u for record in self.history])

    def delta_c_trace(self) -> np.ndarray:
        """Per-iteration ``Delta C`` values (Figs. 6-8, panel a)."""
        return np.array([record.delta_c for record in self.history])

    def e_bar_trace(self) -> np.ndarray:
        """Per-iteration ``E-bar`` values (Figs. 6-8, panel b)."""
        return np.array([record.e_bar for record in self.history])

    def summary(self) -> str:
        """One-line human-readable outcome."""
        return (
            f"U_eps={self.u_eps:.6g} U={self.u:.6g} "
            f"dC={self.delta_c:.6g} E={self.e_bar:.6g} "
            f"iters={self.iterations} converged={self.converged} "
            f"({self.stop_reason})"
        )
