"""The assembled cost function ``U_eps`` and the paper's report metrics.

:class:`CoverageCost` binds a :class:`~repro.topology.model.Topology` to a
:class:`CostWeights` configuration and exposes:

* ``value(P)`` / ``evaluate(P)`` — the penalized cost ``U_eps`` (Eq. 9) and
  its decomposition,
* ``gradient(P)`` — the total derivative ``[D_P U]`` (Eq. 10),
* ``descent_direction(P)`` — ``-Pi [D_P U]`` (Eq. 11),
* the reporting metrics of Section VI: coverage shares ``C-bar_i``
  (Eq. 2), per-PoI exposures ``E-bar_i`` (Eq. 3), the deviation ``Delta C``
  (Eq. 12), and the aggregate exposure ``E-bar`` (Eq. 13).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.core.gradient import projected_gradient, total_derivative
from repro.core.penalty import BarrierPenalty
from repro.core.state import ChainState
from repro.core.terms import (
    CoverageDeviationTerm,
    EnergyTerm,
    EntropyTerm,
    ExposureTerm,
    ObjectiveTerm,
)
from repro.topology.model import Topology
from repro.utils import perf


@dataclass(frozen=True)
class CostWeights:
    """Weight configuration for the multi-objective cost.

    ``alpha`` and ``beta`` may be scalars (the paper's Section VI setting,
    all PoIs equal) or per-PoI arrays.  ``epsilon`` is the barrier band
    width of Eq. (9).  ``energy_weight``/``energy_target`` and
    ``entropy_weight`` enable the Section VII extension terms.
    """

    alpha: object = 1.0
    beta: object = 1.0
    epsilon: float = 1e-4
    energy_weight: float = 0.0
    energy_target: float = 0.0
    entropy_weight: float = 0.0

    def __post_init__(self) -> None:
        if self.epsilon <= 0 or self.epsilon >= 0.5:
            raise ValueError(
                f"epsilon must lie in (0, 0.5), got {self.epsilon}"
            )
        if self.energy_weight < 0 or self.entropy_weight < 0:
            raise ValueError("extension weights must be >= 0")


@dataclass(frozen=True)
class CostBreakdown:
    """Decomposition of the cost at one transition matrix.

    ``u`` is the un-penalized Eq. (14) cost; ``u_eps`` adds the barrier;
    ``delta_c`` and ``e_bar`` are the Section VI metrics (Eqs. 12-13).
    """

    u: float
    u_eps: float
    coverage_value: float
    exposure_value: float
    penalty_value: float
    energy_value: float
    entropy_value: float
    delta_c: float
    e_bar: float
    coverage_shares: np.ndarray
    exposure_times: np.ndarray


class CoverageCost:
    """Cost function of the coverage-scheduling problem on a topology."""

    def __init__(self, topology: Topology, weights: CostWeights) -> None:
        self.topology = topology
        self.weights = weights
        size = topology.size
        travel = topology.travel_times
        passby = topology.passby
        self._coverage = CoverageDeviationTerm(
            travel_times=travel,
            passby=passby,
            target_shares=topology.target_shares,
            alpha=weights.alpha,
        )
        self._exposure = ExposureTerm(beta=weights.beta, size=size)
        self._penalty = BarrierPenalty(epsilon=weights.epsilon)
        self._energy: Optional[EnergyTerm] = None
        if weights.energy_weight > 0:
            self._energy = EnergyTerm(
                distances=topology.distances,
                weight=weights.energy_weight,
                target=weights.energy_target,
            )
        self._entropy: Optional[EntropyTerm] = None
        if weights.entropy_weight > 0:
            self._entropy = EntropyTerm(weight=weights.entropy_weight)
        self._travel = travel
        self._passby = passby

    # ------------------------------------------------------------------ #
    # Term plumbing
    # ------------------------------------------------------------------ #

    @property
    def terms(self) -> List[ObjectiveTerm]:
        """All active terms, barrier included (the ``U_eps`` objective)."""
        terms: List[ObjectiveTerm] = [
            self._coverage, self._exposure, self._penalty,
        ]
        if self._energy is not None:
            terms.append(self._energy)
        if self._entropy is not None:
            terms.append(self._entropy)
        return terms

    @property
    def size(self) -> int:
        """Number of PoIs."""
        return self.topology.size

    def state(self, matrix: np.ndarray) -> ChainState:
        """Build the :class:`ChainState` for ``matrix``."""
        return ChainState.from_matrix(matrix)

    # ------------------------------------------------------------------ #
    # Values
    # ------------------------------------------------------------------ #

    def value(self, matrix_or_state) -> float:
        """The penalized cost ``U_eps`` (Eq. 9)."""
        state = self._as_state(matrix_or_state)
        return float(sum(term.value(state) for term in self.terms))

    def evaluate(self, matrix_or_state) -> CostBreakdown:
        """Full decomposition of the cost at a matrix."""
        state = self._as_state(matrix_or_state)
        coverage_value = self._coverage.value(state)
        exposure_value = self._exposure.value(state)
        penalty_value = self._penalty.value(state)
        energy_value = self._energy.value(state) if self._energy else 0.0
        entropy_value = self._entropy.value(state) if self._entropy else 0.0
        u = coverage_value + exposure_value + energy_value + entropy_value
        exposures = self._exposure.exposures(state)
        deviations = self._coverage.deviations(state)
        return CostBreakdown(
            u=float(u),
            u_eps=float(u + penalty_value),
            coverage_value=float(coverage_value),
            exposure_value=float(exposure_value),
            penalty_value=float(penalty_value),
            energy_value=float(energy_value),
            entropy_value=float(entropy_value),
            delta_c=float(np.sum(deviations**2)),
            e_bar=float(np.sqrt(np.sum(exposures**2))),
            coverage_shares=self.coverage_shares(state),
            exposure_times=exposures,
        )

    # ------------------------------------------------------------------ #
    # Gradients
    # ------------------------------------------------------------------ #

    def gradient(self, matrix_or_state) -> np.ndarray:
        """The total derivative ``[D_P U_eps]`` (Eq. 10)."""
        state = self._as_state(matrix_or_state)
        return total_derivative(state, self.terms)

    def projected_gradient(self, matrix_or_state) -> np.ndarray:
        """``Pi [D_P U_eps]`` (Eq. 11)."""
        state = self._as_state(matrix_or_state)
        return projected_gradient(state, self.terms)

    def descent_direction(self, matrix_or_state) -> np.ndarray:
        """``V = -Pi [D_P U_eps]`` — step 3 of the computational algorithm."""
        return -self.projected_gradient(matrix_or_state)

    # ------------------------------------------------------------------ #
    # Paper metrics (Section VI)
    # ------------------------------------------------------------------ #

    def coverage_shares(self, matrix_or_state) -> np.ndarray:
        """Long-run coverage shares ``C-bar_i`` (Eq. 2)."""
        state = self._as_state(matrix_or_state)
        weighted = state.pi[:, None] * state.p
        covered = np.einsum("jk,jki->i", weighted, self._passby)
        total = float(np.sum(weighted * self._travel))
        return covered / total

    def exposure_times(self, matrix_or_state) -> np.ndarray:
        """Per-PoI average exposure times ``E-bar_i`` (Eq. 3)."""
        state = self._as_state(matrix_or_state)
        return self._exposure.exposures(state)

    def delta_c(self, matrix_or_state) -> float:
        """Coverage-time deviation ``Delta C`` (Eq. 12)."""
        state = self._as_state(matrix_or_state)
        return float(np.sum(self._coverage.deviations(state) ** 2))

    def e_bar(self, matrix_or_state) -> float:
        """Aggregate exposure ``E-bar = sqrt(sum_i E-bar_i^2)`` (Eq. 13)."""
        state = self._as_state(matrix_or_state)
        exposures = self._exposure.exposures(state)
        return float(np.sqrt(np.sum(exposures**2)))

    # ------------------------------------------------------------------ #
    # Batched evaluation (line-search hot path)
    # ------------------------------------------------------------------ #

    def batch_values(self, stack: np.ndarray) -> np.ndarray:
        """``U_eps`` for a stack of matrices, shape ``(k, M, M) -> (k,)``.

        One vectorized pass using numpy's stacked linear algebra; the
        line search evaluates all its probes in a single call, which is
        several times faster than ``k`` scalar evaluations.  Matrices
        yielding non-ergodic/singular systems map to ``+inf`` rather than
        raising — an infeasible probe is merely unattractive.

        Only the terms of the paper's ``U_eps`` (coverage, exposure,
        barrier) plus any enabled extension terms are included, identical
        to :meth:`value`; the two paths are cross-checked by tests.
        """
        return self.batch_evaluate(stack)[0]

    def batch_evaluate(self, stack: np.ndarray):
        """Batched evaluation that also returns the derived matrices.

        Returns ``(values, pis, zs, ok)``: the ``U_eps`` values of
        :meth:`batch_values` plus the per-matrix stationary
        distributions, fundamental matrices, and the feasibility mask.
        ``pis[i]``/``zs[i]`` are only meaningful where ``ok[i]`` — the
        line search uses them to hand its winning probe's state back to
        the optimizer without refactorizing (see :class:`RayBatch`).
        """
        stack = np.asarray(stack, dtype=float)
        if stack.ndim != 3 or stack.shape[1:] != (self.size, self.size):
            raise ValueError(
                f"stack must have shape (k, {self.size}, {self.size}), "
                f"got {stack.shape}"
            )
        k, size = stack.shape[0], self.size
        values = np.full(k, np.inf)
        if k == 0:
            empty = np.zeros((0, size))
            return values, empty, np.zeros((0, size, size)), \
                np.zeros(0, dtype=bool)
        perf.count("batch_calls")
        perf.count("batch_matrices", k)
        eye = np.eye(size)

        with np.errstate(all="ignore"):
            # Stationary distributions: solve (I - P^T | ones) pi = e_n.
            systems = eye[None, :, :] - np.transpose(stack, (0, 2, 1))
            systems[:, -1, :] = 1.0
            rhs = np.zeros(size)
            rhs[-1] = 1.0
            rhs_stack = np.broadcast_to(rhs[:, None], (k, size, 1))
            try:
                pis = np.linalg.solve(systems, rhs_stack)[..., 0]
            except np.linalg.LinAlgError:
                pis = _solve_one_by_one(systems, rhs)
            # Sanitize exactly as the scalar solver does (clip round-off
            # negatives, renormalize): the cores below must match the
            # scalar path's bit for bit, or a state handed back by the
            # line search would not equal the one a scratch rebuild
            # produces and reuse would perturb trajectories.
            pis = np.clip(pis, 0.0, None)
            sums = pis.sum(axis=1, keepdims=True)
            safe_sums = np.where(sums > 0.0, sums, 1.0)
            pis = pis / safe_sums
            # Fundamental matrices Z = inv(I - P + W).
            cores = eye[None, :, :] - stack + pis[:, None, :]
            try:
                zs = np.linalg.inv(cores)
            except np.linalg.LinAlgError:
                zs = _invert_one_by_one(cores)

            ok = (
                np.isfinite(pis).all(axis=1)
                & (pis > 0.0).all(axis=1)
                & np.isfinite(zs).all(axis=(1, 2))
            )
            diag = np.einsum("kii->ki", stack)
            ok &= (diag < 1.0 - 1e-13).all(axis=1)
            # The box is [0, 1] on both sides: an off-diagonal entry above
            # 1 must be masked here, not left for the barrier to take the
            # log of a negative number.
            ok &= (stack >= 0.0).all(axis=(1, 2))
            ok &= (stack <= 1.0).all(axis=(1, 2))
            if not ok.any():
                return values, pis, zs, ok

            # Coverage deviation term.
            weighted = pis[:, :, None] * stack
            c = np.einsum("kjl,ijl->ki", weighted, self._coverage._b)
            coverage = 0.5 * np.einsum(
                "i,ki,ki->k", self._coverage.alpha, c, c
            )

            # Exposure term.
            z_diag = np.einsum("kii->ki", zs)
            diffs = z_diag[:, None, :] - zs  # (k, j, i): z_ii - z_ji
            w = stack * np.transpose(diffs, (0, 2, 1))
            w[:, np.arange(size), np.arange(size)] = 0.0
            n = w.sum(axis=2)
            e = n / (pis * (1.0 - diag))
            exposure = 0.5 * np.einsum("i,ki,ki->k", self._exposure.beta,
                                       e, e)

            # Barrier penalty, only where entries enter the bands.
            eps = self.weights.epsilon
            penalty = np.zeros(k)
            in_band = (stack <= eps) | (stack >= 1.0 - eps)
            # Only feasible rows reach the penalty (infeasible ones are
            # already +inf, and entries outside [0, 1] would make
            # ``elementwise_value`` raise).
            rows_with_band = in_band.any(axis=(1, 2)) & ok
            for index in np.nonzero(rows_with_band)[0]:
                penalty[index] = float(
                    self._penalty.elementwise_value(stack[index]).sum()
                )

            total = coverage + exposure + penalty
            if self._energy is not None:
                travel = np.einsum(
                    "ki,kij,ij->k", pis, stack, self._energy.distances
                )
                gap = travel - self._energy.target
                total = total + 0.5 * self._energy.weight * gap * gap
            if self._entropy is not None:
                plogp = np.where(
                    stack > 0.0, stack * np.log(stack), 0.0
                ).sum(axis=2)
                total = total - self._entropy.weight * (
                    -np.einsum("ki,ki->k", pis, plogp)
                )

        values[ok] = total[ok]
        values[~np.isfinite(values)] = np.inf
        return values, pis, zs, ok

    def ray_batch(self, matrix: np.ndarray, direction: np.ndarray):
        """Return the batched ray objective ``steps -> U_eps`` values.

        The returned :class:`RayBatch` evaluates
        ``U_eps(matrix + step * direction)`` for a whole array of steps at
        once via :meth:`batch_values` — the line search's fast path — and
        remembers the winning probe's ``(pi, Z)`` so the optimizer can
        accept that candidate without refactorizing
        (:meth:`RayBatch.state_at`).
        """
        return RayBatch(self, matrix, direction)

    def multi_ray_batch(self, pairs) -> "MultiRayBatch":
        """Fused evaluator over several ``(matrix, direction)`` rays.

        The returned :class:`MultiRayBatch` stacks all participating
        rays' probes into one :meth:`batch_evaluate` call per
        line-search stage and keeps per-ray winners — the lockstep
        multi-start driver's hot path (see :mod:`repro.core.lockstep`).
        """
        return MultiRayBatch.from_directions(self, pairs)

    # ------------------------------------------------------------------ #

    def _as_state(self, matrix_or_state) -> ChainState:
        if isinstance(matrix_or_state, ChainState):
            return matrix_or_state
        return ChainState.from_matrix(np.asarray(matrix_or_state, float))


class RayBatch:
    """Batched ray objective that remembers the winning probe's state.

    Callable as ``steps -> U_eps values`` (the line search's
    ``batch_objective``).  While evaluating, it tracks the first
    strictly-best feasible probe in evaluation order — the same rule the
    conservative trisection uses to pick its step — and keeps that
    probe's ``(P, pi, Z)``.  After the search, :meth:`state_at` hands the
    accepted candidate's :class:`~repro.core.state.ChainState` back
    without any new factorization; the historical behavior rebuilt it
    from scratch, paying a redundant stationary solve plus fundamental
    factorization per accepted step.
    """

    def __init__(
        self,
        cost: CoverageCost,
        matrix: np.ndarray,
        direction: np.ndarray,
    ) -> None:
        self._cost = cost
        self._matrix = np.asarray(matrix, dtype=float)
        self._direction = np.asarray(direction, dtype=float)
        self._best_step: Optional[float] = None
        self._best_value = np.inf
        self._best_parts = None

    def _stack(self, steps: np.ndarray) -> np.ndarray:
        return (
            self._matrix[None, :, :]
            + steps[:, None, None] * self._direction
        )

    def __call__(self, steps: np.ndarray) -> np.ndarray:
        steps = np.asarray(steps, dtype=float)
        stack = self._stack(steps)
        values, pis, zs, ok = self._cost.batch_evaluate(stack)
        return self._observe(steps, stack, values, pis, zs, ok)

    def _observe(self, steps, stack, values, pis, zs, ok) -> np.ndarray:
        """Track the first strictly-best feasible probe of one batch.

        Shared by the single-ray path (``__call__``) and the fused
        multi-ray path (:class:`MultiRayBatch`), which hands in each
        ray's slice of one stacked evaluation — so the winner a ray
        records is independent of how its probes were batched.
        """
        usable = ok & np.isfinite(values)
        if usable.any():
            masked = np.where(usable, values, np.inf)
            index = int(np.argmin(masked))
            if masked[index] < self._best_value:
                self._best_step = float(steps[index])
                self._best_value = float(masked[index])
                self._best_parts = (stack[index], pis[index], zs[index])
        return values

    def state_at(self, step: float):
        """The recorded winner's state, or ``None`` on any mismatch.

        Returns a state only when ``step`` is exactly the recorded best
        probe, so a caller falling back to
        :meth:`ChainState.from_matrix` on ``None`` is always correct.
        """
        if self._best_parts is None or self._best_step != float(step):
            return None
        p, pi, z = self._best_parts
        return ChainState.from_parts(p, pi, z)

    def probe_state(self, step: float):
        """Evaluate one extra step; return ``(value, state_or_None)``.

        The perturbed algorithm's random fallback step goes through this
        batched path, so even annealing moves get their state without a
        scalar rebuild.  Does not disturb the winner tracked by
        :meth:`state_at`.
        """
        steps = np.asarray([float(step)])
        stack = self._stack(steps)
        values, pis, zs, ok = self._cost.batch_evaluate(stack)
        if not ok[0] or not np.isfinite(values[0]):
            return float(values[0]), None
        state = ChainState.from_parts(stack[0], pis[0], zs[0])
        return float(values[0]), state


class MultiRayBatch:
    """Lockstep evaluation of several rays through one stacked call.

    Each ray is a :class:`RayBatch` with its own base matrix, direction,
    and winner tracking.  :meth:`evaluate` concatenates every
    participating ray's probe matrices into a single ``(k, M, M)`` stack,
    runs one :meth:`CoverageCost.batch_evaluate`, and demultiplexes the
    per-ray slices back through each ray's ``_observe`` — the exact
    first-strictly-best rule the single-ray path applies.  Because
    ``batch_evaluate`` treats every stack member independently, the
    values (and therefore each ray's recorded winner) are bit-identical
    to evaluating the rays one at a time; only the Python-level and
    LAPACK dispatch overhead is amortized across rays.

    Used by :mod:`repro.core.lockstep` to fuse the line searches of all
    active multi-start trajectories at each descent iteration.
    """

    def __init__(self, cost: CoverageCost, rays) -> None:
        self._cost = cost
        self.rays: List[RayBatch] = list(rays)

    @classmethod
    def from_directions(cls, cost: CoverageCost, pairs):
        """Build from ``(matrix, direction)`` pairs."""
        return cls(cost, [RayBatch(cost, m, d) for m, d in pairs])

    def __len__(self) -> int:
        return len(self.rays)

    def _fused(self, steps_per_ray):
        """Concatenate participating rays' stacks; yield slice metadata.

        ``steps_per_ray`` aligns with :attr:`rays`; ``None`` entries sit
        out this stage.  Returns ``(parts, fused_results)`` where
        ``parts`` is a list of ``(index, steps, lo, hi)`` slice bounds.
        """
        parts = []
        chunks = []
        offset = 0
        for index, steps in enumerate(steps_per_ray):
            if steps is None:
                continue
            steps = np.asarray(steps, dtype=float)
            chunk = self.rays[index]._stack(steps)
            parts.append((index, steps, offset, offset + steps.size))
            chunks.append(chunk)
            offset += steps.size
        if not chunks:
            return parts, None, None
        fused = np.concatenate(chunks, axis=0)
        return parts, self._cost.batch_evaluate(fused), fused

    def evaluate(self, steps_per_ray) -> List[Optional[np.ndarray]]:
        """One fused line-search stage across the rays.

        ``steps_per_ray[i]`` is the step array ray ``i`` evaluates this
        stage, or ``None`` for a ray sitting the stage out.  Returns the
        per-ray ``U_eps`` arrays (``None`` where the input was ``None``),
        with each ray's winner tracking updated exactly as if it had
        evaluated its steps alone.
        """
        out: List[Optional[np.ndarray]] = [None] * len(self.rays)
        fused = self._fused(steps_per_ray)
        if fused[1] is None:
            return out
        parts, (values, pis, zs, ok), stack = fused
        for index, steps, lo, hi in parts:
            out[index] = self.rays[index]._observe(
                steps, stack[lo:hi], values[lo:hi],
                pis[lo:hi], zs[lo:hi], ok[lo:hi],
            )
        return out

    def probe_states(self, step_per_ray) -> List[Optional[tuple]]:
        """Fused :meth:`RayBatch.probe_state` across the rays.

        ``step_per_ray[i]`` is a single extra step for ray ``i`` or
        ``None``.  Returns ``(value, state_or_None)`` per probed ray
        without disturbing any ray's recorded winner — the lockstep
        driver evaluates all trajectories' random fallback steps in one
        stacked call this way.
        """
        out: List[Optional[tuple]] = [None] * len(self.rays)
        steps_per_ray = [
            None if step is None else np.asarray([float(step)])
            for step in step_per_ray
        ]
        fused = self._fused(steps_per_ray)
        if fused[1] is None:
            return out
        parts, (values, pis, zs, ok), stack = fused
        for index, _, lo, _ in parts:
            if not ok[lo] or not np.isfinite(values[lo]):
                out[index] = (float(values[lo]), None)
            else:
                state = ChainState.from_parts(
                    stack[lo], pis[lo], zs[lo]
                )
                out[index] = (float(values[lo]), state)
        return out


def _solve_one_by_one(systems: np.ndarray, rhs: np.ndarray) -> np.ndarray:
    """Per-item fallback when a batched solve hits one singular system."""
    k, size = systems.shape[0], systems.shape[1]
    out = np.full((k, size), np.nan)
    for index in range(k):
        try:
            out[index] = np.linalg.solve(systems[index], rhs)
        except np.linalg.LinAlgError:
            pass
    return out


def _invert_one_by_one(cores: np.ndarray) -> np.ndarray:
    """Per-item fallback when a batched inversion hits a singular core."""
    k = cores.shape[0]
    out = np.full_like(cores, np.nan)
    for index in range(k):
        try:
            out[index] = np.linalg.inv(cores[index])
        except np.linalg.LinAlgError:
            pass
    return out
