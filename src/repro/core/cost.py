"""The assembled cost function ``U_eps`` and the paper's report metrics.

:class:`CoverageCost` binds a :class:`~repro.topology.model.Topology` to a
:class:`CostWeights` configuration and exposes:

* ``value(P)`` / ``evaluate(P)`` — the penalized cost ``U_eps`` (Eq. 9) and
  its decomposition,
* ``gradient(P)`` — the total derivative ``[D_P U]`` (Eq. 10),
* ``descent_direction(P)`` — ``-Pi [D_P U]`` (Eq. 11),
* the reporting metrics of Section VI: coverage shares ``C-bar_i``
  (Eq. 2), per-PoI exposures ``E-bar_i`` (Eq. 3), the deviation ``Delta C``
  (Eq. 12), and the aggregate exposure ``E-bar`` (Eq. 13).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.core.gradient import projected_gradient, total_derivative
from repro.core.penalty import BarrierPenalty
from repro.core.registry import (
    TERM_REGISTRY,
    CostSum,
    build_term,
    normalize_extra_terms,
)
from repro.core.state import ChainState
from repro.core.terms import EnergyTerm, EntropyTerm, ObjectiveTerm, TermBatch
from repro.markov.sparse import (
    HAVE_SPARSE,
    SparseStationaryTemplate,
    sparse_stationary,
)
from repro.topology.model import Topology
from repro.utils import perf
from repro.utils.linalg import project_row_sum_zero

#: Valid ``linalg`` selections.
LINALG_MODES = ("auto", "dense", "sparse")
#: ``linalg="auto"`` switches to the sparse path at this many PoIs
#: (and only for topologies carrying an adjacency mask).
SPARSE_AUTO_THRESHOLD = 64


def resolve_linalg(linalg: str, topology: Topology) -> str:
    """Resolve a requested ``linalg`` mode to ``"dense"`` or ``"sparse"``.

    ``"auto"`` picks sparse only when it actually pays off *and* keeps
    the paper-scale reference bit-exact: the topology must carry an
    adjacency mask (else the core has no sparsity to exploit), scipy
    must be importable, and the instance must be at least
    :data:`SPARSE_AUTO_THRESHOLD` PoIs.  An explicit ``"sparse"`` is
    honored at any size but raises without scipy.
    """
    if linalg not in LINALG_MODES:
        raise ValueError(
            f"linalg must be one of {LINALG_MODES}, got {linalg!r}"
        )
    if linalg == "dense":
        return "dense"
    if linalg == "sparse":
        if not HAVE_SPARSE:
            raise RuntimeError(
                "linalg='sparse' requires scipy.sparse; install scipy "
                "or use linalg='dense'"
            )
        return "sparse"
    if (
        HAVE_SPARSE
        and topology.adjacency is not None
        and topology.size >= SPARSE_AUTO_THRESHOLD
    ):
        return "sparse"
    return "dense"


@dataclass(frozen=True)
class CostWeights:
    """Weight configuration for the multi-objective cost.

    ``alpha`` and ``beta`` may be scalars (the paper's Section VI setting,
    all PoIs equal) or per-PoI arrays.  ``epsilon`` is the barrier band
    width of Eq. (9).  ``energy_weight``/``energy_target`` and
    ``entropy_weight`` enable the Section VII extension terms.
    """

    alpha: object = 1.0
    beta: object = 1.0
    epsilon: float = 1e-4
    energy_weight: float = 0.0
    energy_target: float = 0.0
    entropy_weight: float = 0.0

    def __post_init__(self) -> None:
        if self.epsilon <= 0 or self.epsilon >= 0.5:
            raise ValueError(
                f"epsilon must lie in (0, 0.5), got {self.epsilon}"
            )
        if self.energy_weight < 0 or self.entropy_weight < 0:
            raise ValueError("extension weights must be >= 0")


@dataclass(frozen=True)
class CostBreakdown:
    """Decomposition of the cost at one transition matrix.

    ``u`` is the un-penalized Eq. (14) cost; ``u_eps`` adds the barrier;
    ``delta_c`` and ``e_bar`` are the Section VI metrics (Eqs. 12-13).
    """

    u: float
    u_eps: float
    coverage_value: float
    exposure_value: float
    penalty_value: float
    energy_value: float
    entropy_value: float
    delta_c: float
    e_bar: float
    coverage_shares: np.ndarray
    exposure_times: np.ndarray
    #: ``(name, value)`` pairs for the cost's plugin terms, in
    #: composition order; empty for the paper's bare objective.
    extra_values: tuple = ()


class CoverageCost:
    """Cost function of the coverage-scheduling problem on a topology.

    ``linalg`` selects the linear-algebra backend: ``"dense"`` (the
    bit-exact reference), ``"sparse"`` (large-``M``: sparse core
    factorizations, no materialized ``Z``, incremental updates across
    accepted steps), or ``"auto"`` (the default — see
    :func:`resolve_linalg`; paper-scale dense topologies always resolve
    dense, so default results are unchanged).

    Independently of ``linalg``, a topology carrying an adjacency mask
    gets the support-aware term set: the compact ``O(E)`` coverage term
    instead of the ``O(M^3)`` tensor, a barrier restricted to feasible
    transitions, and support-preserving gradient projections.

    The objective itself is a :class:`~repro.core.registry.CostSum`
    composition: the paper's terms are built through their
    :data:`~repro.core.registry.TERM_REGISTRY` factories (support-aware
    coverage, exposure, the barrier, plus the Section VII extensions
    when their weights are positive), and ``extra_terms`` appends any
    further registered terms — specified as anything
    :func:`~repro.core.registry.normalize_extra_terms` accepts — to the
    composition.  Extra terms must implement
    :meth:`~repro.core.terms.CostTerm.batch_value`; the batched and
    lockstep line-search paths evaluate them on whole probe stacks, so
    a scalar-only term is rejected at construction rather than failing
    mid-run.
    """

    def __init__(
        self,
        topology: Topology,
        weights: CostWeights,
        linalg: str = "auto",
        extra_terms=(),
    ) -> None:
        self.topology = topology
        self.weights = weights
        self.linalg = linalg
        self.resolved_linalg = resolve_linalg(linalg, topology)
        self.extra_terms = normalize_extra_terms(extra_terms)
        travel = topology.travel_times
        self._support = topology.adjacency  # None for dense topologies
        self._passby = None if self._support is not None else topology.passby
        self._coverage = TERM_REGISTRY["coverage"].factory(
            topology, weights.alpha
        )
        self._exposure = TERM_REGISTRY["exposure"].factory(
            topology, weights.beta
        )
        self._penalty = BarrierPenalty(
            epsilon=weights.epsilon, support=self._support
        )
        self._energy: Optional[EnergyTerm] = None
        if weights.energy_weight > 0:
            self._energy = TERM_REGISTRY["energy"].factory(
                topology, weights.energy_weight,
                target=weights.energy_target,
            )
        self._entropy: Optional[EntropyTerm] = None
        if weights.entropy_weight > 0:
            self._entropy = TERM_REGISTRY["entropy"].factory(
                topology, weights.entropy_weight
            )
        self._extra = tuple(
            build_term(name, topology, weight, **dict(params))
            for name, weight, params in self.extra_terms
        )
        for (name, _, _), term in zip(self.extra_terms, self._extra):
            if not term.supports_batch:
                raise ValueError(
                    f"term {name!r} ({type(term).__name__}) does not "
                    "implement batch_value; the batched/lockstep "
                    "evaluators cannot compose it into a CoverageCost"
                )
        entries = [
            ("coverage", 1.0, self._coverage),
            ("exposure", 1.0, self._exposure),
            ("penalty", 1.0, self._penalty),
        ]
        if self._energy is not None:
            entries.append(("energy", 1.0, self._energy))
        if self._entropy is not None:
            entries.append(("entropy", 1.0, self._entropy))
        entries.extend(
            (name, 1.0, term)
            for (name, _, _), term in zip(self.extra_terms, self._extra)
        )
        self._sum = CostSum(entries)
        self._travel = travel
        self._tracker = None  # lazily-built IncrementalCoreTracker
        self._stationary_template = None  # lazily-built, sparse mode

    # ------------------------------------------------------------------ #
    # Term plumbing
    # ------------------------------------------------------------------ #

    @property
    def term_sum(self) -> CostSum:
        """The objective as a :class:`~repro.core.registry.CostSum`."""
        return self._sum

    @property
    def terms(self) -> List[ObjectiveTerm]:
        """All active terms, barrier included (the ``U_eps`` objective).

        Composition order: coverage, exposure, barrier, the enabled
        Section VII extensions, then any ``extra_terms`` plugins.  The
        gradient engine iterates this list, so plugin partials flow
        through the same Schweitzer adjoints as the paper's terms.
        """
        return self._sum.members()

    @property
    def size(self) -> int:
        """Number of PoIs."""
        return self.topology.size

    @property
    def support(self) -> Optional[np.ndarray]:
        """Feasible-transition mask, or ``None`` for dense topologies."""
        return self._support

    def with_linalg(self, linalg: Optional[str]) -> "CoverageCost":
        """This cost with another ``linalg`` selection (same topology).

        ``None`` or the current selection return ``self`` unchanged, so
        facade-level threading never perturbs an already-configured
        cost.
        """
        if linalg is None or linalg == self.linalg:
            return self
        return CoverageCost(
            self.topology, self.weights, linalg=linalg,
            extra_terms=self.extra_terms,
        )

    def with_extra_terms(self, terms) -> "CoverageCost":
        """This cost with another plugin-term composition.

        ``None`` (or the current composition) returns ``self``
        unchanged — the facade's ``terms=`` threading never perturbs an
        already-configured cost; anything else replaces the extra-term
        list wholesale (normalized via
        :func:`~repro.core.registry.normalize_extra_terms`).
        """
        if terms is None:
            return self
        normalized = normalize_extra_terms(terms)
        if normalized == self.extra_terms:
            return self
        return CoverageCost(
            self.topology, self.weights, linalg=self.linalg,
            extra_terms=normalized,
        )

    def project(self, matrix: np.ndarray) -> np.ndarray:
        """Eq. 11 projection, support-restricted when a mask is present."""
        return project_row_sum_zero(matrix, self._support)

    def _get_tracker(self):
        """The cost's incremental ``(pi, Z)``-solve tracker (sparse mode)."""
        if self._tracker is None:
            from repro.markov.incremental import IncrementalCoreTracker

            self._tracker = IncrementalCoreTracker(
                stationary_solver=self._get_stationary_template(),
            )
        return self._tracker

    def _get_stationary_template(self):
        """Pre-indexed stationary system for the support pattern.

        Falls back to ``None`` (plain :func:`sparse_stationary`) for
        support-free costs running ``linalg="sparse"`` explicitly.
        """
        if self._stationary_template is None and self._support is not None:
            self._stationary_template = SparseStationaryTemplate(
                self._support
            )
        return self._stationary_template

    def build_state(self, matrix: np.ndarray, check: bool = True) -> ChainState:
        """Build the :class:`ChainState` for ``matrix`` under this cost.

        The dense path is exactly :meth:`ChainState.from_matrix`; the
        sparse path routes through the cost's
        :class:`~repro.markov.incremental.IncrementalCoreTracker`, so
        nearby iterates (accepted descent steps) share and update one
        factorization.  With a support mask, probability on infeasible
        legs is rejected up front — it would silently bypass the
        support-restricted barrier and coverage terms otherwise.
        """
        matrix = np.asarray(matrix, dtype=float)
        if check and self._support is not None and np.any(
            matrix[~self._support] != 0.0
        ):
            raise ValueError(
                "matrix places probability on legs outside the "
                "topology's adjacency support"
            )
        if self.resolved_linalg == "sparse":
            return ChainState.from_matrix(
                matrix,
                check=check,
                linalg="sparse",
                solver_provider=self._get_tracker(),
            )
        return ChainState.from_matrix(matrix, check=check)

    def state_from_parts(self, p: np.ndarray, pi: np.ndarray,
                         z: Optional[np.ndarray]) -> ChainState:
        """Assemble a probe's state from batch-evaluated parts.

        Dense parts carry their ``Z``; sparse parts (``z=None``) get a
        core solver from the incremental tracker — one low-rank update
        when the probe is near the tracker's base, so gradients at
        accepted steps reuse the line search's factorization work.
        """
        if z is not None:
            return ChainState.from_parts(p, pi, z)
        _, solver = self._get_tracker().acquire(p, pi)
        return ChainState.from_parts(
            p, pi, linalg="sparse", solver=solver
        )

    def state(self, matrix: np.ndarray) -> ChainState:
        """Build the :class:`ChainState` for ``matrix``."""
        return self.build_state(matrix)

    def __getstate__(self):
        """Drop the tracker for pickling: ``splu`` objects don't travel.

        Worker processes (the process execution backend) rebuild their
        own tracker lazily on first sparse state build.  When a
        :func:`repro.exec.shm.transport_session` is active (the shm
        transport), the large matrices held directly by the cost — the
        travel-time copy and the dense pass-by/support arrays — are
        additionally swapped for shared-memory handles; plain pickling
        is unchanged.
        """
        state = self.__dict__.copy()
        state["_tracker"] = None
        state["_stationary_template"] = None  # cheap lazy rebuild
        from repro.exec.shm import active_session, share_array

        if active_session() is not None:
            for key in ("_travel", "_passby", "_support"):
                if key in state:
                    state[key] = share_array(state[key])
        return state

    def __setstate__(self, state):
        from repro.exec.shm import resolve_shared

        self.__dict__.update(
            {key: resolve_shared(value) for key, value in state.items()}
        )

    # ------------------------------------------------------------------ #
    # Values
    # ------------------------------------------------------------------ #

    def value(self, matrix_or_state) -> float:
        """The penalized cost ``U_eps`` (Eq. 9) plus any plugin terms."""
        state = self._as_state(matrix_or_state)
        return self._sum.value(state)

    def evaluate(self, matrix_or_state) -> CostBreakdown:
        """Full decomposition of the cost at a matrix."""
        state = self._as_state(matrix_or_state)
        coverage_value = self._coverage.value(state)
        exposure_value = self._exposure.value(state)
        penalty_value = self._penalty.value(state)
        energy_value = self._energy.value(state) if self._energy else 0.0
        entropy_value = self._entropy.value(state) if self._entropy else 0.0
        extra_values = tuple(
            (name, float(term.value(state)))
            for (name, _, _), term in zip(self.extra_terms, self._extra)
        )
        u = coverage_value + exposure_value + energy_value + entropy_value
        for _, extra in extra_values:
            u = u + extra
        exposures = self._exposure.exposures(state)
        deviations = self._coverage.deviations(state)
        return CostBreakdown(
            u=float(u),
            u_eps=float(u + penalty_value),
            coverage_value=float(coverage_value),
            exposure_value=float(exposure_value),
            penalty_value=float(penalty_value),
            energy_value=float(energy_value),
            entropy_value=float(entropy_value),
            delta_c=float(np.sum(deviations**2)),
            e_bar=float(np.sqrt(np.sum(exposures**2))),
            coverage_shares=self.coverage_shares(state),
            exposure_times=exposures,
            extra_values=extra_values,
        )

    # ------------------------------------------------------------------ #
    # Gradients
    # ------------------------------------------------------------------ #

    def gradient(self, matrix_or_state) -> np.ndarray:
        """The total derivative ``[D_P U_eps]`` (Eq. 10)."""
        state = self._as_state(matrix_or_state)
        return total_derivative(state, self.terms)

    def projected_gradient(self, matrix_or_state) -> np.ndarray:
        """``Pi [D_P U_eps]`` (Eq. 11), support-restricted when masked."""
        state = self._as_state(matrix_or_state)
        return projected_gradient(state, self.terms, self._support)

    def descent_direction(self, matrix_or_state) -> np.ndarray:
        """``V = -Pi [D_P U_eps]`` — step 3 of the computational algorithm."""
        return -self.projected_gradient(matrix_or_state)

    # ------------------------------------------------------------------ #
    # Paper metrics (Section VI)
    # ------------------------------------------------------------------ #

    def coverage_shares(self, matrix_or_state) -> np.ndarray:
        """Long-run coverage shares ``C-bar_i`` (Eq. 2)."""
        state = self._as_state(matrix_or_state)
        weighted = state.pi[:, None] * state.p
        total = float(np.sum(weighted * self._travel))
        if self._passby is None:
            # Compact entry-list contraction (support topologies).
            term = self._coverage
            covered = np.bincount(
                term._i,
                weights=weighted[term._j, term._k] * term._t_val,
                minlength=self.size,
            )
        else:
            covered = np.einsum("jk,jki->i", weighted, self._passby)
        return covered / total

    def exposure_times(self, matrix_or_state) -> np.ndarray:
        """Per-PoI average exposure times ``E-bar_i`` (Eq. 3)."""
        state = self._as_state(matrix_or_state)
        return self._exposure.exposures(state)

    def delta_c(self, matrix_or_state) -> float:
        """Coverage-time deviation ``Delta C`` (Eq. 12)."""
        state = self._as_state(matrix_or_state)
        return float(np.sum(self._coverage.deviations(state) ** 2))

    def e_bar(self, matrix_or_state) -> float:
        """Aggregate exposure ``E-bar = sqrt(sum_i E-bar_i^2)`` (Eq. 13)."""
        state = self._as_state(matrix_or_state)
        exposures = self._exposure.exposures(state)
        return float(np.sqrt(np.sum(exposures**2)))

    # ------------------------------------------------------------------ #
    # Batched evaluation (line-search hot path)
    # ------------------------------------------------------------------ #

    def batch_values(self, stack: np.ndarray) -> np.ndarray:
        """``U_eps`` for a stack of matrices, shape ``(k, M, M) -> (k,)``.

        One vectorized pass using numpy's stacked linear algebra; the
        line search evaluates all its probes in a single call, which is
        several times faster than ``k`` scalar evaluations.  Matrices
        yielding non-ergodic/singular systems map to ``+inf`` rather than
        raising — an infeasible probe is merely unattractive.

        Only the terms of the paper's ``U_eps`` (coverage, exposure,
        barrier) plus any enabled extension terms are included, identical
        to :meth:`value`; the two paths are cross-checked by tests.
        """
        return self.batch_evaluate(stack)[0]

    def batch_evaluate(self, stack: np.ndarray):
        """Batched evaluation that also returns the derived matrices.

        Returns ``(values, pis, zs, ok)``: the ``U_eps`` values of
        :meth:`batch_values` plus the per-matrix stationary
        distributions, fundamental matrices, and the feasibility mask.
        ``pis[i]``/``zs[i]`` are only meaningful where ``ok[i]`` — the
        line search uses them to hand its winning probe's state back to
        the optimizer without refactorizing (see :class:`RayBatch`).

        On the sparse path ``zs`` is ``None``: no fundamental matrix is
        ever materialized — stationary distributions come from per-probe
        sparse factorizations and the exposure term uses its closed
        form, so a whole line-search stage costs ``O(k (nnz + M^2))``
        instead of ``O(k M^3)``.
        """
        stack = np.asarray(stack, dtype=float)
        if stack.ndim != 3 or stack.shape[1:] != (self.size, self.size):
            raise ValueError(
                f"stack must have shape (k, {self.size}, {self.size}), "
                f"got {stack.shape}"
            )
        k, size = stack.shape[0], self.size
        values = np.full(k, np.inf)
        if k == 0:
            empty = np.zeros((0, size))
            zs = None if self.resolved_linalg == "sparse" \
                else np.zeros((0, size, size))
            return values, empty, zs, np.zeros(0, dtype=bool)
        perf.count("batch_calls")
        perf.count("batch_matrices", k)
        if self.resolved_linalg == "sparse":
            return self._batch_evaluate_sparse(stack, values)
        eye = np.eye(size)

        with np.errstate(all="ignore"):
            # Stationary distributions: solve (I - P^T | ones) pi = e_n.
            systems = eye[None, :, :] - np.transpose(stack, (0, 2, 1))
            systems[:, -1, :] = 1.0
            rhs = np.zeros(size)
            rhs[-1] = 1.0
            rhs_stack = np.broadcast_to(rhs[:, None], (k, size, 1))
            try:
                pis = np.linalg.solve(systems, rhs_stack)[..., 0]
            except np.linalg.LinAlgError:
                pis = _solve_one_by_one(systems, rhs)
            # Sanitize exactly as the scalar solver does (clip round-off
            # negatives, renormalize): the cores below must match the
            # scalar path's bit for bit, or a state handed back by the
            # line search would not equal the one a scratch rebuild
            # produces and reuse would perturb trajectories.
            pis = np.clip(pis, 0.0, None)
            sums = pis.sum(axis=1, keepdims=True)
            safe_sums = np.where(sums > 0.0, sums, 1.0)
            pis = pis / safe_sums
            # Fundamental matrices Z = inv(I - P + W).
            cores = eye[None, :, :] - stack + pis[:, None, :]
            try:
                zs = np.linalg.inv(cores)
            except np.linalg.LinAlgError:
                zs = _invert_one_by_one(cores)

            ok = (
                np.isfinite(pis).all(axis=1)
                & (pis > 0.0).all(axis=1)
                & np.isfinite(zs).all(axis=(1, 2))
            )
            diag = np.einsum("kii->ki", stack)
            ok &= (diag < 1.0 - 1e-13).all(axis=1)
            # The box is [0, 1] on both sides: an off-diagonal entry above
            # 1 must be masked here, not left for the barrier to take the
            # log of a negative number.
            ok &= (stack >= 0.0).all(axis=(1, 2))
            ok &= (stack <= 1.0).all(axis=(1, 2))
            if self._support is not None:
                ok &= (stack[:, ~self._support] == 0.0).all(axis=1)
            if not ok.any():
                return values, pis, zs, ok

            # Coverage deviation term.
            if self._passby is None:
                coverage = self._coverage.batch_deviation_values(
                    pis, stack
                )
            else:
                weighted = pis[:, :, None] * stack
                c = np.einsum(
                    "kjl,ijl->ki", weighted, self._coverage._b
                )
                coverage = 0.5 * np.einsum(
                    "i,ki,ki->k", self._coverage.alpha, c, c
                )

            # Exposure term.
            z_diag = np.einsum("kii->ki", zs)
            diffs = z_diag[:, None, :] - zs  # (k, j, i): z_ii - z_ji
            w = stack * np.transpose(diffs, (0, 2, 1))
            w[:, np.arange(size), np.arange(size)] = 0.0
            n = w.sum(axis=2)
            e = n / (pis * (1.0 - diag))
            exposure = 0.5 * np.einsum("i,ki,ki->k", self._exposure.beta,
                                       e, e)

            total = coverage + exposure + self._batch_penalties(stack, ok)
            total = self._batch_extensions(pis, stack, total)
            total = self._batch_extra(pis, stack, diag, e, total)

        values[ok] = total[ok]
        values[~np.isfinite(values)] = np.inf
        return values, pis, zs, ok

    def _batch_penalties(
        self, stack: np.ndarray, ok: np.ndarray, entries=None
    ):
        """Per-probe barrier values, restricted to supported entries.

        ``entries`` may carry pre-gathered ``stack[:, support]`` values
        from a caller that already paid for the gather.
        """
        eps = self.weights.epsilon
        penalty = np.zeros(stack.shape[0])
        if self._support is not None:
            if entries is None:
                entries = stack[:, self._support]  # (k, #supported)
            in_band = (entries <= eps) | (entries >= 1.0 - eps)
            rows_with_band = in_band.any(axis=1) & ok
            for index in np.nonzero(rows_with_band)[0]:
                penalty[index] = float(
                    self._penalty.elementwise_value(
                        entries[index]
                    ).sum()
                )
            return penalty
        in_band = (stack <= eps) | (stack >= 1.0 - eps)
        # Only feasible rows reach the penalty (infeasible ones are
        # already +inf, and entries outside [0, 1] would make
        # ``elementwise_value`` raise).
        rows_with_band = in_band.any(axis=(1, 2)) & ok
        for index in np.nonzero(rows_with_band)[0]:
            penalty[index] = float(
                self._penalty.elementwise_value(stack[index]).sum()
            )
        return penalty

    def _batch_extensions(
        self, pis: np.ndarray, stack: np.ndarray, total: np.ndarray
    ):
        """Add the energy + entropy extension terms onto ``total``.

        Takes and returns the running total (rather than a standalone
        extension sum) so the accumulation order — and therefore the
        bit pattern of dense-path values — matches the historical
        inline code exactly.
        """
        if self._energy is not None:
            travel = np.einsum(
                "ki,kij,ij->k", pis, stack, self._energy.distances
            )
            gap = travel - self._energy.target
            total = total + 0.5 * self._energy.weight * gap * gap
        if self._entropy is not None:
            plogp = np.where(
                stack > 0.0, stack * np.log(stack), 0.0
            ).sum(axis=2)
            total = total - self._entropy.weight * (
                -np.einsum("ki,ki->k", pis, plogp)
            )
        return total

    def _batch_extra(
        self,
        pis: np.ndarray,
        stack: np.ndarray,
        diag: np.ndarray,
        exposures: np.ndarray,
        total: np.ndarray,
    ):
        """Add the plugin terms' batched values onto ``total``.

        Appended after the extension terms in both the dense and sparse
        branches, mirroring the scalar composition order; with no
        plugin terms composed, ``total`` passes through untouched, so
        the paper objective's bit pattern is unaffected.
        """
        if not self._extra:
            return total
        batch = TermBatch(
            pis=pis, stack=stack, diag=diag, exposures=exposures
        )
        for term in self._extra:
            total = total + term.batch_value(batch)
        return total

    def _batch_evaluate_sparse(self, stack: np.ndarray, values: np.ndarray):
        """Sparse-path batch evaluation: per-probe sparse stationary
        solves, closed-form exposure, no ``Z`` anywhere.

        Returns ``(values, pis, None, ok)``.
        """
        k, size = stack.shape[0], self.size
        pis = np.full((k, size), np.nan)
        diag = np.einsum("kii->ki", stack)
        sup_vals = None
        if self._support is not None:
            # Check only the gathered support entries for the [0, 1] box
            # (off-support entries must be exactly zero, which the
            # nonzero-count comparison enforces in one full pass) —
            # full-stack boolean scans are the batch path's memory
            # bottleneck at large M.
            sup_vals = stack[:, self._support]  # (k, #supported)
            feasible = (
                (sup_vals >= 0.0).all(axis=1)
                & (sup_vals <= 1.0).all(axis=1)
                & (diag < 1.0 - 1e-13).all(axis=1)
                & (
                    np.count_nonzero(stack.reshape(k, -1), axis=1)
                    == np.count_nonzero(sup_vals, axis=1)
                )
            )
        else:
            feasible = (
                (stack >= 0.0).all(axis=(1, 2))
                & (stack <= 1.0).all(axis=(1, 2))
                & (diag < 1.0 - 1e-13).all(axis=1)
            )
        ok = np.zeros(k, dtype=bool)
        template = self._get_stationary_template()
        if template is None:
            solved = {}
            for index in np.nonzero(feasible)[0]:
                try:
                    solved[index] = sparse_stationary(stack[index])
                except (ValueError, RuntimeError):
                    continue  # singular / non-ergodic probe: stays +inf
        else:
            solved = template.solve_batch(stack, np.nonzero(feasible)[0])
        for index, pi in solved.items():
            if np.all(np.isfinite(pi)) and pi.min() > 0.0:
                pis[index] = pi
                ok[index] = True
        if not ok.any():
            return values, pis, None, ok
        with np.errstate(all="ignore"):
            if self._passby is None:
                coverage = self._coverage.batch_deviation_values(
                    pis, stack
                )
            else:
                weighted = pis[:, :, None] * stack
                c = np.einsum(
                    "kjl,ijl->ki", weighted, self._coverage._b
                )
                coverage = 0.5 * np.einsum(
                    "i,ki,ki->k", self._coverage.alpha, c, c
                )
            # Exposure via the closed form E_i = (1-pi_i)/(pi_i(1-p_ii)).
            e = (1.0 - pis) / (pis * (1.0 - diag))
            exposure = 0.5 * np.einsum(
                "i,ki,ki->k", self._exposure.beta, e, e
            )
            total = coverage + exposure + self._batch_penalties(
                stack, ok, entries=sup_vals
            )
            total = self._batch_extensions(pis, stack, total)
            total = self._batch_extra(pis, stack, diag, e, total)
        values[ok] = total[ok]
        values[~np.isfinite(values)] = np.inf
        return values, pis, None, ok

    def ray_batch(self, matrix: np.ndarray, direction: np.ndarray):
        """Return the batched ray objective ``steps -> U_eps`` values.

        The returned :class:`RayBatch` evaluates
        ``U_eps(matrix + step * direction)`` for a whole array of steps at
        once via :meth:`batch_values` — the line search's fast path — and
        remembers the winning probe's ``(pi, Z)`` so the optimizer can
        accept that candidate without refactorizing
        (:meth:`RayBatch.state_at`).
        """
        return RayBatch(self, matrix, direction)

    def multi_ray_batch(self, pairs) -> "MultiRayBatch":
        """Fused evaluator over several ``(matrix, direction)`` rays.

        The returned :class:`MultiRayBatch` stacks all participating
        rays' probes into one :meth:`batch_evaluate` call per
        line-search stage and keeps per-ray winners — the lockstep
        multi-start driver's hot path (see :mod:`repro.core.lockstep`).
        """
        return MultiRayBatch.from_directions(self, pairs)

    # ------------------------------------------------------------------ #

    def _as_state(self, matrix_or_state) -> ChainState:
        if isinstance(matrix_or_state, ChainState):
            return matrix_or_state
        return self.build_state(np.asarray(matrix_or_state, float))


class RayBatch:
    """Batched ray objective that remembers the winning probe's state.

    Callable as ``steps -> U_eps values`` (the line search's
    ``batch_objective``).  While evaluating, it tracks the first
    strictly-best feasible probe in evaluation order — the same rule the
    conservative trisection uses to pick its step — and keeps that
    probe's ``(P, pi, Z)``.  After the search, :meth:`state_at` hands the
    accepted candidate's :class:`~repro.core.state.ChainState` back
    without any new factorization; the historical behavior rebuilt it
    from scratch, paying a redundant stationary solve plus fundamental
    factorization per accepted step.
    """

    def __init__(
        self,
        cost: CoverageCost,
        matrix: np.ndarray,
        direction: np.ndarray,
    ) -> None:
        self._cost = cost
        self._matrix = np.asarray(matrix, dtype=float)
        self._direction = np.asarray(direction, dtype=float)
        self._best_step: Optional[float] = None
        self._best_value = np.inf
        self._best_parts = None

    def _stack(self, steps: np.ndarray) -> np.ndarray:
        return (
            self._matrix[None, :, :]
            + steps[:, None, None] * self._direction
        )

    def __call__(self, steps: np.ndarray) -> np.ndarray:
        steps = np.asarray(steps, dtype=float)
        stack = self._stack(steps)
        values, pis, zs, ok = self._cost.batch_evaluate(stack)
        return self._observe(steps, stack, values, pis, zs, ok)

    def _observe(self, steps, stack, values, pis, zs, ok) -> np.ndarray:
        """Track the first strictly-best feasible probe of one batch.

        Shared by the single-ray path (``__call__``) and the fused
        multi-ray path (:class:`MultiRayBatch`), which hands in each
        ray's slice of one stacked evaluation — so the winner a ray
        records is independent of how its probes were batched.
        """
        usable = ok & np.isfinite(values)
        if usable.any():
            masked = np.where(usable, values, np.inf)
            index = int(np.argmin(masked))
            if masked[index] < self._best_value:
                self._best_step = float(steps[index])
                self._best_value = float(masked[index])
                self._best_parts = (
                    stack[index],
                    pis[index],
                    None if zs is None else zs[index],
                )
        return values

    def state_at(self, step: float):
        """The recorded winner's state, or ``None`` on any mismatch.

        Returns a state only when ``step`` is exactly the recorded best
        probe, so a caller falling back to
        :meth:`ChainState.from_matrix` on ``None`` is always correct.
        """
        if self._best_parts is None or self._best_step != float(step):
            return None
        p, pi, z = self._best_parts
        return self._cost.state_from_parts(p, pi, z)

    def probe_state(self, step: float):
        """Evaluate one extra step; return ``(value, state_or_None)``.

        The perturbed algorithm's random fallback step goes through this
        batched path, so even annealing moves get their state without a
        scalar rebuild.  Does not disturb the winner tracked by
        :meth:`state_at`.
        """
        steps = np.asarray([float(step)])
        stack = self._stack(steps)
        values, pis, zs, ok = self._cost.batch_evaluate(stack)
        if not ok[0] or not np.isfinite(values[0]):
            return float(values[0]), None
        state = self._cost.state_from_parts(
            stack[0], pis[0], None if zs is None else zs[0]
        )
        return float(values[0]), state


class MultiRayBatch:
    """Lockstep evaluation of several rays through one stacked call.

    Each ray is a :class:`RayBatch` with its own base matrix, direction,
    and winner tracking.  :meth:`evaluate` concatenates every
    participating ray's probe matrices into a single ``(k, M, M)`` stack,
    runs one :meth:`CoverageCost.batch_evaluate`, and demultiplexes the
    per-ray slices back through each ray's ``_observe`` — the exact
    first-strictly-best rule the single-ray path applies.  Because
    ``batch_evaluate`` treats every stack member independently, the
    values (and therefore each ray's recorded winner) are bit-identical
    to evaluating the rays one at a time; only the Python-level and
    LAPACK dispatch overhead is amortized across rays.

    Used by :mod:`repro.core.lockstep` to fuse the line searches of all
    active multi-start trajectories at each descent iteration.
    """

    def __init__(self, cost: CoverageCost, rays) -> None:
        self._cost = cost
        self.rays: List[RayBatch] = list(rays)

    @classmethod
    def from_directions(cls, cost: CoverageCost, pairs):
        """Build from ``(matrix, direction)`` pairs."""
        return cls(cost, [RayBatch(cost, m, d) for m, d in pairs])

    def __len__(self) -> int:
        return len(self.rays)

    def _fused(self, steps_per_ray):
        """Concatenate participating rays' stacks; yield slice metadata.

        ``steps_per_ray`` aligns with :attr:`rays`; ``None`` entries sit
        out this stage.  Returns ``(parts, fused_results)`` where
        ``parts`` is a list of ``(index, steps, lo, hi)`` slice bounds.
        """
        parts = []
        chunks = []
        offset = 0
        for index, steps in enumerate(steps_per_ray):
            if steps is None:
                continue
            steps = np.asarray(steps, dtype=float)
            chunk = self.rays[index]._stack(steps)
            parts.append((index, steps, offset, offset + steps.size))
            chunks.append(chunk)
            offset += steps.size
        if not chunks:
            return parts, None, None
        fused = np.concatenate(chunks, axis=0)
        return parts, self._cost.batch_evaluate(fused), fused

    def evaluate(self, steps_per_ray) -> List[Optional[np.ndarray]]:
        """One fused line-search stage across the rays.

        ``steps_per_ray[i]`` is the step array ray ``i`` evaluates this
        stage, or ``None`` for a ray sitting the stage out.  Returns the
        per-ray ``U_eps`` arrays (``None`` where the input was ``None``),
        with each ray's winner tracking updated exactly as if it had
        evaluated its steps alone.
        """
        out: List[Optional[np.ndarray]] = [None] * len(self.rays)
        fused = self._fused(steps_per_ray)
        if fused[1] is None:
            return out
        parts, (values, pis, zs, ok), stack = fused
        for index, steps, lo, hi in parts:
            out[index] = self.rays[index]._observe(
                steps, stack[lo:hi], values[lo:hi],
                pis[lo:hi], None if zs is None else zs[lo:hi],
                ok[lo:hi],
            )
        return out

    def probe_states(self, step_per_ray) -> List[Optional[tuple]]:
        """Fused :meth:`RayBatch.probe_state` across the rays.

        ``step_per_ray[i]`` is a single extra step for ray ``i`` or
        ``None``.  Returns ``(value, state_or_None)`` per probed ray
        without disturbing any ray's recorded winner — the lockstep
        driver evaluates all trajectories' random fallback steps in one
        stacked call this way.
        """
        out: List[Optional[tuple]] = [None] * len(self.rays)
        steps_per_ray = [
            None if step is None else np.asarray([float(step)])
            for step in step_per_ray
        ]
        fused = self._fused(steps_per_ray)
        if fused[1] is None:
            return out
        parts, (values, pis, zs, ok), stack = fused
        for index, _, lo, _ in parts:
            if not ok[lo] or not np.isfinite(values[lo]):
                out[index] = (float(values[lo]), None)
            else:
                state = self._cost.state_from_parts(
                    stack[lo], pis[lo], None if zs is None else zs[lo]
                )
                out[index] = (float(values[lo]), state)
        return out


def _solve_one_by_one(systems: np.ndarray, rhs: np.ndarray) -> np.ndarray:
    """Per-item fallback when a batched solve hits one singular system."""
    k, size = systems.shape[0], systems.shape[1]
    out = np.full((k, size), np.nan)
    for index in range(k):
        try:
            out[index] = np.linalg.solve(systems[index], rhs)
        except np.linalg.LinAlgError:
            pass
    return out


def _invert_one_by_one(cores: np.ndarray) -> np.ndarray:
    """Per-item fallback when a batched inversion hits a singular core."""
    k = cores.shape[0]
    out = np.full_like(cores, np.nan)
    for index in range(k):
        try:
            out[index] = np.linalg.inv(cores[index])
        except np.linalg.LinAlgError:
            pass
    return out
