"""``repro.optimize`` — the scipy-minimize-style front door.

Every optimizer variant keeps its direct entry point
(:func:`~repro.core.descent.optimize_basic`,
:func:`~repro.core.adaptive.optimize_adaptive`, ...), but callers who
select the algorithm at runtime — the CLI, the experiment harness,
parameter sweeps — go through one façade::

    result = repro.optimize(cost, method="perturbed", seed=0,
                            options={"max_iterations": 300})

``method`` picks an entry from :data:`OPTIMIZER_REGISTRY`;
``options`` may be the method's options dataclass or a plain dict
(coerced through :func:`repro.core.options.coerce_options`, which
rejects unknown keys by name).  The façade only routes — it adds no
logic of its own, so ``optimize(cost, method=m, ...)`` is bit-identical
to calling the method's function directly with the same arguments
(tested in ``tests/core/test_api.py``).

The registry is a plain dict so downstream code can introspect or extend
it: each :class:`OptimizerSpec` records which of the common keywords
(``initial``, ``seed``, ``execution``) the variant understands, and the
façade raises a clear :class:`ValueError` when a caller passes one the
method cannot honor rather than silently dropping it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple, Type

import numpy as np

from repro.core.adaptive import AdaptiveOptions, optimize_adaptive
from repro.core.cost import CoverageCost
from repro.core.descent import BasicDescentOptions, optimize_basic
from repro.core.mirror import MirrorOptions, optimize_mirror
from repro.core.multistart import optimize_multistart
from repro.core.options import OptimizerOptions, coerce_options
from repro.core.perturbed import PerturbedOptions, optimize_perturbed


@dataclass(frozen=True)
class OptimizerSpec:
    """Registry entry: a variant's entry point and calling contract.

    ``accepts_*`` flags describe which common façade keywords the
    variant's function understands; ``extra_keywords`` are
    method-specific keywords the façade forwards verbatim (e.g. the
    multi-start's ``random_starts``).  ``summary`` is the one-line help
    text the CLI shows.
    """

    name: str
    func: Callable
    options_class: Type[OptimizerOptions]
    accepts_initial: bool = True
    accepts_seed: bool = True
    accepts_execution: bool = False
    extra_keywords: Tuple[str, ...] = ()
    summary: str = ""


#: Method name -> spec.  Iteration order is the documentation order.
OPTIMIZER_REGISTRY: Dict[str, OptimizerSpec] = {
    "basic": OptimizerSpec(
        name="basic",
        func=optimize_basic,
        options_class=BasicDescentOptions,
        accepts_seed=False,
        summary="V1: fixed-step projected steepest descent",
    ),
    "adaptive": OptimizerSpec(
        name="adaptive",
        func=optimize_adaptive,
        options_class=AdaptiveOptions,
        summary="V2+V3: random start with exact trisection line search",
    ),
    "mirror": OptimizerSpec(
        name="mirror",
        func=optimize_mirror,
        options_class=MirrorOptions,
        summary="A5 ablation: mirror descent in softmax coordinates",
    ),
    "perturbed": OptimizerSpec(
        name="perturbed",
        func=optimize_perturbed,
        options_class=PerturbedOptions,
        summary="V4: noisy gradient with annealed acceptance (the paper's"
        " headline algorithm)",
    ),
    "multistart": OptimizerSpec(
        name="multistart",
        func=optimize_multistart,
        options_class=PerturbedOptions,
        accepts_initial=False,
        accepts_execution=True,
        extra_keywords=(
            "random_starts", "delta_grid", "optimizer", "executor",
            "transport",
        ),
        summary="portfolio of starts, best run kept; supports serial, "
        "executor, and lockstep execution",
    ),
}


def optimize(
    cost: CoverageCost,
    method: str = "perturbed",
    initial: Optional[np.ndarray] = None,
    seed=None,
    options=None,
    execution=None,
    linalg: Optional[str] = None,
    terms=None,
    **kwargs,
):
    """Run the optimizer variant named ``method`` on ``cost``.

    Parameters
    ----------
    cost:
        The :class:`~repro.core.cost.CoverageCost` to minimize.
    method:
        A key of :data:`OPTIMIZER_REGISTRY` (``"basic"``,
        ``"adaptive"``, ``"mirror"``, ``"perturbed"``, or
        ``"multistart"``).
    initial:
        Starting transition matrix, for methods that take one (all but
        ``"multistart"``, which draws its own portfolio).
    seed:
        RNG seed / generator, for methods that use randomness.
    options:
        The method's options dataclass, or a plain mapping coerced into
        it (unknown keys raise :class:`ValueError` naming them), or
        ``None`` for the method's defaults.
    execution:
        ``"multistart"`` only: ``"serial"``, ``"lockstep"``, a
        :mod:`repro.exec` backend name, or an
        :class:`~repro.exec.executor.Executor` instance.  The
        method-specific ``transport`` keyword
        (``"pickle"``/``"shm"``/``"auto"``) selects the process
        backend's payload transport for executor-backed runs (see
        :mod:`repro.exec.shm`); results are bit-identical across
        transports.
    linalg:
        ``"dense"``, ``"sparse"``, or ``"auto"`` — override the cost's
        linear-algebra backend for this run via
        :meth:`CoverageCost.with_linalg`.  ``None`` (default) keeps the
        cost's own setting.
    terms:
        Plugin cost terms to compose for this run via
        :meth:`CoverageCost.with_extra_terms` — anything
        :func:`~repro.core.registry.normalize_extra_terms` accepts: a
        ``{name: weight}`` mapping or a sequence of names /
        ``(name, weight)`` / ``(name, weight, params)`` entries naming
        :data:`~repro.core.registry.TERM_REGISTRY` members (see
        ``docs/objectives.md``).  ``None`` (default) keeps the cost's
        own composition.
    **kwargs:
        Method-specific keywords (e.g. ``random_starts`` for
        ``"multistart"``); anything the method does not declare raises
        :class:`ValueError`.

    Returns the method's native result
    (:class:`~repro.core.result.OptimizationResult`, or
    :class:`~repro.core.multistart.MultiStartResult` for
    ``"multistart"``), bit-identical to calling the method's function
    directly.
    """
    if linalg is not None:
        cost = cost.with_linalg(linalg)
    if terms is not None:
        cost = cost.with_extra_terms(terms)
    try:
        spec = OPTIMIZER_REGISTRY[method]
    except KeyError:
        known = ", ".join(sorted(OPTIMIZER_REGISTRY))
        raise ValueError(
            f"unknown method {method!r}; available methods: {known}"
        ) from None

    call_kwargs = {}
    coerced = coerce_options(spec.options_class, options, method=method)
    if coerced is not None:
        call_kwargs["options"] = coerced
    if initial is not None:
        if not spec.accepts_initial:
            raise ValueError(
                f"method {method!r} does not accept initial= "
                "(it draws its own start portfolio)"
            )
        call_kwargs["initial"] = initial
    if seed is not None:
        if not spec.accepts_seed:
            raise ValueError(
                f"method {method!r} is deterministic and does not "
                "accept seed="
            )
        call_kwargs["seed"] = seed
    if execution is not None:
        if not spec.accepts_execution:
            raise ValueError(
                f"method {method!r} does not accept execution= "
                "(only 'multistart' does)"
            )
        call_kwargs["execution"] = execution
    unknown = sorted(set(kwargs) - set(spec.extra_keywords))
    if unknown:
        valid = ", ".join(spec.extra_keywords) or "none"
        raise ValueError(
            f"unknown keyword(s) for method {method!r}: "
            f"{', '.join(unknown)}; method-specific keywords: {valid}"
        )
    call_kwargs.update(kwargs)
    return spec.func(cost, **call_kwargs)
