"""Planar geometry substrate.

Provides the primitives the topology layer needs to turn PoI placements into
travel times and pass-by coverage times: distances, point-to-segment
projections, and segment-disc intersections (the chord of a straight path
that lies inside a PoI's sensing disc).
"""

from repro.geometry.points import (
    Point,
    distance,
    interpolate,
    as_point,
)
from repro.geometry.segments import (
    Segment,
    point_segment_distance,
    project_onto_segment,
)
from repro.geometry.coverage import (
    chord_through_disc,
    coverage_fraction,
    covers_point,
)

__all__ = [
    "Point",
    "distance",
    "interpolate",
    "as_point",
    "Segment",
    "point_segment_distance",
    "project_onto_segment",
    "chord_through_disc",
    "coverage_fraction",
    "covers_point",
]
