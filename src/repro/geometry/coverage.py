"""Coverage geometry: how long a straight path stays within sensing range.

The paper's physical model (Section III) lets the sensor cover a PoI ``i``
whenever the sensor is within sensing range ``r`` of ``i``, including while
*traveling* between two other PoIs.  For a straight-line path this reduces to
intersecting the path segment with the disc of radius ``r`` centered at the
PoI; the length of the resulting chord divided by the travel speed is the
pass-by coverage time ``T_{jk,i}``.
"""

from __future__ import annotations

import math
from typing import Optional, Tuple

from repro.geometry.points import PointLike, as_point, distance
from repro.geometry.segments import (
    Segment,
    line_point_distance,
    point_segment_distance,
    unclamped_projection,
)


def covers_point(sensor: PointLike, target: PointLike, radius: float) -> bool:
    """Whether a sensor at ``sensor`` covers ``target`` with range ``radius``."""
    if radius < 0:
        raise ValueError(f"radius must be >= 0, got {radius}")
    return distance(sensor, target) <= radius


def chord_through_disc(
    segment: Segment, center: PointLike, radius: float
) -> Optional[Tuple[float, float]]:
    """Parameter interval of ``segment`` lying inside the disc, or ``None``.

    Returns ``(t_in, t_out)`` with ``0 <= t_in <= t_out <= 1`` such that the
    sub-segment between those parameters is exactly the part of the segment
    within distance ``radius`` of ``center``.  Returns ``None`` when the
    segment stays outside the disc, or when the intersection is a single
    tangent point (zero coverage time).

    A degenerate (zero-length) segment returns ``(0.0, 1.0)`` if its point
    lies inside the disc: the "path" is the point itself.
    """
    if radius < 0:
        raise ValueError(f"radius must be >= 0, got {radius}")
    center = as_point(center)
    length = segment.length()
    if length <= 1e-12:
        if distance(segment.start, center) <= radius:
            return (0.0, 1.0)
        return None
    if point_segment_distance(center, segment) > radius:
        return None
    # Closest approach of the infinite line, then half-chord length via
    # Pythagoras in the parameter domain of the segment.
    d_line = line_point_distance(center, segment)
    if d_line > radius:
        # The segment's closest point is an endpoint and is outside.
        return None
    t_closest = unclamped_projection(center, segment)
    half_chord = math.sqrt(max(radius * radius - d_line * d_line, 0.0)) / length
    t_in = max(0.0, t_closest - half_chord)
    t_out = min(1.0, t_closest + half_chord)
    if t_out <= t_in:
        return None
    return (t_in, t_out)


def coverage_fraction(
    segment: Segment, center: PointLike, radius: float
) -> float:
    """Fraction of ``segment`` that lies within ``radius`` of ``center``.

    The travel-time a sensor moving at constant speed spends covering the
    PoI is this fraction times the total travel time of the leg.
    """
    chord = chord_through_disc(segment, center, radius)
    if chord is None:
        return 0.0
    return chord[1] - chord[0]


def passes_through(
    segment: Segment,
    center: PointLike,
    radius: float,
    endpoint_margin: float = 1e-9,
) -> bool:
    """Whether the path passes through the disc strictly between endpoints.

    "Passing by" in the paper means the PoI is covered mid-travel even
    though it is neither the origin nor the destination of the transition.
    Endpoint grazes (coverage only at parameter 0 or 1) do not count.
    """
    chord = chord_through_disc(segment, center, radius)
    if chord is None:
        return False
    t_in, t_out = chord
    return t_out > endpoint_margin and t_in < 1.0 - endpoint_margin
