"""Line segments and point-segment projections."""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.geometry.points import Point, PointLike, as_point, distance


@dataclass(frozen=True)
class Segment:
    """A directed straight-line segment from ``start`` to ``end``."""

    start: Point
    end: Point

    def length(self) -> float:
        """Euclidean length of the segment."""
        return distance(self.start, self.end)

    def is_degenerate(self, atol: float = 1e-12) -> bool:
        """Whether start and end coincide (a zero-length segment)."""
        return self.length() <= atol

    def point_at(self, fraction: float) -> Point:
        """Point at parameter ``fraction`` in ``[0, 1]`` along the segment."""
        return Point(
            self.start.x + (self.end.x - self.start.x) * fraction,
            self.start.y + (self.end.y - self.start.y) * fraction,
        )


def make_segment(start: PointLike, end: PointLike) -> Segment:
    """Build a :class:`Segment` from point-like endpoints."""
    return Segment(as_point(start), as_point(end))


def project_onto_segment(point: PointLike, segment: Segment) -> float:
    """Parameter ``t`` in ``[0, 1]`` of the closest segment point to ``point``.

    ``t = 0`` corresponds to ``segment.start`` and ``t = 1`` to
    ``segment.end``.  A degenerate segment projects everything to ``t = 0``.
    """
    p = as_point(point)
    direction = segment.end - segment.start
    denom = direction.dot(direction)
    if denom <= 0.0:
        return 0.0
    t = (p - segment.start).dot(direction) / denom
    return min(1.0, max(0.0, t))


def point_segment_distance(point: PointLike, segment: Segment) -> float:
    """Shortest Euclidean distance from ``point`` to ``segment``."""
    t = project_onto_segment(point, segment)
    closest = segment.point_at(t)
    return distance(point, closest)


def unclamped_projection(point: PointLike, segment: Segment) -> float:
    """Signed projection parameter of ``point`` on the segment's line.

    Unlike :func:`project_onto_segment` the value is not clamped to
    ``[0, 1]``; it is the parameter on the infinite line through the segment,
    needed by the chord computation in :mod:`repro.geometry.coverage`.
    Raises on a degenerate segment, because its line is undefined.
    """
    p = as_point(point)
    direction = segment.end - segment.start
    denom = direction.dot(direction)
    if denom <= 0.0:
        raise ValueError("projection line undefined for degenerate segment")
    return (p - segment.start).dot(direction) / denom


def line_point_distance(point: PointLike, segment: Segment) -> float:
    """Distance from ``point`` to the infinite line through ``segment``."""
    p = as_point(point)
    direction = segment.end - segment.start
    length = direction.norm()
    if length <= 0.0:
        raise ValueError("line undefined for degenerate segment")
    cross = (
        direction.x * (p.y - segment.start.y)
        - direction.y * (p.x - segment.start.x)
    )
    return abs(cross) / length


def segments_almost_equal(a: Segment, b: Segment, atol: float = 1e-9) -> bool:
    """Whether two segments share endpoints within ``atol`` (same direction)."""
    return (
        math.isclose(a.start.x, b.start.x, abs_tol=atol)
        and math.isclose(a.start.y, b.start.y, abs_tol=atol)
        and math.isclose(a.end.x, b.end.x, abs_tol=atol)
        and math.isclose(a.end.y, b.end.y, abs_tol=atol)
    )
