"""Immutable 2-D points and elementary vector operations."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Tuple, Union


@dataclass(frozen=True)
class Point:
    """A point in the plane, in meters."""

    x: float
    y: float

    def __post_init__(self) -> None:
        if not (math.isfinite(self.x) and math.isfinite(self.y)):
            raise ValueError(f"coordinates must be finite, got {self}")

    def __add__(self, other: "Point") -> "Point":
        return Point(self.x + other.x, self.y + other.y)

    def __sub__(self, other: "Point") -> "Point":
        return Point(self.x - other.x, self.y - other.y)

    def __mul__(self, scalar: float) -> "Point":
        return Point(self.x * scalar, self.y * scalar)

    __rmul__ = __mul__

    def dot(self, other: "Point") -> float:
        """Inner product with ``other`` viewed as a vector."""
        return self.x * other.x + self.y * other.y

    def norm(self) -> float:
        """Euclidean length of ``self`` viewed as a vector."""
        return math.hypot(self.x, self.y)

    def as_tuple(self) -> Tuple[float, float]:
        """Return ``(x, y)``."""
        return (self.x, self.y)


PointLike = Union[Point, Tuple[float, float], Iterable[float]]


def as_point(value: PointLike) -> Point:
    """Coerce a ``Point`` or coordinate pair into a :class:`Point`."""
    if isinstance(value, Point):
        return value
    coords = tuple(float(c) for c in value)
    if len(coords) != 2:
        raise ValueError(f"expected 2 coordinates, got {len(coords)}")
    return Point(coords[0], coords[1])


def distance(a: PointLike, b: PointLike) -> float:
    """Euclidean distance between two points."""
    pa, pb = as_point(a), as_point(b)
    return math.hypot(pa.x - pb.x, pa.y - pb.y)


def interpolate(a: PointLike, b: PointLike, fraction: float) -> Point:
    """Point at ``fraction`` of the way from ``a`` to ``b``.

    ``fraction`` is not clamped: values outside ``[0, 1]`` extrapolate along
    the line, which is occasionally useful in tests.
    """
    pa, pb = as_point(a), as_point(b)
    return Point(
        pa.x + (pb.x - pa.x) * fraction,
        pa.y + (pb.y - pa.y) * fraction,
    )
