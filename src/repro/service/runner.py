"""The coverage service: async front, executor-backed compute pool.

:class:`CoverageService` is the tentpole's orchestrator.  Submissions
enter through :meth:`~CoverageService.submit` (a coroutine — the front
of the service is a single asyncio event loop); each one is keyed by its
request digest and takes exactly one of three paths:

1. **cache hit** — the content-addressed store already holds a verified
   payload: served immediately, nothing computed;
2. **fan-in join** — another submission with the same digest is already
   computing: this one awaits the leader's future and receives the same
   payload object (the optimizer runs exactly once);
3. **computation** — this submission is the leader: the job runs on the
   compute pool (any :mod:`repro.exec` backend via
   ``asyncio.to_thread`` + :meth:`~repro.exec.executor.Executor.run_one`),
   the payload is stored, and every waiter is resolved.

Around paths 1 and 3 the store entry is **pinned**, so LRU eviction can
never drop a result between its computation and the last waiter's read.

Long ``"perturbed"`` optimizations checkpoint per accepted iteration
(:class:`JobCheckpoint` snapshots the walk's state machines — matrix,
counters, RNG, trisection bookkeeping); a runner killed mid-job resumes
from the snapshot and finishes **bit-identically** to an uninterrupted
run (``tests/service/test_service_runner.py``).

:func:`serve_spool` is the file-based frontend behind ``repro serve``:
request JSON files dropped into a spool directory are executed through a
service and answered with result files.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import os
import pathlib
from typing import Iterable, List, Optional, Sequence, Tuple, Union

from repro.exec.executor import Executor, resolve_executor
from repro.persist import PathLike, pack_service_record
from repro.service.queue import FanInQueue, ServiceStats
from repro.service.requests import (
    JobRequest,
    execute_request,
    request_digest,
    request_from_dict,
    request_to_dict,
)
from repro.service.store import ResultStore

#: Subdirectory of the store root holding in-flight job checkpoints.
CHECKPOINTS_DIR = "checkpoints"


class JobCheckpoint:
    """Atomic snapshot file for one in-flight job.

    :meth:`save` is called once per accepted optimizer iteration with
    the walk's JSON-plain snapshot
    (:meth:`repro.core.perturbed.PerturbedWalk.snapshot`); writes go
    through ``tmp + os.replace`` so a kill mid-write leaves the previous
    snapshot intact.  :meth:`clear` removes the file on completion —
    a checkpoint only ever describes an *unfinished* job.
    """

    def __init__(self, path: PathLike) -> None:
        self.path = pathlib.Path(path)

    def exists(self) -> bool:
        return self.path.exists()

    def save(self, snapshot: dict) -> None:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        tmp = self.path.with_suffix(".tmp")
        tmp.write_text(json.dumps(snapshot) + "\n")
        os.replace(tmp, self.path)

    def load(self) -> Optional[dict]:
        try:
            return json.loads(self.path.read_text())
        except (OSError, json.JSONDecodeError):
            # Missing file: fresh start.  Torn/corrupt file: the atomic
            # save protocol makes this unreachable for our own writes,
            # but a fresh start is always a *correct* recovery.
            return None

    def clear(self) -> None:
        with contextlib.suppress(OSError):
            self.path.unlink()


def _execute_task(item: Tuple[dict, Optional[str]]) -> dict:
    """Compute-pool task: rebuild the request and execute it.

    Takes the request's executable JSON form rather than the object so
    the task ships cleanly through every :mod:`repro.exec` backend,
    including process workers.
    """
    request_data, checkpoint_path = item
    request = request_from_dict(request_data)
    checkpoint = (
        JobCheckpoint(checkpoint_path)
        if checkpoint_path is not None else None
    )
    return execute_request(request, checkpoint=checkpoint)


class CoverageService:
    """Async job runner over a content-addressed result store.

    Parameters
    ----------
    store:
        The :class:`~repro.service.store.ResultStore` (or a path, from
        which one is built unbounded).
    executor:
        Compute pool: a :mod:`repro.exec` backend name, an
        :class:`~repro.exec.executor.Executor` instance, or ``None``
        for the process-wide default.
    jobs, transport:
        Forwarded to :func:`~repro.exec.executor.resolve_executor` when
        ``executor`` is a backend name.
    checkpoint:
        Whether leaders checkpoint long optimizations per accepted
        iteration (on by default; checkpoints live under the store
        root).
    """

    def __init__(
        self,
        store: Union[ResultStore, PathLike],
        executor: Union[Executor, str, None] = None,
        jobs: Optional[int] = None,
        transport: Optional[str] = None,
        checkpoint: bool = True,
    ) -> None:
        if not isinstance(store, ResultStore):
            store = ResultStore(store)
        self.store = store
        self.executor = resolve_executor(
            executor, jobs=jobs, transport=transport
        )
        self.checkpoint = checkpoint
        self.queue = FanInQueue()
        self.stats = ServiceStats()

    # -------------------------------------------------------------- #
    # Submission — the one entry point
    # -------------------------------------------------------------- #

    async def submit(self, request: JobRequest) -> dict:
        """Resolve ``request`` to its result payload.

        Cache hit, fan-in join, or fresh computation — see the module
        docstring.  The returned payload is exactly what
        :func:`~repro.service.requests.execute_request` produces (and
        what the store verifies), byte-identical whichever path served
        it.
        """
        self.stats.submitted += 1
        digest = request_digest(request)
        future, leader = self.queue.claim(digest)
        if not leader:
            self.stats.fan_in_joins += 1
            return await future
        try:
            with self.store.pinned(digest):
                cached = self.store.get(digest)
                if cached is not None:
                    self.stats.cache_hits += 1
                    self.queue.resolve(digest, cached)
                    return cached
                payload = await asyncio.to_thread(
                    self._compute, request, digest
                )
                self.store.put(digest, request.kind, payload)
        except BaseException as error:
            self.stats.failures += 1
            self.queue.fail(digest, error)
            raise
        self.stats.computed += 1
        self.queue.resolve(digest, payload)
        return payload

    def _compute(self, request: JobRequest, digest: str) -> dict:
        checkpoint_path = None
        if self.checkpoint:
            checkpoint_path = str(
                self.store.root / CHECKPOINTS_DIR / f"{digest}.json"
            )
        return self.executor.run_one(
            _execute_task, (request_to_dict(request), checkpoint_path)
        )

    def checkpoint_for(self, request: JobRequest) -> JobCheckpoint:
        """The checkpoint slot a leader for ``request`` would use."""
        digest = request_digest(request)
        return JobCheckpoint(
            self.store.root / CHECKPOINTS_DIR / f"{digest}.json"
        )

    # -------------------------------------------------------------- #
    # Batch and sync conveniences
    # -------------------------------------------------------------- #

    async def gather(
        self, requests: Sequence[JobRequest]
    ) -> List[dict]:
        """Submit many requests concurrently; payloads in order.

        Duplicate requests in the batch fan in: the first occurrence
        leads, the rest join its future.
        """
        return list(await asyncio.gather(
            *(self.submit(request) for request in requests)
        ))

    def run(
        self, requests: Union[JobRequest, Sequence[JobRequest]]
    ) -> Union[dict, List[dict]]:
        """Synchronous front door: resolve request(s) on a fresh loop."""
        if isinstance(requests, JobRequest):
            return asyncio.run(self.submit(requests))
        return asyncio.run(self.gather(requests))

    def import_sweep(self, out_dir: PathLike) -> Tuple[int, int]:
        """Pre-warm the store from a sweep output directory."""
        imported, skipped = self.store.import_sweep(out_dir)
        self.stats.imported += imported
        return imported, skipped


# ------------------------------------------------------------------ #
# Spool serving — the file frontend behind ``repro serve``
# ------------------------------------------------------------------ #


def iter_spool(spool_dir: PathLike) -> Iterable[pathlib.Path]:
    """Pending request files in a spool directory, oldest first."""
    spool = pathlib.Path(spool_dir)
    entries = [
        path for path in spool.glob("*.json")
        if not path.name.endswith(".result.json")
    ]
    entries.sort(key=lambda path: (path.stat().st_mtime, path.name))
    return entries


def serve_spool(
    service: CoverageService, spool_dir: PathLike
) -> List[pathlib.Path]:
    """Answer every pending request file in ``spool_dir``.

    For each ``name.json`` request (the
    :func:`~repro.service.requests.request_to_dict` form), the result is
    written next to it as ``name.result.json`` — the full verifiable
    store record, so consumers can check integrity the same way the
    cache does.  Files that already have an answer are skipped, making
    repeated invocations (`repro serve --spool ... ` in a loop or under
    cron) idempotent.  Returns the result paths written this pass.
    """
    written: List[pathlib.Path] = []
    pending = []
    for path in iter_spool(spool_dir):
        answer = path.with_suffix(".result.json")
        if answer.exists():
            continue
        request = request_from_dict(json.loads(path.read_text()))
        pending.append((path, answer, request))
    if not pending:
        return written
    payloads = service.run([request for _, _, request in pending])
    for (path, answer, request), payload in zip(pending, payloads):
        record = pack_service_record(
            request_digest(request), request.kind, payload
        )
        tmp = answer.with_suffix(".tmp")
        tmp.write_text(json.dumps(record, indent=2) + "\n")
        os.replace(tmp, answer)
        written.append(answer)
    return written
