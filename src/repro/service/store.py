"""Content-addressed result store: the service's disk cache.

Completed job payloads live under ``objects/<aa>/<digest>.json`` (two-hex
fan-out like git's object store), keyed by the request digest and wrapped
in the verifiable :data:`~repro.persist.SERVICE_RESULT_SCHEMA` record.
Three properties the service depends on:

* **integrity on read** — every :meth:`ResultStore.get` re-verifies the
  record (:func:`repro.persist.verify_service_record`); a corrupted,
  truncated, or mis-filed entry is deleted and reported as a miss, so
  the runner recomputes instead of serving bit rot;
* **atomic writes** — records land via ``tmp + os.replace``, so a
  concurrent reader never observes a torn entry;
* **bounded size** — when ``max_bytes`` is set, inserts evict
  least-recently-used entries (file mtime, refreshed on every hit)
  until the store fits, but never an entry **pinned** by an in-flight
  fan-in: a result with waiters queued behind it cannot vanish between
  its computation and its delivery.

:meth:`ResultStore.import_sweep` bulk-imports PR 8 sweep JSONL shards:
each record's cell is rebuilt, mapped to its canonical service request
(:func:`~repro.service.requests.request_from_cell`), and stored under
the digest a live submission of the same work would compute — warming
the cache from sweeps that ran long before the service existed.
"""

from __future__ import annotations

import contextlib
import json
import os
import pathlib
import threading
from typing import Dict, Iterator, Optional, Tuple

from repro.persist import (
    PathLike,
    pack_service_record,
    verify_service_record,
)
from repro.service.requests import request_digest, request_from_cell

#: Subdirectory holding the addressed records.
OBJECTS_DIR = "objects"


def _is_digest(name: str) -> bool:
    return len(name) == 64 and all(
        c in "0123456789abcdef" for c in name
    )


class ResultStore:
    """Content-addressed, size-bounded, integrity-checked result cache.

    ``max_bytes=None`` (default) disables eviction.  Thread-safe: one
    lock serializes mutations, which is ample — entries are small JSON
    files and the store sits behind an asyncio service that already
    funnels duplicate work into single computations.
    """

    def __init__(
        self, root: PathLike, max_bytes: Optional[int] = None
    ) -> None:
        if max_bytes is not None and max_bytes <= 0:
            raise ValueError(
                f"max_bytes must be positive, got {max_bytes}"
            )
        self.root = pathlib.Path(root)
        self.max_bytes = max_bytes
        self._lock = threading.Lock()
        self._pins: Dict[str, int] = {}
        (self.root / OBJECTS_DIR).mkdir(parents=True, exist_ok=True)

    # -------------------------------------------------------------- #
    # Addressing
    # -------------------------------------------------------------- #

    def path_for(self, digest: str) -> pathlib.Path:
        """Where the record for ``digest`` lives (existing or not)."""
        return self.root / OBJECTS_DIR / digest[:2] / f"{digest}.json"

    def __contains__(self, digest: str) -> bool:
        return self.path_for(digest).exists()

    def digests(self) -> Iterator[str]:
        """All stored digests (no integrity check — see :meth:`get`)."""
        objects = self.root / OBJECTS_DIR
        for shard in sorted(objects.iterdir()):
            if not shard.is_dir():
                continue
            for entry in sorted(shard.glob("*.json")):
                if _is_digest(entry.stem):
                    yield entry.stem

    # -------------------------------------------------------------- #
    # Pinning — eviction protection for in-flight fan-ins
    # -------------------------------------------------------------- #

    def pin(self, digest: str) -> None:
        """Protect ``digest`` from eviction until :meth:`unpin`."""
        with self._lock:
            self._pins[digest] = self._pins.get(digest, 0) + 1

    def unpin(self, digest: str) -> None:
        with self._lock:
            count = self._pins.get(digest, 0) - 1
            if count > 0:
                self._pins[digest] = count
            else:
                self._pins.pop(digest, None)

    def pinned(self, digest: str):
        """Context manager holding a pin for the duration of a job."""

        @contextlib.contextmanager
        def _hold():
            self.pin(digest)
            try:
                yield self
            finally:
                self.unpin(digest)

        return _hold()

    def pin_count(self, digest: str) -> int:
        with self._lock:
            return self._pins.get(digest, 0)

    # -------------------------------------------------------------- #
    # Read / write
    # -------------------------------------------------------------- #

    def get(self, digest: str) -> Optional[dict]:
        """The verified payload for ``digest``, or ``None`` on miss.

        A record that fails to parse or verify is deleted (it can never
        become valid again — content addressing means the only fix is
        recomputation) and reported as a miss.  Hits refresh the entry's
        mtime, which is the LRU clock.
        """
        path = self.path_for(digest)
        try:
            text = path.read_text()
        except OSError:
            return None
        try:
            payload = verify_service_record(
                json.loads(text), expected_digest=digest
            )
        except ValueError:
            with contextlib.suppress(OSError):
                path.unlink()
            return None
        with contextlib.suppress(OSError):
            os.utime(path)
        return payload

    def put(self, digest: str, kind: str, payload: dict) -> pathlib.Path:
        """Store ``payload`` under ``digest``; returns the record path.

        Idempotent — content addressing makes every write of the same
        digest equivalent, so an existing entry is simply refreshed.
        """
        path = self.path_for(digest)
        record = pack_service_record(digest, kind, payload)
        with self._lock:
            path.parent.mkdir(parents=True, exist_ok=True)
            tmp = path.with_suffix(".tmp")
            tmp.write_text(json.dumps(record) + "\n")
            os.replace(tmp, path)
            if self.max_bytes is not None:
                self._evict_locked()
        return path

    def delete(self, digest: str) -> bool:
        """Drop an entry; returns whether one existed."""
        with self._lock:
            try:
                self.path_for(digest).unlink()
            except OSError:
                return False
            return True

    # -------------------------------------------------------------- #
    # Size accounting and LRU eviction
    # -------------------------------------------------------------- #

    def _entries(self) -> Iterator[Tuple[str, pathlib.Path, os.stat_result]]:
        for digest in self.digests():
            path = self.path_for(digest)
            try:
                yield digest, path, path.stat()
            except OSError:
                continue

    def total_bytes(self) -> int:
        return sum(stat.st_size for _, _, stat in self._entries())

    def _evict_locked(self) -> None:
        entries = sorted(
            self._entries(), key=lambda item: item[2].st_mtime
        )
        total = sum(stat.st_size for _, _, stat in entries)
        for digest, path, stat in entries:
            if total <= self.max_bytes:
                break
            if self._pins.get(digest, 0) > 0:
                # An in-flight fan-in is about to read or announce this
                # result; evicting it would recompute work we just did
                # (or worse, strand waiters).  Skip — the pin holder
                # unpins when the last waiter is served.
                continue
            with contextlib.suppress(OSError):
                path.unlink()
                total -= stat.st_size

    def evict_to_fit(self) -> None:
        """Apply the size bound now (normally runs on every put)."""
        if self.max_bytes is None:
            return
        with self._lock:
            self._evict_locked()

    # -------------------------------------------------------------- #
    # Sweep import — pre-warm from PR 8 JSONL shards
    # -------------------------------------------------------------- #

    def import_sweep(self, out_dir: PathLike) -> Tuple[int, int]:
        """Import a sweep output directory's completed cells.

        Each streamed record is mapped to its canonical service request;
        the record's ``"result"`` block (plus its matrix, when the sweep
        embedded one) becomes the cached payload under that request's
        digest.  Returns ``(imported, skipped)`` — records without an
        embedded matrix are skipped, because a service payload promises
        the optimized matrix and the sweep record alone cannot supply
        it.  Existing entries are refreshed, not recomputed.
        """
        from repro.sweep.grid import cell_from_dict
        from repro.sweep.stream import iter_sweep_records

        imported = skipped = 0
        for record in iter_sweep_records(out_dir):
            matrix = record.get("matrix")
            if matrix is None:
                skipped += 1
                continue
            cell = cell_from_dict(record["cell"])
            request = request_from_cell(cell)
            payload = {
                "result": record["result"],
                "matrix": matrix,
            }
            self.put(request_digest(request), request.kind, payload)
            imported += 1
        return imported, skipped
