"""Fan-in queue: concurrent identical submissions share one computation.

The service keys every job by its request digest
(:func:`~repro.service.requests.request_digest`).  When a submission
arrives for a digest that is already being computed, it does not start a
second computation — it *joins* the in-flight one and receives the same
result object.  :class:`FanInQueue` implements that claim/join protocol
on top of asyncio futures; :class:`ServiceStats` counts what happened to
each submission (cache hit, fan-in join, fresh computation, failure) so
tests and benchmarks can assert the exactly-once property directly.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple


@dataclass
class ServiceStats:
    """Per-service counters; one increment per submission or outcome.

    ``submitted = cache_hits + fan_in_joins + computed + failures`` once
    the service drains (a joined submission shares its leader's outcome
    but is only ever counted as a join).
    """

    submitted: int = 0
    cache_hits: int = 0
    fan_in_joins: int = 0
    computed: int = 0
    failures: int = 0
    imported: int = 0
    evictions_blocked: int = field(default=0, repr=False)

    def as_dict(self) -> dict:
        return {
            "submitted": self.submitted,
            "cache_hits": self.cache_hits,
            "fan_in_joins": self.fan_in_joins,
            "computed": self.computed,
            "failures": self.failures,
            "imported": self.imported,
        }


class FanInQueue:
    """Digest-keyed claim/join registry of in-flight computations.

    Protocol (single event loop; no internal locking needed):

    * ``claim(digest)`` returns ``(future, leader)``.  The first caller
      for a digest becomes the **leader** (``leader=True``) and must
      eventually :meth:`resolve` or :meth:`fail` the future; later
      callers get the *same* future with ``leader=False`` and simply
      await it.
    * ``resolve``/``fail`` settle the future and retire the digest, so
      the next submission after completion starts a fresh claim (by
      then the result is in the store, so it will be a cache hit).
    """

    def __init__(self) -> None:
        self._inflight: Dict[str, asyncio.Future] = {}

    def claim(self, digest: str) -> Tuple[asyncio.Future, bool]:
        future = self._inflight.get(digest)
        if future is not None:
            return future, False
        future = asyncio.get_running_loop().create_future()
        self._inflight[digest] = future
        return future, True

    def peek(self, digest: str) -> Optional[asyncio.Future]:
        """The in-flight future for ``digest``, if any (no claim)."""
        return self._inflight.get(digest)

    def in_flight(self) -> int:
        return len(self._inflight)

    def resolve(self, digest: str, payload: dict) -> None:
        future = self._inflight.pop(digest)
        if not future.done():
            future.set_result(payload)

    def fail(self, digest: str, error: BaseException) -> None:
        future = self._inflight.pop(digest)
        if not future.done():
            future.set_exception(error)
